"""Root pytest bootstrap: src-layout path and the sanitizer plugin.

Lives at the repository root (not under ``tests/``) because
``pytest_plugins`` must be declared in the rootdir conftest.  The path
insert makes ``import repro`` work without an explicit ``PYTHONPATH=src``.
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

pytest_plugins = ("repro.analysis.pytest_plugin",)
