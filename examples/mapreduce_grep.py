#!/usr/bin/env python3
"""The paper's distributed grep mapreduce query (section 2.4).

"The distributed grep mapreduce query using 1000 parallel grep calls is
specified in SCSQL as follows:

    merge(spv(
        select grep("pattern", filename(i))
        from integer i
        where i in iota(1,1000)));
"

Each grep subquery runs in its own stream process on the back-end cluster;
``merge()`` is the (empty) reduce step.  The corpus here is synthetic —
each virtual file plants a known marker pattern — so the result count is
verifiable.

Run:  python examples/mapreduce_grep.py [n_files]
"""

import sys
import time

from repro import SCSQSession
from repro.workloads import corpus


def grep_query(pattern: str, n_files: int) -> str:
    """The paper's mapreduce query: the reduce is the identity (merge)."""
    return f"""
    select merge(g) from bag of sp g
    where g=spv(
      (select grep('{pattern}', filename(i))
       from integer i where i in iota(1,{n_files})),
      'be', urr('be'));
    """


def count_query(pattern: str, n_files: int) -> str:
    """A count-only variant: the reduce aggregates instead of concatenating."""
    return f"""
    select count(merge(g)) from bag of sp g
    where g=spv(
      (select grep('{pattern}', filename(i))
       from integer i where i in iota(1,{n_files})),
      'be', urr('be'));
    """


def scsql_queries():
    """The example's SCSQL statements, for ``python -m repro analyze``."""
    return [
        ("grep", grep_query(corpus.MARKER, 100)),
        ("grep-count", count_query(corpus.MARKER, 100)),
    ]


def main() -> None:
    n_files = int(sys.argv[1]) if len(sys.argv) > 1 else 100
    session = SCSQSession()

    print(f"distributed grep over {n_files} files, pattern {corpus.MARKER!r}")
    wall = time.time()
    report = session.execute(grep_query(corpus.MARKER, n_files))
    wall = time.time() - wall

    expected = n_files * corpus.expected_marker_count()
    print(f"matched lines: {len(report.result)} (expected {expected})")
    assert len(report.result) == expected, "corpus invariant violated"
    print("sample matches:")
    for line in report.result[:3]:
        print("   ", line)
    print(f"simulated time: {report.duration * 1e3:.2f} ms; wall time: {wall:.2f} s")

    placements = {
        node for sp, node in report.rp_placements.items() if sp.startswith("g")
    }
    print(f"grep processes spread over {len(placements)} back-end nodes: "
          f"{sorted(placements)}")

    # A count-only variant: the reduce aggregates instead of concatenating.
    report = session.execute(count_query(corpus.MARKER, n_files))
    print("count(merge(...)) =", report.scalar_result)


if __name__ == "__main__":
    main()
