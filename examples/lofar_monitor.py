#!/usr/bin/env python3
"""A LOFAR-flavoured continuous monitoring query.

The paper's motivation: LOFAR antennas "produce raw data streams that
arrive at the central processing facilities at a rate, which is too high
for the data to be saved on disk.  Furthermore, advanced numerical
computations are performed on the streams in real time to detect
astronomical events as they occur."

This example builds a *continuous* (unbounded) monitoring query over a set
of simulated antenna power streams: each antenna's stream is window-
averaged on its own BlueGene compute node; the per-antenna averages are
merged and window-maximized, so the client manager sees one "loudest
antenna power" reading per round — an event-detection trigger.  The query
never ends on its own; it is stopped by user intervention (``stop_after``),
the paper's section 2.2 termination path.

Run:  python examples/lofar_monitor.py [n_antennas]
"""

import itertools
import sys

import numpy as np

from repro import SCSQSession

WINDOW = 16          # samples per per-antenna average
SIM_SECONDS = 0.25   # how long to let the continuous query run
BURST_ANTENNA = 2    # this antenna carries a transient "event"


def antenna_source(index: int, seed: int = 0):
    """An endless stream of power samples; one antenna has a burst."""

    def factory():
        rng = np.random.default_rng(seed + index)

        def generate():
            for sample in itertools.count():
                power = 10.0 + rng.normal(0, 0.5)
                if index == BURST_ANTENNA and 400 <= sample < 600:
                    power += 25.0  # the astronomical event
                yield float(power)

        return generate()

    return factory


def monitoring_query(n_antennas: int) -> str:
    """One CQ: per-antenna window averages, merged, window-maximized.

    The per-antenna subqueries are generated programmatically — SCSQL text
    is data, and the paper's own queries are built the same way (one
    conjunct per stream process).
    """
    decls = ", ".join(f"sp w{i}" for i in range(n_antennas))
    conjuncts = " and ".join(
        f"w{i}=sp(winagg(receiver('antenna-{i}'), 'avg', {WINDOW}, {WINDOW}), 'bg')"
        for i in range(n_antennas)
    )
    merge_set = "{" + ", ".join(f"w{i}" for i in range(n_antennas)) + "}"
    return (
        f"select winagg(merge({merge_set}), 'max', {n_antennas}, {n_antennas}) "
        f"from {decls} where {conjuncts};"
    )


def scsql_queries():
    """The example's SCSQL statements, for ``python -m repro analyze``."""
    return [("monitor-n6", monitoring_query(6))]


def main() -> None:
    n_antennas = int(sys.argv[1]) if len(sys.argv) > 1 else 6
    for i in range(n_antennas):
        SCSQSession.register_source(f"antenna-{i}", antenna_source(i))
    try:
        session = SCSQSession()
        query = monitoring_query(n_antennas)
        print(query)
        print()
        report = session.execute(query, stop_after=SIM_SECONDS)
    finally:
        for i in range(n_antennas):
            SCSQSession.unregister_source(f"antenna-{i}")

    assert report.stopped, "a continuous query only ends by intervention"
    readings = report.result
    print(f"{len(readings)} monitoring rounds in {SIM_SECONDS}s simulated time")
    baseline = float(np.median(readings))
    events = [r for r in readings if r > baseline + 10]
    print(f"baseline loudest-antenna power ~{baseline:.1f}; "
          f"{len(events)} rounds flagged as events")
    for reading in readings[:5]:
        print(f"  round reading: {reading:.2f}")
    if events:
        print(f"  strongest event reading: {max(events):.2f} "
              f"(antenna {BURST_ANTENNA}'s burst)")


if __name__ == "__main__":
    main()
