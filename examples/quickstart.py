#!/usr/bin/env python3
"""Quickstart: submit your first SCSQL continuous queries.

Creates a simulated LOFAR-style environment (BlueGene partition + Linux
clusters), runs the paper's basic point-to-point measurement query, and
shows how buffer sizes and buffering modes change streaming bandwidth.

Run:  python examples/quickstart.py
"""

from repro import ExecutionSettings, SCSQSession
from repro.util.units import MEGA

POINT_TO_POINT = """
select extract(b)
from sp a, sp b
where b=sp(streamof(count(extract(a))), 'bg', 0)
and a=sp(gen_array(3000000,10), 'bg', 1);
"""

PARALLEL_SPV = """
select count(merge(a)) from bag of sp a, integer n
where a=spv(
  (select gen_array(1000000,5)
   from integer i where i in iota(1,n)),
  'bg')
and n=4;
"""


def scsql_queries():
    """The example's SCSQL statements, for ``python -m repro analyze``."""
    return [("point-to-point", POINT_TO_POINT), ("parallel-spv", PARALLEL_SPV)]


def main() -> None:
    session = SCSQSession()
    print("Environment:", session.env)
    print()

    # --- 1. A first continuous query -----------------------------------
    # Stream process a generates ten 3 MB arrays on BlueGene compute node 1;
    # b counts them on node 0.  Only the count leaves the BlueGene.
    query = POINT_TO_POINT
    report = session.execute(query)
    print("count(extract(a)) =", report.scalar_result)
    print(f"simulated query time: {report.duration * 1e3:.2f} ms")
    print("stream process placements:")
    for sp_id, node in sorted(report.rp_placements.items()):
        print(f"  {sp_id:>24} -> {node}")
    print()

    # --- 2. The same query as a bandwidth measurement ------------------
    payload = 3_000_000 * 10
    for buffer_bytes in (100, 1000, 100_000):
        for double in (False, True):
            settings = ExecutionSettings(
                mpi_buffer_bytes=buffer_bytes, double_buffering=double
            )
            fresh = SCSQSession()
            result = fresh.execute(query, settings)
            mbps = payload * 8 / result.duration / MEGA
            mode = "double" if double else "single"
            print(
                f"buffer {buffer_bytes:>7} B, {mode} buffering: "
                f"{mbps:7.1f} Mbps"
            )
    print()
    print("Note the optimum at 1000 bytes — the minimum BlueGene torus")
    print("message size — and the cache-miss drop-off above it (Figure 6).")

    # --- 3. Parallelism with spv() --------------------------------------
    parallel = SCSQSession()
    report = parallel.execute(PARALLEL_SPV)
    print()
    print("4 parallel generators produced", report.scalar_result, "arrays")


if __name__ == "__main__":
    main()
