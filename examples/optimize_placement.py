#!/usr/bin/env python3
"""The cost-based query optimizer in action.

The paper measured communication topologies "to provide a basis for
automatic CPU allocation strategies".  This example closes that loop: the
same queries, with *no* allocation sequences, placed three ways —

* naive next-available selection (the paper's baseline),
* the hand-coded knowledge rules from the paper's observations,
* the cost-based search over the calibrated analytic model —

and measured.  The optimizer rediscovers the balanced merge topology of
Figure 7B and the Query 5 inbound shape on its own.

Run:  python examples/optimize_placement.py
"""

from repro import CostBasedPlacer, Environment, ExecutionSettings
from repro.coordinator import ClientManager, CoordinatorRegistry
from repro.coordinator.allocation import KnowledgeBasedSelector
from repro.core.experiments.ablations import automatic_inbound_query
from repro.scsql.compiler import QueryCompiler
from repro.scsql.parser import parse_query

MERGE_QUERY = """
select extract(c)
from sp a, sp b, sp c
where c=sp(count(merge({a,b})), 'bg')
and a=sp(gen_array(200000,15), 'bg')
and b=sp(gen_array(200000,15), 'bg');
"""

INBOUND_QUERY = automatic_inbound_query(4, 3_000_000, 5)


def scsql_queries():
    """The example's SCSQL statements, for ``python -m repro analyze``."""
    return [("intra-bg-merge", MERGE_QUERY), ("inbound-n4", INBOUND_QUERY)]


def measure(query_text, payload_bytes, placer, settings):
    env = Environment()
    graph = QueryCompiler(env).compile_select(parse_query(query_text))
    coordinators = None
    chosen = None
    if placer == "knowledge":
        coordinators = CoordinatorRegistry(env, KnowledgeBasedSelector())
    elif placer == "cost-based":
        chosen = CostBasedPlacer(env, settings).place(graph)
    report = ClientManager(env, coordinators).execute(graph, settings)
    mbps = payload_bytes * 8 / report.duration / 1e6
    return mbps, chosen, report


def main() -> None:
    workloads = [
        ("intra-BG merge", MERGE_QUERY, 2 * 200_000 * 15,
         ExecutionSettings(mpi_buffer_bytes=100_000)),
        ("inbound n=4", INBOUND_QUERY, 4 * 3_000_000 * 5, ExecutionSettings()),
    ]
    for name, query, payload, settings in workloads:
        print(f"=== {name} (no allocation sequences) ===")
        for placer in ("naive", "knowledge", "cost-based"):
            mbps, chosen, report = measure(query, payload, placer, settings)
            print(f"  {placer:>11}: {mbps:7.1f} Mbps")
            if chosen:
                readable = {sp.split("@")[0]: node for sp, node in chosen.items()}
                print(f"               placement: {readable}")
        print()
    print("The cost-based search derives the paper's topologies from the")
    print("calibrated model: producers adjacent to the merger on independent")
    print("torus links; inbound senders co-located, receivers spread psets.")


if __name__ == "__main__":
    main()
