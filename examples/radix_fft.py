#!/usr/bin/env python3
"""The paper's radix2 parallel FFT query function (section 2.4).

"Splitting of streams is specified by referencing common variables bound to
stream processes, as illustrated by the following query function, which
implements the radix2 parallelization of FFT for a stream source named s:

    create function radix2(string s) -> stream
    as select radixcombine(merge({a,b}))
    from sp a, sp b, sp c
    where a=sp(fft(odd(extract(c))))
    and b=sp(fft(even(extract(c))))
    and c=sp(receiver(s));
"

Process c streams signal arrays; a and b each extract the *same* stream
(the split), FFT the odd/even halves in parallel on separate BlueGene
nodes, and radixcombine applies the decimation-in-time butterfly.  The
result is verified against numpy's FFT and used to locate the dominant
tone of each signal.

Run:  python examples/radix_fft.py
"""

import numpy as np

from repro import SCSQSession
from repro.workloads import make_signal_source, signal_stream

RADIX2 = """
create function radix2(string s) -> stream
as select radixcombine(merge({a,b}))
from sp a, sp b, sp c
where a=sp(fft(odd(extract(c))), 'bg')
and b=sp(fft(even(extract(c))), 'bg')
and c=sp(receiver(s), 'bg');
"""

N_SIGNALS = 6
N_POINTS = 1024
SEED = 2007

FFT_QUERY = "select radix2('antenna') from integer z where z=0;"


def scsql_queries():
    """The example's SCSQL statements, for ``python -m repro analyze``.

    The create-function statement registers ``radix2`` for the select that
    follows, exactly as the session executes them.
    """
    return [("radix2-def", RADIX2), ("radix2-call", FFT_QUERY)]


def main() -> None:
    SCSQSession.register_source(
        "antenna", make_signal_source(N_SIGNALS, n_points=N_POINTS, seed=SEED)
    )
    session = SCSQSession()
    session.execute(RADIX2)
    report = session.execute(FFT_QUERY)

    expected = [
        np.fft.fft(x) for x in signal_stream(N_SIGNALS, n_points=N_POINTS, seed=SEED)
    ]
    print(f"radix2 FFT of {N_SIGNALS} x {N_POINTS}-point signals")
    print(f"simulated time: {report.duration * 1e3:.3f} ms")
    print()
    print(f"{'signal':>6}  {'dominant bin':>12}  {'matches numpy':>14}")
    for k, (got, want) in enumerate(zip(report.result, expected)):
        matches = np.allclose(got, want)
        dominant = int(np.argmax(np.abs(got[1 : N_POINTS // 2]))) + 1
        print(f"{k:>6}  {dominant:>12}  {str(matches):>14}")
        assert matches, f"signal {k}: parallel FFT diverged from numpy"

    placements = {
        sp.split("@")[0]: node
        for sp, node in report.rp_placements.items()
        if not sp.startswith("__")
    }
    print()
    print("the split stream ran on:", placements)
    print("(a and b both subscribe to c's output — one stream, two subscribers)")


if __name__ == "__main__":
    main()
