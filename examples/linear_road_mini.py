#!/usr/bin/env python3
"""A miniature Linear Road benchmark as SCSQL continuous queries.

The paper's future work (§5) proposes evaluating SCSQ with "benchmarks such
as The Linear Road Benchmark".  This example runs a scaled-down Linear
Road: vehicles stream position reports; per-segment stream processes
compute tumbling-window average speeds on BlueGene nodes; segments whose
average drops below 40 mph are *congested* and incur tolls; an accident in
one segment must be detected.  Results are verified against a plain-Python
reference computation.

Run:  python examples/linear_road_mini.py
"""

from repro import SCSQSession
from repro.workloads.linear_road import (
    CONGESTION_SPEED,
    Accident,
    expected_congested_windows,
    partition_by_segment,
    position_reports,
    segment_speeds,
)

N_VEHICLES = 24
N_SEGMENTS = 6
TICKS = 120
WINDOW = 20
ACCIDENT = Accident(segment=2, start_tick=30, end_tick=90)


def congestion_query(n_segments: int) -> str:
    """Per-segment window averages, filtered below the toll threshold.

    One stream process per segment detector (spread over BlueGene psets),
    each computing tumbling-window average speeds and keeping only the
    congested windows; the client manager merges the toll events.
    """
    decls = ", ".join(f"sp s{i}" for i in range(n_segments))
    conjuncts = " and ".join(
        f"s{i}=sp(below(winagg(receiver('segment-{i}'), 'avg', {WINDOW}, {WINDOW}),"
        f" {CONGESTION_SPEED}), 'bg', psetrr())"
        for i in range(n_segments)
    )
    merge_set = "{" + ", ".join(f"s{i}" for i in range(n_segments)) + "}"
    return f"select merge({merge_set}) from {decls} where {conjuncts};"


def scsql_queries():
    """The example's SCSQL statements, for ``python -m repro analyze``."""
    return [("congestion", congestion_query(N_SEGMENTS))]


def main() -> None:
    reports = position_reports(
        N_VEHICLES, N_SEGMENTS, TICKS, seed=7, accident=ACCIDENT
    )
    partitions = partition_by_segment(reports, N_SEGMENTS)
    print(
        f"{len(reports)} position reports from {N_VEHICLES} vehicles over "
        f"{N_SEGMENTS} segments; accident in segment {ACCIDENT.segment} "
        f"(ticks {ACCIDENT.start_tick}-{ACCIDENT.end_tick})"
    )

    for segment, rows in partitions.items():
        speeds = segment_speeds(rows)
        SCSQSession.register_source(f"segment-{segment}", lambda s=speeds: iter(s))
    try:
        session = SCSQSession()
        report = session.execute(congestion_query(N_SEGMENTS))
    finally:
        for segment in range(N_SEGMENTS):
            SCSQSession.unregister_source(f"segment-{segment}")

    tolls = report.result
    expected = sum(
        expected_congested_windows(segment_speeds(rows), WINDOW)
        for rows in partitions.values()
    )
    print(f"congested windows (toll events): {len(tolls)} (expected {expected})")
    assert len(tolls) == expected, "query diverged from the reference computation"
    assert all(speed < CONGESTION_SPEED for speed in tolls)
    print(f"slowest congested window average: {min(tolls):.1f} mph")
    print(f"simulated time: {report.duration * 1e3:.3f} ms")
    placements = {
        sp.split("@")[0]: node
        for sp, node in report.rp_placements.items()
        if sp.startswith("s")
    }
    psets = {node: int(node.split(":")[1]) // 8 for node in placements.values()}
    print(f"segment detectors spread over psets: {sorted(set(psets.values()))}")


if __name__ == "__main__":
    main()
