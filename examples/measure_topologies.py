#!/usr/bin/env python3
"""Measure communication topologies with stream queries — the paper's core idea.

Runs scaled-down versions of all three measured figures and prints the
tables, then uses what was learned to compare the naive and knowledge-based
node selection algorithms (the paper's stated purpose for the
measurements).

Run:  python examples/measure_topologies.py [--full | --smoke]

``--full`` runs the paper-scale sweeps (several minutes); the default
scaled-down run finishes in well under a minute; ``--smoke`` runs every
sweep with a single repeat (CI's examples job).
"""

import sys
import time

from repro.core.experiments import (
    run_buffer_choice_ablation,
    run_fig6,
    run_fig8,
    run_fig15,
    run_node_selection_ablation,
)


def scsql_queries():
    """One query per measured topology, at the example's scaled-down sizes,
    for ``python -m repro analyze`` (the full grids are ``analyze --sweeps``)."""
    from repro.core.experiments.fig6 import point_to_point_query, scaled_workload
    from repro.core.experiments.fig8 import BALANCED, merge_query
    from repro.core.experiments.fig15 import inbound_query

    array_bytes, count = scaled_workload(1000, 300)
    x, y = BALANCED
    return [
        ("fig6", point_to_point_query(array_bytes, count)),
        ("fig8-balanced", merge_query(array_bytes, count, x, y)),
        ("fig15-q5", inbound_query(5, 4, 3_000_000, 5)),
    ]


def main() -> None:
    full = "--full" in sys.argv
    repeats = 5 if full else (1 if "--smoke" in sys.argv else 2)
    fig6_sizes = None if full else (200, 1000, 5000, 100_000)
    fig8_sizes = None if full else (1000, 10_000, 200_000)
    stream_counts = (1, 2, 3, 4, 5, 6, 7, 8) if full else (1, 2, 4, 5)

    start = time.time()
    fig6 = run_fig6(
        **({} if fig6_sizes is None else {"buffer_sizes": fig6_sizes}),
        repeats=repeats,
        target_buffers=1000 if full else 300,
    )
    print(fig6.format_table())
    print(
        f"-> optimal buffer: single={fig6.optimum(False).buffer_bytes} B, "
        f"double={fig6.optimum(True).buffer_bytes} B"
    )
    print()

    fig8 = run_fig8(
        **({} if fig8_sizes is None else {"buffer_sizes": fig8_sizes}),
        repeats=repeats,
        target_buffers=800 if full else 250,
    )
    print(fig8.format_table())
    print(f"-> balanced/sequential advantage: {fig8.balanced_advantage():.2f}x")
    print()

    fig15 = run_fig15(
        stream_counts=stream_counts,
        repeats=repeats,
        array_count=10 if full else 5,
    )
    print(fig15.format_table())
    peak = fig15.peak(5)
    print(f"-> Query 5 peaks at {peak.mbps:.0f} Mbps (n={peak.n})")
    print()

    selection = run_node_selection_ablation(
        stream_counts=(4,) if not full else (2, 4, 6, 8),
        repeats=repeats,
        count=4 if not full else 10,
    )
    print(selection.format_table())
    print()

    buffers = run_buffer_choice_ablation(
        buffer_sizes=(500, 1000, 2000, 10_000, 100_000, 1_000_000)
        if full else (1000, 2000, 100_000),
        repeats=repeats,
    )
    print(buffers.format_table())
    print()
    print(f"total wall time: {time.time() - start:.1f} s")


if __name__ == "__main__":
    main()
