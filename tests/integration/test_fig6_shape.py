"""Integration: the Figure 6 curve shape (scaled down for test speed).

Asserted claims, from the paper's Figure 6 discussion:

* "the optimal buffer size is 1000 bytes for both single and double
  buffering";
* bandwidth degrades below 1000 bytes ("1K is the smallest message size
  that can be exchanged in the BlueGene 3D torus");
* bandwidth drops off above 1000 bytes ("probably due to cache misses");
* "double buffering pays off for large buffers".
"""

import pytest

from repro.core.experiments import run_fig6

BUFFER_SIZES = (200, 1000, 5000, 200_000)


@pytest.fixture(scope="module")
def fig6():
    return run_fig6(buffer_sizes=BUFFER_SIZES, repeats=2, target_buffers=300)


def curve(fig6, double):
    return {p.buffer_bytes: p.mbps for p in fig6.curve(double)}


class TestFig6Shape:
    def test_optimum_is_1000_bytes_for_both_modes(self, fig6):
        assert fig6.optimum(False).buffer_bytes == 1000
        assert fig6.optimum(True).buffer_bytes == 1000

    def test_small_buffers_are_slow(self, fig6):
        for double in (False, True):
            series = curve(fig6, double)
            assert series[200] < 0.75 * series[1000]

    def test_drop_off_above_the_knee(self, fig6):
        for double in (False, True):
            series = curve(fig6, double)
            assert series[5000] < series[1000]
            assert series[200_000] < series[1000]

    def test_double_buffering_pays_off_for_large_buffers(self, fig6):
        single = curve(fig6, False)
        double = curve(fig6, True)
        assert double[200_000] > 1.1 * single[200_000]

    def test_double_buffering_matters_less_for_small_buffers(self, fig6):
        single = curve(fig6, False)
        double = curve(fig6, True)
        small_gain = double[200] / single[200]
        large_gain = double[200_000] / single[200_000]
        assert small_gain < large_gain

    def test_repeats_have_low_variance(self, fig6):
        for point in fig6.points:
            assert point.result.mbps.relative_std < 0.05

    def test_table_renders(self, fig6):
        table = fig6.format_table()
        assert "Figure 6" in table
        assert "1000" in table
