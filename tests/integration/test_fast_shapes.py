"""Fast ordinal shape checks: one repeat, minimal sweeps, seconds not minutes.

The full shape suites (``test_fig6_shape.py`` etc.) sweep several points
with repeats; these single-repeat variants only pin the *ordering* claims —
each figure's headline comparison — so a broken mechanism is caught even in
the quickest test run.
"""

import pytest

from repro.core.experiments import run_fig6, run_fig8, run_fig15


class TestFig6Ordinal:
    def test_knee_at_one_kilobyte(self):
        fig6 = run_fig6(
            buffer_sizes=(200, 1000, 100_000),
            repeats=1,
            target_buffers=200,
        )
        assert fig6.optimum(False).buffer_bytes == 1000
        assert fig6.optimum(True).buffer_bytes == 1000


class TestFig8Ordinal:
    def test_balanced_selection_beats_sequential(self):
        fig8 = run_fig8(
            buffer_sizes=(200_000,),
            repeats=1,
            target_buffers=150,
        )
        for double in (False, True):
            (sequential,) = fig8.curve(False, double)
            (balanced,) = fig8.curve(True, double)
            assert balanced.mbps > sequential.mbps
        assert fig8.balanced_advantage() > 1.2


class TestFig15Ordinal:
    @pytest.fixture(scope="class")
    def fig15(self):
        return run_fig15(
            stream_counts=(4, 5),
            queries=(1, 5),
            repeats=1,
            array_count=3,
        )

    def test_query5_dips_when_io_nodes_are_shared(self, fig15):
        # n=5: a fifth receiving pset shares one of the four I/O nodes.
        assert fig15.at(5, 4).mbps > fig15.at(5, 5).mbps

    def test_spread_psets_beat_single_io_node(self, fig15):
        # Query 5 (psetrr) uses four I/O nodes; Query 1 funnels through one.
        assert fig15.at(5, 4).mbps > fig15.at(1, 4).mbps
