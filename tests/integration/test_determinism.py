"""Reproducibility: identical seeds give identical simulations."""

from repro.engine import ExecutionSettings
from repro.hardware import Environment, EnvironmentConfig
from repro.scsql import SCSQSession

QUERY = (
    "select extract(c) from sp a, sp b, sp c "
    "where c=sp(count(merge({a,b})), 'bg', 0) "
    "and a=sp(gen_array(100000,6), 'bg', 1) "
    "and b=sp(gen_array(100000,6), 'bg', 4);"
)


def run_once(seed):
    session = SCSQSession(Environment(EnvironmentConfig(seed=seed)))
    report = session.execute(QUERY, ExecutionSettings(mpi_buffer_bytes=10_000))
    return report


class TestDeterminism:
    def test_same_seed_same_everything(self):
        first = run_once(seed=42)
        second = run_once(seed=42)
        assert first.duration == second.duration
        assert first.result == second.result
        assert first.torus_bytes == second.torus_bytes
        assert first.source_switches == second.source_switches
        stats_a = first.rp_statistics["a@1"]
        stats_b = second.rp_statistics["a@1"]
        assert stats_a.cpu_busy_time == stats_b.cpu_busy_time

    def test_different_seed_different_timing(self):
        assert run_once(seed=1).duration != run_once(seed=2).duration

    def test_jitter_zero_is_seed_independent(self):
        def run(seed):
            config = EnvironmentConfig(
                params=EnvironmentConfig().params.with_overrides(jitter=0.0),
                seed=seed,
            )
            session = SCSQSession(Environment(config))
            return session.execute(QUERY, ExecutionSettings(mpi_buffer_bytes=10_000))

        assert run(1).duration == run(2).duration
