"""Integration: the Figure 15 inbound-streaming shape (scaled down).

Asserted claims, from the paper's section 3.2 observations:

1. Queries 1-4 (one I/O node) are far below Queries 5-6 (many I/O nodes);
2. Queries 3/4 are slightly better than Queries 1/2 at small n;
3. Query 5 peaks at ~920 Mbps and beats Query 6;
4. Query 1 beats Query 2;
5. Query 5 dips at n=5 (four I/O nodes on the partition).
"""

import pytest

from repro.core.experiments import run_fig15


@pytest.fixture(scope="module")
def fig15():
    return run_fig15(
        stream_counts=(1, 2, 4, 5),
        queries=(1, 2, 3, 4, 5, 6),
        repeats=2,
        array_count=5,
    )


class TestFig15Shape:
    def test_all_queries_equal_at_one_stream(self, fig15):
        values = [fig15.at(q, 1).mbps for q in range(1, 7)]
        assert max(values) < 1.05 * min(values)

    def test_single_io_node_queries_are_far_slower(self, fig15):
        for q in (1, 2, 3, 4):
            assert fig15.at(q, 4).mbps < 0.5 * fig15.at(5, 4).mbps

    def test_query3_slightly_better_than_query1_at_small_n(self, fig15):
        assert fig15.at(3, 2).mbps > 1.05 * fig15.at(1, 2).mbps

    def test_query1_beats_query2(self, fig15):
        for n in (2, 4, 5):
            assert fig15.at(1, n).mbps > fig15.at(2, n).mbps

    def test_query4_at_least_matches_query2(self, fig15):
        for n in (2, 4):
            assert fig15.at(4, n).mbps >= 0.99 * fig15.at(2, n).mbps

    def test_query5_peaks_around_920_mbps(self, fig15):
        peak = fig15.peak(5)
        assert peak.n == 4
        assert 850 <= peak.mbps <= 960

    def test_query5_beats_query6_at_peak(self, fig15):
        assert fig15.at(5, 4).mbps > 1.1 * fig15.at(6, 4).mbps

    def test_query5_dips_at_five_streams(self, fig15):
        assert fig15.at(5, 5).mbps < 0.9 * fig15.at(5, 4).mbps

    def test_table_renders(self, fig15):
        table = fig15.format_table()
        assert "Figure 15" in table
        assert "Q5" in table


class TestPlacements:
    """The queries place RPs exactly as the paper's figures 9-14 show."""

    def test_query1_topology(self):
        result = run_fig15(stream_counts=(3,), queries=(1,), repeats=1, array_count=2)
        report = result.at(1, 3).result.reports[0]
        be_nodes = {v for k, v in report.rp_placements.items() if k.startswith("a")}
        assert be_nodes == {"be:1"}  # all senders co-located on node 1

    def test_query2_spreads_senders(self):
        result = run_fig15(stream_counts=(3,), queries=(2,), repeats=1, array_count=2)
        report = result.at(2, 3).result.reports[0]
        be_nodes = {v for k, v in report.rp_placements.items() if k.startswith("a")}
        assert len(be_nodes) == 3

    def test_query3_receivers_share_a_pset(self):
        result = run_fig15(stream_counts=(3,), queries=(3,), repeats=1, array_count=2)
        report = result.at(3, 3).result.reports[0]
        bg_nodes = [
            int(v.split(":")[1])
            for k, v in report.rp_placements.items()
            if k.startswith("b[")
        ]
        assert len(bg_nodes) == 3
        assert all(8 <= node <= 15 for node in bg_nodes)  # pset 1

    def test_query5_receivers_spread_psets(self):
        result = run_fig15(stream_counts=(4,), queries=(5,), repeats=1, array_count=2)
        report = result.at(5, 4).result.reports[0]
        bg_nodes = [
            int(v.split(":")[1])
            for k, v in report.rp_placements.items()
            if k.startswith("b[")
        ]
        psets = {node // 8 for node in bg_nodes}
        assert psets == {0, 1, 2, 3}
