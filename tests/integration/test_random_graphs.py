"""Property-based end-to-end tests over randomly generated query graphs.

Hypothesis builds random fan-in/fan-out process graphs (generators on
random clusters, optional relay layers, a merging counter sink) and runs
them through the full stack — coordinators, placement, drivers, transports.
Whatever the topology, buffer size, or buffering mode, **conservation must
hold**: the sink counts exactly the objects the generators produced, and
the byte counters balance.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coordinator import ClientManager, QueryGraph, SPDef
from repro.engine import ExecutionSettings, plan_input, plan_op
from repro.hardware import Environment, EnvironmentConfig


@st.composite
def random_graph_spec(draw):
    """A random layered dataflow: generators -> (relays) -> count sink."""
    n_generators = draw(st.integers(1, 5))
    generators = []
    for _ in range(n_generators):
        cluster = draw(st.sampled_from(["bg", "be"]))
        nbytes = draw(st.integers(100, 60_000))
        count = draw(st.integers(0, 8))
        relayed = draw(st.booleans())
        generators.append((cluster, nbytes, count, relayed))
    buffer_bytes = draw(st.sampled_from([300, 1000, 8192, 64 * 1024]))
    double = draw(st.booleans())
    return generators, buffer_bytes, double


@given(spec=random_graph_spec())
@settings(max_examples=40, deadline=None)
def test_object_conservation(spec):
    generators, buffer_bytes, double = spec
    env = Environment(EnvironmentConfig())
    graph = QueryGraph()
    sink_inputs = []
    expected = 0
    for k, (cluster, nbytes, count, relayed) in enumerate(generators):
        gen_id = f"gen{k}"
        graph.add(SPDef(gen_id, cluster, plan_op("gen_array", nbytes, count)))
        expected += count
        upstream = gen_id
        if relayed:
            relay_id = f"relay{k}"
            graph.add(
                SPDef(relay_id, "bg", plan_op("relay", children=(plan_input(gen_id),)))
            )
            upstream = relay_id
        sink_inputs.append(plan_input(upstream))
    merged = plan_op("merge", children=tuple(sink_inputs))
    graph.add(SPDef("sink", "bg", plan_op("count", children=(merged,))))
    graph.root_plan = plan_input("sink")

    settings_ = ExecutionSettings(mpi_buffer_bytes=buffer_bytes, double_buffering=double)
    report = ClientManager(env).execute(graph, settings_)

    # Conservation: every generated object is counted exactly once.
    assert report.scalar_result == expected
    # Byte accounting: the sink received exactly what the generators sent
    # toward it (relays re-send, so compare per-edge stats).
    sink_stats = report.rp_statistics["sink"]
    upstream_ids = [
        f"relay{k}" if relayed else f"gen{k}"
        for k, (_, _, _, relayed) in enumerate(generators)
    ]
    sent_to_sink = sum(
        stream.bytes
        for rp_id in upstream_ids
        for stream in report.rp_statistics[rp_id].sent
        if stream.stream_id.endswith("->sink")
    )
    assert sink_stats.bytes_received == sent_to_sink
    # All nodes released.
    for node in env.bluegene.compute_nodes:
        assert node.running_processes == 0
