"""Integration: the partition-scaling extension (small configuration).

The paper's open question (section 5) about larger partitions, answered at
test scale: the shared 1 Gbps uplink pins the best topology regardless of
I/O-node count, and a faster uplink lets the spread-host topology scale.
"""

import pytest

from repro.core.experiments import run_scaling_study

PARTITIONS = (((4, 4, 2), 4), ((4, 4, 4), 8))


@pytest.fixture(scope="module")
def study():
    return run_scaling_study(partitions=PARTITIONS, repeats=2, array_count=3)


class TestScalingExtension:
    def test_one_gig_uplink_is_the_ceiling(self, study):
        q5_small = study.at(5, 4, 1.0).mbps
        q5_large = study.at(5, 8, 1.0).mbps
        assert q5_large == pytest.approx(q5_small, rel=0.1)
        assert 850 <= q5_small <= 960

    def test_spread_hosts_degrade_at_one_gig(self, study):
        assert study.at(6, 8, 1.0).mbps < study.at(6, 4, 1.0).mbps

    def test_fast_uplink_lets_spread_hosts_scale(self, study):
        assert study.at(6, 8, 10.0).mbps > 1.6 * study.at(6, 4, 10.0).mbps

    def test_single_host_pinned_by_its_nic(self, study):
        assert study.at(5, 8, 10.0).mbps < 1.1 * study.at(5, 4, 10.0).mbps

    def test_table_renders(self, study):
        table = study.format_table()
        assert "io-nodes" in table and "Q5@1G" in table
