"""Integration: the Figure 8 merge-topology shape (scaled down).

Asserted claims, from the paper's Figure 8 discussion and section 5:

1. "The streaming bandwidth depends highly on the compute nodes to which
   the RPs are allocated" — balanced beats sequential, "up to 60% better";
2. "The benefit of double buffering is less significant than that of
   point-to-point communication";
3. "buffers smaller than 10K are much slower for stream merging than for
   point-to-point communication".
"""

import pytest

from repro.core.experiments import run_fig6, run_fig8

BUFFER_SIZES = (1000, 10_000, 200_000)


@pytest.fixture(scope="module")
def fig8():
    return run_fig8(buffer_sizes=BUFFER_SIZES, repeats=2, target_buffers=250)


@pytest.fixture(scope="module")
def fig6_reference():
    return run_fig6(buffer_sizes=(1000,), repeats=2, target_buffers=250)


class TestFig8Shape:
    def test_balanced_beats_sequential_at_large_buffers(self, fig8):
        for double in (False, True):
            sequential = {p.buffer_bytes: p.mbps for p in fig8.curve(False, double)}
            balanced = {p.buffer_bytes: p.mbps for p in fig8.curve(True, double)}
            assert balanced[200_000] > 1.4 * sequential[200_000]

    def test_advantage_is_roughly_sixty_percent(self, fig8):
        assert 1.4 <= fig8.balanced_advantage(double_buffering=True) <= 1.9

    def test_topologies_converge_at_small_buffers(self, fig8):
        sequential = {p.buffer_bytes: p.mbps for p in fig8.curve(False, True)}
        balanced = {p.buffer_bytes: p.mbps for p in fig8.curve(True, True)}
        assert balanced[1000] == pytest.approx(sequential[1000], rel=0.15)

    def test_merging_wants_large_buffers(self, fig8):
        """Merge bandwidth at 1 KB is far below its large-buffer level."""
        balanced = {p.buffer_bytes: p.mbps for p in fig8.curve(True, True)}
        assert balanced[1000] < 0.6 * balanced[200_000]

    def test_small_buffers_slower_for_merge_than_p2p(self, fig8, fig6_reference):
        p2p_at_1k = fig6_reference.optimum(True).mbps
        merge_at_1k = fig8.curve(True, True)[0].mbps
        assert merge_at_1k < 0.6 * p2p_at_1k

    def test_double_buffering_less_significant_than_p2p(self, fig8, fig6_reference):
        """Paper observation 2: the double-buffer gain for merging is smaller
        than for point-to-point (compare at the largest buffer)."""
        merge_single = {p.buffer_bytes: p.mbps for p in fig8.curve(True, False)}
        merge_double = {p.buffer_bytes: p.mbps for p in fig8.curve(True, True)}
        merge_gain = merge_double[200_000] / merge_single[200_000]
        fig6_full = run_fig6(buffer_sizes=(200_000,), repeats=2, target_buffers=250)
        p2p_gain = fig6_full.optimum(True).mbps / fig6_full.optimum(False).mbps
        assert merge_gain < p2p_gain

    def test_table_renders(self, fig8):
        table = fig8.format_table()
        assert "Figure 8" in table
        assert "seq/double" in table
