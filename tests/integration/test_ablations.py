"""Integration: the ablation experiments (scaled down).

These close the loop on the paper's conclusions: the measurements exist to
improve the node selection algorithm, and the right buffer size depends on
the communication pattern.
"""

import pytest

from repro.core.experiments import (
    run_buffer_choice_ablation,
    run_node_selection_ablation,
)


@pytest.fixture(scope="module")
def node_selection():
    return run_node_selection_ablation(stream_counts=(4,), repeats=2, count=4)


class TestNodeSelectionAblation:
    def test_knowledge_based_placement_wins(self, node_selection):
        """Placement informed by the paper's observations (co-locate be
        senders, spread BG psets) beats next-available placement by a wide
        margin on the inbound workload."""
        assert node_selection.improvement(4) > 2.0

    def test_table_renders(self, node_selection):
        table = node_selection.format_table()
        assert "naive" in table and "knowledge" in table


class TestBufferChoiceAblation:
    @pytest.fixture(scope="class")
    def ablation(self):
        return run_buffer_choice_ablation(
            buffer_sizes=(1000, 2000, 100_000), repeats=2
        )

    def test_patterns_want_different_buffers(self, ablation):
        """Section 5: 'the optimal stream buffer size for MPI communication
        inside BlueGene was highly dependent on whether point-to-point or
        merging stream communication was performed'."""
        assert ablation.optimal_buffer("p2p") == 1000
        assert ablation.optimal_buffer("merge") >= 10_000

    def test_table_renders(self, ablation):
        table = ablation.format_table()
        assert "optimal" in table
