"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.engine.objects import END_OF_STREAM
from repro.engine.settings import ExecutionSettings
from repro.hardware.environment import Environment, EnvironmentConfig
from repro.sim import Simulator, Store


@pytest.fixture
def sim():
    """A fresh simulator."""
    return Simulator()


@pytest.fixture
def env():
    """A fresh default environment (paper-shaped: 4 psets, 4 be nodes)."""
    return Environment(EnvironmentConfig())


@pytest.fixture
def quiet_env():
    """An environment with zero cost jitter, for exact-time assertions."""
    config = EnvironmentConfig()
    params = config.params.with_overrides(jitter=0.0)
    return Environment(
        EnvironmentConfig(
            bluegene=config.bluegene,
            backend_nodes=config.backend_nodes,
            frontend_nodes=config.frontend_nodes,
            params=params,
            seed=0,
        )
    )


def drain_store(sim: Simulator, store: Store, limit: int = 10_000):
    """Run a collector process returning all objects up to END_OF_STREAM."""

    def collector():
        items = []
        for _ in range(limit):
            obj = yield store.get()
            if obj is END_OF_STREAM:
                return items
            items.append(obj)
        raise AssertionError("collector hit its safety limit")

    return sim.process(collector(), name="test-collector")


def feed_store(sim: Simulator, store: Store, items):
    """Run a producer process pushing items then END_OF_STREAM."""

    def producer():
        for item in items:
            yield store.put(item)
        yield store.put(END_OF_STREAM)

    return sim.process(producer(), name="test-producer")


def run_operator(env: Environment, operator_cls, inputs, settings=None, **kwargs):
    """Instantiate and run one operator on the default environment.

    ``inputs`` is a list of item-lists, one per input stream.  Returns the
    list of objects the operator emitted before END_OF_STREAM.
    """
    from repro.engine.context import ExecutionContext

    settings = settings or ExecutionSettings()
    node = env.node("bg", 0)
    ctx = ExecutionContext(env, node, settings)
    in_stores = [Store(env.sim, name=f"in{i}") for i in range(len(inputs))]
    out_store = Store(env.sim, name="out")
    operator = operator_cls(ctx, in_stores, out_store, **kwargs)
    for store, items in zip(in_stores, inputs):
        feed_store(env.sim, store, items)
    op_process = env.sim.process(operator.run(), name="op-under-test")
    # Re-raise the operator's own exception rather than the kernel's
    # unhandled-failure wrapper, so tests can assert on error types.
    op_process._add_callback(lambda event: setattr(event, "_defused", True))
    collector = drain_store(env.sim, out_store)
    env.sim.run()
    if op_process.triggered and not op_process.ok:
        raise op_process.value
    assert collector.ok, f"collector failed: {collector.value!r}"
    return collector.value
