"""Unit tests for cluster coordinators and the client manager."""

import pytest

from repro.coordinator.allocation import AllocationSequence
from repro.coordinator.client_manager import ROOT_RP_ID, ClientManager
from repro.coordinator.coordinator import (
    BG_POLL_INTERVAL,
    ClusterCoordinator,
    CoordinatorRegistry,
)
from repro.coordinator.graph import QueryGraph, SPDef
from repro.engine.settings import ExecutionSettings
from repro.engine.sqep import plan_input, plan_op
from repro.util.errors import AllocationError, QuerySemanticError


class TestCoordinator:
    def test_start_rp_places_and_reserves(self, env):
        coordinator = ClusterCoordinator(env, "bg")
        rp = coordinator.start_rp("x", plan_op("iota", 1, 3), ExecutionSettings())
        assert rp.node.cluster == "bg"
        assert not rp.node.is_available  # CNK: one process per node

    def test_allocation_sequence_honoured(self, env):
        coordinator = ClusterCoordinator(env, "bg")
        rp = coordinator.start_rp(
            "x", plan_op("iota", 1, 3), ExecutionSettings(), AllocationSequence(7)
        )
        assert rp.node.index == 7

    def test_bluegene_pays_polling_latency(self, env):
        registry = CoordinatorRegistry(env)
        assert registry["bg"].registration_latency == BG_POLL_INTERVAL
        assert registry["be"].registration_latency == 0.0
        assert registry["fe"].registration_latency == 0.0

    def test_unknown_cluster(self, env):
        registry = CoordinatorRegistry(env)
        with pytest.raises(AllocationError):
            registry["gpu"]


class TestQueryGraph:
    def test_duplicate_sp_rejected(self):
        graph = QueryGraph()
        graph.add(SPDef("a", "bg", plan_op("iota", 1, 2)))
        with pytest.raises(QuerySemanticError):
            graph.add(SPDef("a", "bg", plan_op("iota", 1, 2)))

    def test_validate_needs_root(self):
        with pytest.raises(QuerySemanticError):
            QueryGraph().validate()

    def test_validate_rejects_unknown_producer(self):
        graph = QueryGraph()
        graph.root_plan = plan_input("ghost")
        with pytest.raises(QuerySemanticError, match="ghost"):
            graph.validate()

    def test_validate_rejects_missing_plan(self):
        graph = QueryGraph()
        graph.add(SPDef("a", "bg"))
        graph.root_plan = plan_input("a")
        with pytest.raises(QuerySemanticError, match="no compiled subquery"):
            graph.validate()

    def test_producers_of(self):
        graph = QueryGraph()
        plan = plan_op("merge", children=(plan_input("x"), plan_input("y")))
        assert graph.producers_of(plan) == ["x", "y"]


class TestClientManager:
    def _simple_graph(self):
        graph = QueryGraph()
        graph.add(SPDef("a", "bg", plan_op("iota", 1, 5), AllocationSequence(1)))
        graph.add(
            SPDef(
                "b",
                "bg",
                plan_op("sum", children=(plan_input("a"),)),
                AllocationSequence(0),
            )
        )
        graph.root_plan = plan_input("b")
        return graph

    def test_executes_and_reports(self, env):
        report = ClientManager(env).execute(self._simple_graph())
        assert report.result == [15]
        assert report.scalar_result == 15
        assert report.duration > 0
        assert report.rp_placements["a"] == "bg:1"
        assert report.rp_placements["b"] == "bg:0"
        assert ROOT_RP_ID in report.rp_placements
        assert report.torus_bytes > 0

    def test_scalar_result_needs_single_object(self, env):
        graph = QueryGraph()
        graph.add(SPDef("a", "bg", plan_op("iota", 1, 3), AllocationSequence(1)))
        graph.root_plan = plan_input("a")
        report = ClientManager(env).execute(graph)
        assert report.result == [1, 2, 3]
        with pytest.raises(Exception):
            _ = report.scalar_result

    def test_nodes_released_after_execution(self, env):
        ClientManager(env).execute(self._simple_graph())
        assert env.node("bg", 0).is_available
        assert env.node("bg", 1).is_available

    def test_allocation_failure_surfaces(self, env):
        graph = self._simple_graph()
        env.node("bg", 1).acquire()  # the explicit target is busy
        with pytest.raises(AllocationError):
            ClientManager(env).execute(graph)
