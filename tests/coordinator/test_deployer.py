"""The deployer lifecycle: place -> deploy -> run -> teardown.

The tentpole guarantees under test:

* **Compile once, deploy anywhere**: a :class:`DeploymentPlan` compiled
  once (even pickled across a process boundary) deploys onto any fresh
  environment with results *bit-identical* to the legacy
  compile-per-execute session path, across fig6/fig8/fig15 query shapes.
* **Teardown returns the environment**: after ``teardown()`` every node
  slot is back in the CNDBs and the round-robin cursors are rewound, so
  redeploying the same plan neither raises nor shifts placement.
"""

import pickle

import pytest

from repro.coordinator.allocation import UrrSpec
from repro.coordinator.deployer import (
    CostBasedPlacement,
    Deployer,
    SelectorPlacement,
)
from repro.core.experiments.fig6 import point_to_point_query, scaled_workload
from repro.core.experiments.fig8 import merge_query
from repro.core.experiments.fig15 import inbound_query
from repro.engine.settings import ExecutionSettings
from repro.hardware.environment import Environment, EnvironmentConfig
from repro.scsql.plan import compile_plan
from repro.scsql.session import SCSQSession
from repro.util.errors import QueryExecutionError, QuerySemanticError


def _sample_points():
    """One representative query per reproduced figure (small workloads)."""
    array_bytes, count = scaled_workload(1000, target_buffers=30)
    settings = ExecutionSettings(mpi_buffer_bytes=1000, double_buffering=True)
    return [
        ("fig6", point_to_point_query(array_bytes, count), settings),
        ("fig8", merge_query(array_bytes, count, 1, 4), settings),
        ("fig15-q2", inbound_query(2, 2, 50_000, 2), ExecutionSettings()),
        ("fig15-q5", inbound_query(5, 3, 50_000, 2), ExecutionSettings()),
    ]


def _fresh_env(seed: int = 0) -> Environment:
    return Environment(EnvironmentConfig(seed=seed))


class TestCompileOnceEquivalence:
    """Plan-based execution is bit-identical to the session path."""

    @pytest.mark.parametrize("label,query,settings", _sample_points())
    def test_deployer_matches_session_execute(self, label, query, settings):
        plan = compile_plan(query, settings=settings)  # compiled ONCE
        for seed in (0, 1):
            legacy = SCSQSession(_fresh_env(seed), settings).execute(query, settings)
            fresh = Deployer(_fresh_env(seed)).run(plan)
            assert fresh.result == legacy.result
            assert fresh.duration == legacy.duration  # float-exact
            assert fresh.rp_placements == legacy.rp_placements
            assert fresh.bytes_sent == legacy.bytes_sent

    def test_plan_survives_pickling(self):
        _, query, settings = _sample_points()[2]
        plan = compile_plan(query, settings=settings)
        thawed = pickle.loads(pickle.dumps(plan))
        original = Deployer(_fresh_env()).run(plan)
        roundtripped = Deployer(_fresh_env()).run(thawed)
        assert roundtripped.result == original.result
        assert roundtripped.duration == original.duration
        assert roundtripped.rp_placements == original.rp_placements

    def test_pickling_preserves_shared_spec_instances(self):
        # The spv() members share ONE spec instance; pickle must keep that
        # sharing or urr() placement would shift after a process hop.
        plan = compile_plan(inbound_query(2, 3, 50_000, 2))
        thawed = pickle.loads(pickle.dumps(plan))
        specs = [
            sp.allocation
            for sp in thawed.graph.sps.values()
            if isinstance(sp.allocation, UrrSpec)
        ]
        assert len(specs) >= 2
        assert len({id(spec) for spec in specs}) == 1

    def test_plan_is_reusable_across_deploys(self):
        _, query, settings = _sample_points()[0]
        plan = compile_plan(query, settings=settings)
        first = Deployer(_fresh_env()).run(plan)
        second = Deployer(_fresh_env()).run(plan)
        assert second.duration == first.duration
        assert second.rp_placements == first.rp_placements

    def test_plan_requires_select_query(self):
        with pytest.raises(QuerySemanticError):
            compile_plan(
                "create function f() -> stream as select extract(a) from sp a "
                "where a=sp(gen_array(10,1), 'bg');"
            )


class TestTeardown:
    def _occupied_nodes(self, env: Environment) -> int:
        return sum(
            node.running_processes
            for cluster in env.cluster_names()
            for node in env.cndb(cluster).all_nodes()
        )

    def test_teardown_returns_nodes_to_cndb(self):
        _, query, settings = _sample_points()[0]
        plan = compile_plan(query, settings=settings)
        env = _fresh_env()
        deployer = Deployer(env)
        deployment = deployer.deploy(deployer.place(plan))
        assert self._occupied_nodes(env) > 0
        deployment.run()
        deployment.teardown()
        assert deployment.torn_down
        assert self._occupied_nodes(env) == 0

    def test_redeploy_after_teardown_is_stable(self):
        # urr('be') placements come off the CNDB round-robin cursor, which
        # teardown() must rewind: the redeployment then neither raises nor
        # shifts a single placement.
        plan = compile_plan(inbound_query(2, 3, 50_000, 2))
        env = _fresh_env()
        deployer = Deployer(env)
        first = deployer.deploy(deployer.place(plan)).run()
        deployer.teardown()
        second = deployer.deploy(deployer.place(plan)).run()
        deployer.teardown()
        assert second.rp_placements == first.rp_placements
        assert second.duration > 0.0  # jitter RNG advanced; only placement is pinned
        assert self._occupied_nodes(env) == 0

    def test_teardown_without_running_releases_nodes(self):
        _, query, settings = _sample_points()[0]
        plan = compile_plan(query, settings=settings)
        env = _fresh_env()
        deployer = Deployer(env)
        deployer.deploy(deployer.place(plan))  # deployed, never run
        deployer.teardown()
        assert self._occupied_nodes(env) == 0
        # The environment is immediately reusable.
        report = Deployer(env).run(plan)
        assert report.duration > 0.0

    def test_teardown_is_idempotent(self):
        _, query, settings = _sample_points()[0]
        plan = compile_plan(query, settings=settings)
        env = _fresh_env()
        deployer = Deployer(env)
        deployment = deployer.deploy(deployer.place(plan))
        deployment.run()
        deployment.teardown()
        deployment.teardown()
        deployer.teardown()  # sweeps the (already torn down) deployment
        assert self._occupied_nodes(env) == 0

    def test_successive_deployments_on_one_environment(self):
        # The env hosts successive deployments: run, teardown, run again.
        _, query, settings = _sample_points()[0]
        plan = compile_plan(query, settings=settings)
        env = _fresh_env()
        deployer = Deployer(env)
        reports = []
        for _ in range(3):
            deployment = deployer.deploy(deployer.place(plan))
            reports.append(deployment.run())
            deployment.teardown()
        assert reports[1].rp_placements == reports[0].rp_placements
        assert reports[2].rp_placements == reports[0].rp_placements


class TestPlacementStrategies:
    def test_selector_placement_names_its_selector(self):
        assert SelectorPlacement().name == "selector:naive"

    def test_cost_based_placement_matches_optimized_session(self):
        query = point_to_point_query(*scaled_workload(1000, target_buffers=30))
        settings = ExecutionSettings(mpi_buffer_bytes=1000, double_buffering=True)
        legacy = SCSQSession(_fresh_env(), settings).execute(
            query, settings, optimize=True
        )
        plan = compile_plan(query, settings=settings)
        report = Deployer(_fresh_env()).run(plan, strategy=CostBasedPlacement())
        assert report.rp_placements == legacy.rp_placements
        assert report.duration == legacy.duration

    def test_strategy_leaves_source_plan_pristine(self):
        query = point_to_point_query(*scaled_workload(1000, target_buffers=30))
        plan = compile_plan(query)
        before = {
            sp_id: sp.allocation for sp_id, sp in plan.graph.sps.items()
        }
        deployer = Deployer(_fresh_env())
        deployer.place(plan, CostBasedPlacement())
        after = {sp_id: sp.allocation for sp_id, sp in plan.graph.sps.items()}
        assert after == before  # the placer pinned a COPY, not the plan


class TestDeploymentStartFinish:
    def test_finish_before_simulation_raises(self):
        _, query, settings = _sample_points()[0]
        plan = compile_plan(query, settings=settings)
        deployer = Deployer(_fresh_env())
        deployment = deployer.deploy(deployer.place(plan))
        deployment.start()
        with pytest.raises(QueryExecutionError, match="never finished"):
            deployment.finish()

    def test_double_start_raises(self):
        _, query, settings = _sample_points()[0]
        plan = compile_plan(query, settings=settings)
        deployer = Deployer(_fresh_env())
        deployment = deployer.deploy(deployer.place(plan))
        deployment.start()
        with pytest.raises(QueryExecutionError, match="already started"):
            deployment.start()

    def test_start_run_finish_matches_plain_run(self):
        _, query, settings = _sample_points()[0]
        plan = compile_plan(query, settings=settings)
        plain = Deployer(_fresh_env()).run(plan)
        env = _fresh_env()
        deployer = Deployer(env)
        deployment = deployer.deploy(deployer.place(plan))
        deployment.start()
        env.sim.run()
        report = deployment.finish()
        assert report.result == plain.result
        assert report.duration == plain.duration
        assert report.rp_placements == plain.rp_placements
