"""Property tests: kill/replan cycles keep the environment deployable.

The fault-injection harness leans on ``Deployer`` teardown + replacement
deployment; these properties pin the invariants it needs: however many
times a deployment's compute node is killed and the plan replanned around
the damage, no node is ever over-subscribed (the static verifier stays
clean of SCSQ103/SCSQ201), replacements never land on failed nodes, and a
final teardown returns the environment to a fully deployable state.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.query_stream import SMOKE_SCALE, build_query
from repro.coordinator.deployer import Deployer
from repro.hardware.environment import BLUEGENE, Environment, EnvironmentConfig
from repro.hardware.node import NodeKind
from repro.scsql.plan import compile_plan

# Source-free deck query: deployable without external receiver registration.
QUERY_TEXT = build_query("grep", 0, SMOKE_SCALE).query


def _bg_compute_nodes(deployment):
    return sorted(
        {
            rp.node.index
            for rp in deployment.rps.values()
            if rp.node.cluster == BLUEGENE and rp.node.kind is NodeKind.BG_COMPUTE
        }
    )


def _assert_no_oversubscription(env):
    for cndb in env.cndbs.values():
        for node in cndb.all_nodes():
            limit = node.capabilities.max_processes
            if limit is not None:
                assert node.running_processes <= limit, node.node_id
            assert node.running_processes >= 0, node.node_id


@given(seed=st.integers(0, 2**16), kills=st.integers(1, 5))
@settings(max_examples=10, deadline=None)
def test_kill_replan_cycles_never_oversubscribe(seed, kills):
    env = Environment(EnvironmentConfig())
    deployer = Deployer(env)
    plan = compile_plan(QUERY_TEXT)
    deployment = deployer.deploy(deployer.place(plan), verify="warn")
    rng = random.Random(seed)
    killed = []
    for cycle in range(kills):
        victims = _bg_compute_nodes(deployment)
        assert victims, "the deck query always occupies a compute node"
        index = rng.choice(victims)
        deployer.teardown(deployment)
        env.bluegene.node(index).fail()
        killed.append(index)

        # The static verifier must agree the replan is sound before it runs.
        report = deployer.verify(plan)
        codes = {d.code for d in report.diagnostics}
        assert not codes & {"SCSQ103", "SCSQ201"}, report.format_text()
        assert report.ok()

        deployment = deployer.deploy(
            deployer.place(plan), rp_prefix=f"r{cycle}/", verify="warn"
        )
        for rp in deployment.rps.values():
            assert not rp.node.failed, f"replacement placed on dead {rp.node.node_id}"
        assert not set(_bg_compute_nodes(deployment)) & set(killed)
        _assert_no_oversubscription(env)

    # Run the survivor to completion: the environment still works end to end.
    report = deployment.run()
    assert report.result == [build_query("grep", 0, SMOKE_SCALE).expected_result]

    # After the final teardown every slot is back and a fresh deploy works.
    deployer.teardown(deployment)
    _assert_no_oversubscription(env)
    final = deployer.verify(plan)
    assert final.ok(), final.format_text()


@given(seed=st.integers(0, 2**16))
@settings(max_examples=10, deadline=None)
def test_teardown_is_idempotent_and_restores_cursors(seed):
    env = Environment(EnvironmentConfig())
    deployer = Deployer(env)
    plan = compile_plan(QUERY_TEXT)
    cursors = {name: cndb._rr_cursor for name, cndb in env.cndbs.items()}
    deployment = deployer.deploy(deployer.place(plan), verify="warn")
    rng = random.Random(seed)
    for _ in range(rng.randint(1, 3)):
        deployer.teardown(deployment)
    _assert_no_oversubscription(env)
    for name, cndb in env.cndbs.items():
        assert cndb._rr_cursor == cursors[name]
    for node in (n for c in env.cndbs.values() for n in c.all_nodes()):
        assert node.running_processes == 0
