"""Property tests: allocation sequences under arbitrary node load."""

from hypothesis import given, settings
from hypothesis import strategies as st

import pytest

from repro.coordinator.allocation import (
    AllocationSequence,
    NaiveSelector,
    pset_round_robin_sequence,
    urr_sequence,
)
from repro.hardware.bluegene import BlueGene
from repro.hardware.cndb import ComputeNodeDatabase
from repro.util.errors import AllocationError


def make_cndb(busy_mask):
    cndb = ComputeNodeDatabase("bg", BlueGene().compute_nodes)
    for index, busy in enumerate(busy_mask):
        if busy:
            cndb.node(index).acquire()
    return cndb


@given(busy_mask=st.lists(st.booleans(), min_size=32, max_size=32))
@settings(max_examples=100, deadline=None)
def test_sequence_selection_is_sound(busy_mask):
    """Whatever nodes are busy, a list sequence either returns an available
    node *from the sequence* or raises AllocationError."""
    cndb = make_cndb(busy_mask)
    sequence_nodes = [3, 17, 5, 29, 11]
    sequence = AllocationSequence(list(sequence_nodes))
    try:
        node = sequence.select(cndb)
    except AllocationError:
        assert all(busy_mask[i] for i in sequence_nodes)
        return
    assert node.index in sequence_nodes
    assert node.is_available
    # It is the *first* available node of the sequence.
    for candidate in sequence_nodes:
        if candidate == node.index:
            break
        assert busy_mask[candidate]


@given(busy_mask=st.lists(st.booleans(), min_size=32, max_size=32))
@settings(max_examples=100, deadline=None)
def test_urr_finds_any_available_node(busy_mask):
    cndb = make_cndb(busy_mask)
    sequence = urr_sequence(cndb)
    if all(busy_mask):
        with pytest.raises(AllocationError):
            sequence.select(cndb)
        return
    node = sequence.select(cndb)
    assert node.is_available


@given(
    busy_mask=st.lists(st.booleans(), min_size=32, max_size=32),
    placements=st.integers(1, 8),
)
@settings(max_examples=60, deadline=None)
def test_psetrr_is_sound_under_load(busy_mask, placements):
    """psetrr placements are always free, distinct nodes from the sequence.

    (psetrr is a *static* preference order — "the first available node in
    the allocation sequence" — so under arbitrary pre-existing load it does
    not guarantee maximal pset coverage, only soundness.)
    """
    cndb = make_cndb(busy_mask)
    total_free = 32 - sum(busy_mask)
    sequence = pset_round_robin_sequence(cndb)
    chosen = []
    for _ in range(min(placements, total_free)):
        node = sequence.select(cndb)
        assert node.is_available
        node.acquire()
        chosen.append(node.index)
    assert len(set(chosen)) == len(chosen)  # CNK: one RP per node
    assert all(not busy_mask[index] for index in chosen)


def test_psetrr_spreads_on_an_idle_partition():
    """On an idle partition, successive placements land in successive psets
    — the guarantee Queries 5/6 rely on."""
    cndb = make_cndb([False] * 32)
    sequence = pset_round_robin_sequence(cndb)
    chosen = []
    for _ in range(6):
        node = sequence.select(cndb)
        node.acquire()
        chosen.append(node.index // 8)
    assert chosen == [0, 1, 2, 3, 0, 1]


@given(busy_mask=st.lists(st.booleans(), min_size=32, max_size=32))
@settings(max_examples=60, deadline=None)
def test_naive_selector_sound(busy_mask):
    cndb = make_cndb(busy_mask)
    selector = NaiveSelector()
    if all(busy_mask):
        with pytest.raises(AllocationError):
            selector.select(cndb)
    else:
        assert selector.select(cndb).is_available
