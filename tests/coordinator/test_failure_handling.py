"""Failure injection: operator crashes must surface promptly, not deadlock."""

import pytest

from repro.coordinator.allocation import AllocationSequence
from repro.coordinator.client_manager import ClientManager
from repro.coordinator.graph import QueryGraph, SPDef
from repro.engine.operators.base import Operator
from repro.engine.operators.registry import register_operator
from repro.engine.sqep import plan_input, plan_op
from repro.util.errors import QueryExecutionError


class ExplodingOperator(Operator):
    """Emits a few objects, then raises."""

    name = "explode_for_tests"
    arity = (0, 0)

    def __init__(self, ctx, inputs, output, after: int = 3):
        super().__init__(ctx, inputs, output)
        self.after = after

    def run(self):
        for i in range(self.after):
            yield from self.emit(i)
        raise QueryExecutionError("injected operator failure")


register_operator(ExplodingOperator)


class TestOperatorCrash:
    def _graph(self):
        graph = QueryGraph()
        graph.add(SPDef("boom", "bg", plan_op("explode_for_tests"), AllocationSequence(1)))
        graph.add(
            SPDef(
                "agg",
                "bg",
                plan_op("count", children=(plan_input("boom"),)),
                AllocationSequence(0),
            )
        )
        graph.root_plan = plan_input("agg")
        return graph

    def test_crash_surfaces_as_the_original_error(self, env):
        with pytest.raises(QueryExecutionError, match="injected operator failure"):
            ClientManager(env).execute(self._graph())

    def test_crash_does_not_hang_the_simulation(self, env):
        """The downstream count never receives EOS; without failure
        propagation this would be reported as a deadlock."""
        try:
            ClientManager(env).execute(self._graph())
        except QueryExecutionError:
            pass
        # Simulated time advanced only as far as the crash.
        assert env.sim.now < 1.0

    def test_environment_still_usable_for_diagnosis(self, env):
        try:
            ClientManager(env).execute(self._graph())
        except QueryExecutionError:
            pass
        # The crashed query's placements are still recorded on the nodes.
        assert env.node("bg", 1).running_processes >= 0
