"""Unit tests for allocation sequences and node selectors."""

import pytest

from repro.coordinator.allocation import (
    AllocationSequence,
    KnowledgeBasedSelector,
    NaiveSelector,
    in_pset_sequence,
    pset_round_robin_sequence,
    urr_sequence,
)
from repro.hardware.bluegene import BlueGene
from repro.hardware.cndb import ComputeNodeDatabase
from repro.hardware.linux_cluster import LinuxCluster, LinuxClusterConfig
from repro.util.errors import AllocationError


@pytest.fixture
def bg_cndb():
    return ComputeNodeDatabase("bg", BlueGene().compute_nodes)


@pytest.fixture
def be_cndb():
    return ComputeNodeDatabase("be", LinuxCluster(LinuxClusterConfig("be", 4)).nodes)


class TestAllocationSequence:
    def test_constant_selects_exactly_that_node(self, bg_cndb):
        sequence = AllocationSequence(5)
        assert sequence.select(bg_cndb).index == 5

    def test_constant_busy_node_fails(self, bg_cndb):
        bg_cndb.node(5).acquire()
        with pytest.raises(AllocationError, match="busy"):
            AllocationSequence(5).select(bg_cndb)

    def test_constant_reusable_for_multiprocess_nodes(self, be_cndb):
        sequence = AllocationSequence(1)
        # The paper's Query 1: every back-end SP lands on node 1.
        for _ in range(5):
            node = sequence.select(be_cndb)
            assert node.index == 1
            node.acquire()

    def test_list_skips_busy_nodes(self, bg_cndb):
        bg_cndb.node(3).acquire()
        sequence = AllocationSequence([3, 4, 5])
        assert sequence.select(bg_cndb).index == 4

    def test_exhausted_sequence_fails(self, bg_cndb):
        bg_cndb.node(3).acquire()
        with pytest.raises(AllocationError, match="no available node"):
            AllocationSequence([3]).select(bg_cndb)

    def test_sequence_is_consumed_statefully(self, bg_cndb):
        sequence = AllocationSequence([3, 4, 5])
        first = sequence.select(bg_cndb)
        first.acquire()
        second = sequence.select(bg_cndb)
        assert (first.index, second.index) == (3, 4)

    def test_unknown_node_fails(self, bg_cndb):
        with pytest.raises(AllocationError, match="does not exist"):
            AllocationSequence(99).select(bg_cndb)

    def test_boolean_rejected(self):
        with pytest.raises(AllocationError):
            AllocationSequence(True)


class TestAllocationQueries:
    def test_urr_hands_out_successive_nodes(self, be_cndb):
        sequence = urr_sequence(be_cndb)
        picks = []
        for _ in range(6):
            node = sequence.select(be_cndb)
            picks.append(node.index)
        # Linux nodes accept many processes, so urr cycles the cluster.
        assert picks == [0, 1, 2, 3, 0, 1]

    def test_urr_never_available_fails(self, bg_cndb):
        for node in bg_cndb.all_nodes():
            node.acquire()
        with pytest.raises(AllocationError):
            urr_sequence(bg_cndb).select(bg_cndb)

    def test_in_pset_confines_selection(self, bg_cndb):
        sequence = in_pset_sequence(bg_cndb, 1)
        picks = []
        for _ in range(3):
            node = sequence.select(bg_cndb)
            node.acquire()
            picks.append(node.index)
        assert picks == [8, 9, 10]

    def test_psetrr_spreads_over_psets(self, bg_cndb):
        machine = BlueGene()
        sequence = pset_round_robin_sequence(bg_cndb)
        picks = []
        for _ in range(5):
            node = sequence.select(bg_cndb)
            node.acquire()
            picks.append(machine.pset_of(node.index))
        assert picks == [0, 1, 2, 3, 0]


class TestSelectors:
    def test_naive_takes_next_available(self, bg_cndb):
        selector = NaiveSelector()
        first = selector.select(bg_cndb)
        first.acquire()
        second = selector.select(bg_cndb)
        assert (first.index, second.index) == (0, 1)

    def test_naive_full_cluster_fails(self, be_cndb):
        # Linux nodes are never full, so test on a tiny BlueGene instead.
        cndb = ComputeNodeDatabase("bg", BlueGene().compute_nodes)
        for node in cndb.all_nodes():
            node.acquire()
        with pytest.raises(AllocationError):
            NaiveSelector().select(cndb)

    def test_knowledge_colocates_on_linux(self, be_cndb):
        selector = KnowledgeBasedSelector()
        first = selector.select(be_cndb)
        first.acquire()
        second = selector.select(be_cndb)
        assert second is first  # co-locate until saturation

    def test_knowledge_spreads_psets_on_bluegene(self, bg_cndb):
        machine = BlueGene()
        selector = KnowledgeBasedSelector()
        psets = []
        for _ in range(4):
            node = selector.select(bg_cndb)
            node.acquire()
            psets.append(machine.pset_of(node.index))
        assert psets == [0, 1, 2, 3]
