"""Integration tests: the cost-based placer rediscovers the paper's topologies."""

import pytest

from repro.coordinator import ClientManager
from repro.core.experiments.ablations import automatic_inbound_query
from repro.engine import ExecutionSettings
from repro.hardware import Environment
from repro.optimizer import CostBasedPlacer
from repro.scsql import SCSQSession
from repro.scsql.compiler import QueryCompiler
from repro.scsql.parser import parse_query

MERGE_QUERY = """
select extract(c)
from sp a, sp b, sp c
where c=sp(count(merge({a,b})), 'bg')
and a=sp(gen_array(200000,10), 'bg')
and b=sp(gen_array(200000,10), 'bg');
"""


def compile_graph(env, text):
    return QueryCompiler(env).compile_select(parse_query(text))


class TestMergePlacement:
    def test_rediscovers_the_balanced_topology(self):
        """The placer puts both producers one hop from the merger over
        independent channels — Figure 7B, derived from the cost model."""
        env = Environment()
        graph = compile_graph(env, MERGE_QUERY)
        settings = ExecutionSettings(mpi_buffer_bytes=100_000)
        assignment = CostBasedPlacer(env, settings).place(graph)
        by_role = {sp_id.split("@")[0]: index for sp_id, index in assignment.items()}
        consumer = by_role["c"]
        for producer in (by_role["a"], by_role["b"]):
            assert env.torus.hop_count(producer, consumer) == 1

    def test_placement_improves_measured_bandwidth(self):
        settings = ExecutionSettings(mpi_buffer_bytes=100_000)

        def run(optimize):
            env = Environment()
            graph = compile_graph(env, MERGE_QUERY)
            if optimize:
                CostBasedPlacer(env, settings).place(graph)
            report = ClientManager(env).execute(graph, settings)
            return 2 * 200_000 * 10 * 8 / report.duration / 1e6

        assert run(True) > 1.1 * run(False)


class TestInboundPlacement:
    def test_rediscovers_the_query5_topology(self):
        """Senders co-located on one back-end host, receivers spread over
        all psets — the paper's best inbound configuration."""
        env = Environment()
        graph = compile_graph(env, automatic_inbound_query(4, 3_000_000, 5))
        assignment = CostBasedPlacer(env, ExecutionSettings()).place(graph)
        senders = {v for k, v in assignment.items() if k.startswith("a[")}
        receivers = [v for k, v in assignment.items() if k.startswith("b[")]
        assert len(senders) == 1  # co-located
        psets = {env.bluegene.pset_of(node) for node in receivers}
        assert psets == {0, 1, 2, 3}  # spread

    def test_measured_speedup_over_naive(self):
        def run(optimize):
            env = Environment()
            graph = compile_graph(env, automatic_inbound_query(4, 3_000_000, 4))
            if optimize:
                CostBasedPlacer(env, ExecutionSettings()).place(graph)
            report = ClientManager(env).execute(graph, ExecutionSettings())
            return 4 * 3_000_000 * 4 * 8 / report.duration / 1e6

        assert run(True) > 5 * run(False)


class TestSessionIntegration:
    def test_optimize_flag_places_unallocated_sps(self):
        session = SCSQSession()
        report = session.execute(
            automatic_inbound_query(4, 1_000_000, 3), optimize=True
        )
        receivers = [
            int(node.split(":")[1])
            for sp, node in report.rp_placements.items()
            if sp.startswith("b[")
        ]
        psets = {node // 8 for node in receivers}
        assert psets == {0, 1, 2, 3}

    def test_explicit_allocations_win(self):
        """User topologies are never overridden (the paper's contract)."""
        session = SCSQSession()
        report = session.execute(
            "select extract(b) from sp a, sp b "
            "where b=sp(count(extract(a)), 'bg', 5) "
            "and a=sp(gen_array(100000,3), 'bg', 9);",
            optimize=True,
        )
        assert report.rp_placements["a@1"] == "bg:9"
        assert report.rp_placements["b@2"] == "bg:5"

    def test_predicted_bandwidth_exposed(self):
        env = Environment()
        graph = compile_graph(env, MERGE_QUERY)
        placer = CostBasedPlacer(env, ExecutionSettings(mpi_buffer_bytes=100_000))
        assignment = placer.place(graph)
        predicted = placer.predicted_bandwidth(graph, assignment)
        assert predicted > 0


class TestIncrementalReplacement:
    """replace_one + measured calibration: the adaptive runtime's query."""

    def _placed(self):
        env = Environment()
        graph = compile_graph(env, MERGE_QUERY)
        placer = CostBasedPlacer(env, ExecutionSettings(mpi_buffer_bytes=100_000))
        assignment = placer.place(graph)
        return env, graph, placer, assignment

    def test_replace_one_scores_a_single_sp_move(self):
        env, graph, placer, assignment = self._placed()
        victim = next(sp_id for sp_id in graph.sps if sp_id.startswith("b"))
        target, score = placer.replace_one(graph, victim, assignment)
        assert score > 0.0
        # Re-placing one SP with the rest fixed cannot beat the full
        # refinement pass that produced this assignment.
        assert score <= placer.predicted_bandwidth(graph, assignment)
        # The fixed assignment is input, not state: no mutation.
        assert assignment[victim] is not None

    def test_replace_one_excludes_occupied_nodes(self):
        """Candidates come from the live CNDB: a node holding a running RP
        — including the victim's own — is never proposed, so against a live
        deployment the answer is always a genuine move."""
        env = Environment()
        graph = compile_graph(env, MERGE_QUERY)
        placer = CostBasedPlacer(env, ExecutionSettings(mpi_buffer_bytes=100_000))
        assignment = placer.place(graph)
        victim = next(sp_id for sp_id in graph.sps if sp_id.startswith("b"))
        # Simulate the deployment holding its nodes.
        for index in assignment.values():
            env.bluegene.node(index).acquire()
        try:
            target, _ = placer.replace_one(graph, victim, assignment)
        finally:
            for index in assignment.values():
                env.bluegene.node(index).release()
        assert target not in set(assignment.values())

    def test_unknown_victim_raises(self):
        from repro.util.errors import AllocationError

        env, graph, placer, assignment = self._placed()
        with pytest.raises(AllocationError, match="unknown stream process"):
            placer.replace_one(graph, "ghost@9", assignment)

    def test_bounds_are_labelled_by_family(self):
        env, graph, placer, assignment = self._placed()
        bounds = placer.predicted_bounds(graph, assignment)
        # An all-BlueGene merge constrains only the torus family.
        assert set(bounds) == {"torus"}
        assert bounds["torus"] == placer.predicted_bandwidth(graph, assignment)

        inbound_env = Environment()
        inbound_graph = compile_graph(
            inbound_env, automatic_inbound_query(2, 500_000, 3)
        )
        inbound_placer = CostBasedPlacer(inbound_env, ExecutionSettings())
        inbound_assignment = inbound_placer.place(inbound_graph)
        assert "inbound" in inbound_placer.predicted_bounds(
            inbound_graph, inbound_assignment
        )

    def test_measured_factor_scales_the_binding_bound(self):
        """A measured/predicted factor of 0.5 on the binding family must
        halve the objective — the cost model now speaks measured units."""
        env, graph, placer, assignment = self._placed()
        baseline = placer.predicted_bandwidth(graph, assignment)
        calibrated = placer.predicted_bandwidth(
            graph, assignment, {"torus": 0.5}
        )
        assert calibrated == pytest.approx(0.5 * baseline)
        # A factor on an absent family changes nothing.
        assert placer.predicted_bandwidth(
            graph, assignment, {"inbound": 0.5}
        ) == baseline

    def test_calibration_preserves_the_argmax_under_uniform_factors(self):
        """Scaling every candidate by one family factor cannot change which
        node wins, only the score — so a stale-but-uniform calibration
        degrades gracefully."""
        env, graph, placer, assignment = self._placed()
        victim = next(sp_id for sp_id in graph.sps if sp_id.startswith("b"))
        plain_target, plain_score = placer.replace_one(graph, victim, assignment)
        scaled_target, scaled_score = placer.replace_one(
            graph, victim, assignment, {"torus": 0.25}
        )
        assert scaled_target == plain_target
        assert scaled_score == pytest.approx(0.25 * plain_score)

    def test_prediction_tracks_the_simulated_bandwidth(self):
        """The calibration regression: on the placed merge topology the
        analytic objective must stay within the cost model's committed
        tolerance of the simulated rate, keeping measured/predicted factors
        near 1 when nothing is wrong."""
        settings = ExecutionSettings(mpi_buffer_bytes=100_000)
        env = Environment()
        graph = compile_graph(env, MERGE_QUERY)
        placer = CostBasedPlacer(env, settings)
        assignment = placer.place(graph)
        predicted = placer.predicted_bandwidth(graph, assignment)
        report = ClientManager(env).execute(graph, settings)
        simulated = 2 * 200_000 * 10 / report.duration  # bytes/s
        assert predicted == pytest.approx(simulated, rel=0.15)
