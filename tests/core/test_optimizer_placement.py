"""Integration tests: the cost-based placer rediscovers the paper's topologies."""


from repro.coordinator import ClientManager
from repro.core.experiments.ablations import automatic_inbound_query
from repro.engine import ExecutionSettings
from repro.hardware import Environment
from repro.optimizer import CostBasedPlacer
from repro.scsql import SCSQSession
from repro.scsql.compiler import QueryCompiler
from repro.scsql.parser import parse_query

MERGE_QUERY = """
select extract(c)
from sp a, sp b, sp c
where c=sp(count(merge({a,b})), 'bg')
and a=sp(gen_array(200000,10), 'bg')
and b=sp(gen_array(200000,10), 'bg');
"""


def compile_graph(env, text):
    return QueryCompiler(env).compile_select(parse_query(text))


class TestMergePlacement:
    def test_rediscovers_the_balanced_topology(self):
        """The placer puts both producers one hop from the merger over
        independent channels — Figure 7B, derived from the cost model."""
        env = Environment()
        graph = compile_graph(env, MERGE_QUERY)
        settings = ExecutionSettings(mpi_buffer_bytes=100_000)
        assignment = CostBasedPlacer(env, settings).place(graph)
        by_role = {sp_id.split("@")[0]: index for sp_id, index in assignment.items()}
        consumer = by_role["c"]
        for producer in (by_role["a"], by_role["b"]):
            assert env.torus.hop_count(producer, consumer) == 1

    def test_placement_improves_measured_bandwidth(self):
        settings = ExecutionSettings(mpi_buffer_bytes=100_000)

        def run(optimize):
            env = Environment()
            graph = compile_graph(env, MERGE_QUERY)
            if optimize:
                CostBasedPlacer(env, settings).place(graph)
            report = ClientManager(env).execute(graph, settings)
            return 2 * 200_000 * 10 * 8 / report.duration / 1e6

        assert run(True) > 1.1 * run(False)


class TestInboundPlacement:
    def test_rediscovers_the_query5_topology(self):
        """Senders co-located on one back-end host, receivers spread over
        all psets — the paper's best inbound configuration."""
        env = Environment()
        graph = compile_graph(env, automatic_inbound_query(4, 3_000_000, 5))
        assignment = CostBasedPlacer(env, ExecutionSettings()).place(graph)
        senders = {v for k, v in assignment.items() if k.startswith("a[")}
        receivers = [v for k, v in assignment.items() if k.startswith("b[")]
        assert len(senders) == 1  # co-located
        psets = {env.bluegene.pset_of(node) for node in receivers}
        assert psets == {0, 1, 2, 3}  # spread

    def test_measured_speedup_over_naive(self):
        def run(optimize):
            env = Environment()
            graph = compile_graph(env, automatic_inbound_query(4, 3_000_000, 4))
            if optimize:
                CostBasedPlacer(env, ExecutionSettings()).place(graph)
            report = ClientManager(env).execute(graph, ExecutionSettings())
            return 4 * 3_000_000 * 4 * 8 / report.duration / 1e6

        assert run(True) > 5 * run(False)


class TestSessionIntegration:
    def test_optimize_flag_places_unallocated_sps(self):
        session = SCSQSession()
        report = session.execute(
            automatic_inbound_query(4, 1_000_000, 3), optimize=True
        )
        receivers = [
            int(node.split(":")[1])
            for sp, node in report.rp_placements.items()
            if sp.startswith("b[")
        ]
        psets = {node // 8 for node in receivers}
        assert psets == {0, 1, 2, 3}

    def test_explicit_allocations_win(self):
        """User topologies are never overridden (the paper's contract)."""
        session = SCSQSession()
        report = session.execute(
            "select extract(b) from sp a, sp b "
            "where b=sp(count(extract(a)), 'bg', 5) "
            "and a=sp(gen_array(100000,3), 'bg', 9);",
            optimize=True,
        )
        assert report.rp_placements["a@1"] == "bg:9"
        assert report.rp_placements["b@2"] == "bg:5"

    def test_predicted_bandwidth_exposed(self):
        env = Environment()
        graph = compile_graph(env, MERGE_QUERY)
        placer = CostBasedPlacer(env, ExecutionSettings(mpi_buffer_bytes=100_000))
        assignment = placer.place(graph)
        predicted = placer.predicted_bandwidth(graph, assignment)
        assert predicted > 0
