"""Tests for CSV export of experiment results."""

import csv

import pytest

from repro.core.experiments import run_fig6, run_fig15
from repro.core.export import fig6_rows, fig15_rows, write_csv


@pytest.fixture(scope="module")
def fig6_result():
    return run_fig6(buffer_sizes=(1000, 5000), repeats=1, target_buffers=200)


class TestRows:
    def test_fig6_rows_schema(self, fig6_result):
        rows = fig6_rows(fig6_result)
        assert len(rows) == 4  # 2 sizes x 2 modes
        assert set(rows[0]) == {
            "buffer_bytes", "double_buffering", "mbps_mean", "mbps_std", "repeats",
        }
        assert all(r["mbps_mean"] > 0 for r in rows)

    def test_fig15_rows_sorted(self):
        result = run_fig15(stream_counts=(2, 1), queries=(5,), repeats=1, array_count=2)
        rows = fig15_rows(result)
        assert [r["n_streams"] for r in rows] == [1, 2]


class TestWriteCsv:
    def test_roundtrip(self, fig6_result, tmp_path):
        path = write_csv(tmp_path / "fig6.csv", fig6_rows(fig6_result))
        with path.open() as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == 4
        assert float(rows[0]["mbps_mean"]) > 0

    def test_empty_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            write_csv(tmp_path / "empty.csv", [])


class TestOtherRows:
    def test_fig8_rows(self):
        from repro.core.experiments import run_fig8
        from repro.core.export import fig8_rows

        result = run_fig8(buffer_sizes=(1000,), repeats=1, target_buffers=150)
        rows = fig8_rows(result)
        assert len(rows) == 4  # 2 selections x 2 modes
        assert {r["node_selection"] for r in rows} == {"balanced", "sequential"}

    def test_scaling_rows(self):
        from repro.core.experiments.scaling import ScalingPoint, ScalingStudy
        from repro.core.export import scaling_rows
        from repro.core.measurement import BandwidthResult
        from repro.util.stats import summarize

        study = ScalingStudy(
            points=[
                ScalingPoint(5, 4, 1.0, BandwidthResult(summarize([900.0]), 1)),
                ScalingPoint(6, 4, 1.0, BandwidthResult(summarize([700.0]), 1)),
            ]
        )
        rows = scaling_rows(study)
        assert [r["query"] for r in rows] == [5, 6]
        assert rows[0]["io_nodes"] == 4
