"""Smoke tests of the scale figure (tiny shapes; the real run is BENCH)."""

import pytest

from repro.core.experiments.scale import (
    ScaleResult,
    _scaled_defaults,
    run_scale,
    scale_stream_query,
)
from repro.scsql.plan import compile_plan


class TestScaledDefaults:
    def test_full_shape_gets_the_headline_workload(self):
        assert _scaled_defaults((16, 16, 16)) == (4096, 1024)

    def test_smoke_shape_scales_down_with_the_node_count(self):
        streams, queries = _scaled_defaults((8, 8, 8))
        assert streams == 512
        assert queries == 128

    def test_tiny_shape_keeps_a_concurrency_floor(self):
        streams, queries = _scaled_defaults((4, 4, 2))
        assert streams == 256
        assert queries == 16


class TestScaleQuery:
    def test_query_compiles_and_is_index_free(self):
        text = scale_stream_query(1000, 2)
        assert "'bg'" in text
        assert "0" not in text.split("gen_array")[0]  # no node indices
        plan = compile_plan(text)
        assert plan is not None


class TestRunScale:
    @pytest.fixture(scope="class")
    def result(self):
        # One shared tiny run: 4x4x2 torus, a handful of streams/queries.
        return run_scale(
            shape=(4, 4, 2), streams=32, ticks=5, queries=4,
            kernel_repeats=1,
        )

    def test_result_shape_and_counts(self, result):
        assert isinstance(result, ScaleResult)
        assert result.shape == (4, 4, 2)
        assert result.kernel_streams == 32
        assert result.kernel_events == 32 * 5
        assert result.mqs_queries == 4
        assert result.kernel_events_per_sec > 0
        assert result.mqs_mbps > 0

    def test_metrics_names_and_figure(self, result):
        assert result.figure == "scale[torus=4x4x2]"
        metrics = result.metrics()
        assert set(metrics) == {
            "scale[torus=4x4x2]/events_per_sec",
            "scale[torus=4x4x2]/wall_s",
            "scale[torus=4x4x2]/mqs_mbps",
        }
        assert metrics["scale[torus=4x4x2]/wall_s"] == pytest.approx(
            result.kernel_wall_s + result.mqs_wall_s
        )

    def test_route_memo_stayed_bounded(self, result):
        assert result.route_entries <= 16_384
        assert result.route_memo_bytes < 32 * 1024 * 1024

    def test_table_mentions_the_workload(self, result):
        table = result.format_table()
        assert "4x4x2 torus" in table
        assert "32 compute nodes" in table
        assert "route memo" in table

    def test_simulated_portion_is_deterministic(self):
        """Same seed, same shape: the MQS bandwidth is bit-identical."""
        kwargs = dict(
            shape=(4, 4, 2), streams=8, ticks=2, queries=3, kernel_repeats=1
        )
        first = run_scale(**kwargs)
        second = run_scale(**kwargs)
        assert first.mqs_mbps == second.mqs_mbps
        assert first.mqs_events == second.mqs_events
