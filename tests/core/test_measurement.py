"""Unit tests for the bandwidth-measurement harness."""

import pytest

from repro.core.measurement import measure_query_bandwidth
from repro.engine.settings import ExecutionSettings

QUERY = (
    "select extract(b) from sp a, sp b "
    "where b=sp(count(extract(a)), 'bg', 0) "
    "and a=sp(gen_array(100000,5), 'bg', 1);"
)
PAYLOAD = 100_000 * 5


class TestMeasureQueryBandwidth:
    def test_repeats_and_summary(self):
        result = measure_query_bandwidth(QUERY, PAYLOAD, repeats=3)
        assert len(result.mbps.samples) == 3
        assert len(result.reports) == 3
        assert result.mean_mbps > 0
        assert result.payload_bytes == PAYLOAD

    def test_each_repeat_is_an_independent_environment(self):
        result = measure_query_bandwidth(QUERY, PAYLOAD, repeats=3)
        durations = [r.duration for r in result.reports]
        # Jitter seeds differ, so runs are close but not identical.
        assert len(set(durations)) > 1
        assert result.mbps.relative_std < 0.05

    def test_base_seed_controls_reproducibility(self):
        first = measure_query_bandwidth(QUERY, PAYLOAD, repeats=2, base_seed=7)
        second = measure_query_bandwidth(QUERY, PAYLOAD, repeats=2, base_seed=7)
        assert first.mbps.samples == second.mbps.samples

    def test_settings_are_applied(self):
        small = measure_query_bandwidth(
            QUERY, PAYLOAD, settings=ExecutionSettings(mpi_buffer_bytes=200), repeats=1
        )
        tuned = measure_query_bandwidth(
            QUERY, PAYLOAD, settings=ExecutionSettings(mpi_buffer_bytes=1000), repeats=1
        )
        assert tuned.mean_mbps > small.mean_mbps

    def test_invalid_repeats(self):
        with pytest.raises(ValueError):
            measure_query_bandwidth(QUERY, PAYLOAD, repeats=0)

    def test_prepare_hook_runs(self):
        calls = []
        measure_query_bandwidth(
            QUERY, PAYLOAD, repeats=2, prepare=lambda session: calls.append(session)
        )
        assert len(calls) == 2
        assert calls[0] is not calls[1]

    def test_str_rendering(self):
        result = measure_query_bandwidth(QUERY, PAYLOAD, repeats=1)
        assert "Mbps" in str(result)
