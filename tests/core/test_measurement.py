"""Unit tests for the bandwidth-measurement harness."""

import math

import pytest

from repro.core.measurement import measure_query_bandwidth
from repro.engine.settings import ExecutionSettings
from repro.obs import Instrumentation
from repro.obs.tracer import NULL_TRACER

QUERY = (
    "select extract(b) from sp a, sp b "
    "where b=sp(count(extract(a)), 'bg', 0) "
    "and a=sp(gen_array(100000,5), 'bg', 1);"
)
PAYLOAD = 100_000 * 5


class TestMeasureQueryBandwidth:
    def test_repeats_and_summary(self):
        result = measure_query_bandwidth(QUERY, PAYLOAD, repeats=3)
        assert len(result.mbps.samples) == 3
        assert len(result.reports) == 3
        assert result.mean_mbps > 0
        assert result.payload_bytes == PAYLOAD

    def test_each_repeat_is_an_independent_environment(self):
        result = measure_query_bandwidth(QUERY, PAYLOAD, repeats=3)
        durations = [r.duration for r in result.reports]
        # Jitter seeds differ, so runs are close but not identical.
        assert len(set(durations)) > 1
        assert result.mbps.relative_std < 0.05

    def test_base_seed_controls_reproducibility(self):
        first = measure_query_bandwidth(QUERY, PAYLOAD, repeats=2, base_seed=7)
        second = measure_query_bandwidth(QUERY, PAYLOAD, repeats=2, base_seed=7)
        assert first.mbps.samples == second.mbps.samples

    def test_settings_are_applied(self):
        small = measure_query_bandwidth(
            QUERY, PAYLOAD, settings=ExecutionSettings(mpi_buffer_bytes=200), repeats=1
        )
        tuned = measure_query_bandwidth(
            QUERY, PAYLOAD, settings=ExecutionSettings(mpi_buffer_bytes=1000), repeats=1
        )
        assert tuned.mean_mbps > small.mean_mbps

    def test_invalid_repeats(self):
        with pytest.raises(ValueError):
            measure_query_bandwidth(QUERY, PAYLOAD, repeats=0)

    def test_prepare_hook_runs(self):
        calls = []
        measure_query_bandwidth(
            QUERY, PAYLOAD, repeats=2, prepare=lambda session: calls.append(session)
        )
        assert len(calls) == 2
        assert calls[0] is not calls[1]

    def test_str_rendering(self):
        result = measure_query_bandwidth(QUERY, PAYLOAD, repeats=1)
        assert "Mbps" in str(result)

    def test_single_repeat_statistics_are_finite(self):
        """repeats=1 must not produce NaN std or a divide-by-zero."""
        result = measure_query_bandwidth(QUERY, PAYLOAD, repeats=1)
        assert len(result.mbps.samples) == 1
        assert result.mbps.std == 0.0
        assert result.mbps.relative_std == 0.0
        assert math.isfinite(result.mean_mbps) and result.mean_mbps > 0
        assert result.observations == []  # unobserved by default


class TestObservedMeasurement:
    def test_one_instrumentation_per_repeat(self):
        created = []

        def factory(k):
            obs = Instrumentation(tracer=NULL_TRACER)
            created.append((k, obs))
            return obs

        result = measure_query_bandwidth(
            QUERY, PAYLOAD, repeats=3, obs_factory=factory
        )
        assert [k for k, _obs in created] == [0, 1, 2]
        assert result.observations == [obs for _k, obs in created]
        for obs in result.observations:
            assert obs.snapshot().counter("sim.events_processed") > 0
            assert obs.resource_busy_time("coproc[0]") > 0.0

    def test_report_carries_metrics_snapshot(self):
        result = measure_query_bandwidth(
            QUERY, PAYLOAD, repeats=2,
            obs_factory=lambda k: Instrumentation(tracer=NULL_TRACER),
        )
        for report, obs in zip(result.reports, result.observations):
            assert report.metrics is not None
            assert report.metrics.counter("torus.payload_bytes") == PAYLOAD
            # frozen at the end of the whole simulated run, which spans at
            # least the measured query duration
            assert report.metrics.now >= report.duration

    def test_unobserved_reports_have_no_metrics(self):
        result = measure_query_bandwidth(QUERY, PAYLOAD, repeats=1)
        assert result.reports[0].metrics is None
