"""The parallel sweep executor: determinism, merge order, observation.

The tentpole guarantee under test: fanning a sweep over worker processes
is **bit-identical** to running it serially — same mbps samples, same
flow-latency percentiles — because both paths execute the same
:func:`repro.core.parallel.run_sweep_task` on the same ``(point, seed)``
payloads and merge outcomes in task order, never completion order.
"""

import pytest

from repro.coordinator.deployer import ExecutionReport
from repro.core.experiments.fig6 import point_to_point_query, scaled_workload
from repro.core.experiments.fig15 import inbound_query
from repro.core.measurement import PointSpec, measure_points
from repro.core.parallel import (
    OBSERVE_FLOWS,
    OBSERVE_NONE,
    Deployer,
    SweepExecutor,
    SweepTask,
    run_sweep_task,
)
from repro.engine.settings import ExecutionSettings
from repro.scsql.plan import compile_plan
from repro.util.errors import MeasurementError
from repro.util.stats import percentile


def _small_specs():
    """A tiny fig6 + fig15 subset: fast, but exercises both the intra-BG
    p2p path and the Ethernet-ingress inbound path."""
    array_bytes, count = scaled_workload(1000, target_buffers=40)
    return [
        PointSpec(
            key=("fig6", 1000),
            query=point_to_point_query(array_bytes, count),
            payload_bytes=array_bytes * count,
            settings=ExecutionSettings(mpi_buffer_bytes=1000, double_buffering=True),
        ),
        PointSpec(
            key=("fig15", 5, 2),
            query=inbound_query(5, 2, 100_000, 2),
            payload_bytes=2 * 100_000 * 2,
            settings=ExecutionSettings(),
        ),
    ]


class TestExecutor:
    def test_jobs_must_be_positive(self):
        with pytest.raises(ValueError, match="jobs"):
            SweepExecutor(0)

    def test_outcomes_keep_task_order(self):
        array_bytes, count = scaled_workload(1000, target_buffers=20)
        tasks = [
            SweepTask(
                point_key=f"p{seed}",
                seed=seed,
                query=point_to_point_query(array_bytes, count),
                payload_bytes=array_bytes * count,
            )
            for seed in (3, 1, 2)
        ]
        outcomes = SweepExecutor(jobs=1).run(tasks)
        assert [o.point_key for o in outcomes] == ["p3", "p1", "p2"]
        assert [o.seed for o in outcomes] == [3, 1, 2]

    def test_single_task_runs_inline_even_with_jobs(self):
        array_bytes, count = scaled_workload(1000, target_buffers=20)
        task = SweepTask(
            point_key="only",
            seed=0,
            query=point_to_point_query(array_bytes, count),
            payload_bytes=array_bytes * count,
        )
        (outcome,) = SweepExecutor(jobs=8).run([task])
        assert outcome.report.duration > 0.0

    def test_unobserved_task_has_no_observation(self):
        array_bytes, count = scaled_workload(1000, target_buffers=20)
        outcome = run_sweep_task(
            SweepTask(
                point_key="k",
                seed=0,
                query=point_to_point_query(array_bytes, count),
                payload_bytes=array_bytes * count,
                observe=OBSERVE_NONE,
            )
        )
        assert outcome.observation() is None
        assert outcome.flow_records == []

    def test_observed_task_ships_flow_records(self):
        array_bytes, count = scaled_workload(1000, target_buffers=20)
        outcome = run_sweep_task(
            SweepTask(
                point_key="k",
                seed=0,
                query=point_to_point_query(array_bytes, count),
                payload_bytes=array_bytes * count,
                observe=OBSERVE_FLOWS,
            )
        )
        assert outcome.flow_records
        obs = outcome.observation()
        assert obs is not None
        # Latencies come straight off the shipped records (some records,
        # e.g. EOS markers, carry no measurable latency and are filtered).
        assert obs.flows.latencies()
        assert len(obs.flows.latencies()) <= len(outcome.flow_records)


class TestWorkerPath:
    """run_sweep_task IS the worker: its own guards and plan handling."""

    def test_precompiled_plan_matches_text_compilation(self):
        array_bytes, count = scaled_workload(1000, target_buffers=20)
        query = point_to_point_query(array_bytes, count)
        base = dict(
            point_key="k", seed=0, query=query, payload_bytes=array_bytes * count
        )
        from_text = run_sweep_task(SweepTask(**base))
        from_plan = run_sweep_task(SweepTask(**base, plan=compile_plan(query)))
        assert from_plan.report.duration == from_text.report.duration
        assert from_plan.report.rp_placements == from_text.report.rp_placements

    def test_non_positive_duration_raises(self, monkeypatch):
        # The guard lives in the worker path itself (not just the result
        # assembly), so a degenerate run fails loudly inside the worker.
        monkeypatch.setattr(
            Deployer,
            "run",
            lambda self, plan, strategy=None, settings=None, stop_after=None: (
                ExecutionReport(result=[1], duration=0.0)
            ),
        )
        array_bytes, count = scaled_workload(1000, target_buffers=20)
        task = SweepTask(
            point_key="degenerate",
            seed=0,
            query=point_to_point_query(array_bytes, count),
            payload_bytes=array_bytes * count,
        )
        with pytest.raises(MeasurementError, match="non-positive"):
            run_sweep_task(task)


class TestParallelDeterminism:
    """jobs=1 and jobs=4 must agree bit for bit (acceptance criterion)."""

    def test_parallel_matches_serial_exactly(self):
        specs = _small_specs()
        serial = measure_points(specs, repeats=2, jobs=1, observe=OBSERVE_FLOWS)
        fanned = measure_points(specs, repeats=2, jobs=4, observe=OBSERVE_FLOWS)
        assert set(serial) == set(fanned) == {spec.key for spec in specs}
        for key in serial:
            # Bandwidth samples: identical floats, in identical seed order.
            assert serial[key].mbps.samples == fanned[key].mbps.samples
            assert serial[key].mbps.mean == fanned[key].mbps.mean
            # Flow-latency percentiles: identical floats.
            serial_lat = serial[key].flow_latencies()
            fanned_lat = fanned[key].flow_latencies()
            assert serial_lat == fanned_lat
            assert serial_lat  # the flows observation actually recorded
            for q in (50.0, 95.0):
                assert percentile(serial_lat, q) == percentile(fanned_lat, q)
            # Per-repeat simulated metrics survive the process boundary.
            for left, right in zip(serial[key].reports, fanned[key].reports):
                assert left.duration == right.duration
                assert left.metrics.counter("sim.events_processed") == (
                    right.metrics.counter("sim.events_processed")
                )


class TestFaultedParallelDeterminism:
    """The jobs=1 == jobs=N proof extended to fault-injected runs.

    A faulted repeat adds seeded victim selection, mid-run teardown, and a
    replacement deployment to the pipeline; all of it must still be a pure
    function of the task payload, so fanning repeats over processes cannot
    change a single float of the recovery metrics.
    """

    def test_faulted_repeats_match_serial_exactly(self):
        from repro.bench.faults import FaultTask, run_fault_task
        from repro.bench.query_stream import SMOKE_SCALE

        tasks = [
            FaultTask(seed=seed, streams=2, scenario="kill-node", scale=SMOKE_SCALE)
            for seed in (0, 1)
        ]
        serial = SweepExecutor(jobs=1).map(run_fault_task, tasks)
        fanned = SweepExecutor(jobs=2).map(run_fault_task, tasks)
        assert len(serial) == len(fanned) == len(tasks)
        for left, right in zip(serial, fanned):
            assert left.results_ok and right.results_ok
            # Float-exact agreement on every recovery metric.
            assert left.fault_time == right.fault_time
            assert left.recovery_s == right.recovery_s
            assert left.bandwidth_retained == right.bandwidth_retained
            assert left.per_stream_mbps == right.per_stream_mbps
            assert left.healthy_makespan == right.healthy_makespan
            assert left.faulted_makespan == right.faulted_makespan
            # And on the injected failure itself.
            assert left.failed_nodes == right.failed_nodes
            assert left.replacements == right.replacements

    def test_composite_scenarios_match_serial_exactly(self):
        """Correlated and flapping schedules derive from the healthy
        makespan inside the worker — still a pure function of the task, so
        multi-event composites fan out bit-identically too."""
        from repro.bench.faults import FaultTask, run_fault_task
        from repro.bench.query_stream import SMOKE_SCALE

        tasks = [
            FaultTask(seed=0, streams=2, scenario="correlated", scale=SMOKE_SCALE),
            FaultTask(seed=1, streams=2, scenario="flapping", scale=SMOKE_SCALE),
        ]
        serial = SweepExecutor(jobs=1).map(run_fault_task, tasks)
        fanned = SweepExecutor(jobs=2).map(run_fault_task, tasks)
        for left, right in zip(serial, fanned):
            assert left.results_ok and right.results_ok
            assert left.fault_time == right.fault_time
            assert left.recovery_s == right.recovery_s
            assert left.per_stream_mbps == right.per_stream_mbps
            assert left.faulted_makespan == right.faulted_makespan
            assert left.failed_nodes == right.failed_nodes
            assert left.degraded == right.degraded
            assert left.restored == right.restored
            assert left.replacements == right.replacements
