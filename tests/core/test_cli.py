"""Tests for the command-line interface."""

import pytest

from repro.__main__ import build_parser, main


class TestParser:
    def test_all_subcommands_exist(self):
        parser = build_parser()
        for command in ("fig6", "fig8", "fig15", "ablations", "scaling", "all", "query"):
            args = parser.parse_args(
                [command, "select extract(a) from sp a where a=sp(iota(1,2), 'bg');"]
                if command == "query"
                else [command]
            )
            assert args.command == command

    def test_repeats_and_quick_flags(self):
        args = build_parser().parse_args(["fig6", "--repeats", "7", "--quick"])
        assert args.repeats == 7
        assert args.quick

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestExecution:
    def test_query_subcommand_runs(self, capsys):
        code = main(
            [
                "query",
                "select extract(b) from sp a, sp b "
                "where b=sp(sum(extract(a)), 'bg') and a=sp(iota(1,4), 'bg');",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "result: [10]" in out
        assert "placements:" in out

    def test_query_with_stop(self, capsys):
        code = main(
            [
                "query",
                "--stop-after",
                "0.02",
                "select extract(a) from sp a where a=sp(gen_array(10000,-1), 'bg');",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "(stopped)" in out

    def test_function_definition_via_cli(self, capsys):
        code = main(
            [
                "query",
                "create function f() -> stream as select extract(a) from sp a "
                "where a=sp(iota(1,2), 'bg');",
            ]
        )
        assert code == 0
        assert "function defined" in capsys.readouterr().out

    def test_quick_fig6(self, capsys):
        code = main(["fig6", "--quick", "--repeats", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Figure 6" in out
        assert "optimum: single=1000" in out
