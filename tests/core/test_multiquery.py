"""Concurrent CQ sessions: N plans on one shared environment.

What must hold: every submitted query gets its own rp-prefix namespace
(identical plans stay distinct), one simulator run drives them all, each
reports its own bandwidth, and concurrency through a shared I/O-node
path costs real bandwidth versus the solo baselines.
"""

import pytest

from repro.core.experiments.contention import (
    DEFAULT_SENDERS,
    SHARED_PSET,
    contending_query,
    run_contention_demo,
)
from repro.core.multiquery import MultiQuerySession
from repro.hardware.environment import Environment, EnvironmentConfig
from repro.scsql.plan import compile_plan
from repro.util.errors import QueryExecutionError

#: Small, fast workload shared by the tests.
N, ARRAY_BYTES, COUNT = 2, 50_000, 2
PAYLOAD = N * ARRAY_BYTES * COUNT


def _session() -> MultiQuerySession:
    return MultiQuerySession(Environment(EnvironmentConfig()))


def _plan(sender: int):
    return compile_plan(contending_query(sender, N, ARRAY_BYTES, COUNT))


class TestMultiQuerySession:
    def test_two_concurrent_queries_report_separately(self):
        session = _session()
        session.submit(_plan(1), payload_bytes=PAYLOAD, label="left")
        session.submit(_plan(2), payload_bytes=PAYLOAD, label="right")
        result = session.run()
        session.teardown()
        assert [o.label for o in result.outcomes] == ["left", "right"]
        for outcome in result.outcomes:
            assert outcome.mbps > 0.0
            assert outcome.report.duration > 0.0
            # Reports keep the unprefixed stream-process ids.
            assert all("/" not in rp_id for rp_id in outcome.report.rp_placements)
        # The queries really ran on distinct nodes.
        left, right = result.outcomes
        left_nodes = {
            node
            for rp_id, node in left.report.rp_placements.items()
            if rp_id.startswith("b")
        }
        right_nodes = {
            node
            for rp_id, node in right.report.rp_placements.items()
            if rp_id.startswith("b")
        }
        assert left_nodes and right_nodes
        assert left_nodes.isdisjoint(right_nodes)

    def test_identical_plans_deploy_concurrently(self):
        # The SAME plan object twice: instantiation + rp prefixes keep the
        # deployments (and their stream ids) fully distinct.
        plan = _plan(1)
        session = _session()
        session.submit(plan, payload_bytes=PAYLOAD)
        session.submit(plan, payload_bytes=PAYLOAD)
        result = session.run()
        session.teardown()
        assert [o.label for o in result.outcomes] == ["q0", "q1"]
        assert all(o.mbps > 0.0 for o in result.outcomes)

    def test_duplicate_label_raises(self):
        session = _session()
        session.submit(_plan(1), payload_bytes=PAYLOAD, label="dup")
        with pytest.raises(QueryExecutionError, match="duplicate"):
            session.submit(_plan(2), payload_bytes=PAYLOAD, label="dup")

    def test_run_requires_submissions(self):
        with pytest.raises(QueryExecutionError, match="no queries"):
            _session().run()

    def test_session_is_single_shot(self):
        session = _session()
        session.submit(_plan(1), payload_bytes=PAYLOAD)
        session.run()
        with pytest.raises(QueryExecutionError, match="already ran"):
            session.run()
        with pytest.raises(QueryExecutionError, match="already ran"):
            session.submit(_plan(2), payload_bytes=PAYLOAD)

    def test_teardown_frees_every_deployment(self):
        session = _session()
        session.submit(_plan(1), payload_bytes=PAYLOAD)
        session.submit(_plan(2), payload_bytes=PAYLOAD)
        session.run()
        session.teardown()
        occupied = sum(
            node.running_processes
            for cluster in session.env.cluster_names()
            for node in session.env.cndb(cluster).all_nodes()
        )
        assert occupied == 0

    def test_result_lookup_by_label(self):
        session = _session()
        session.submit(_plan(1), payload_bytes=PAYLOAD, label="only")
        result = session.run()
        assert result["only"].label == "only"
        with pytest.raises(KeyError):
            result["missing"]


class TestContentionDemo:
    def test_shared_io_path_costs_bandwidth(self):
        result = run_contention_demo(n=N, array_bytes=ARRAY_BYTES, count=COUNT)
        assert {o.label for o in result.outcomes} == set(DEFAULT_SENDERS)
        for outcome in result.outcomes:
            assert outcome.solo_mbps is not None and outcome.solo_mbps > 0.0
            # Contending for one pset's I/O node must cost real bandwidth.
            assert outcome.interference is not None
            assert outcome.interference < 1.0
            # Receivers really sit inside the contended pset.
            env = Environment(EnvironmentConfig())
            pset_nodes = {
                f"bg:{index}"
                for index in env.cndb("bg").nodes_in_pset(SHARED_PSET)
            }
            receivers = {
                node
                for rp_id, node in outcome.report.rp_placements.items()
                if rp_id.startswith("b[")
            }
            assert receivers <= pset_nodes
        # The table renders both baselines and ratios.
        table = result.format_table()
        assert "ratio" in table and "qA" in table and "qB" in table
