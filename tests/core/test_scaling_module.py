"""Unit tests for the scaling-study module (fast paths only)."""

import pytest

from repro.core.experiments.scaling import ScalingPoint, ScalingStudy, _environment
from repro.core.measurement import BandwidthResult
from repro.util.stats import summarize


def _point(query, io_nodes, uplink, mbps):
    return ScalingPoint(
        query_number=query,
        num_io_nodes=io_nodes,
        uplink_gbps=uplink,
        result=BandwidthResult(mbps=summarize([mbps]), payload_bytes=1),
    )


class TestScalingStudyContainer:
    def test_at_lookup(self):
        study = ScalingStudy(points=[_point(5, 4, 1.0, 900.0)])
        assert study.at(5, 4, 1.0).mbps == 900.0
        with pytest.raises(KeyError):
            study.at(6, 4, 1.0)

    def test_table_handles_missing_cells(self):
        study = ScalingStudy(
            points=[_point(5, 4, 1.0, 900.0), _point(6, 8, 10.0, 2000.0)]
        )
        table = study.format_table()
        assert "Q5@1G" in table and "Q6@10G" in table
        assert "-" in table  # the missing combinations


class TestEnvironmentFactory:
    def test_uplink_override_applied(self):
        config = _environment((4, 4, 2), 4, uplink_gbps=10.0)
        assert config.params.ethernet.uplink_rate == pytest.approx(10e9 / 8)
        # The rest of the cost model is untouched.
        assert config.params.io_node.proxy_rate == pytest.approx(850e6 / 8)

    def test_partition_shape_applied(self):
        config = _environment((4, 4, 4), 8, uplink_gbps=1.0)
        assert config.bluegene.num_psets == 8
        assert config.backend_nodes == 8
