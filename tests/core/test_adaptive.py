"""Adaptive runtime: the observe -> decide -> act loop, end to end.

The tentpole behaviours under test:

* ``adaptive="off"`` (the default) is the classic session, and a zero-
  budget adaptive run is float-identical to the static run — the runtime
  is provably inert until it acts;
* on the Fig 15 contention funnel the controller migrates receivers off
  the shared I/O path and the worst query's bandwidth improves; on the
  Fig 8 sequential selection it moves the generator off the busy
  intermediate route — both with exact results;
* the migration lifecycle itself: snapshot -> quiesce -> re-verify ->
  redeploy -> replay, with rollback when the verifier rejects the move,
  and randomized free-node targets never tripping SCSQ103/201.
"""

import json
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coordinator.deployer import Deployer
from repro.core.adaptive import AdaptiveConfig
from repro.core.experiments.adaptive import (
    ADAPTIVE_POINTS,
    run_adaptive_point,
    write_health_events,
)
from repro.core.experiments.contention import DEFAULT_SENDERS, contending_query
from repro.core.multiquery import MultiQuerySession
from repro.hardware.environment import (
    Environment,
    EnvironmentConfig,
    shared_template,
)
from repro.obs.instrument import Instrumentation
from repro.obs.live import DEFAULT_WINDOW, LiveSampler
from repro.obs.tracer import NULL_TRACER
from repro.scsql.plan import compile_plan
from repro.util.errors import QueryExecutionError

#: Small, fast workload for the session-level tests.
N, ARRAY_BYTES, COUNT = 2, 50_000, 2
PAYLOAD = N * ARRAY_BYTES * COUNT

#: A three-SP merge whose generators the lifecycle tests migrate.
MERGE_QUERY = """
select extract(c)
from sp a, sp b, sp c
where c=sp(count(merge({a,b})), 'bg', 0)
and a=sp(gen_array(100000,4), 'bg', 1)
and b=sp(gen_array(100000,4), 'bg', 2);
"""
MERGE_RESULT = [8]


def _env(seed=0, live=False):
    config = EnvironmentConfig().with_seed(seed)
    obs = (
        Instrumentation(
            tracer=NULL_TRACER, live=LiveSampler(window=DEFAULT_WINDOW)
        )
        if live
        else None
    )
    return Environment(config, obs=obs, template=shared_template(config))


def _run_contention(session: MultiQuerySession):
    for label, sender in DEFAULT_SENDERS.items():
        session.submit(
            compile_plan(contending_query(sender, N, ARRAY_BYTES, COUNT)),
            payload_bytes=PAYLOAD,
            label=label,
        )
    result = session.run()
    session.teardown()
    return result


class TestAdaptiveConfig:
    def test_defaults_are_valid(self):
        config = AdaptiveConfig()
        assert config.budget >= 1
        assert config.improvement_factor > 1.0

    @pytest.mark.parametrize(
        "kwargs,match",
        [
            ({"check_interval": 0.0}, "check_interval"),
            ({"cooldown": -1.0}, "cooldown"),
            ({"budget": -1}, "budget"),
            ({"improvement_factor": 1.0}, "improvement_factor"),
            ({"verify": "maybe"}, "verify"),
            ({"min_factor": 0.0}, "min_factor"),
            ({"min_factor": 2.0, "max_factor": 1.0}, "min_factor"),
        ],
    )
    def test_rejects_invalid_knobs(self, kwargs, match):
        with pytest.raises(QueryExecutionError, match=match):
            AdaptiveConfig(**kwargs)

    def test_session_rejects_unknown_adaptive_mode(self):
        with pytest.raises(QueryExecutionError, match="adaptive"):
            MultiQuerySession(_env(), adaptive="sometimes")

    def test_adaptive_session_needs_live_instrumentation(self):
        session = MultiQuerySession(_env(live=False), adaptive="on")
        session.submit(compile_plan(MERGE_QUERY), payload_bytes=800_000)
        with pytest.raises(QueryExecutionError, match="live-instrumented"):
            session.run()


class TestOffIsBitIdentical:
    def test_explicit_off_equals_default_session(self):
        """adaptive="off" on a live-instrumented env is float-identical to
        the plain default session: the runtime's plumbing (entry records,
        label bookkeeping) must not perturb the classic path."""
        baseline = _run_contention(MultiQuerySession(_env(live=False)))
        off = _run_contention(
            MultiQuerySession(_env(live=True), adaptive="off")
        )
        for before, after in zip(baseline.outcomes, off.outcomes):
            assert after.label == before.label
            assert after.report.result == before.report.result
            assert after.report.duration == before.report.duration
            assert after.mbps == before.mbps
            assert after.report.rp_placements == before.report.rp_placements

    def test_off_path_reports_no_migrations(self):
        result = _run_contention(MultiQuerySession(_env(live=True)))
        assert result.migrations == []
        for outcome in result.outcomes:
            assert outcome.migrations == []
            assert outcome.total_duration is None

    def test_zero_budget_adaptive_run_is_float_identical_to_static(self):
        """The stepped control loop with its budget spent is exactly the
        classic run: stepping the simulator cannot move a single float."""
        comparison = run_adaptive_point(
            "fig15", smoke=True, adaptive_config=AdaptiveConfig(budget=0)
        )
        assert comparison.adaptive.migrations == []
        for static, adaptive in zip(
            comparison.static.outcomes, comparison.adaptive.outcomes
        ):
            assert adaptive.mbps == static.mbps
            assert adaptive.report.duration == static.report.duration
            assert adaptive.report.result == static.report.result


@pytest.fixture(scope="module")
def fig15():
    return run_adaptive_point("fig15", smoke=True)


@pytest.fixture(scope="module")
def fig8():
    return run_adaptive_point("fig8", smoke=True)


class TestFig15Contention:
    def test_adaptive_beats_static(self, fig15):
        assert fig15.speedup > 1.2

    def test_controller_migrated_within_budget(self, fig15):
        records = fig15.adaptive.migrations
        assert 1 <= len(records) <= AdaptiveConfig().budget
        for record in records:
            assert record.ok and not record.rolled_back
            assert "+g" in record.rp_prefix
            assert record.source != record.target
            assert record.snapshot  # live state captured before quiesce

    def test_migrated_queries_produce_exact_results(self, fig15):
        for label in DEFAULT_SENDERS:
            assert (
                fig15.adaptive[label].report.result
                == fig15.static[label].report.result
            )

    def test_migration_actually_moved_the_placement(self, fig15):
        moved = {record.sp_id for record in fig15.adaptive.migrations}
        assert moved
        for record in fig15.adaptive.migrations:
            label = record.rp_prefix.split("+", 1)[0]
            placements = fig15.adaptive[label].report.rp_placements
            assert placements[record.sp_id] == record.target

    def test_recovery_time_is_measured(self, fig15):
        assert fig15.recover_s > 0.0

    def test_health_events_export(self, fig15, tmp_path):
        path = tmp_path / "health.jsonl"
        count = write_health_events(str(path), fig15.adaptive)
        lines = path.read_text().splitlines()
        assert count == len(lines) > 0
        kinds = {json.loads(line)["kind"] for line in lines}
        assert "saturated" in kinds

    def test_format_table_renders_the_comparison(self, fig15):
        table = fig15.format_table()
        assert "speedup" in table and "migration" in table
        for label in DEFAULT_SENDERS:
            assert label in table


class TestFig8BusyIntermediate:
    def test_runtime_rediscovers_the_balanced_route(self, fig8):
        """Sequential selection routes b through a's busy co-processor;
        the one migration the controller makes must beat staying put."""
        assert fig8.speedup > 1.1
        records = fig8.adaptive.migrations
        assert len(records) == 1
        assert records[0].ok and not records[0].rolled_back
        assert records[0].sp_id.startswith("b")

    def test_results_stay_exact(self, fig8):
        assert (
            fig8.adaptive["q8"].report.result
            == fig8.static["q8"].report.result
        )

    def test_detector_kwargs_reach_the_controller(self):
        eager = run_adaptive_point(
            "fig8", smoke=True,
            detector_kwargs={"high": 0.8, "up_windows": 1},
        )
        assert eager.adaptive.migrations
        assert eager.speedup > 1.0

    def test_unknown_point_rejected(self):
        with pytest.raises(QueryExecutionError, match="unknown adaptive"):
            run_adaptive_point("fig99", smoke=True)

    def test_points_registry(self):
        assert set(ADAPTIVE_POINTS) == {"fig15", "fig8"}


class TestMigrationLifecycle:
    #: A long-running neighbour occupying bg:5 while migrations happen.
    OCCUPANT = """
    select extract(b)
    from sp a, sp b
    where b=sp(count(extract(a)), 'bg', 5)
    and a=sp(gen_array(1000000,60), 'bg', 6);
    """

    def _deployed(self):
        env = Environment(EnvironmentConfig())
        deployer = Deployer(env)
        plan = compile_plan(MERGE_QUERY)
        deployment = deployer.deploy(deployer.place(plan), rp_prefix="q/")
        return env, deployer, plan, deployment

    def test_migrate_replays_to_the_exact_result(self):
        env, deployer, plan, deployment = self._deployed()
        deployment.start()
        env.sim.run(until=0.005)
        replacement, record = deployer.migrate(
            deployment, plan, "b@2", 3, rp_prefix="q+g1/"
        )
        assert record.ok and not record.rolled_back
        assert record.source == "bg:2" and record.target == "bg:3"
        assert record.time == pytest.approx(0.005)
        replacement.start()
        env.sim.run()
        report = replacement.finish()
        assert report.result == MERGE_RESULT
        assert report.rp_placements["b@2"] == "bg:3"

    def test_snapshot_captures_live_operator_state(self):
        env, deployer, plan, deployment = self._deployed()
        deployment.start()
        env.sim.run(until=0.005)
        _, record = deployer.migrate(
            deployment, plan, "b@2", 3, rp_prefix="q+g1/"
        )
        assert set(record.snapshot) >= {"a@1", "b@2", "c@3"}
        generator = record.snapshot["b@2"]["operators"][0]
        assert generator["name"] == "gen_array"
        assert generator["sequence"] > 0  # mid-stream, not a cold start

    def test_verifier_rejection_rolls_back(self):
        """Moving onto a node another live deployment holds trips SCSQ201;
        the deployment must come back at its original placement and still
        produce the exact result."""
        env, deployer, plan, deployment = self._deployed()
        occupant = deployer.deploy(
            deployer.place(compile_plan(self.OCCUPANT)), rp_prefix="o/"
        )
        deployment.start()
        occupant.start()
        env.sim.run(until=0.005)
        replacement, record = deployer.migrate(
            deployment, plan, "b@2", 5, rp_prefix="q+g1/"
        )
        assert record.rolled_back and not record.ok
        assert "SCSQ201" in record.detail
        assert replacement.rps["b@2"].node.node_id == "bg:2"
        replacement.start()
        env.sim.run()
        assert replacement.finish().result == MERGE_RESULT
        assert occupant.finish().result == [60]

    def test_noop_and_unknown_targets_rejected(self):
        env, deployer, plan, deployment = self._deployed()
        deployment.start()
        with pytest.raises(QueryExecutionError, match="current node"):
            deployer.migrate(deployment, plan, "b@2", 2, rp_prefix="q+g1/")
        with pytest.raises(QueryExecutionError, match="unknown stream"):
            deployer.migrate(deployment, plan, "z@9", 3, rp_prefix="q+g1/")

    def test_torn_down_deployment_rejected(self):
        env, deployer, plan, deployment = self._deployed()
        deployment.teardown()
        with pytest.raises(QueryExecutionError, match="torn-down"):
            deployer.migrate(deployment, plan, "b@2", 3, rp_prefix="q+g1/")

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_free_targets_always_verify(self, seed):
        """The acceptance property: a migration onto any free compute node
        re-verifies cleanly — no SCSQ103/201, no rollback — and replays to
        the exact result.  (The controller only ever proposes free nodes:
        ``_candidates`` reads the live CNDB.)"""
        env, deployer, plan, deployment = self._deployed()
        deployment.start()
        env.sim.run(until=0.005)
        taken = {rp.node.index for rp in deployment.rps.values()}
        free = [
            node.index
            for node in env.cndb("bg").all_nodes()
            if node.index not in taken
            and not node.failed
            and node.capabilities.can_compute
        ]
        target = random.Random(seed).choice(free)
        replacement, record = deployer.migrate(
            deployment, plan, "b@2", target, rp_prefix="q+g1/"
        )
        assert record.ok and not record.rolled_back
        assert "SCSQ" not in record.detail
        replacement.start()
        env.sim.run()
        assert replacement.finish().result == MERGE_RESULT
