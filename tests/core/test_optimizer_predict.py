"""The analytic predictors must agree with the simulator.

The optimizer reasons entirely with :mod:`repro.optimizer.predict`; if the
predictions drift from what the simulation charges, placement decisions
become wrong silently.  These tests pin prediction-vs-simulation agreement
for all three experiment families.
"""

import pytest

from repro.core.experiments import run_fig6, run_fig8, run_fig15
from repro.net.params import NetworkParams
from repro.optimizer.predict import (
    InboundShape,
    predict_inbound_bandwidth,
    predict_merge_bandwidth,
    predict_p2p_bandwidth,
)
from repro.util.units import MEGA

PARAMS = NetworkParams()
TOLERANCE = 0.15  # relative prediction error allowed


def mbps(bytes_per_second: float) -> float:
    return bytes_per_second * 8 / MEGA


class TestP2pPrediction:
    @pytest.fixture(scope="class")
    def measured(self):
        result = run_fig6(buffer_sizes=(200, 1000, 100_000), repeats=2, target_buffers=800)
        return result

    @pytest.mark.parametrize("buffer_bytes", [200, 1000, 100_000])
    @pytest.mark.parametrize("double", [False, True])
    def test_matches_simulation(self, measured, buffer_bytes, double):
        simulated = {
            p.buffer_bytes: p.mbps for p in measured.curve(double)
        }[buffer_bytes]
        predicted = mbps(predict_p2p_bandwidth(PARAMS, buffer_bytes, double))
        assert predicted == pytest.approx(simulated, rel=TOLERANCE)

    def test_predicts_the_optimum_at_1000(self):
        sizes = (200, 500, 1000, 2000, 100_000)
        for double in (False, True):
            curve = {b: predict_p2p_bandwidth(PARAMS, b, double) for b in sizes}
            assert max(curve, key=curve.get) == 1000

    def test_multi_hop_is_slower(self):
        one = predict_p2p_bandwidth(PARAMS, 100_000, True, hops=1)
        three = predict_p2p_bandwidth(PARAMS, 100_000, True, hops=3)
        assert three < one


class TestMergePrediction:
    @pytest.fixture(scope="class")
    def measured(self):
        return run_fig8(buffer_sizes=(1000, 100_000), repeats=2, target_buffers=500)

    @pytest.mark.parametrize("buffer_bytes", [1000, 100_000])
    @pytest.mark.parametrize("balanced", [False, True])
    def test_matches_simulation(self, measured, buffer_bytes, balanced):
        simulated = {
            p.buffer_bytes: p.mbps for p in measured.curve(balanced, True)
        }[buffer_bytes]
        predicted = mbps(
            predict_merge_bandwidth(
                PARAMS,
                buffer_bytes,
                True,
                through_busy_intermediate=not balanced,
                max_hops=1 if balanced else 2,
            )
        )
        assert predicted == pytest.approx(simulated, rel=TOLERANCE)

    def test_predicts_the_sixty_percent_gap(self):
        balanced = predict_merge_bandwidth(PARAMS, 200_000, True)
        sequential = predict_merge_bandwidth(
            PARAMS, 200_000, True, through_busy_intermediate=True, max_hops=2
        )
        assert 1.4 <= balanced / sequential <= 1.9


class TestInboundPrediction:
    SHAPES = {
        (1, 1): InboundShape(streams=1, hosts=1, io_nodes=1, receivers=1),
        (1, 4): InboundShape(streams=4, hosts=1, io_nodes=1, receivers=1),
        (2, 4): InboundShape(streams=4, hosts=4, io_nodes=1, receivers=1),
        (5, 4): InboundShape(streams=4, hosts=1, io_nodes=4, receivers=4),
        (6, 4): InboundShape(streams=4, hosts=4, io_nodes=4, receivers=4),
    }

    @pytest.fixture(scope="class")
    def measured(self):
        return run_fig15(
            stream_counts=(1, 4), queries=(1, 2, 5, 6), repeats=2, array_count=5
        )

    @pytest.mark.parametrize("query,n", [(1, 1), (1, 4), (2, 4), (5, 4), (6, 4)])
    def test_matches_simulation(self, measured, query, n):
        simulated = measured.at(query, n).mbps
        predicted = mbps(predict_inbound_bandwidth(PARAMS, self.SHAPES[(query, n)]))
        assert predicted == pytest.approx(simulated, rel=TOLERANCE)

    def test_predicts_the_orderings(self):
        values = {
            key: predict_inbound_bandwidth(PARAMS, shape)
            for key, shape in self.SHAPES.items()
        }
        assert values[(1, 4)] > values[(2, 4)]      # co-locate hosts
        assert values[(5, 4)] > values[(6, 4)]      # Q5 beats Q6
        assert values[(5, 4)] > 2 * values[(1, 4)]  # many I/O nodes win

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            InboundShape(streams=2, hosts=3, io_nodes=1, receivers=1)
        with pytest.raises(ValueError):
            InboundShape(streams=2, hosts=1, io_nodes=0, receivers=1)
