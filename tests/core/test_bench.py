"""The perf-regression gate: BENCH JSON round trip, comparison, CLI exit codes."""

import json

import pytest

from repro.__main__ import main
from repro.core.bench import (
    BENCH_FORMAT_VERSION,
    MetricDelta,
    bench_points,
    compare_bench,
    format_comparison,
    higher_is_better,
    is_wall_clock,
    load_bench,
    write_bench,
)


class TestDirection:
    def test_bandwidth_is_higher_better(self):
        assert higher_is_better("fig6[B=200,double]/mbps")

    def test_latency_is_lower_better(self):
        assert not higher_is_better("fig6[B=200,double]/p50_ms")
        assert not higher_is_better("fig15[Q5,n=5]/p95_ms")

    def test_wall_time_is_lower_better(self):
        assert not higher_is_better("fig6/wall_s")

    def test_event_throughput_is_higher_better(self):
        assert higher_is_better("fig6/events_per_sec")

    def test_wall_clock_family(self):
        assert is_wall_clock("fig6/wall_s")
        assert is_wall_clock("fig15/events_per_sec")
        assert not is_wall_clock("fig6[B=200,double]/mbps")
        assert not is_wall_clock("fig6[B=200,double]/p50_ms")


class TestCompare:
    def test_within_tolerance_is_ok(self):
        deltas, new = compare_bench(
            {"a/mbps": 100.0, "a/p50_ms": 10.0},
            {"a/mbps": 96.0, "a/p50_ms": 10.4},
            tolerance_pct=5.0,
        )
        assert not any(d.regressed for d in deltas)
        assert new == []

    def test_bandwidth_drop_regresses(self):
        deltas, _ = compare_bench(
            {"a/mbps": 100.0}, {"a/mbps": 90.0}, tolerance_pct=5.0
        )
        (delta,) = deltas
        assert delta.regressed
        assert delta.delta_pct == pytest.approx(-10.0)

    def test_bandwidth_gain_never_regresses(self):
        deltas, _ = compare_bench(
            {"a/mbps": 100.0}, {"a/mbps": 150.0}, tolerance_pct=5.0
        )
        assert not deltas[0].regressed

    def test_latency_rise_regresses(self):
        deltas, _ = compare_bench(
            {"a/p95_ms": 10.0}, {"a/p95_ms": 11.0}, tolerance_pct=5.0
        )
        assert deltas[0].regressed

    def test_latency_drop_never_regresses(self):
        deltas, _ = compare_bench(
            {"a/p95_ms": 10.0}, {"a/p95_ms": 5.0}, tolerance_pct=5.0
        )
        assert not deltas[0].regressed

    def test_missing_metric_regresses(self):
        deltas, _ = compare_bench({"gone/mbps": 100.0}, {})
        (delta,) = deltas
        assert delta.regressed
        assert "MISSING" in delta.describe()

    def test_new_metric_is_informational(self):
        deltas, new = compare_bench({}, {"fresh/mbps": 1.0})
        assert deltas == []
        assert new == ["fresh/mbps"]
        assert "not in baseline" in format_comparison(deltas, new)

    def test_format_mentions_regression_count(self):
        deltas, new = compare_bench({"a/mbps": 100.0}, {"a/mbps": 50.0})
        text = format_comparison(deltas, new)
        assert "1 regression(s)" in text
        assert "REGRESSED" in text

    def test_wall_clock_gets_wide_tolerance(self):
        # 40% slower wall time: noisy host, not a regression.
        deltas, _ = compare_bench(
            {"fig6/wall_s": 10.0, "fig6/events_per_sec": 1000.0},
            {"fig6/wall_s": 14.0, "fig6/events_per_sec": 600.0},
            tolerance_pct=5.0,
        )
        assert not any(d.regressed for d in deltas)

    def test_wall_clock_collapse_still_regresses(self):
        deltas, _ = compare_bench(
            {"fig6/events_per_sec": 1000.0},
            {"fig6/events_per_sec": 400.0},
            tolerance_pct=5.0,
        )
        (delta,) = deltas
        assert delta.regressed

    def test_zero_baseline_has_no_delta_pct(self):
        delta = MetricDelta("a/mbps", baseline=0.0, current=1.0, tolerance_pct=5.0)
        assert delta.delta_pct is None
        assert not delta.regressed


class TestRoundTrip:
    def test_write_load(self, tmp_path):
        path = tmp_path / "bench.json"
        metrics = {"a/mbps": 123.456, "a/p50_ms": 7.5}
        write_bench(str(path), metrics, repeats=1)
        assert load_bench(str(path)) == metrics
        document = json.loads(path.read_text())
        assert document["version"] == BENCH_FORMAT_VERSION
        assert document["repeats"] == 1

    def test_version_mismatch_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"version": 999, "metrics": {}}))
        with pytest.raises(ValueError, match="version"):
            load_bench(str(path))


class TestBenchPoints:
    def test_sweep_covers_the_three_mechanisms(self):
        names = [p.name for p in bench_points()]
        assert any(n.startswith("fig6[") for n in names)
        assert any("seq" in n for n in names if n.startswith("fig8["))
        assert any("bal" in n for n in names if n.startswith("fig8["))
        assert "fig15[Q5,n=5]" in names
        assert len(names) == len(set(names))


@pytest.mark.slow
class TestBenchCli:
    """End-to-end gate: record a baseline, compare against it, doctor it."""

    def test_no_output_requested_is_usage_error(self, capsys):
        assert main(["bench"]) == 2
        assert "nothing to do" in capsys.readouterr().err.lower()

    def test_only_scale_with_floor(self, tmp_path, capsys):
        """--only restricts the run; --scale-floor gates it absolutely."""
        out = tmp_path / "scale.json"
        assert main([
            "bench", "--only", "scale", "--scale-shape", "4x4x2",
            "--scale-floor", "1", "--out", str(out),
        ]) == 0
        assert "clears the floor" in capsys.readouterr().out
        metrics = json.loads(out.read_text())["metrics"]
        assert set(metrics) == {
            "scale[torus=4x4x2]/events_per_sec",
            "scale[torus=4x4x2]/wall_s",
            "scale[torus=4x4x2]/mqs_mbps",
        }
        # an impossible floor fails the gate
        assert main([
            "bench", "--only", "scale", "--scale-shape", "4x4x2",
            "--scale-floor", "1e15",
        ]) == 1
        assert "below the floor" in capsys.readouterr().out

    def test_only_subsets_the_baseline_comparison(self, tmp_path, capsys):
        """A figure absent from an --only run must not read as missing."""
        baseline = tmp_path / "baseline.json"
        assert main([
            "bench", "--only", "fig15", "--only", "scale",
            "--scale-shape", "4x4x2", "--out", str(baseline),
        ]) == 0
        capsys.readouterr()
        assert main([
            "bench", "--only", "fig15", "--baseline", str(baseline),
        ]) == 0
        out = capsys.readouterr().out
        assert "no regressions" in out
        assert "scale" not in out  # the scale metrics were subset away

    def test_unknown_only_figure_is_usage_error(self, capsys):
        assert main(["bench", "--only", "fig99", "--scale-floor", "1"]) == 2
        assert "unknown --only figure" in capsys.readouterr().err

    def test_bad_scale_shape_is_usage_error(self, capsys):
        assert main([
            "bench", "--only", "scale", "--scale-shape", "16x16",
            "--scale-floor", "1",
        ]) == 2
        assert "torus shape" in capsys.readouterr().err

    def test_record_then_gate_then_doctored_regression(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        assert main(["bench", "--out", str(baseline)]) == 0
        capsys.readouterr()

        # Drop the host-dependent wall-clock family from the recorded
        # baseline: two back-to-back runs on a loaded host can swing a
        # 0.01 s figure past even the wide wall-clock tolerance, and this
        # test pins the *simulated* metrics, which are bit-stable.
        document = json.loads(baseline.read_text())
        document["metrics"] = {
            name: value for name, value in document["metrics"].items()
            if not name.endswith(("/wall_s", "/events_per_sec"))
        }
        baseline.write_text(json.dumps(document))

        # same revision, same seeds: the gate passes
        assert main(["bench", "--baseline", str(baseline)]) == 0
        out = capsys.readouterr().out
        assert "no regressions" in out

        # doctor the baseline so current bandwidth looks like a collapse
        document = json.loads(baseline.read_text())
        name = next(k for k in document["metrics"] if k.endswith("/mbps"))
        document["metrics"][name] *= 10.0
        baseline.write_text(json.dumps(document))
        assert main(["bench", "--baseline", str(baseline)]) == 1
        assert "REGRESSED" in capsys.readouterr().out

        # --warn-only reports but never fails the build
        assert main(["bench", "--baseline", str(baseline), "--warn-only"]) == 0
