"""Fault injection: schedules, scenarios, recovery metrics, and the gate.

The tentpole behaviours under test: a seed-driven schedule kills or
degrades hardware mid-run; the victim streams are torn down, replanned
around the damage, and still produce exact results; recovery time and the
bandwidth dip are measured deterministically; and a regressed recovery
fails the ``repro bench`` gate's exit code.
"""

import pytest

from repro.__main__ import main
from repro.bench.faults import (
    FLAPPING_CYCLES,
    FaultEvent,
    FaultSchedule,
    FaultTask,
    run_fault_task,
    run_faulted_session,
)
from repro.bench.query_stream import SMOKE_SCALE, BenchQuery, build_query
from repro.core.bench import write_bench
from repro.core.experiments.fig15 import inbound_query
from repro.hardware.environment import Environment, EnvironmentConfig
from repro.obs import Instrumentation, profile_flows
from repro.obs.tracer import NULL_TRACER
from repro.util.errors import QueryExecutionError


class TestScheduleValidation:
    def test_unknown_scenario_rejected(self):
        with pytest.raises(QueryExecutionError, match="scenario"):
            FaultEvent(0.1, "unplug-everything")

    def test_negative_time_rejected(self):
        with pytest.raises(QueryExecutionError, match="fault time"):
            FaultEvent(-0.1, "kill-node")

    def test_speedup_factor_rejected(self):
        with pytest.raises(QueryExecutionError, match="factor"):
            FaultEvent(0.1, "degrade-link", factor=0.5)

    def test_events_must_be_time_ordered(self):
        with pytest.raises(QueryExecutionError, match="time-ordered"):
            FaultSchedule(
                events=(FaultEvent(0.2, "kill-node"), FaultEvent(0.1, "kill-node"))
            )

    def test_with_seed_replaces_only_the_seed(self):
        schedule = FaultSchedule.single("kill-node", 0.5, seed=1)
        reseeded = schedule.with_seed(9)
        assert reseeded.seed == 9
        assert reseeded.events == schedule.events

    def test_task_validates_coordinates(self):
        with pytest.raises(QueryExecutionError, match="stream"):
            FaultTask(seed=0, streams=0, scenario="kill-node")
        with pytest.raises(QueryExecutionError, match="at_fraction"):
            FaultTask(seed=0, streams=1, scenario="kill-node", at_fraction=1.5)
        with pytest.raises(QueryExecutionError, match="scenario"):
            FaultTask(seed=0, streams=1, scenario="meteor")

    def test_restore_events_are_schedulable(self):
        # Repair events validate like any other; composites are task-level
        # recipes, not raw events.
        assert FaultEvent(0.2, "restore-uplink").replan
        assert FaultEvent(0.2, "restore-link").factor
        with pytest.raises(QueryExecutionError, match="scenario"):
            FaultEvent(0.2, "correlated")

    def test_composite_scenarios_are_tasks(self):
        assert FaultTask(seed=0, streams=1, scenario="correlated")
        assert FaultTask(seed=0, streams=1, scenario="flapping")

    def test_correlated_schedule_strikes_in_one_window(self):
        schedule = FaultSchedule.correlated(0.4, seed=3, factor=4.0)
        assert [e.scenario for e in schedule.events] == [
            "kill-node", "degrade-uplink",
        ]
        assert all(e.time == 0.4 for e in schedule.events)
        assert all(e.replan for e in schedule.events)

    def test_flapping_schedule_alternates_without_replanning(self):
        schedule = FaultSchedule.flapping(0.1, period=0.02, cycles=3)
        assert len(schedule.events) == 6
        assert [e.scenario for e in schedule.events] == [
            "degrade-uplink", "restore-uplink",
        ] * 3
        assert not any(e.replan for e in schedule.events)
        times = [e.time for e in schedule.events]
        assert times == sorted(times)

    def test_flapping_validates_period_and_cycles(self):
        with pytest.raises(QueryExecutionError, match="period"):
            FaultSchedule.flapping(0.1, period=0.0)
        with pytest.raises(QueryExecutionError, match="cycle"):
            FaultSchedule.flapping(0.1, period=0.02, cycles=0)


class TestScenarios:
    def test_kill_node_recovers_with_exact_results(self):
        outcome = run_fault_task(
            FaultTask(seed=0, streams=2, scenario="kill-node", scale=SMOKE_SCALE)
        )
        assert outcome.results_ok
        assert len(outcome.failed_nodes) == 1
        assert outcome.failed_nodes[0].startswith("bg:")
        assert outcome.replacements
        assert outcome.recovery_s > 0.0
        # The restart costs bandwidth: the faulted run takes longer than
        # the healthy one, never less.
        assert outcome.faulted_makespan > outcome.healthy_makespan
        assert 0.0 < outcome.bandwidth_retained < 1.0
        assert outcome.bandwidth_dip == pytest.approx(
            1.0 - outcome.bandwidth_retained
        )
        assert all(mbps > 0.0 for mbps in outcome.per_stream_mbps.values())

    def test_kill_io_node_fails_the_whole_pset(self):
        outcome = run_fault_task(
            FaultTask(seed=1, streams=2, scenario="kill-io-node", scale=SMOKE_SCALE)
        )
        assert outcome.results_ok
        # A pset of 8 compute nodes plus its I/O node.
        assert len(outcome.failed_nodes) == 9
        assert sum(1 for n in outcome.failed_nodes if n.startswith("bg-io:")) == 1

    def test_degrade_link_slows_a_route(self):
        outcome = run_fault_task(
            FaultTask(seed=1, streams=2, scenario="degrade-link", scale=SMOKE_SCALE)
        )
        assert outcome.results_ok
        assert not outcome.failed_nodes
        assert outcome.degraded
        assert all(d.startswith("torus ") for d in outcome.degraded)

    def test_degrade_uplink_slows_the_ingress(self):
        outcome = run_fault_task(
            FaultTask(seed=1, streams=2, scenario="degrade-uplink", scale=SMOKE_SCALE)
        )
        assert outcome.results_ok
        assert outcome.degraded == ["eth uplink x8"]

    def test_correlated_cascade_replans_around_both_faults(self):
        """kill-node + degrade-uplink in one window: the victim replans
        around the dead node while every stream rides the slowed ingress."""
        outcome = run_fault_task(
            FaultTask(seed=0, streams=2, scenario="correlated", scale=SMOKE_SCALE)
        )
        assert outcome.results_ok
        assert len(outcome.failed_nodes) == 1
        assert "eth uplink x8" in outcome.degraded
        assert outcome.replacements
        assert outcome.faulted_makespan > outcome.healthy_makespan

    def test_flapping_transients_ride_out_without_replanning(self):
        """Degrade/restore cycles never tear a stream down: the run rides
        each dip out in place, and every result stays exact."""
        outcome = run_fault_task(
            FaultTask(seed=1, streams=2, scenario="flapping", scale=SMOKE_SCALE)
        )
        assert outcome.results_ok
        assert not outcome.replacements and not outcome.failed_nodes
        assert len(outcome.degraded) == FLAPPING_CYCLES
        assert len(outcome.restored) == FLAPPING_CYCLES
        assert all("restored" in entry for entry in outcome.restored)
        # Without a replacement there is no recovery signal to measure.
        assert outcome.recovery_s == 0.0
        assert outcome.faulted_makespan >= outcome.healthy_makespan

    def test_same_seed_reproduces_identical_numbers(self):
        task = FaultTask(seed=4, streams=3, scenario="kill-node", scale=SMOKE_SCALE)
        first = run_fault_task(task)
        second = run_fault_task(task)
        assert first.recovery_s == second.recovery_s
        assert first.bandwidth_retained == second.bandwidth_retained
        assert first.per_stream_mbps == second.per_stream_mbps
        assert first.failed_nodes == second.failed_nodes
        assert first.replacements == second.replacements

    def test_empty_schedule_is_a_healthy_run(self):
        queries = [build_query("grep", 0, SMOKE_SCALE)]
        env = Environment(EnvironmentConfig())
        result = run_faulted_session(env, queries, FaultSchedule())
        assert result.fault_time is None
        assert result.recovery_s == 0.0
        assert result.outage_rate_ratio == 1.0
        assert not result.failed_nodes and not result.replacements
        assert result.reports["s0"].result == [queries[0].expected_result]


class TestPostFailureBottleneck:
    def test_replacement_proxy_tops_the_ranking_after_pset_kill(self):
        """Fig 15 Q5 n=5: the shared pset-0 I/O proxy is the bottleneck;
        after pset 0 dies mid-run, the replanned receivers funnel through
        a *different* proxy, and the profiler must name it."""
        query = BenchQuery(
            kind="fig15",
            stream_id=0,
            query=inbound_query(5, 5, 50_000, 2),
            payload_bytes=5 * 50_000 * 2,
            sources={},
        )

        def flows_env():
            return Environment(
                EnvironmentConfig(), obs=Instrumentation(tracer=NULL_TRACER)
            )

        healthy = run_faulted_session(flows_env(), [query], FaultSchedule())
        pre_report = profile_flows(
            [r for r in healthy.flow_records if not r.eos]
        )
        pre_proxy = pre_report.bottleneck.resource
        assert pre_proxy.startswith("io-proxy[")
        doomed_pset = int(pre_proxy[len("io-proxy[") : -1])

        schedule = FaultSchedule.single(
            "kill-io-node", 0.5 * healthy.makespan, seed=0, target=doomed_pset
        )
        faulted = run_faulted_session(flows_env(), [query], schedule)
        assert faulted.replacements == ["s0+r1/"]
        assert f"bg-io:{doomed_pset}" in faulted.failed_nodes
        post_report = profile_flows(
            [
                r
                for r in faulted.flow_records
                if not r.eos and "+r" in r.stream_id
            ]
        )
        assert post_report.bottleneck.resource.startswith("io-proxy[")
        assert post_report.bottleneck.resource != pre_proxy
        assert faulted.reports["s0"].result == healthy.reports["s0"].result


class TestGateExitCode:
    def test_cli_fails_when_recovery_regresses(self, tmp_path):
        current = run_fault_task(
            FaultTask(seed=0, streams=2, scenario="kill-node", scale=SMOKE_SCALE)
        )
        tag = "fault[kill-node,n=2]"
        good = {
            f"{tag}/recovery_s": current.recovery_s,
            f"{tag}/retained_ratio": current.bandwidth_retained,
        }
        argv = [
            "bench", "--mode", "throughput", "--streams", "2",
            "--fault", "kill-node", "--smoke", "--seed", "0",
        ]
        baseline = tmp_path / "BENCH_faults_baseline.json"
        write_bench(str(baseline), good, repeats=1)
        assert main(argv + ["--baseline", str(baseline)]) == 0

        # A baseline whose recovery was half the current value means this
        # run regressed recovery by 100% — far past the 5% tolerance.
        doctored = dict(good)
        doctored[f"{tag}/recovery_s"] = current.recovery_s * 0.5
        write_bench(str(baseline), doctored, repeats=1)
        assert main(argv + ["--baseline", str(baseline)]) == 1
        assert (
            main(argv + ["--baseline", str(baseline), "--warn-only"]) == 0
        )
