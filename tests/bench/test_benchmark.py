"""Power/throughput benchmark modes and their BENCH v2 gate integration."""

import pytest

from repro.bench import (
    SMOKE_SCALE,
    run_fault_benchmark,
    run_power_mode,
    run_throughput_mode,
)
from repro.bench.query_stream import QUERY_KINDS
from repro.core.bench import (
    compare_bench,
    higher_is_better,
    load_bench,
    write_bench,
)
from repro.util.errors import MeasurementError


class TestPowerMode:
    def test_reports_latency_per_deck_query(self):
        report = run_power_mode(scale=SMOKE_SCALE)
        assert report.mode == "power"
        for kind in QUERY_KINDS:
            assert report.metrics[f"power[{kind}]/latency_ms"] > 0.0
            assert report.metrics[f"power[{kind}]/mbps"] > 0.0
        assert report.metrics["power/geomean_ms"] > 0.0
        assert "geometric mean" in report.describe()

    def test_metric_directions_follow_bench_convention(self):
        report = run_power_mode(scale=SMOKE_SCALE)
        for name in report.metrics:
            if name.endswith("/mbps"):
                assert higher_is_better(name)
            else:
                assert name.endswith("_ms") and not higher_is_better(name)

    def test_same_seed_reproduces_identical_numbers(self):
        first = run_power_mode(scale=SMOKE_SCALE, seed=7)
        second = run_power_mode(scale=SMOKE_SCALE, seed=7)
        assert first.metrics == second.metrics


class TestThroughputMode:
    def test_reports_per_stream_bandwidth_and_interference(self):
        report = run_throughput_mode(2, scale=SMOKE_SCALE, rounds=1)
        tag = "throughput[n=2]"
        for k in range(2):
            assert report.metrics[f"{tag}[s{k}]/mbps"] > 0.0
            # Contending streams cannot beat their solo baseline by more
            # than jitter-level noise.
            assert 0.0 < report.metrics[f"{tag}[s{k}]/interference"] < 1.1
        assert report.metrics[f"{tag}/aggregate_mbps"] == pytest.approx(
            sum(report.metrics[f"{tag}[s{k}]/mbps"] for k in range(2))
        )

    def test_streams_must_be_positive(self):
        with pytest.raises(MeasurementError, match="stream"):
            run_throughput_mode(0, scale=SMOKE_SCALE)

    def test_same_seed_reproduces_identical_numbers(self):
        first = run_throughput_mode(2, scale=SMOKE_SCALE, rounds=1, seed=3)
        second = run_throughput_mode(2, scale=SMOKE_SCALE, rounds=1, seed=3)
        assert first.metrics == second.metrics

    def test_solo_baselines_can_be_skipped(self):
        report = run_throughput_mode(
            2, scale=SMOKE_SCALE, rounds=1, with_solo=False
        )
        assert not any("interference" in name for name in report.metrics)


class TestBenchGateIntegration:
    """Recovery metrics ride the existing 5%-tolerance BENCH v2 gate."""

    @pytest.fixture(scope="class")
    def fault_metrics(self):
        return run_fault_benchmark(
            "kill-node", 2, scale=SMOKE_SCALE, seed=0
        ).metrics

    def test_round_trips_through_bench_json(self, fault_metrics, tmp_path):
        path = tmp_path / "BENCH_faults.json"
        write_bench(str(path), fault_metrics, repeats=1)
        assert load_bench(str(path)) == fault_metrics

    def test_identical_run_passes_the_gate(self, fault_metrics):
        deltas, new_metrics = compare_bench(fault_metrics, dict(fault_metrics))
        assert not any(delta.regressed for delta in deltas)
        assert not new_metrics

    def test_recovery_time_regression_trips_the_gate(self, fault_metrics):
        tag = "fault[kill-node,n=2]"
        # Recovery time is lower-is-better (…_s suffix): a current run 10%
        # slower than baseline must regress at the default 5% tolerance.
        slower = dict(fault_metrics)
        slower[f"{tag}/recovery_s"] *= 1.10
        deltas, _ = compare_bench(fault_metrics, slower)
        regressed = {d.name for d in deltas if d.regressed}
        assert regressed == {f"{tag}/recovery_s"}

    def test_bandwidth_dip_regression_trips_the_gate(self, fault_metrics):
        tag = "fault[kill-node,n=2]"
        # Retained ratio is higher-is-better: a deeper dip must regress.
        deeper = dict(fault_metrics)
        deeper[f"{tag}/retained_ratio"] *= 0.90
        deltas, _ = compare_bench(fault_metrics, deeper)
        regressed = {d.name for d in deltas if d.regressed}
        assert regressed == {f"{tag}/retained_ratio"}

    def test_missing_recovery_metric_counts_as_regression(self, fault_metrics):
        current = {
            name: value
            for name, value in fault_metrics.items()
            if not name.endswith("/recovery_s")
        }
        deltas, _ = compare_bench(fault_metrics, current)
        assert any(
            delta.regressed and delta.current is None for delta in deltas
        )


class TestLiveSeries:
    """--live-window through power/throughput: series ride along, the
    gated scalars stay untouched."""

    def test_power_mode_series_with_unchanged_metrics(self):
        plain = run_power_mode(scale=SMOKE_SCALE)
        live = run_power_mode(scale=SMOKE_SCALE, live_window=0.0005)
        assert plain.series is None
        assert live.metrics == plain.metrics  # sampling must not move the gate
        assert set(live.series) == {f"power[{kind}]" for kind in QUERY_KINDS}
        for document in live.series.values():
            assert document["windows"] >= 1
            assert len(document["p95"]) == document["windows"]
            assert document["window_s"] == 0.0005

    def test_throughput_mode_series_with_unchanged_metrics(self):
        plain = run_throughput_mode(2, scale=SMOKE_SCALE, rounds=1)
        live = run_throughput_mode(
            2, scale=SMOKE_SCALE, rounds=1, live_window=0.0005
        )
        assert plain.series is None
        assert live.metrics == plain.metrics
        assert set(live.series) == {"throughput[n=2]/round0"}

    def test_series_ride_bench_json_without_touching_the_gate(self, tmp_path):
        import json

        live = run_power_mode(scale=SMOKE_SCALE, live_window=0.0005)
        path = tmp_path / "bench.json"
        write_bench(str(path), live.metrics, repeats=1, series=live.series)
        # the gate loader reads only the scalar metrics...
        assert load_bench(str(path)) == live.metrics
        # ...but the series are in the document for dashboards to pick up
        document = json.loads(path.read_text())
        assert set(document["series"]) == set(live.series)
