"""The numbered-stream query deck: orders, payloads, correctness.

The harness's claims under test: every deck query is a pure function of
``(kind, stream_id, scale, seed)``, its payload model matches what the
engine actually marshals, and its reference result matches what the
deployed query actually computes.
"""

import pytest

from repro.bench.query_stream import (
    DEFAULT_SCALE,
    QUERY_KINDS,
    SMOKE_SCALE,
    build_query,
    grep_line_count,
    query_order,
    registered,
)
from repro.coordinator.deployer import Deployer
from repro.engine.operators.sources import ExternalReceiver
from repro.hardware.environment import Environment, EnvironmentConfig
from repro.scsql.plan import compile_plan
from repro.util.errors import QueryExecutionError
from repro.workloads import corpus


class TestQueryOrder:
    def test_stream_zero_runs_canonical_order(self):
        assert query_order(0) == list(QUERY_KINDS)
        assert query_order(0, seed=99) == list(QUERY_KINDS)

    def test_orders_are_deterministic(self):
        for stream_id in range(6):
            assert query_order(stream_id, seed=3) == query_order(stream_id, seed=3)

    def test_every_order_is_a_deck_permutation(self):
        for stream_id in range(8):
            assert sorted(query_order(stream_id)) == sorted(QUERY_KINDS)

    def test_adjacent_streams_open_with_different_kinds(self):
        # The TPC-H property the rotation guarantees: in every throughput
        # round, neighbouring streams run different query kinds.
        openers = [query_order(k)[0] for k in range(4)]
        for left, right in zip(openers, openers[1:]):
            assert left != right

    def test_negative_stream_rejected(self):
        with pytest.raises(QueryExecutionError, match="stream id"):
            query_order(-1)


class TestBuildQuery:
    def test_unknown_kind_rejected(self):
        with pytest.raises(QueryExecutionError, match="unknown bench query kind"):
            build_query("sort", 0, SMOKE_SCALE)

    def test_negative_stream_rejected(self):
        with pytest.raises(QueryExecutionError, match="stream id"):
            build_query("grep", -2, SMOKE_SCALE)

    @pytest.mark.parametrize("kind", QUERY_KINDS)
    def test_pure_function_of_coordinates(self, kind):
        first = build_query(kind, 1, SMOKE_SCALE, seed=5)
        second = build_query(kind, 1, SMOKE_SCALE, seed=5)
        assert first.query == second.query
        assert first.payload_bytes == second.payload_bytes
        assert first.expected_result == second.expected_result
        assert first.name == second.name == f"{kind}:s1"

    @pytest.mark.parametrize("kind", QUERY_KINDS)
    def test_payload_positive_and_scales_up(self, kind):
        small = build_query(kind, 0, SMOKE_SCALE)
        large = build_query(kind, 0, DEFAULT_SCALE)
        assert 0 < small.payload_bytes < large.payload_bytes

    @pytest.mark.parametrize("kind", QUERY_KINDS)
    def test_deck_queries_compile(self, kind):
        plan = compile_plan(build_query(kind, 2, DEFAULT_SCALE).query)
        assert plan.instantiate().sps

    def test_streams_use_distinct_source_names(self):
        a = build_query("signals", 0, SMOKE_SCALE)
        b = build_query("signals", 1, SMOKE_SCALE)
        assert not set(a.sources) & set(b.sources)

    def test_streams_grep_distinct_file_ranges(self):
        a = build_query("grep", 0, SMOKE_SCALE)
        b = build_query("grep", 1, SMOKE_SCALE)
        assert a.query != b.query
        assert f"iota(1,{SMOKE_SCALE.grep_files})" in a.query

    def test_grep_payload_matches_operator_read_length(self):
        # The grep operator reads corpus files at their default length;
        # the payload model must agree with it, not with a deck knob.
        query = build_query("grep", 0, SMOKE_SCALE)
        assert query.expected_result == grep_line_count(SMOKE_SCALE)
        assert grep_line_count(SMOKE_SCALE) == (
            SMOKE_SCALE.grep_files * corpus.expected_marker_count()
        )


class TestRegistered:
    def test_registers_then_unregisters(self):
        query = build_query("signals", 3, SMOKE_SCALE)
        (name,) = query.sources
        with registered([query]):
            assert name in ExternalReceiver._registry
        assert name not in ExternalReceiver._registry

    def test_unregisters_on_error(self):
        query = build_query("signals", 3, SMOKE_SCALE)
        (name,) = query.sources
        with pytest.raises(RuntimeError):
            with registered([query]):
                raise RuntimeError("boom")
        assert name not in ExternalReceiver._registry


class TestDeckCorrectness:
    """Every deck query, deployed for real, produces its reference result."""

    @pytest.mark.parametrize("kind", QUERY_KINDS)
    def test_smoke_deck_query_produces_reference_result(self, kind):
        query = build_query(kind, 0, SMOKE_SCALE)
        with registered([query]):
            env = Environment(EnvironmentConfig())
            report = Deployer(env).run(compile_plan(query.query))
        assert report.result == [query.expected_result]
        assert query.expected_result > 0
        assert report.duration > 0.0
