"""The static plan verifier: one test per diagnostic code.

Every SCSQxxx code in ``docs/static-analysis.md`` has a minimal triggering
query here, and the clean paths (the paper's own sweep queries) verify
without diagnostics.
"""

from types import SimpleNamespace

import pytest

from repro.analysis import (
    AnalysisReport,
    EnvironmentSnapshot,
    PlanVerifier,
    Severity,
    verify_plan,
)
from repro.core.experiments.fig6 import point_to_point_query, scaled_workload
from repro.core.experiments.fig15 import inbound_query
from repro.hardware.environment import Environment, EnvironmentConfig
from repro.scsql.plan import compile_plan
from repro.util.errors import PlanVerificationError


def verify(query: str, **kwargs) -> AnalysisReport:
    return verify_plan(compile_plan(query), **kwargs)


def codes(report: AnalysisReport):
    return [d.code for d in report.diagnostics]


class TestCleanPlans:
    def test_fig6_query_is_clean(self):
        array_bytes, count = scaled_workload(1000, 30)
        report = verify(point_to_point_query(array_bytes, count))
        assert report.diagnostics == []
        assert report.ok(strict=True)

    def test_unconstrained_placement_is_clean(self):
        report = verify(
            "select count(extract(a)) from sp a "
            "where a=sp(gen_array(10,5), 'bg')"
        )
        assert report.diagnostics == []


class TestPlacementCodes:
    def test_scsq102_nonexistent_explicit_node(self):
        report = verify(
            "select count(extract(a)) from sp a "
            "where a=sp(gen_array(10,5), 'bg', 99)"
        )
        assert codes(report) == ["SCSQ102"]
        assert not report.ok()
        assert "does not exist" in report.diagnostics[0].message
        # The diagnostic carries the source span of the sp() call.
        assert report.diagnostics[0].span is not None

    def test_scsq103_over_subscribed_node(self):
        report = verify(
            "select count(merge({a,b})) from sp a, sp b "
            "where a=sp(gen_array(10,5), 'bg', 1) "
            "and b=sp(gen_array(10,5), 'bg', 1)"
        )
        assert codes(report) == ["SCSQ103"]
        assert "over-subscribed" in report.diagnostics[0].message

    def test_scsq104_exhausted_allocation_sequence(self):
        # Nine spv members squeezed into one 8-node pset of single-process
        # CNK nodes: the ninth selection exhausts the sequence.
        report = verify(
            "select count(merge(a)) from bag of sp a, integer n "
            "where a=spv((select gen_array(10,5) from integer i "
            "where i in iota(1,n)), 'bg', inPset(0)) and n=9"
        )
        assert codes(report) == ["SCSQ104"]
        assert "exhausted" in report.diagnostics[0].message

    def test_scsq103_and_scsq104_are_distinct(self):
        over = verify(
            "select count(merge({a,b})) from sp a, sp b "
            "where a=sp(gen_array(10,5), 'bg', 2) "
            "and b=sp(gen_array(10,5), 'bg', 2)"
        )
        exhausted = verify(
            "select count(merge(a)) from bag of sp a, integer n "
            "where a=spv((select gen_array(10,5) from integer i "
            "where i in iota(1,n)), 'bg', inPset(1)) and n=9"
        )
        assert codes(over) != codes(exhausted)

    def test_scsq105_nonexistent_pset(self):
        report = verify(
            "select count(extract(a)) from sp a "
            "where a=sp(gen_array(10,5), 'bg', inPset(99))"
        )
        assert codes(report) == ["SCSQ105"]

    def test_scsq201_cross_plan_double_allocation(self):
        # One verifier = one environment: the second plan's pinned node is
        # already held by the first.
        verifier = PlanVerifier()
        query = (
            "select count(extract(a)) from sp a "
            "where a=sp(gen_array(10,5), 'bg', 3)"
        )
        first = verifier.verify(compile_plan(query), label="first")
        second = verifier.verify(compile_plan(query), label="second")
        assert first.diagnostics == []
        assert codes(second) == ["SCSQ201"]
        assert "first:a@1" in second.diagnostics[0].message

    def test_scsq201_against_live_environment(self):
        env = Environment(EnvironmentConfig())
        env.cndb("bg").node(5).acquire()
        report = verify(
            "select count(extract(a)) from sp a "
            "where a=sp(gen_array(10,5), 'bg', 5)",
            env=env,
        )
        assert codes(report) == ["SCSQ201"]
        assert "pre-existing deployment" in report.diagnostics[0].message


class TestAdvisoryCodes:
    def test_scsq301_cross_pset_stream_warns(self):
        # Producer pinned to pset 1 (node 8), consumer to pset 0 (node 0).
        report = verify(
            "select extract(b) from sp a, sp b "
            "where b=sp(count(extract(a)), 'bg', 0) "
            "and a=sp(gen_array(10,5), 'bg', 8)"
        )
        assert codes(report) == ["SCSQ301"]
        assert report.diagnostics[0].severity is Severity.WARNING
        assert report.ok()  # warnings pass by default...
        assert not report.ok(strict=True)  # ...and fail strict mode

    def test_scsq401_shared_io_proxy_funnel(self):
        # Figure 15 Query 1: n back-end senders funnel into ONE BlueGene
        # consumer — every connection shares that pset's io-proxy.
        report = verify(inbound_query(1, 4, 1000, 2))
        assert "SCSQ401" in codes(report)
        found = next(d for d in report.diagnostics if d.code == "SCSQ401")
        assert found.severity is Severity.WARNING
        assert "share the I/O-node proxy" in found.message
        assert "Mbps" in found.message

    def test_scsq402_multi_host_uplink_info(self):
        # Query 2 spreads senders over several be hosts: the shared-uplink
        # coordination penalty is reported at info level.
        report = verify(inbound_query(2, 4, 1000, 2))
        assert "SCSQ402" in codes(report)
        found = next(d for d in report.diagnostics if d.code == "SCSQ402")
        assert found.severity is Severity.INFO
        assert report.ok()  # advisory only: the plan still deploys

    def test_pset_spread_receivers_avoid_scsq401(self):
        # psetrr() receivers engage one io-proxy each: no funnel at n=4.
        report = verify(inbound_query(5, 4, 1000, 2))
        assert "SCSQ401" not in codes(report)


class _StubGraph:
    """A minimal graph for structure-pass unit tests.

    ``edges`` maps sp_id -> producer ids; ``root`` is what the client
    manager's root plan consumes.  Each sp's ``plan`` is its own id, which
    ``producers_of`` resolves through ``edges``.
    """

    def __init__(self, edges, root=()):
        self.sps = {
            sp_id: SimpleNamespace(sp_id=sp_id, plan=sp_id, span=None)
            for sp_id in edges
        }
        self._edges = dict(edges)
        self.root_plan = "__root__"
        self._root = list(root)

    def producers_of(self, plan):
        if plan == "__root__":
            return self._root
        return self._edges[plan]


class TestStructureCodes:
    def _structure(self, graph):
        report = AnalysisReport(label="stub")
        ok = PlanVerifier()._check_structure(graph, report)
        return ok, report

    def test_scsq002_unknown_producer(self):
        ok, report = self._structure(_StubGraph({"a": ["ghost"]}, root=["a"]))
        assert not ok
        assert codes(report) == ["SCSQ002"]

    def test_scsq003_subscription_cycle(self):
        ok, report = self._structure(
            _StubGraph({"a": ["b"], "b": ["a"]}, root=["a"])
        )
        assert not ok
        assert codes(report) == ["SCSQ003"]
        assert "deadlocks" in report.diagnostics[0].message

    def test_scsq004_dangling_stream(self):
        ok, report = self._structure(
            _StubGraph({"a": [], "b": []}, root=["a"])
        )
        assert ok  # a warning, not an error
        assert codes(report) == ["SCSQ004"]
        assert report.diagnostics[0].severity is Severity.WARNING
        assert "'b'" in report.diagnostics[0].message

    def test_compiled_queries_are_acyclic_and_fully_consumed(self):
        report = verify(
            "select extract(b) from sp a, sp b "
            "where b=sp(count(extract(a)), 'bg') and a=sp(gen_array(10,5), 'bg')"
        )
        assert report.diagnostics == []


class TestReportAPI:
    def test_raise_if_failed_attaches_diagnostics(self):
        report = verify(
            "select count(extract(a)) from sp a "
            "where a=sp(gen_array(10,5), 'bg', 99)"
        )
        with pytest.raises(PlanVerificationError) as exc_info:
            report.raise_if_failed()
        assert [d.code for d in exc_info.value.diagnostics] == ["SCSQ102"]

    def test_strict_mode_promotes_warnings(self):
        report = verify(
            "select extract(b) from sp a, sp b "
            "where b=sp(count(extract(a)), 'bg', 0) "
            "and a=sp(gen_array(10,5), 'bg', 8)"
        )
        report.raise_if_failed(strict=False)  # warnings pass
        with pytest.raises(PlanVerificationError):
            report.raise_if_failed(strict=True)

    def test_json_round_trip(self):
        import json

        report = verify(
            "select count(extract(a)) from sp a "
            "where a=sp(gen_array(10,5), 'bg', 99)"
        )
        payload = json.loads(report.to_json())
        assert payload["label"] == "query"
        assert payload["diagnostics"][0]["code"] == "SCSQ102"
        assert payload["diagnostics"][0]["severity"] == "error"


class TestSnapshot:
    def test_from_environment_copies_occupancy(self):
        env = Environment(EnvironmentConfig())
        env.cndb("bg").node(7).acquire()
        snapshot = EnvironmentSnapshot.from_environment(env)
        assert "bg:7" in snapshot.busy_nodes()
        # The snapshot is a copy: acquiring in it leaves env untouched.
        snapshot.node("bg", 6).acquire()
        assert env.cndb("bg").node(6).is_available

    def test_verification_does_not_mutate_environment(self):
        env = Environment(EnvironmentConfig())
        before = {
            node.node_id
            for name in ("bg", "be", "fe")
            for node in env.cndb(name).all_nodes()
            if node.is_available
        }
        verify_plan(
            compile_plan(
                "select count(extract(a)) from sp a "
                "where a=sp(gen_array(10,5), 'bg', 1)"
            ),
            env=env,
        )
        after = {
            node.node_id
            for name in ("bg", "be", "fe")
            for node in env.cndb(name).all_nodes()
            if node.is_available
        }
        assert before == after
