"""Verification wired into the deployment path.

``Deployer.verify`` / ``deploy(verify=...)`` / ``MultiQuerySession(verify=
...)`` gate deployments on the static verifier, and ``resolve_allocations``
rejects explicit allocations naming absent nodes with a typed error.
"""

import pytest

from repro.coordinator.deployer import Deployer, resolve_allocations
from repro.core.multiquery import MultiQuerySession
from repro.hardware.environment import Environment, EnvironmentConfig
from repro.scsql.plan import compile_plan
from repro.util.errors import PlanVerificationError, QueryExecutionError

CLEAN = (
    "select count(extract(a)) from sp a where a=sp(gen_array(10,5), 'bg', 1)"
)
PINNED_NODE_3 = (
    "select count(extract(a)) from sp a where a=sp(gen_array(10,5), 'bg', 3)"
)
ABSENT_NODE = (
    "select count(extract(a)) from sp a where a=sp(gen_array(10,5), 'bg', 999)"
)
CROSS_PSET = (
    "select extract(b) from sp a, sp b "
    "where b=sp(count(extract(a)), 'bg', 0) and a=sp(gen_array(10,5), 'bg', 8)"
)


def fresh_deployer() -> Deployer:
    return Deployer(Environment(EnvironmentConfig()))


class TestResolveAllocations:
    def test_absent_explicit_node_raises_typed_error(self):
        env = Environment(EnvironmentConfig())
        graph = compile_plan(ABSENT_NODE).graph.instantiate()
        with pytest.raises(PlanVerificationError) as exc_info:
            resolve_allocations(graph, env)
        assert "999" in str(exc_info.value)
        assert "'bg'" in str(exc_info.value)
        assert [d.code for d in exc_info.value.diagnostics] == ["SCSQ102"]

    def test_error_names_every_missing_node(self):
        env = Environment(EnvironmentConfig())
        query = (
            "select count(merge({a,b})) from sp a, sp b "
            "where a=sp(gen_array(10,5), 'bg', 40) "
            "and b=sp(gen_array(10,5), 'bg', 41)"
        )
        graph = compile_plan(query).graph.instantiate()
        with pytest.raises(PlanVerificationError) as exc_info:
            resolve_allocations(graph, env)
        assert "40" in str(exc_info.value)

    def test_deploy_of_absent_node_fails_before_any_rp_starts(self):
        deployer = fresh_deployer()
        with pytest.raises(PlanVerificationError):
            deployer.deploy(deployer.place(compile_plan(ABSENT_NODE)))
        # Nothing was allocated: the clean plan still deploys.
        deployer.deploy(deployer.place(compile_plan(CLEAN)))


class TestDeployerVerify:
    def test_verify_reports_against_live_occupancy(self):
        deployer = fresh_deployer()
        clean = deployer.verify(compile_plan(PINNED_NODE_3))
        assert clean.ok() and clean.diagnostics == []
        deployer.env.cndb("bg").node(3).acquire()
        taken = deployer.verify(compile_plan(PINNED_NODE_3))
        assert [d.code for d in taken.diagnostics] == ["SCSQ201"]

    def test_deploy_verify_warn_blocks_errors_only(self):
        deployer = fresh_deployer()
        # Warnings pass in "warn" mode...
        deployment = deployer.deploy(
            deployer.place(compile_plan(CROSS_PSET)), verify="warn"
        )
        deployment.teardown()
        # ...errors do not.
        deployer.env.cndb("bg").node(3).acquire()
        with pytest.raises(PlanVerificationError) as exc_info:
            deployer.deploy(
                deployer.place(compile_plan(PINNED_NODE_3)), verify="warn"
            )
        assert any(d.code == "SCSQ201" for d in exc_info.value.diagnostics)

    def test_deploy_verify_strict_blocks_warnings(self):
        deployer = fresh_deployer()
        with pytest.raises(PlanVerificationError) as exc_info:
            deployer.deploy(
                deployer.place(compile_plan(CROSS_PSET)), verify="strict"
            )
        assert any(d.code == "SCSQ301" for d in exc_info.value.diagnostics)

    def test_deploy_rejects_unknown_verify_mode(self):
        deployer = fresh_deployer()
        with pytest.raises(ValueError, match="verify"):
            deployer.deploy(
                deployer.place(compile_plan(CLEAN)), verify="paranoid"
            )

    def test_run_with_verify_still_executes(self):
        report = fresh_deployer().run(compile_plan(CLEAN), verify="warn")
        assert report.scalar_result == 5


class TestMultiQuerySessionVerify:
    def test_double_allocation_across_queries_is_caught(self):
        session = MultiQuerySession(verify="warn")
        session.submit(compile_plan(PINNED_NODE_3), payload_bytes=50)
        with pytest.raises(PlanVerificationError) as exc_info:
            session.submit(compile_plan(PINNED_NODE_3), payload_bytes=50)
        assert any(d.code == "SCSQ201" for d in exc_info.value.diagnostics)
        session.teardown()

    def test_disjoint_queries_run_verified(self):
        session = MultiQuerySession(verify="strict")
        session.submit(compile_plan(CLEAN), payload_bytes=50, label="left")
        session.submit(compile_plan(PINNED_NODE_3), payload_bytes=50, label="right")
        result = session.run()
        assert result["left"].report.scalar_result == 5
        assert result["right"].report.scalar_result == 5
        session.teardown()

    def test_rejects_unknown_verify_mode(self):
        with pytest.raises(QueryExecutionError, match="verify"):
            MultiQuerySession(verify="always")

    def test_unverified_session_keeps_legacy_behaviour(self):
        # verify=None: the second submit fails at allocation time instead,
        # with the historical (untyped) error.
        from repro.util.errors import AllocationError

        session = MultiQuerySession()
        session.submit(compile_plan(PINNED_NODE_3), payload_bytes=50)
        with pytest.raises(AllocationError):
            session.submit(compile_plan(PINNED_NODE_3), payload_bytes=50)
        session.teardown()


class TestSweepFailFast:
    def test_measure_points_rejects_malformed_point(self):
        from repro.core.measurement import PointSpec, measure_points

        specs = [
            PointSpec(key="bad", query=ABSENT_NODE, payload_bytes=50),
        ]
        with pytest.raises(PlanVerificationError) as exc_info:
            measure_points(specs, repeats=1)
        assert "bad" in str(exc_info.value.args[0]) or exc_info.value.diagnostics

    def test_measure_query_bandwidth_verifies_in_process_path(self):
        from repro.core.measurement import measure_query_bandwidth

        with pytest.raises(PlanVerificationError):
            measure_query_bandwidth(ABSENT_NODE, payload_bytes=50, repeats=1)

    def test_clean_measurement_still_runs(self):
        from repro.core.measurement import measure_query_bandwidth

        result = measure_query_bandwidth(CLEAN, payload_bytes=50, repeats=1)
        assert result.mean_mbps > 0
