"""The determinism lint suite: rules fire, suppressions work, repo is clean."""

import subprocess
import sys
import textwrap
from pathlib import Path

from repro.analysis.lint import RULES, _default_paths, lint_file, lint_paths

#: A hot-path file stuffed with one violation per rule.
BAD_SIM_SOURCE = textwrap.dedent(
    """
    import random
    import time


    class Event:
        __slots__ = ("time",)


    class TickEvent(Event):
        pass


    def schedule(sim, events, obs):
        start = time.time()
        jitter = random.random()
        for event in {e for e in events}:
            obs.on_event_scheduled(event)
        return start + jitter
    """
)


def write_hot_file(tmp_path: Path, source: str, package: str = "sim") -> Path:
    """Place a file where the hot-path rules apply (under ``repro/<pkg>/``)."""
    directory = tmp_path / "repro" / package
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / "case.py"
    path.write_text(source)
    return path


class TestRulesFire:
    def test_every_rule_fires_on_the_bad_file(self, tmp_path):
        findings = lint_file(write_hot_file(tmp_path, BAD_SIM_SOURCE))
        fired = {d.code for d in findings}
        assert fired == {"DET001", "DET002", "DET003", "DET004", "DET005"}

    def test_findings_carry_path_and_line(self, tmp_path):
        path = write_hot_file(tmp_path, BAD_SIM_SOURCE)
        findings = lint_file(path)
        assert all(d.path == str(path) for d in findings)
        wall_clock = next(d for d in findings if d.code == "DET001")
        assert BAD_SIM_SOURCE.splitlines()[wall_clock.line - 1].strip() == (
            "start = time.time()"
        )

    def test_slots_rule_tracks_transitive_event_subclasses(self, tmp_path):
        source = textwrap.dedent(
            """
            class Event:
                __slots__ = ()

            class Base(Event):
                __slots__ = ()

            class Leaf(Base):
                pass
            """
        )
        findings = lint_file(write_hot_file(tmp_path, source))
        assert [d.code for d in findings] == ["DET004"]
        assert "Leaf" in findings[0].message

    def test_guarded_obs_call_passes(self, tmp_path):
        source = textwrap.dedent(
            """
            def notify(self, event):
                if self.obs.enabled:
                    self.obs.on_event_scheduled(event)
            """
        )
        assert lint_file(write_hot_file(tmp_path, source)) == []

    def test_seeded_random_instance_passes(self, tmp_path):
        source = textwrap.dedent(
            """
            import random

            def make_rng(seed):
                rng = random.Random(seed)
                return rng.random()
            """
        )
        assert lint_file(write_hot_file(tmp_path, source)) == []

    def test_hot_path_rules_skip_cold_packages(self, tmp_path):
        # The same violations outside the hot packages are not hot-path code.
        path = write_hot_file(tmp_path, BAD_SIM_SOURCE, package="obs")
        assert lint_file(path) == []


class TestSlotsRuleCoverage:
    """DET004 covers every sim class and hardware snapshot/template classes."""

    def test_any_sim_class_without_slots_is_flagged(self, tmp_path):
        source = textwrap.dedent(
            """
            class CustomScheduler:
                def push(self, when, rank, event):
                    pass
            """
        )
        findings = lint_file(write_hot_file(tmp_path, source))
        assert [d.code for d in findings] == ["DET004"]
        assert "CustomScheduler" in findings[0].message

    def test_exception_subclasses_are_exempt(self, tmp_path):
        source = textwrap.dedent(
            """
            class KernelPanic(Exception):
                pass
            """
        )
        assert lint_file(write_hot_file(tmp_path, source)) == []

    def test_dataclass_slots_true_satisfies_the_rule(self, tmp_path):
        source = textwrap.dedent(
            """
            from dataclasses import dataclass

            @dataclass(frozen=True, slots=True)
            class StateSnapshot:
                cursor: int
            """
        )
        path = write_hot_file(tmp_path, source, package="hardware")
        assert lint_file(path) == []

    def test_hardware_snapshot_and_template_need_slots(self, tmp_path):
        source = textwrap.dedent(
            """
            class TopoSnapshot:
                pass

            class GridTemplate:
                pass

            class HelperThing:
                pass
            """
        )
        path = write_hot_file(tmp_path, source, package="hardware")
        findings = lint_file(path)
        assert [d.code for d in findings] == ["DET004", "DET004"]
        flagged = {d.message.split(" has no ")[0] for d in findings}
        assert flagged == {
            "fork-lifecycle class TopoSnapshot",
            "fork-lifecycle class GridTemplate",
        }

    def test_obs_guard_rule_applies_in_hardware(self, tmp_path):
        source = textwrap.dedent(
            """
            def restore(self, obs, snapshot):
                obs.on_restore(snapshot)
            """
        )
        path = write_hot_file(tmp_path, source, package="hardware")
        assert [d.code for d in lint_file(path)] == ["DET005"]


class TestSuppressions:
    def test_line_suppression(self, tmp_path):
        source = textwrap.dedent(
            """
            def pick(items):
                for item in {i for i in items}:  # lint: disable=DET003
                    return item
            """
        )
        assert lint_file(write_hot_file(tmp_path, source)) == []

    def test_file_suppression(self, tmp_path):
        source = textwrap.dedent(
            """
            # lint: disable-file=DET003

            def pick(items, extra):
                for item in {i for i in items}:
                    return item
                for item in set(extra):
                    return item
            """
        )
        assert lint_file(write_hot_file(tmp_path, source)) == []

    def test_suppression_is_code_specific(self, tmp_path):
        source = textwrap.dedent(
            """
            import time

            def stamp():  # the DET003 suppression must not mask DET001
                return time.time()  # lint: disable=DET003
            """
        )
        findings = lint_file(write_hot_file(tmp_path, source))
        assert [d.code for d in findings] == ["DET001"]


class TestRepoIsClean:
    def test_hot_packages_have_no_findings(self):
        findings = lint_paths(_default_paths())
        assert findings == [], "\n".join(d.format() for d in findings)

    def test_cli_exits_zero_on_the_repo(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro.analysis.lint"],
            capture_output=True,
            text=True,
        )
        assert result.returncode == 0, result.stdout + result.stderr
        assert "0 finding(s)" in result.stdout


class TestCLI:
    def test_nonzero_exit_and_json_on_findings(self, tmp_path):
        import json

        path = write_hot_file(tmp_path, BAD_SIM_SOURCE)
        result = subprocess.run(
            [sys.executable, "-m", "repro.analysis.lint", str(path), "--json"],
            capture_output=True,
            text=True,
        )
        assert result.returncode == 1
        payload = json.loads(result.stdout)
        assert {d["code"] for d in payload} == {
            "DET001", "DET002", "DET003", "DET004", "DET005"
        }

    def test_rule_registry_is_complete(self):
        assert [rule.code for rule in RULES] == [
            "DET001", "DET002", "DET003", "DET004", "DET005",
            "DET006", "DET007",
        ]
