"""Shuffle equivalence: published numbers do not ride on dispatch order.

Every permutation of same-``(when, rank)`` events is a legal total order
under the kernel's scheduling contract, so any outcome the paper reports
must be identical under the seeded :class:`ShuffleScheduler`.  The suite
replays one point of each figure, a kill-node fault, and an adaptive
migration under five chaos seeds and demands **float-exact** equality of:

* query results (every figure point, the fault run, the adaptive run);
* logical flow totals per stream — count, bytes, EOS markers;
* fault logical outcome — what failed, what replaced it, when, and how
  long recovery took;
* adaptive migration decisions — which SP moved where, and whether the
  move committed.

The end-to-end *duration* is additionally invariant for the single-query
fig6 path.  Per-hop and per-flow timestamps are not compared anywhere —
the torus links and co-processors serve same-instant requesters FIFO, so
the grant order among simultaneous arrivals (e.g. the two outstanding
buffers of a double-buffered sender) *is* the tie-break order the
shuffle permutes — a documented property of the kernel, not a race (see
``docs/static-analysis.md``).
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis import sanitize
from repro.bench.faults import FaultTask, run_fault_task
from repro.bench.query_stream import SMOKE_SCALE
from repro.coordinator.deployer import Deployer
from repro.core.experiments.adaptive import run_adaptive_point
from repro.core.experiments.fig6 import point_to_point_query
from repro.core.experiments.fig8 import SEQUENTIAL, merge_query
from repro.core.experiments.fig15 import inbound_query
from repro.hardware.environment import Environment, EnvironmentConfig
from repro.obs import Instrumentation
from repro.obs.flow import FlowRecorder
from repro.scsql.plan import compile_plan

#: The acceptance gate's seed sweep: five distinct chaos seeds.
CHAOS_SEEDS = (0, 1, 2, 3, 4)


def _logical(fingerprint):
    """Timing-free projection of a flow fingerprint: (count, bytes, eos)."""
    return {stream: entry[:3] for stream, entry in fingerprint.items()}


def _run_instrumented(query):
    """One deployment of ``query`` on a fresh flow-instrumented env."""
    obs = Instrumentation(flows=FlowRecorder())
    env = Environment(EnvironmentConfig(), obs=obs)
    deployer = Deployer(env)
    report = deployer.run(compile_plan(query))
    deployer.teardown()
    sanitize.assert_quiescent(env)
    return report, obs


def _fig6_outcome():
    report, obs = _run_instrumented(point_to_point_query(1024, 8))
    return {
        "result": report.result,
        "duration": report.duration,
        "flows": _logical(sanitize.flow_fingerprint(obs.flows)),
    }


def _fig8_outcome():
    x, y = SEQUENTIAL
    report, obs = _run_instrumented(merge_query(1024, 6, x, y))
    return {
        "result": report.result,
        "flows": _logical(sanitize.flow_fingerprint(obs.flows)),
    }


def _fig15_outcome():
    report, obs = _run_instrumented(inbound_query(3, 4, 1024, 4))
    return {
        "result": report.result,
        "flows": _logical(sanitize.flow_fingerprint(obs.flows)),
    }


def _kill_node_outcome():
    outcome = run_fault_task(
        FaultTask(seed=0, streams=2, scenario="kill-node", scale=SMOKE_SCALE)
    )
    return {
        "results_ok": outcome.results_ok,
        "fault_time": outcome.fault_time,
        "failed_nodes": tuple(outcome.failed_nodes),
        "replacements": tuple(outcome.replacements),
        "recovery_s": outcome.recovery_s,
    }


def _adaptive_outcome():
    comparison = run_adaptive_point("fig8", seed=0, smoke=True)
    return {
        "decisions": [
            (record.sp_id, record.target, record.ok, record.rolled_back)
            for record in comparison.migrations
        ],
        "results": {
            outcome.label: outcome.report.result
            for outcome in comparison.adaptive.outcomes
        },
    }


class TestFigurePointEquivalence:
    """One point per published figure, replayed under all five seeds."""

    def test_fig6_point_is_shuffle_invariant_including_timing(self):
        report, outcomes = sanitize.run_shuffled(
            _fig6_outcome, seeds=CHAOS_SEEDS, label="fig6-equivalence"
        )
        assert report.diagnostics == []
        assert outcomes[0]["duration"] > 0.0

    def test_fig8_merge_point_is_shuffle_invariant(self):
        report, outcomes = sanitize.run_shuffled(
            _fig8_outcome, seeds=CHAOS_SEEDS, label="fig8-equivalence"
        )
        assert report.diagnostics == []
        assert outcomes[0]["result"]

    def test_fig15_inbound_point_is_shuffle_invariant(self):
        report, outcomes = sanitize.run_shuffled(
            _fig15_outcome, seeds=CHAOS_SEEDS, label="fig15-equivalence"
        )
        assert report.diagnostics == []
        assert outcomes[0]["result"]


class TestFaultAndAdaptiveEquivalence:
    def test_kill_node_logical_outcome_is_shuffle_invariant(self):
        report, outcomes = sanitize.run_shuffled(
            _kill_node_outcome, seeds=CHAOS_SEEDS, label="fault-equivalence"
        )
        assert report.diagnostics == []
        baseline = outcomes[0]
        assert baseline["results_ok"]
        assert baseline["failed_nodes"]
        assert baseline["replacements"]

    def test_adaptive_migration_decision_is_shuffle_invariant(self):
        report, outcomes = sanitize.run_shuffled(
            _adaptive_outcome, seeds=CHAOS_SEEDS, label="adaptive-equivalence"
        )
        assert report.diagnostics == []
        assert outcomes[0]["decisions"], "the fig8 point must migrate"


class TestHypothesisEquivalence:
    """Property form: *any* seed pair agrees, not just the CI five."""

    @settings(
        max_examples=5,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        seed_a=st.integers(min_value=0, max_value=2**16),
        seed_b=st.integers(min_value=0, max_value=2**16),
        count=st.sampled_from([4, 8]),
    )
    def test_fig6_outcome_equal_for_any_seed_pair(self, seed_a, seed_b, count):
        def harness():
            report, obs = _run_instrumented(point_to_point_query(1024, count))
            return {
                "result": report.result,
                "duration": report.duration,
                "flows": _logical(sanitize.flow_fingerprint(obs.flows)),
            }

        flagged, (first, second) = sanitize.run_shuffled(
            harness, seeds=(seed_a, seed_b), label="fig6-property"
        )
        assert flagged.diagnostics == []
        assert first == second
