"""The dynamic sanitizer: SAN codes fire on seeded defects, real
lifecycles stay clean, and the chaos scheduler is wired correctly.

Every test that opens its own :func:`repro.analysis.sanitize.sanitizer`
scope (or deliberately builds wreckage) is marked ``no_sanitize`` so the
suite-wide ``--sanitize`` plugin mode does not double-audit it.
"""

import pytest

from repro.analysis import sanitize
from repro.analysis.defects import DEFECTS
from repro.coordinator.deployer import Deployer
from repro.core.experiments.fig6 import point_to_point_query
from repro.hardware.environment import Environment, EnvironmentConfig
from repro.obs import Instrumentation
from repro.obs.flow import FlowRecorder
from repro.scsql.plan import compile_plan
from repro.sim import ShuffleScheduler, Simulator
from repro.util.errors import SanitizationError

#: The exact code set each seeded-defect harness fires.  A leaked live
#: process (SAN201) necessarily also wedges the drained queue (SAN301),
#: so those two harnesses report both codes.
EXPECTED_CODES = {
    "SAN101": {"SAN101"},
    "SAN201": {"SAN201", "SAN301"},
    "SAN202": {"SAN202"},
    "SAN203": {"SAN203"},
    "SAN204": {"SAN204"},
    "SAN205": {"SAN205"},
    "SAN206": {"SAN206"},
    "SAN301": {"SAN201", "SAN301"},
}

MERGE_QUERY = """
select extract(c)
from sp a, sp b, sp c
where c=sp(count(merge({a,b})), 'bg', 0)
and a=sp(gen_array(100000,4), 'bg', 1)
and b=sp(gen_array(100000,4), 'bg', 2);
"""


def _deployed_fig6(flows=False):
    obs = Instrumentation(flows=FlowRecorder()) if flows else None
    env = Environment(EnvironmentConfig(), obs=obs)
    deployer = Deployer(env)
    plan = compile_plan(point_to_point_query(1024, 8))
    deployment = deployer.deploy(deployer.place(plan))
    return env, deployer, plan, deployment


@pytest.mark.no_sanitize
class TestDefectHarnesses:
    """One intentional bug per code: the executable SAN specification."""

    @pytest.mark.parametrize("code", sorted(DEFECTS))
    def test_defect_fires_exactly_its_codes(self, code):
        report = DEFECTS[code]()
        fired = {diagnostic.code for diagnostic in report.diagnostics}
        assert fired == EXPECTED_CODES[code]

    def test_registry_covers_every_san_code(self):
        from repro.analysis.diagnostics import CATALOG

        san_codes = {code for code in CATALOG if code.startswith("SAN")}
        assert set(DEFECTS) == san_codes

    def test_defect_diagnostics_carry_messages(self):
        report = DEFECTS["SAN204"]()
        (diagnostic,) = report.diagnostics
        assert "defect->ghost" in diagnostic.message


@pytest.mark.no_sanitize
class TestListenerLifecycle:
    """Satellite regression: teardown/migrate detach their flow listeners,
    and external teardown reaps the deployment's own driver processes."""

    def test_teardown_detaches_the_flow_listener(self):
        env, _deployer, _plan, deployment = _deployed_fig6(flows=True)
        assert deployment.owner_tag in env.obs.flows.listener_owners()
        deployment.run()
        deployment.teardown()
        assert deployment.owner_tag not in env.obs.flows.listener_owners()

    def test_migrate_detaches_the_old_generations_listener(self):
        env = Environment(
            EnvironmentConfig(), obs=Instrumentation(flows=FlowRecorder())
        )
        deployer = Deployer(env)
        plan = compile_plan(MERGE_QUERY)
        deployment = deployer.deploy(deployer.place(plan), rp_prefix="q/")
        deployment.start()
        env.sim.run(until=0.005)
        replacement, record = deployer.migrate(
            deployment, plan, "b@2", 3, rp_prefix="q+g1/"
        )
        assert record.ok
        owners = env.obs.flows.listener_owners()
        assert deployment.owner_tag not in owners
        assert owners.count(replacement.owner_tag) == 1
        replacement.start()
        env.sim.run()
        replacement.finish()
        replacement.teardown()
        sanitize.assert_quiescent(env)

    def test_external_teardown_interrupts_the_collector(self):
        """A deployment torn down mid-run must not leave its cm-collector
        blocked on the root result store (the leak SAN203 first caught)."""
        env, _deployer, _plan, deployment = _deployed_fig6()
        deployment.start()
        env.sim.run(until=1e-5)
        deployment.teardown()
        env.sim.run()
        sanitize.assert_quiescent(env)

    def test_same_instant_teardown_never_starts_a_zombie(self):
        """Teardown before the driver's first step (a same-instant fault
        replan) must not let the driver start the RPs of a dead query."""
        env, _deployer, _plan, deployment = _deployed_fig6()
        deployment.start()
        deployment.teardown()
        env.sim.run()
        assert all(
            not rp.live_processes() for rp in deployment.rps.values()
        )
        sanitize.assert_quiescent(env)


@pytest.mark.no_sanitize
class TestSanitizerScope:
    def test_scope_enables_and_restores(self):
        assert not sanitize.enabled()
        with sanitize.sanitizer(label="scope-test", strict=False) as scope:
            assert sanitize.enabled()
            assert sanitize.current() is scope
        assert not sanitize.enabled()

    def test_scopes_do_not_nest(self):
        with sanitize.sanitizer(label="outer", strict=False):
            with pytest.raises(SanitizationError, match="nest"):
                with sanitize.sanitizer(label="inner"):
                    pass

    def test_strict_scope_raises_on_findings(self):
        """A finding recorded anywhere in the scope — here a torus
        registration no deployment owns, surfaced by the env-level
        quiescence audit — raises at scope exit."""
        with pytest.raises(SanitizationError) as excinfo:
            with sanitize.sanitizer(label="strict-test", strict=True):
                env, _deployer, _plan, deployment = _deployed_fig6()
                env.torus.register_stream(0, "leak->nowhere")
                deployment.run()
                deployment.teardown()
                sanitize.assert_quiescent(env, raise_on_findings=False)
        codes = {diagnostic.code for diagnostic in excinfo.value.diagnostics}
        assert "SAN204" in codes

    def test_clean_run_raises_nothing(self):
        with sanitize.sanitizer(label="clean-test", strict=True):
            env, _deployer, _plan, deployment = _deployed_fig6()
            deployment.run()
            deployment.teardown()
            sanitize.assert_quiescent(env)


@pytest.mark.no_sanitize
class TestChaosMode:
    def test_chaos_installs_a_seeded_shuffle_scheduler(self):
        with sanitize.chaos(5):
            scheduler = Simulator().scheduler
            assert isinstance(scheduler, ShuffleScheduler)
            assert scheduler.seed == 5
        assert not isinstance(Simulator().scheduler, ShuffleScheduler)

    def test_run_shuffled_accepts_an_order_independent_harness(self):
        def harness():
            sim = Simulator()
            seen = set()

            def note(tag):
                yield sim.timeout(0.0)
                seen.add(tag)

            for tag in range(6):
                sim.process(note(tag))
            sim.run()
            return sorted(seen)

        report, outcomes = sanitize.run_shuffled(
            harness, seeds=(0, 1, 2), label="order-independent"
        )
        assert report.diagnostics == []
        assert outcomes == [list(range(6))] * 3

    def test_run_shuffled_flags_an_order_dependent_harness(self):
        def harness():
            sim = Simulator()
            order = []

            def note(tag):
                yield sim.timeout(0.0)
                order.append(tag)

            for tag in range(8):
                sim.process(note(tag))
            sim.run()
            return tuple(order)

        report, _outcomes = sanitize.run_shuffled(
            harness, seeds=(0, 1, 2, 3), label="order-dependent"
        )
        assert {d.code for d in report.diagnostics} == {"SAN101"}


@pytest.mark.no_sanitize
class TestAssertQuiescent:
    def test_fresh_environment_is_quiescent(self):
        env = Environment(EnvironmentConfig())
        sanitize.assert_quiescent(env)

    def test_env_lifetime_owners_are_tolerated(self):
        env, _deployer, _plan, deployment = _deployed_fig6(flows=True)
        env.obs.flows.add_listener(  # lint: disable=DET006
            lambda record: None, owner="tolerated-owner"
        )
        deployment.run()
        deployment.teardown()
        sanitize.assert_quiescent(
            env,
            allowed_owners=sanitize.ENV_LIFETIME_OWNERS | {"tolerated-owner"},
        )
        with pytest.raises(SanitizationError) as excinfo:
            sanitize.assert_quiescent(env)
        assert {d.code for d in excinfo.value.diagnostics} == {"SAN206"}
