"""Property test: the static verifier's verdict agrees with the deployer.

The verifier's contract (``repro.analysis.verifier``) is that its placement
pass *replays* deployment exactly, so over arbitrary allocation-directive
mixes on a fresh paper-shaped environment:

* verifier accepts (no error diagnostics)  =>  deployment succeeds, on the
  exact nodes the verifier predicted;
* verifier rejects with errors            =>  deployment raises.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import EnvironmentSnapshot, PlanVerifier
from repro.coordinator.deployer import Deployer
from repro.hardware.environment import Environment, EnvironmentConfig
from repro.scsql.plan import compile_plan
from repro.util.errors import (
    AllocationError,
    HardwareError,
    PlanVerificationError,
)

#: One BlueGene allocation directive, as SCSQL text (None = unconstrained).
#: Constants range past the 32-node torus and inPset past the 4 psets, so
#: nonexistent-node/pset rejections are generated alongside feasible mixes
#: and same-node collisions.
directive_st = st.one_of(
    st.integers(min_value=0, max_value=35).map(str),
    st.just("urr('bg')"),
    st.integers(min_value=0, max_value=4).map(lambda k: f"inPset({k})"),
    st.just("psetrr()"),
    st.none(),
)


def build_query(directives) -> str:
    names = [f"s{i}" for i in range(len(directives))]
    decls = ", ".join(f"sp {name}" for name in names)
    conjuncts = " and ".join(
        f"{name}=sp(gen_array(10,2), 'bg'"
        + (f", {directive})" if directive is not None else ")")
        for name, directive in zip(names, directives)
    )
    if len(names) == 1:
        root = f"count(extract({names[0]}))"
    else:
        root = "count(merge({" + ",".join(names) + "}))"
    return f"select {root} from {decls} where {conjuncts};"


@given(directives=st.lists(directive_st, min_size=1, max_size=8))
@settings(max_examples=80, deadline=None)
def test_verdict_agrees_with_deployment(directives):
    plan = compile_plan(build_query(directives))
    verifier = PlanVerifier(EnvironmentSnapshot.from_config())
    report = verifier.verify(plan)

    deployer = Deployer(Environment(EnvironmentConfig()))
    try:
        deployment = deployer.deploy(deployer.place(plan))
    except (AllocationError, HardwareError, PlanVerificationError) as exc:
        assert not report.ok(), (
            f"verifier accepted but deployment raised {exc!r}"
        )
        return
    assert report.ok(), (
        "verifier rejected but deployment succeeded:\n"
        + report.format_text(verbose=True)
    )

    # Exact-replay guarantee: the nodes the verifier acquired in its
    # snapshot are the nodes the deployment acquired for the same sps.
    predicted = {
        owner.split(":", 1)[1]: node_id
        for node_id, owner in verifier._owners.items()
    }
    actual = {
        sp_id: rp.node.node_id
        for sp_id, rp in deployment.rps.items()
        if sp_id in deployment.graph.sps
    }
    assert predicted == actual
    deployer.teardown()


@given(directives=st.lists(directive_st, min_size=1, max_size=4))
@settings(max_examples=30, deadline=None)
def test_concurrent_verdicts_agree_with_shared_environment(directives):
    """Two copies of one plan, one environment: the verifier's cross-plan
    pass (SCSQ201) agrees with submitting both to one deployer."""
    plan_text = build_query(directives)
    verifier = PlanVerifier(EnvironmentSnapshot.from_config())
    first = verifier.verify(compile_plan(plan_text), label="first")
    second = verifier.verify(compile_plan(plan_text), label="second")

    env = Environment(EnvironmentConfig())
    deployer = Deployer(env)

    def try_deploy():
        try:
            deployer.deploy(deployer.place(compile_plan(plan_text)))
            return True
        except (AllocationError, HardwareError, PlanVerificationError):
            return False

    assert first.ok() == try_deploy()
    # The second verdict only binds when the first deployment went through
    # (a failed first deploy may leave partial allocations the verifier's
    # all-or-nothing snapshot replay does not model).
    if first.ok():
        assert second.ok() == try_deploy()
