"""``python -m repro analyze``: exit codes, output modes, statement sources."""

import json
from pathlib import Path

import pytest

from repro.__main__ import build_parser
from repro.analysis.cli import split_statements

CLEAN_QUERY = (
    "select count(extract(a)) from sp a where a=sp(gen_array(10,5), 'bg', 1)"
)
OVERSUBSCRIBED_QUERY = (
    "select count(merge({a,b})) from sp a, sp b "
    "where a=sp(gen_array(10,5), 'bg', 1) and b=sp(gen_array(10,5), 'bg', 1)"
)
EXHAUSTED_QUERY = (
    "select count(merge(a)) from bag of sp a, integer n "
    "where a=spv((select gen_array(10,5) from integer i "
    "where i in iota(1,n)), 'bg', inPset(0)) and n=9"
)

REPO_ROOT = Path(__file__).resolve().parent.parent.parent


def analyze(*argv):
    args = build_parser().parse_args(["analyze", *argv])
    return args.func(args)


class TestExitCodes:
    def test_clean_query_exits_zero(self, capsys):
        assert analyze(CLEAN_QUERY) == 0
        assert "0 failing" in capsys.readouterr().out

    def test_oversubscription_exits_nonzero_with_code(self, capsys):
        assert analyze(OVERSUBSCRIBED_QUERY) == 1
        assert "SCSQ103" in capsys.readouterr().out

    def test_exhaustion_exits_nonzero_with_distinct_code(self, capsys):
        assert analyze(EXHAUSTED_QUERY) == 1
        assert "SCSQ104" in capsys.readouterr().out

    def test_compile_failure_is_reported_not_raised(self, capsys):
        assert analyze("select count(from from") == 1
        assert "SCSQ000" in capsys.readouterr().out

    def test_no_input_exits_two(self, capsys):
        assert analyze() == 2

    def test_strict_promotes_warnings_to_failure(self, capsys):
        cross_pset = (
            "select extract(b) from sp a, sp b "
            "where b=sp(count(extract(a)), 'bg', 0) "
            "and a=sp(gen_array(10,5), 'bg', 8)"
        )
        assert analyze(cross_pset) == 0
        assert analyze("--strict", cross_pset) == 1


class TestStatementSources:
    def test_multiple_statements_per_argument(self, capsys):
        assert analyze(f"{CLEAN_QUERY}; {OVERSUBSCRIBED_QUERY};") == 1
        out = capsys.readouterr().out
        assert "2 plan(s) verified" in out
        assert "1 failing" in out

    def test_file_source(self, tmp_path, capsys):
        script = tmp_path / "queries.scsql"
        script.write_text(f"{CLEAN_QUERY};\n{CLEAN_QUERY};\n")
        assert analyze("--file", str(script)) == 0
        assert "2 plan(s) verified" in capsys.readouterr().out

    def test_create_function_registers_for_later_statements(self, capsys):
        define = (
            "create function pair() -> stream "
            "as select count(extract(a)) from sp a "
            "where a=sp(gen_array(10,5), 'bg')"
        )
        assert analyze(f"{define}; select pair() from integer z where z=0;") == 0
        assert "1 plan(s) verified" in capsys.readouterr().out

    @pytest.mark.parametrize(
        "example",
        sorted(p.name for p in (REPO_ROOT / "examples").glob("*.py")),
    )
    def test_every_example_verifies_clean(self, example, capsys):
        assert analyze("--example", str(REPO_ROOT / "examples" / example)) == 0

    def test_example_without_hook_is_an_error(self, tmp_path):
        script = tmp_path / "no_hook.py"
        script.write_text("X = 1\n")
        with pytest.raises(SystemExit, match="scsql_queries"):
            analyze("--example", str(script))


class TestJSONOutput:
    def test_json_payload_shape(self, capsys):
        assert analyze("--json", CLEAN_QUERY, OVERSUBSCRIBED_QUERY) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False
        assert len(payload["reports"]) == 2
        clean, failing = payload["reports"]
        assert clean["diagnostics"] == []
        assert failing["diagnostics"][0]["code"] == "SCSQ103"


class TestSplitStatements:
    def test_respects_quoted_semicolons(self):
        statements = split_statements("select grep('a;b', f) from x; select 1;")
        assert len(statements) == 2
        assert "a;b" in statements[0]

    def test_drops_empty_fragments(self):
        assert split_statements(";;  ;\n") == []
