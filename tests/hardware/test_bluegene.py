"""Unit tests for the BlueGene machine model."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.hardware.bluegene import BlueGene, BlueGeneConfig
from repro.hardware.node import NodeKind
from repro.util.errors import HardwareError


class TestConfig:
    def test_default_is_the_paper_partition(self):
        config = BlueGeneConfig()
        assert config.num_compute_nodes == 32
        assert config.num_psets == 4

    def test_indivisible_psets_rejected(self):
        with pytest.raises(HardwareError):
            BlueGeneConfig(torus_shape=(3, 3, 1), pset_size=8)

    def test_bad_shape_rejected(self):
        with pytest.raises(HardwareError):
            BlueGeneConfig(torus_shape=(0, 4, 2))


class TestNumbering:
    def test_x_major_enumeration(self):
        machine = BlueGene()
        # Paper figure 7: nodes 0,1,2 form a line along X; node 4 is +Y of 0.
        assert machine.coord_of(0) == (0, 0, 0)
        assert machine.coord_of(1) == (1, 0, 0)
        assert machine.coord_of(2) == (2, 0, 0)
        assert machine.coord_of(4) == (0, 1, 0)
        assert machine.coord_of(16) == (0, 0, 1)

    def test_coord_index_roundtrip(self):
        machine = BlueGene()
        for index in range(machine.config.num_compute_nodes):
            assert machine.index_of(machine.coord_of(index)) == index

    def test_unknown_node_rejected(self):
        machine = BlueGene()
        with pytest.raises(HardwareError):
            machine.node(32)
        with pytest.raises(HardwareError):
            machine.index_of((9, 9, 9))


class TestPsets:
    def test_pset_membership_is_contiguous(self):
        machine = BlueGene()
        assert machine.pset_of(0) == 0
        assert machine.pset_of(7) == 0
        assert machine.pset_of(8) == 1
        assert machine.pset_of(31) == 3

    def test_nodes_in_pset(self):
        machine = BlueGene()
        members = machine.nodes_in_pset(1)
        assert [n.index for n in members] == list(range(8, 16))

    def test_unknown_pset_rejected(self):
        with pytest.raises(HardwareError):
            BlueGene().nodes_in_pset(4)

    def test_io_node_mapping(self):
        machine = BlueGene()
        io = machine.io_node_of(12)
        assert io.kind is NodeKind.BG_IO
        assert io.index == 1

    def test_io_nodes_cannot_compute(self):
        machine = BlueGene()
        assert all(not io.is_available for io in machine.io_nodes)


class TestCnkConstraints:
    def test_one_process_per_compute_node(self):
        machine = BlueGene()
        node = machine.node(3)
        node.acquire()
        assert not node.is_available
        with pytest.raises(HardwareError):
            node.acquire()
        node.release()
        assert node.is_available

    def test_release_without_acquire_rejected(self):
        with pytest.raises(HardwareError):
            BlueGene().node(0).release()


@given(
    shape=st.tuples(st.integers(1, 6), st.integers(1, 6), st.integers(1, 4)),
    pset=st.sampled_from([1, 2, 4, 8]),
)
def test_every_valid_partition_is_consistent(shape, pset):
    """For any divisible shape, numbering and psets stay consistent."""
    total = shape[0] * shape[1] * shape[2]
    if total % pset:
        with pytest.raises(HardwareError):
            BlueGeneConfig(torus_shape=shape, pset_size=pset)
        return
    machine = BlueGene(BlueGeneConfig(torus_shape=shape, pset_size=pset))
    assert len(machine.compute_nodes) == total
    assert len(machine.io_nodes) == total // pset
    for index in range(total):
        assert machine.index_of(machine.coord_of(index)) == index
        assert machine.pset_of(index) == index // pset
