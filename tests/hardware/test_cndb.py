"""Unit tests for the compute node database."""

import pytest

from repro.hardware.bluegene import BlueGene
from repro.hardware.cndb import ComputeNodeDatabase
from repro.hardware.linux_cluster import LinuxCluster, LinuxClusterConfig
from repro.util.errors import HardwareError


@pytest.fixture
def bg_cndb():
    return ComputeNodeDatabase("bg", BlueGene().compute_nodes)


@pytest.fixture
def be_cndb():
    return ComputeNodeDatabase("be", LinuxCluster(LinuxClusterConfig("be", 4)).nodes)


class TestBasics:
    def test_empty_rejected(self):
        with pytest.raises(HardwareError):
            ComputeNodeDatabase("x", [])

    def test_lookup(self, bg_cndb):
        assert bg_cndb.node(5).index == 5
        with pytest.raises(HardwareError):
            bg_cndb.node(99)

    def test_available_nodes(self, bg_cndb):
        assert len(bg_cndb.available_nodes()) == 32
        bg_cndb.node(0).acquire()
        assert len(bg_cndb.available_nodes()) == 31


class TestRoundRobin:
    def test_next_round_robin_cycles(self, be_cndb):
        seen = [be_cndb.next_round_robin() for _ in range(6)]
        assert seen == [0, 1, 2, 3, 0, 1]

    def test_round_robin_iterator_covers_cluster(self, be_cndb):
        assert sorted(be_cndb.round_robin()) == [0, 1, 2, 3]

    def test_advance_cursor(self, be_cndb):
        be_cndb.advance_round_robin(3)
        assert be_cndb.next_round_robin() == 3


class TestPsetQueries:
    def test_nodes_in_pset(self, bg_cndb):
        assert bg_cndb.nodes_in_pset(2) == list(range(16, 24))

    def test_unknown_pset(self, bg_cndb):
        with pytest.raises(HardwareError):
            bg_cndb.nodes_in_pset(9)

    def test_psetrr_alternates_psets(self, bg_cndb):
        sequence = bg_cndb.pset_round_robin()
        # Successive entries belong to successive psets (0,1,2,3,0,1,...).
        machine = BlueGene()
        psets = [machine.pset_of(i) for i in sequence[:8]]
        assert psets == [0, 1, 2, 3, 0, 1, 2, 3]
        assert sorted(sequence) == list(range(32))

    def test_psetrr_requires_psets(self, be_cndb):
        with pytest.raises(HardwareError):
            be_cndb.pset_round_robin()


class TestFirstAvailable:
    def test_naive_takes_next_available(self, bg_cndb):
        assert bg_cndb.first_available().index == 0
        bg_cndb.node(0).acquire()
        # Without an allocation sequence the cursor has not moved (the
        # iterator starts at the cursor and skips busy nodes).
        assert bg_cndb.first_available().index == 1

    def test_allocation_sequence_order_respected(self, bg_cndb):
        assert bg_cndb.first_available([5, 3, 1]).index == 5
        bg_cndb.node(5).acquire()
        assert bg_cndb.first_available([5, 3, 1]).index == 3

    def test_no_available_node_fails(self, bg_cndb):
        bg_cndb.node(7).acquire()
        with pytest.raises(HardwareError):
            bg_cndb.first_available([7])
