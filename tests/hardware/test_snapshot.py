"""Snapshot / fork lifecycle of the environment template.

The contract under test: a :class:`TopologySnapshot` is a *frozen copy*
of the template's mutable occupancy (CNDB cursors, node status), so no
amount of later mutation — by the template, by forks, by other snapshots
being restored — can change what a captured snapshot restores to.
"""

import pytest

from repro.hardware.bluegene import BlueGeneConfig
from repro.hardware.environment import (
    BLUEGENE,
    EnvironmentConfig,
    EnvironmentTemplate,
    TopologySnapshot,
)
from repro.util.errors import HardwareError


@pytest.fixture
def template():
    return EnvironmentTemplate(EnvironmentConfig())


def _occupy(template, cluster=BLUEGENE, nodes=3, processes=2):
    """Dirty the shared occupancy the way a deployment would."""
    cndb = template.cndbs[cluster]
    cndb._rr_cursor = nodes
    for index in range(nodes):
        cndb._nodes[index].running_processes = processes


class TestSnapshotCapture:
    def test_snapshot_is_a_frozen_value(self, template):
        snapshot = template.snapshot()
        assert isinstance(snapshot, TopologySnapshot)
        with pytest.raises(AttributeError):
            snapshot.cursors = ()

    def test_snapshot_copies_not_aliases(self, template):
        """Mutating the template after capture leaves the snapshot intact."""
        before = template.snapshot()
        _occupy(template)
        after = template.snapshot()
        assert before != after
        template.restore(before)
        assert template.snapshot() == before

    def test_pristine_equals_fresh_build(self, template):
        assert template.snapshot() == template._pristine
        _occupy(template)
        template.reset()
        assert template.snapshot() == template._pristine


class TestRestore:
    def test_restore_roundtrip(self, template):
        _occupy(template, nodes=5, processes=3)
        warmed = template.snapshot()
        template.reset()
        assert template.snapshot() == template._pristine
        template.restore(warmed)
        assert template.snapshot() == warmed
        cndb = template.cndbs[BLUEGENE]
        assert cndb._rr_cursor == 5
        assert cndb._nodes[0].running_processes == 3

    def test_restore_none_means_pristine(self, template):
        _occupy(template)
        template.restore(None)
        assert template.snapshot() == template._pristine

    def test_mismatched_topology_rejected(self, template):
        other = EnvironmentTemplate(
            EnvironmentConfig(bluegene=BlueGeneConfig(torus_shape=(4, 4, 4)))
        )
        alien = other.snapshot()
        with pytest.raises(HardwareError, match="does not belong"):
            template.restore(alien)

    def test_seed_does_not_bind_a_snapshot(self, template):
        """Snapshots key on topology only; seeds vary per fork."""
        snapshot = template.snapshot()
        reseeded = EnvironmentTemplate(EnvironmentConfig(seed=99))
        reseeded.restore(snapshot)  # must not raise


class TestFork:
    def test_fork_starts_pristine_by_default(self, template):
        _occupy(template)
        env = template.fork(seed=7)
        assert env.config.seed == 7
        assert env.template is template
        assert template.snapshot() == template._pristine

    def test_fork_from_snapshot_starts_warm(self, template):
        _occupy(template, nodes=4, processes=1)
        warmed = template.snapshot()
        template.reset()
        env = template.fork(seed=1, snapshot=warmed)
        assert env.template is template
        assert template.snapshot() == warmed

    def test_fork_mutations_never_leak_into_pristine(self, template):
        pristine = template._pristine
        env = template.fork(seed=3)
        env.cndbs[BLUEGENE]._nodes[0].running_processes = 9
        assert template._pristine == pristine
        template.fork(seed=4)  # a new fork restores pristine
        assert template.snapshot() == pristine

    def test_sibling_forks_are_isolated(self, template):
        """Each fork restores the shared occupancy: no cross-talk."""
        first = template.fork(seed=0)
        first.cndbs[BLUEGENE]._rr_cursor = 11
        second = template.fork(seed=1)
        assert second.cndbs[BLUEGENE]._rr_cursor == 0

    def test_forks_have_independent_simulators(self, template):
        first = template.fork(seed=0)
        second = template.fork(seed=1)
        assert first.sim is not second.sim
        fired = []

        def waiter():
            yield second.sim.timeout(1.0)
            fired.append(second.sim.now)

        second.sim.process(waiter())
        second.sim.run()
        assert fired == [1.0]
        assert first.sim.now == 0.0

    def test_fork_obs_attaches_to_the_fork_only(self, template):
        from repro.obs import Instrumentation
        from repro.obs.tracer import NULL_TRACER

        obs = Instrumentation(tracer=NULL_TRACER)
        observed = template.fork(seed=0, obs=obs)
        plain = template.fork(seed=1)
        assert observed.obs is obs
        assert plain.obs is not obs

    def test_restore_snapshot_via_environment_ctor(self, template):
        """Environment(config, restore=...) on a fresh template applies it."""
        from repro.hardware.environment import Environment

        _occupy(template, nodes=2)
        warmed = template.snapshot()
        env = Environment(EnvironmentConfig(), restore=warmed)
        assert env.template.snapshot() == warmed
        assert env.template is not template
