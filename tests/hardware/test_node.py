"""Unit tests for the node model."""

import pytest

from repro.hardware.linux_cluster import LinuxCluster, LinuxClusterConfig
from repro.hardware.node import (
    PPC440D,
    CpuSpec,
    Node,
    NodeCapabilities,
    NodeKind,
)
from repro.util.errors import HardwareError


class TestCapabilities:
    def test_cnk_is_single_process_no_server(self):
        caps = NodeCapabilities.cnk()
        assert caps.max_processes == 1
        assert not caps.can_listen
        assert caps.can_compute

    def test_io_node_cannot_compute(self):
        caps = NodeCapabilities.io_node()
        assert not caps.can_compute
        assert caps.can_listen

    def test_linux_is_unconstrained(self):
        caps = NodeCapabilities.linux()
        assert caps.max_processes is None
        assert caps.can_listen and caps.can_compute


class TestNode:
    def _linux_node(self):
        return LinuxCluster(LinuxClusterConfig("be", 1)).node(0)

    def test_bluegene_compute_needs_coordinate(self):
        with pytest.raises(HardwareError):
            Node(
                node_id="bg:0",
                cluster="bg",
                index=0,
                kind=NodeKind.BG_COMPUTE,
                cpu=PPC440D,
                memory_bytes=1,
                capabilities=NodeCapabilities.cnk(),
            )

    def test_linux_node_hosts_many_processes(self):
        node = self._linux_node()
        for _ in range(10):
            node.acquire()
        assert node.is_available
        assert node.running_processes == 10

    def test_cluster_size_validation(self):
        with pytest.raises(HardwareError):
            LinuxClusterConfig("be", 0)

    def test_cluster_node_lookup_error(self):
        cluster = LinuxCluster(LinuxClusterConfig("fe", 2))
        with pytest.raises(HardwareError):
            cluster.node(2)

    def test_cpu_spec_str(self):
        spec = CpuSpec(model="TestChip", clock_hz=1e9, cores=2)
        assert "TestChip" in str(spec)
        assert "1000" in str(spec)
