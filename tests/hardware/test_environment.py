"""Unit tests for the composed environment."""

import pytest

from repro.hardware.environment import BACKEND, BLUEGENE, FRONTEND
from repro.hardware.node import PPC440D, PPC970
from repro.net.channels import LatencyChannel, MpiChannel, TcpChannel
from repro.sim import Store
from repro.util.errors import HardwareError


class TestLookup:
    def test_clusters_present(self, env):
        assert set(env.cluster_names()) == {"fe", "be", "bg"}
        assert env.cndb(BLUEGENE).num_nodes() == 32
        assert env.cndb(BACKEND).num_nodes() == 4
        assert env.cndb(FRONTEND).num_nodes() == 2

    def test_unknown_cluster_rejected(self, env):
        with pytest.raises(HardwareError):
            env.cndb("cloud")

    def test_node_lookup(self, env):
        assert env.node("bg", 3).node_id == "bg:3"


class TestCpus:
    def test_bluegene_node_has_one_compute_cpu(self, env):
        cpu = env.cpu(env.node("bg", 0))
        assert cpu.capacity == 1

    def test_linux_node_has_two_cores(self, env):
        cpu = env.cpu(env.node("be", 0))
        assert cpu.capacity == 2

    def test_cpu_resource_is_cached(self, env):
        node = env.node("bg", 1)
        assert env.cpu(node) is env.cpu(node)

    def test_time_scale_by_clock(self, env):
        assert env.cpu_time_scale(env.node("bg", 0)) == pytest.approx(1.0)
        expected = PPC440D.clock_hz / PPC970.clock_hz
        assert env.cpu_time_scale(env.node("be", 0)) == pytest.approx(expected)


class TestChannelSelection:
    """The paper's driver rule: MPI inside BG, TCP between clusters."""

    def _open(self, env, src, dst):
        store = Store(env.sim)
        return env.open_channel(src, dst, store, "test-stream")

    def test_intra_bluegene_uses_mpi(self, env):
        channel = self._open(env, env.node("bg", 1), env.node("bg", 0))
        assert isinstance(channel, MpiChannel)

    def test_backend_to_bluegene_uses_tcp(self, env):
        channel = self._open(env, env.node("be", 0), env.node("bg", 0))
        assert isinstance(channel, TcpChannel)

    def test_other_pairs_use_latency_path(self, env):
        pairs = [
            (env.node("bg", 0), env.node("fe", 0)),
            (env.node("fe", 0), env.node("be", 0)),
            (env.node("be", 0), env.node("be", 1)),
        ]
        for src, dst in pairs:
            assert isinstance(self._open(env, src, dst), LatencyChannel)

    def test_tcp_buffer_is_fixed_by_the_stack(self, env):
        channel = self._open(env, env.node("be", 0), env.node("bg", 0))
        assert channel.preferred_buffer_bytes == env.params.tcp.segment_bytes

    def test_mpi_buffer_is_configurable(self, env):
        channel = self._open(env, env.node("bg", 1), env.node("bg", 0))
        assert channel.preferred_buffer_bytes is None
