"""Unit tests for RunningProcess lifecycle and wiring."""

import pytest

from repro.engine.rp import RunningProcess
from repro.engine.settings import ExecutionSettings
from repro.engine.sqep import plan_input, plan_op
from repro.util.errors import QueryExecutionError


def make_rp(env, plan, node_index=1, rp_id="rp-under-test"):
    return RunningProcess(
        rp_id, env, env.node("bg", node_index), plan, ExecutionSettings()
    )


class TestLifecycle:
    def test_construction_reserves_the_node(self, env):
        make_rp(env, plan_op("iota", 1, 3))
        assert not env.node("bg", 1).is_available  # CNK: one process

    def test_double_build_rejected(self, env):
        rp = make_rp(env, plan_op("iota", 1, 3))
        rp.build()
        with pytest.raises(QueryExecutionError, match="already built"):
            rp.build()

    def test_start_requires_build(self, env):
        rp = make_rp(env, plan_op("iota", 1, 3))
        with pytest.raises(QueryExecutionError, match="build"):
            rp.start()

    def test_double_start_rejected(self, env):
        rp = make_rp(env, plan_op("iota", 1, 3))
        rp.build()
        rp.start()
        with pytest.raises(QueryExecutionError, match="already started"):
            rp.start()

    def test_subscribe_after_start_rejected(self, env):
        producer = make_rp(env, plan_op("iota", 1, 3), node_index=1, rp_id="p")
        consumer = make_rp(
            env, plan_op("count", children=(plan_input("p"),)), node_index=2, rp_id="c"
        )
        producer.build()
        ports = consumer.build()
        producer.start()
        with pytest.raises(QueryExecutionError, match="after start"):
            producer.add_subscriber(consumer, ports[0].inbox)


class TestWiring:
    def test_input_ports_match_plan_leaves(self, env):
        plan = plan_op("merge", children=(plan_input("x"), plan_input("y")))
        rp = make_rp(env, plan)
        ports = rp.build()
        assert [p.producer_sp for p in ports] == ["x", "y"]

    def test_fan_out_duplicates_the_stream(self, env):
        """Two subscribers of one producer each receive the full stream —
        the paper's radix2 split (a and b both extract c)."""
        producer = make_rp(env, plan_op("iota", 1, 5), node_index=1, rp_id="p")
        left = make_rp(
            env, plan_op("sum", children=(plan_input("p"),)), node_index=2, rp_id="l"
        )
        right = make_rp(
            env, plan_op("count", children=(plan_input("p"),)), node_index=4, rp_id="r"
        )
        producer.build()
        left_ports = left.build()
        right_ports = right.build()
        producer.add_subscriber(left, left_ports[0].inbox)
        producer.add_subscriber(right, right_ports[0].inbox)
        for rp in (producer, left, right):
            rp.start()

        def harvest(rp):
            value = yield rp.result_store.get()
            return value

        sums = env.sim.process(harvest(left))
        counts = env.sim.process(harvest(right))
        env.sim.run()
        assert sums.value == 15
        assert counts.value == 5
        assert producer.bytes_sent == 2 * 5 * 8  # both subscribers, 5 ints

    def test_join_releases_the_node(self, env):
        rp = make_rp(env, plan_op("iota", 1, 2))
        rp.build()
        rp.start()

        def drain():
            while True:
                from repro.engine.objects import END_OF_STREAM

                obj = yield rp.result_store.get()
                if obj is END_OF_STREAM:
                    break
            yield from rp.join()

        env.sim.run_process(drain())
        assert env.node("bg", 1).is_available

    def test_repr(self, env):
        rp = make_rp(env, plan_op("iota", 1, 2))
        assert "rp-under-test" in repr(rp)
        assert "bg:1" in repr(rp)
