"""Unit tests for the sender/receiver drivers and the inbox."""

import pytest

from repro.engine.context import ExecutionContext
from repro.engine.drivers import ReceiverDriver, SenderDriver
from repro.engine.inbox import Inbox
from repro.engine.objects import SyntheticArray
from repro.engine.settings import ExecutionSettings
from repro.net.channels import MpiChannel
from repro.sim import Store
from repro.util.errors import SimulationError
from tests.conftest import drain_store, feed_store


def pipe(env, objects, buffer_bytes=1000, double_buffering=True):
    """Send objects bg:1 -> bg:0 through real drivers over the torus."""
    settings = ExecutionSettings(
        mpi_buffer_bytes=buffer_bytes, double_buffering=double_buffering
    )
    src_ctx = ExecutionContext(env, env.node("bg", 1), settings)
    dst_ctx = ExecutionContext(env, env.node("bg", 0), settings)
    inbox = Inbox(env.sim, slots=settings.driver_slots, name="test")
    channel = MpiChannel(env.sim, env.node("bg", 1), env.node("bg", 0), inbox, env.torus)
    feed = Store(env.sim, capacity=4)
    output = Store(env.sim, capacity=4)
    sender = SenderDriver(src_ctx, feed, channel, "s")
    receiver = ReceiverDriver(dst_ctx, inbox, output, "s")
    feed_store(env.sim, feed, objects)
    env.sim.process(sender.run(), name="sender")
    env.sim.process(receiver.run(), name="receiver")
    collector = drain_store(env.sim, output)
    env.sim.run()
    assert collector.ok, collector.value
    return collector.value, sender, receiver, env.sim.now


class TestDriverPipe:
    def test_objects_survive_the_pipe(self, env):
        objects = [SyntheticArray(nbytes=2500, sequence=i) for i in range(5)]
        received, sender, receiver, _ = pipe(env, objects)
        assert received == objects

    def test_mixed_small_objects(self, env):
        objects = [1, "two", 3.0, SyntheticArray(nbytes=5000)]
        received, *_ = pipe(env, objects)
        assert received == objects

    def test_empty_stream_only_eos(self, env):
        received, sender, receiver, _ = pipe(env, [])
        assert received == []
        assert sender.buffers_sent == 0

    def test_statistics_track_bytes(self, env):
        objects = [SyntheticArray(nbytes=1000) for _ in range(4)]
        received, sender, receiver, _ = pipe(env, objects)
        assert sender.bytes_sent == 4000
        assert receiver.bytes_received == 4000
        assert sender.buffers_sent == receiver.buffers_received

    def test_double_buffering_is_faster_for_large_buffers(self):
        from repro.hardware.environment import Environment, EnvironmentConfig

        objects = [SyntheticArray(nbytes=400_000) for _ in range(10)]
        _, _, _, single_time = pipe(
            Environment(EnvironmentConfig()), objects, 100_000, double_buffering=False
        )
        _, _, _, double_time = pipe(
            Environment(EnvironmentConfig()), objects, 100_000, double_buffering=True
        )
        assert double_time < single_time

    def test_tcp_channel_overrides_buffer_size(self, env):
        settings = ExecutionSettings(mpi_buffer_bytes=123)
        ctx = ExecutionContext(env, env.node("be", 0), settings)
        inbox = Inbox(env.sim, slots=2)
        channel = env.open_channel(env.node("be", 0), env.node("bg", 0), inbox, "s")
        sender = SenderDriver(ctx, Store(env.sim), channel, "s")
        assert sender.buffer_bytes == env.params.tcp.segment_bytes


class TestInbox:
    def test_slot_validation(self, sim):
        with pytest.raises(SimulationError):
            Inbox(sim, slots=0)

    def test_put_blocks_until_release(self, sim):
        from repro.net.message import WireBuffer

        inbox = Inbox(sim, slots=1)
        deposited = []

        def network():
            for i in range(2):
                yield inbox.put(WireBuffer.data("s", "n", 10, []))
                deposited.append((i, sim.now))

        def driver():
            yield inbox.get()
            yield sim.timeout(5.0)  # de-marshal the first buffer
            yield inbox.release()
            yield inbox.get()
            yield inbox.release()

        sim.process(network())
        sim.process(driver())
        sim.run()
        # The second deposit had to wait for the release at t=5.
        assert deposited[0][1] == 0.0
        assert deposited[1][1] == pytest.approx(5.0)

    def test_two_slots_allow_overlap(self, sim):
        from repro.net.message import WireBuffer

        inbox = Inbox(sim, slots=2)
        deposited = []

        def network():
            for i in range(2):
                yield inbox.put(WireBuffer.data("s", "n", 10, []))
                deposited.append(sim.now)

        sim.process(network())
        sim.run()
        assert deposited == [0.0, 0.0]
        assert inbox.depth == 2
