"""Unit tests for window aggregation and grep operators."""

import pytest

from repro.engine.operators import Grep, WindowAggregate
from repro.util.errors import QueryExecutionError
from repro.workloads import corpus
from tests.conftest import run_operator


class TestWindowAggregate:
    def test_sliding_sum(self, env):
        out = run_operator(env, WindowAggregate, [[1, 2, 3, 4, 5]], fn="sum", size=3)
        assert out == [6, 9, 12]

    def test_slide_skips_emissions(self, env):
        out = run_operator(
            env, WindowAggregate, [[1, 2, 3, 4, 5, 6]], fn="sum", size=2, slide=2
        )
        assert out == [3, 7, 11]

    def test_avg_max_min_count(self, env):
        stream = [4, 8, 6]
        assert run_operator(env, WindowAggregate, [stream], fn="avg", size=2) == [6.0, 7.0]
        assert run_operator(env, WindowAggregate, [stream], fn="max", size=2) == [8, 8]
        assert run_operator(env, WindowAggregate, [stream], fn="min", size=2) == [4, 6]
        assert run_operator(env, WindowAggregate, [stream], fn="count", size=2) == [2, 2]

    def test_short_stream_emits_nothing(self, env):
        assert run_operator(env, WindowAggregate, [[1]], fn="sum", size=3) == []

    def test_unknown_function_rejected(self, env):
        with pytest.raises(QueryExecutionError):
            run_operator(env, WindowAggregate, [[1]], fn="median", size=2)

    def test_bad_geometry_rejected(self, env):
        with pytest.raises(QueryExecutionError):
            run_operator(env, WindowAggregate, [[1]], fn="sum", size=0)
        with pytest.raises(QueryExecutionError):
            run_operator(env, WindowAggregate, [[1]], fn="sum", size=2, slide=0)


class TestGrep:
    def test_finds_planted_markers(self, env):
        name = corpus.filename(3)
        out = run_operator(env, Grep, [], pattern=corpus.MARKER, filename=name)
        assert len(out) == corpus.expected_marker_count()
        assert all(corpus.MARKER in line for line in out)

    def test_no_matches(self, env):
        out = run_operator(
            env, Grep, [], pattern="DEFINITELY-ABSENT", filename=corpus.filename(0)
        )
        assert out == []

    def test_regex_patterns_supported(self, env):
        out = run_operator(
            env, Grep, [], pattern=r"NE{2}DLE", filename=corpus.filename(1)
        )
        assert len(out) == corpus.expected_marker_count()

    def test_bad_pattern_rejected(self, env):
        with pytest.raises(QueryExecutionError):
            run_operator(env, Grep, [], pattern="(unclosed", filename=corpus.filename(0))

    def test_unknown_file_rejected(self, env):
        with pytest.raises(QueryExecutionError):
            run_operator(env, Grep, [], pattern="x", filename="no-such-file.txt")
