"""Tests for execution monitoring (paper Figure 3, responsibility v)."""

import pytest

from repro.hardware.environment import Environment, EnvironmentConfig
from repro.obs import Instrumentation, MetricsRegistry
from repro.obs.tracer import NULL_TRACER
from repro.scsql.session import SCSQSession

QUERY = (
    "select extract(b) from sp a, sp b "
    "where b=sp(count(extract(a)), 'bg', 0) "
    "and a=sp(gen_array(50000,4), 'bg', 1);"
)


@pytest.fixture(scope="module")
def report():
    session = SCSQSession()
    return session.execute(QUERY)


class TestRpStatistics:
    def test_every_rp_has_a_snapshot(self, report):
        assert set(report.rp_statistics) == set(report.rp_placements)

    def test_operator_counters(self, report):
        generator = report.rp_statistics["a@1"]
        counter = report.rp_statistics["b@2"]
        gen_op = {op.name: op for op in generator.operators}["gen_array"]
        count_op = {op.name: op for op in counter.operators}["count"]
        assert gen_op.objects_out == 4
        assert count_op.objects_in == 4
        assert count_op.objects_out == 1

    def test_stream_volumes_balance(self, report):
        generator = report.rp_statistics["a@1"]
        counter = report.rp_statistics["b@2"]
        assert generator.bytes_sent == 4 * 50_000
        assert counter.bytes_received == generator.bytes_sent

    def test_cpu_time_recorded(self, report):
        assert report.rp_statistics["a@1"].cpu_busy_time > 0
        assert report.rp_statistics["b@2"].cpu_busy_time > 0

    def test_describe_renders(self, report):
        text = report.describe()
        assert "result: [4]" in text
        assert "gen_array" in text
        assert "duration" in text
        per_rp = report.rp_statistics["a@1"].describe()
        assert "a@1" in per_rp and "bg:1" in per_rp


class TestMetricsBridge:
    """RP statistics publish into the obs metrics registry (PR-2 satellite)."""

    def test_publish_sets_expected_gauges(self, report):
        metrics = MetricsRegistry()
        stats = report.rp_statistics["a@1"]
        stats.publish(metrics)
        assert metrics.gauges["rp.a@1.cpu_busy_s"].value == stats.cpu_busy_time
        assert metrics.gauges["rp.a@1.bytes_sent"].value == 4 * 50_000
        assert (
            metrics.gauges["rp.a@1.operator.objects_out[gen_array]"].value == 4
        )
        sent_gauges = [n for n in metrics.gauges if n.startswith("rp.a@1.sent.bytes[")]
        assert sent_gauges

    def test_publish_is_idempotent(self, report):
        metrics = MetricsRegistry()
        stats = report.rp_statistics["b@2"]
        stats.publish(metrics)
        stats.publish(metrics)
        assert metrics.gauges["rp.b@2.bytes_received"].value == 4 * 50_000

    def test_instrumented_run_snapshots_rp_gauges(self):
        """client_manager publishes every RP's counters before snapshot."""
        obs = Instrumentation(tracer=NULL_TRACER)
        session = SCSQSession(Environment(EnvironmentConfig(), obs=obs))
        report = session.execute(QUERY)
        assert report.metrics is not None
        rp_gauges = [n for n in report.metrics.gauges if n.startswith("rp.")]
        assert any(n == "rp.a@1.cpu_busy_s" for n in rp_gauges)
        assert any(n.startswith("rp.b@2.operator.objects_in[") for n in rp_gauges)
