"""Tests for execution monitoring (paper Figure 3, responsibility v)."""

import pytest

from repro.scsql.session import SCSQSession


@pytest.fixture(scope="module")
def report():
    session = SCSQSession()
    return session.execute(
        "select extract(b) from sp a, sp b "
        "where b=sp(count(extract(a)), 'bg', 0) "
        "and a=sp(gen_array(50000,4), 'bg', 1);"
    )


class TestRpStatistics:
    def test_every_rp_has_a_snapshot(self, report):
        assert set(report.rp_statistics) == set(report.rp_placements)

    def test_operator_counters(self, report):
        generator = report.rp_statistics["a@1"]
        counter = report.rp_statistics["b@2"]
        gen_op = {op.name: op for op in generator.operators}["gen_array"]
        count_op = {op.name: op for op in counter.operators}["count"]
        assert gen_op.objects_out == 4
        assert count_op.objects_in == 4
        assert count_op.objects_out == 1

    def test_stream_volumes_balance(self, report):
        generator = report.rp_statistics["a@1"]
        counter = report.rp_statistics["b@2"]
        assert generator.bytes_sent == 4 * 50_000
        assert counter.bytes_received == generator.bytes_sent

    def test_cpu_time_recorded(self, report):
        assert report.rp_statistics["a@1"].cpu_busy_time > 0
        assert report.rp_statistics["b@2"].cpu_busy_time > 0

    def test_describe_renders(self, report):
        text = report.describe()
        assert "result: [4]" in text
        assert "gen_array" in text
        assert "duration" in text
        per_rp = report.rp_statistics["a@1"].describe()
        assert "a@1" in per_rp and "bg:1" in per_rp
