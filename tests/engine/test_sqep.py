"""Unit tests for execution-plan specs."""

import pytest

from repro.engine.sqep import INPUT, OpSpec, plan_input, plan_op
from repro.util.errors import QueryExecutionError


class TestOpSpec:
    def test_input_requires_producer(self):
        with pytest.raises(QueryExecutionError):
            OpSpec(name=INPUT)

    def test_input_rejects_children(self):
        with pytest.raises(QueryExecutionError):
            OpSpec(name=INPUT, producer="a", children=(plan_op("count"),))

    def test_non_input_rejects_producer(self):
        with pytest.raises(QueryExecutionError):
            OpSpec(name="count", producer="a")

    def test_walk_is_children_first(self):
        plan = plan_op("count", children=(plan_op("merge", children=(plan_input("a"),)),))
        names = [node.name for node in plan.walk()]
        assert names == [INPUT, "merge", "count"]

    def test_input_leaves(self):
        plan = plan_op(
            "merge", children=(plan_input("a"), plan_input("b"), plan_op("iota", 1, 3))
        )
        assert [leaf.producer for leaf in plan.input_leaves()] == ["a", "b"]

    def test_kwargs_roundtrip(self):
        plan = plan_op("window", "sum", 5, slide=2)
        assert plan.kwargs_dict == {"slide": 2}
        assert plan.args == ("sum", 5)

    def test_describe_renders_tree(self):
        plan = plan_op("count", children=(plan_input("a"),))
        text = plan.describe()
        assert "count()" in text
        assert "input <- a" in text
