"""Unit tests for the execution context (CPU charging, cost plumbing)."""

import pytest

from repro.engine.context import ExecutionContext
from repro.engine.settings import ExecutionSettings


class TestChargeCpu:
    def test_charges_scaled_time(self, quiet_env):
        env = quiet_env
        ctx = ExecutionContext(env, env.node("bg", 0), ExecutionSettings())

        def work():
            yield from ctx.charge_cpu(1e-3)

        env.sim.run_process(work())
        assert env.sim.now == pytest.approx(1e-3)
        assert ctx.cpu_busy_time == pytest.approx(1e-3)

    def test_linux_cpu_is_faster(self, quiet_env):
        env = quiet_env
        ctx = ExecutionContext(env, env.node("be", 0), ExecutionSettings())

        def work():
            yield from ctx.charge_cpu(1e-3)

        env.sim.run_process(work())
        # PPC970 at 2.2 GHz vs the 700 MHz baseline.
        assert env.sim.now == pytest.approx(1e-3 * 700 / 2200)

    def test_contention_on_one_bluegene_cpu(self, quiet_env):
        env = quiet_env
        node = env.node("bg", 3)
        ctx = ExecutionContext(env, node, ExecutionSettings())
        done = []

        def work(tag):
            yield from ctx.charge_cpu(1e-3)
            done.append((tag, env.sim.now))

        env.sim.process(work("a"))
        env.sim.process(work("b"))
        env.sim.run()
        # One compute CPU: the second charge waits for the first.
        assert done[0][1] == pytest.approx(1e-3)
        assert done[1][1] == pytest.approx(2e-3)

    def test_linux_two_cores_run_in_parallel(self, quiet_env):
        env = quiet_env
        ctx = ExecutionContext(env, env.node("be", 1), ExecutionSettings())
        done = []

        def work():
            yield from ctx.charge_cpu(1e-3)
            done.append(env.sim.now)

        env.sim.process(work())
        env.sim.process(work())
        env.sim.run()
        assert done[0] == pytest.approx(done[1])


class TestCostPlumb:
    def test_double_buffering_adds_sync_overhead(self, env):
        single = ExecutionContext(
            env, env.node("bg", 0), ExecutionSettings(double_buffering=False)
        )
        double = ExecutionContext(
            env, env.node("bg", 0), ExecutionSettings(double_buffering=True)
        )
        assert double.marshal_cost(1000) > single.marshal_cost(1000)
        assert double.demarshal_cost(1000) > single.demarshal_cost(1000)
        expected = env.params.cpu.double_buffer_sync_overhead
        assert double.marshal_cost(1000) - single.marshal_cost(1000) == pytest.approx(expected)

    def test_driver_slots_follow_buffering_mode(self):
        assert ExecutionSettings(double_buffering=False).driver_slots == 1
        assert ExecutionSettings(double_buffering=True).driver_slots == 2
