"""Unit tests and roundtrip properties for stream marshaling."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.marshal import StreamDemarshaller, StreamMarshaller
from repro.engine.objects import SyntheticArray
from repro.util.errors import SimulationError


def roundtrip(objects, buffer_bytes):
    """Marshal objects into buffers and de-marshal them back."""
    marshaller = StreamMarshaller("s", "src", buffer_bytes)
    demarshaller = StreamDemarshaller()
    received = []
    buffer_sizes = []
    for obj in objects:
        for buffer in marshaller.add(obj):
            buffer_sizes.append(buffer.nbytes)
            received.extend(demarshaller.accept(buffer))
    tail = marshaller.flush()
    if tail is not None:
        buffer_sizes.append(tail.nbytes)
        received.extend(demarshaller.accept(tail))
    demarshaller.accept(marshaller.end_of_stream())
    return received, buffer_sizes


class TestMarshaller:
    def test_small_objects_share_a_buffer(self):
        marshaller = StreamMarshaller("s", "src", 100)
        buffers = list(marshaller.add(1))  # 8 bytes, fits
        assert buffers == []
        assert marshaller.pending_bytes == 8

    def test_large_object_fragments(self):
        objects = [SyntheticArray(nbytes=3000)]
        received, sizes = roundtrip(objects, buffer_bytes=1000)
        assert received == objects
        assert sizes == [1000, 1000, 1000]

    def test_fragment_counts(self):
        marshaller = StreamMarshaller("s", "src", 1000)
        buffers = list(marshaller.add(SyntheticArray(nbytes=2500)))
        fragments = [f for b in buffers for f in b.fragments]
        assert all(f.total == 3 for f in fragments)
        tail = marshaller.flush()
        assert tail is not None and tail.nbytes == 500

    def test_buffer_size_validation(self):
        with pytest.raises(SimulationError):
            StreamMarshaller("s", "src", 0)

    def test_eos_with_pending_data_rejected(self):
        marshaller = StreamMarshaller("s", "src", 100)
        list(marshaller.add(5))
        with pytest.raises(SimulationError):
            marshaller.end_of_stream()

    def test_zero_size_objects_still_occupy_a_byte(self):
        received, _ = roundtrip(["", ""], buffer_bytes=10)
        assert received == ["", ""]


class TestDemarshaller:
    def test_eos_with_partial_object_rejected(self):
        marshaller = StreamMarshaller("s", "src", 1000)
        demarshaller = StreamDemarshaller()
        buffers = list(marshaller.add(SyntheticArray(nbytes=2500)))
        demarshaller.accept(buffers[0])  # only the first fragment arrives
        from repro.net.message import WireBuffer

        with pytest.raises(SimulationError):
            demarshaller.accept(WireBuffer.end_of_stream("s", "src"))

    def test_counters(self):
        objects = [SyntheticArray(nbytes=5000), 7, "hello"]
        marshaller = StreamMarshaller("s", "src", 1000)
        demarshaller = StreamDemarshaller()
        for obj in objects:
            for buffer in marshaller.add(obj):
                demarshaller.accept(buffer)
        tail = marshaller.flush()
        if tail:
            demarshaller.accept(tail)
        assert demarshaller.objects_out == 3


# Objects whose identity survives a roundtrip comparison.
_objects = st.one_of(
    st.integers(),
    st.floats(allow_nan=False),
    st.text(max_size=20),
    st.builds(SyntheticArray, nbytes=st.integers(1, 10_000), sequence=st.integers(0, 99)),
)


@given(
    objects=st.lists(_objects, max_size=30),
    buffer_bytes=st.integers(1, 5000),
)
@settings(max_examples=150, deadline=None)
def test_roundtrip_preserves_objects_and_order(objects, buffer_bytes):
    received, sizes = roundtrip(objects, buffer_bytes)
    assert received == objects
    assert all(size <= buffer_bytes for size in sizes)


@given(
    objects=st.lists(_objects, min_size=1, max_size=30),
    buffer_bytes=st.integers(1, 5000),
)
@settings(max_examples=100, deadline=None)
def test_wire_volume_matches_object_sizes(objects, buffer_bytes):
    from repro.engine.objects import size_of

    _, sizes = roundtrip(objects, buffer_bytes)
    expected = sum(max(1, size_of(o)) for o in objects)
    assert sum(sizes) == expected
