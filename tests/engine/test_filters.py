"""Unit tests for the selection operators (above/below/sample)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.operators import Above, Below, Sample
from repro.hardware.environment import Environment, EnvironmentConfig
from repro.scsql.session import SCSQSession
from repro.util.errors import QueryExecutionError
from tests.conftest import run_operator


class TestThresholdFilters:
    def test_above(self, env):
        assert run_operator(env, Above, [[1, 5, 3, 9]], threshold=3) == [5, 9]

    def test_below(self, env):
        assert run_operator(env, Below, [[1, 5, 3, 9]], threshold=3) == [1]

    def test_strictness(self, env):
        assert run_operator(env, Above, [[3, 3.0]], threshold=3) == []

    def test_non_numeric_element_rejected(self, env):
        with pytest.raises(QueryExecutionError):
            run_operator(env, Above, [["high"]], threshold=3)

    def test_non_numeric_threshold_rejected(self, env):
        with pytest.raises(QueryExecutionError):
            run_operator(env, Above, [[1]], threshold="three")


class TestSample:
    def test_takes_every_kth(self, env):
        assert run_operator(env, Sample, [list(range(10))], every=3) == [0, 3, 6, 9]

    def test_every_one_is_identity(self, env):
        assert run_operator(env, Sample, [[7, 8]], every=1) == [7, 8]

    def test_bad_period_rejected(self, env):
        with pytest.raises(QueryExecutionError):
            run_operator(env, Sample, [[1]], every=0)


class TestScsqlIntegration:
    def test_filters_in_a_query(self):
        session = SCSQSession()
        report = session.execute(
            "select extract(b) from sp a, sp b "
            "where b=sp(above(extract(a), 95), 'bg') "
            "and a=sp(iota(1,100), 'bg');"
        )
        assert report.result == [96, 97, 98, 99, 100]

    def test_sample_then_count(self):
        session = SCSQSession()
        report = session.execute(
            "select extract(b) from sp a, sp b "
            "where b=sp(count(sample(extract(a), 4)), 'bg') "
            "and a=sp(iota(1,100), 'bg');"
        )
        assert report.scalar_result == 25

    def test_threshold_type_error_at_compile(self):
        from repro.util.errors import QuerySemanticError

        session = SCSQSession()
        with pytest.raises(QuerySemanticError, match="numeric"):
            session.compile(
                "select above(extract(a), 'hot') from sp a "
                "where a=sp(iota(1,3), 'bg');"
            )


@given(
    values=st.lists(st.integers(-100, 100), max_size=40),
    threshold=st.integers(-100, 100),
    every=st.integers(1, 7),
)
@settings(max_examples=30, deadline=None)
def test_filter_composition_property(values, threshold, every):
    """above + sample behave like their Python equivalents, end to end."""
    env = Environment(EnvironmentConfig())
    above = run_operator(env, Above, [values], threshold=threshold)
    assert above == [v for v in values if v > threshold]
    env2 = Environment(EnvironmentConfig())
    sampled = run_operator(env2, Sample, [values], every=every)
    assert sampled == values[::every]
