"""Unit tests for the physical operators (sources, aggregates, merge, map)."""

import pytest

from repro.engine.objects import SyntheticArray
from repro.engine.operators import (
    Avg,
    Constant,
    Count,
    GenerateArrays,
    Iota,
    MapFunction,
    MaxAgg,
    Merge,
    MinAgg,
    Relay,
    Sum,
    operator_class,
    registered_operators,
)
from repro.util.errors import QueryExecutionError
from tests.conftest import run_operator


class TestRegistry:
    def test_known_names_resolve(self):
        assert operator_class("count") is Count
        assert operator_class("gen_array") is GenerateArrays

    def test_unknown_name_rejected(self):
        with pytest.raises(QueryExecutionError):
            operator_class("teleport")

    def test_registry_covers_the_paper_functions(self):
        names = set(registered_operators())
        assert {"gen_array", "iota", "count", "sum", "merge", "grep",
                "fft", "odd", "even", "radixcombine", "receiver"} <= names


class TestSources:
    def test_gen_array_emits_sized_sequence(self, env):
        out = run_operator(env, GenerateArrays, [], nbytes=500, count=4)
        assert [a.sequence for a in out] == [0, 1, 2, 3]
        assert all(isinstance(a, SyntheticArray) and a.nbytes == 500 for a in out)

    def test_gen_array_validation(self, env):
        with pytest.raises(QueryExecutionError):
            run_operator(env, GenerateArrays, [], nbytes=0, count=4)

    def test_iota_inclusive_range(self, env):
        assert run_operator(env, Iota, [], low=3, high=7) == [3, 4, 5, 6, 7]

    def test_iota_empty_range(self, env):
        assert run_operator(env, Iota, [], low=5, high=4) == []

    def test_constant(self, env):
        assert run_operator(env, Constant, [], value="x") == ["x"]


class TestAggregates:
    def test_count(self, env):
        assert run_operator(env, Count, [["a", "b", "c"]]) == [3]

    def test_count_empty_stream(self, env):
        assert run_operator(env, Count, [[]]) == [0]

    def test_sum(self, env):
        assert run_operator(env, Sum, [[1, 2, 3.5]]) == [6.5]

    def test_sum_rejects_non_numeric(self, env):
        with pytest.raises(QueryExecutionError):
            run_operator(env, Sum, [["oops"]])

    def test_avg(self, env):
        assert run_operator(env, Avg, [[2, 4, 6]]) == [4.0]

    def test_avg_empty_is_none(self, env):
        assert run_operator(env, Avg, [[]]) == [None]

    def test_max_min(self, env):
        assert run_operator(env, MaxAgg, [[3, 9, 1]]) == [9]
        assert run_operator(env, MinAgg, [[3, 9, 1]]) == [1]

    def test_arity_enforced(self, env):
        with pytest.raises(QueryExecutionError):
            run_operator(env, Count, [[1], [2]])


class TestMergeAndRelay:
    def test_merge_delivers_everything(self, env):
        out = run_operator(env, Merge, [[1, 2, 3], [10, 20], [100]])
        assert sorted(out) == [1, 2, 3, 10, 20, 100]

    def test_merge_terminates_on_last_input(self, env):
        out = run_operator(env, Merge, [[], [], [42]])
        assert out == [42]

    def test_merge_needs_an_input(self, env):
        with pytest.raises(QueryExecutionError):
            run_operator(env, Merge, [])

    def test_relay_is_identity(self, env):
        assert run_operator(env, Relay, [[1, "a", None]]) == [1, "a", None]


class TestMapFunction:
    def test_applies_function(self, env):
        out = run_operator(env, MapFunction, [[1, 2, 3]], fn=lambda x: x * 10)
        assert out == [10, 20, 30]

    def test_custom_cost_function_used(self, env):
        out = run_operator(
            env,
            MapFunction,
            [[1, 2]],
            fn=lambda x: x,
            cost_fn=lambda obj: 1e-3,
        )
        assert out == [1, 2]
        assert env.sim.now >= 2e-3 * env.cpu_time_scale(env.node("bg", 0))
