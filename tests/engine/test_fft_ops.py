"""Unit and property tests for the FFT operators vs numpy."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.objects import TaggedObject
from repro.engine.operators import EvenElements, Fft, OddElements, RadixCombine
from repro.engine.operators.fft import fft_cost_seconds
from repro.util.errors import QueryExecutionError
from tests.conftest import run_operator


class TestParitySelect:
    def test_even_odd_split(self, env):
        array = np.arange(8.0)
        evens = run_operator(env, EvenElements, [[array]])
        odds = run_operator(env, OddElements, [[array]])
        assert np.array_equal(evens[0].payload, [0, 2, 4, 6])
        assert np.array_equal(odds[0].payload, [1, 3, 5, 7])
        assert evens[0].tag == "even" and odds[0].tag == "odd"

    def test_sequence_numbers_assigned(self, env):
        arrays = [np.arange(4.0), np.arange(4.0) + 1]
        out = run_operator(env, EvenElements, [arrays])
        assert [o.sequence for o in out] == [0, 1]

    def test_non_array_rejected(self, env):
        with pytest.raises(QueryExecutionError):
            run_operator(env, EvenElements, [["not an array"]])


class TestFft:
    def test_matches_numpy(self, env):
        array = np.random.default_rng(0).standard_normal(64)
        out = run_operator(env, Fft, [[array]])
        assert np.allclose(out[0], np.fft.fft(array))

    def test_preserves_tags(self, env):
        tagged = TaggedObject(tag="odd", sequence=2, payload=np.arange(4.0))
        out = run_operator(env, Fft, [[tagged]])
        assert out[0].tag == "odd" and out[0].sequence == 2
        assert np.allclose(out[0].payload, np.fft.fft(np.arange(4.0)))

    def test_cost_grows_nloglogn(self):
        assert fft_cost_seconds(1024) > fft_cost_seconds(512) * 2
        assert fft_cost_seconds(1) > 0


class TestRadixCombine:
    def _partials(self, signal):
        even = np.fft.fft(signal[0::2])
        odd = np.fft.fft(signal[1::2])
        return (
            TaggedObject(tag="even", sequence=0, payload=even),
            TaggedObject(tag="odd", sequence=0, payload=odd),
        )

    def test_butterfly_matches_full_fft(self, env):
        signal = np.random.default_rng(1).standard_normal(128)
        even, odd = self._partials(signal)
        out = run_operator(env, RadixCombine, [[even, odd]])
        assert np.allclose(out[0], np.fft.fft(signal))

    def test_pairs_matched_out_of_order(self, env):
        s0 = np.random.default_rng(2).standard_normal(32)
        s1 = np.random.default_rng(3).standard_normal(32)
        e0, o0 = self._partials(s0)
        e1_, o1_ = self._partials(s1)
        e1 = TaggedObject(tag="even", sequence=1, payload=e1_.payload)
        o1 = TaggedObject(tag="odd", sequence=1, payload=o1_.payload)
        # Interleave across sequences: odd of 1 arrives before even of 1.
        out = run_operator(env, RadixCombine, [[e0, o1, o0, e1]])
        assert len(out) == 2
        assert np.allclose(out[0], np.fft.fft(s0))
        assert np.allclose(out[1], np.fft.fft(s1))

    def test_untagged_input_rejected(self, env):
        with pytest.raises(QueryExecutionError):
            run_operator(env, RadixCombine, [[np.arange(4.0)]])

    def test_duplicate_half_rejected(self, env):
        even = TaggedObject(tag="even", sequence=0, payload=np.arange(2.0))
        with pytest.raises(QueryExecutionError):
            run_operator(env, RadixCombine, [[even, even]])

    def test_unpaired_at_eos_rejected(self, env):
        even = TaggedObject(tag="even", sequence=0, payload=np.arange(2.0))
        with pytest.raises(QueryExecutionError):
            run_operator(env, RadixCombine, [[even]])

    def test_mismatched_halves_rejected(self, env):
        even = TaggedObject(tag="even", sequence=0, payload=np.arange(4.0))
        odd = TaggedObject(tag="odd", sequence=0, payload=np.arange(2.0))
        with pytest.raises(QueryExecutionError):
            run_operator(env, RadixCombine, [[even, odd]])


@given(
    log_n=st.integers(2, 9),
    seed=st.integers(0, 1000),
)
@settings(max_examples=30, deadline=None)
def test_radix2_identity_holds_for_random_signals(log_n, seed):
    """even/odd decimation + butterfly == full FFT, for any signal."""
    n = 2 ** log_n
    signal = np.random.default_rng(seed).standard_normal(n)
    even = np.fft.fft(signal[0::2])
    odd = np.fft.fft(signal[1::2])
    combined = RadixCombine._butterfly(even, odd)
    assert np.allclose(combined, np.fft.fft(signal))
