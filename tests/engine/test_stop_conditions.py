"""Tests for in-query stop conditions (first()) and upstream cancellation.

Paper section 2.2: a CQ may be stopped "by a stop condition in the query
that makes the stream finite.  When a CQ is stopped, its RPs are
terminated.  RPs regularly exchange control messages, which are used ...
to terminate execution upon a stop condition."
"""

import pytest

from repro.engine.operators import First
from repro.scsql.session import SCSQSession
from repro.util.errors import QueryExecutionError
from tests.conftest import run_operator


class TestFirstOperator:
    def test_truncates_a_long_stream(self, env):
        assert run_operator(env, First, [[1, 2, 3, 4, 5]], limit=3) == [1, 2, 3]

    def test_short_stream_passes_through(self, env):
        assert run_operator(env, First, [[1, 2]], limit=5) == [1, 2]

    def test_zero_limit(self, env):
        assert run_operator(env, First, [[1, 2]], limit=0) == []

    def test_negative_limit_rejected(self, env):
        with pytest.raises(QueryExecutionError):
            run_operator(env, First, [[1]], limit=-1)


class TestStopConditionTermination:
    def test_unbounded_source_terminates(self):
        """count(first(s, n)) over an endless generator finishes by itself."""
        session = SCSQSession()
        report = session.execute(
            "select extract(b) from sp a, sp b "
            "where b=sp(count(first(extract(a), 25)), 'bg', 0) "
            "and a=sp(gen_array(50000,-1), 'bg', 1);"
        )
        assert report.result == [25]
        assert not report.stopped  # the *query* ended, not the user

    def test_cancellation_cascades_through_relays(self):
        session = SCSQSession()
        report = session.execute(
            "select extract(c) from sp a, sp b, sp c "
            "where c=sp(count(first(extract(b), 10)), 'bg', 0) "
            "and b=sp(relay(extract(a)), 'bg', 2) "
            "and a=sp(gen_array(50000,-1), 'bg', 1);"
        )
        assert report.result == [10]

    def test_stop_condition_over_tcp_ingress(self):
        session = SCSQSession()
        report = session.execute(
            "select extract(b) from sp a, sp b "
            "where b=sp(count(first(extract(a), 8)), 'bg', 0) "
            "and a=sp(gen_array(1000000,-1), 'be', 1);"
        )
        assert report.result == [8]
        assert report.ingress_bytes >= 8 * 1_000_000

    def test_nodes_released_after_stop_condition(self):
        session = SCSQSession()
        session.execute(
            "select extract(b) from sp a, sp b "
            "where b=sp(count(first(extract(a), 5)), 'bg', 0) "
            "and a=sp(gen_array(50000,-1), 'bg', 1);"
        )
        assert session.env.node("bg", 0).is_available
        assert session.env.node("bg", 1).is_available

    def test_producer_stops_promptly(self):
        """The cancelled producer must not generate unboundedly: the bytes
        it sent are within a small multiple of what the stop needed."""
        session = SCSQSession()
        report = session.execute(
            "select extract(b) from sp a, sp b "
            "where b=sp(count(first(extract(a), 10)), 'bg', 0) "
            "and a=sp(gen_array(50000,-1), 'bg', 1);"
        )
        produced = report.rp_statistics["a@1"].bytes_sent
        assert produced < 30 * 50_000  # 10 needed; small overshoot allowed

    def test_one_subscriber_cancelled_other_keeps_streaming(self):
        """A split stream: one branch truncates via first(), the other
        consumes everything.  The producer must keep serving the live
        branch (no premature termination)."""
        session = SCSQSession()
        report = session.execute(
            "select extract(d) from sp a, sp b, sp c, sp d "
            "where d=sp(sum(merge({b,c})), 'bg', 0) "
            "and b=sp(count(first(extract(a), 3)), 'bg', 2) "
            "and c=sp(count(extract(a)), 'bg', 4) "
            "and a=sp(gen_array(50000,40), 'bg', 1);"
        )
        # b counts 3 (truncated), c counts all 40.
        assert report.result == [43]
