"""Unit tests for the object model and size estimation."""

import numpy as np

from repro.engine.objects import (
    END_OF_STREAM,
    SyntheticArray,
    TaggedObject,
    size_of,
)


class TestEndOfStream:
    def test_singleton(self):
        from repro.engine.objects import _EndOfStream

        assert _EndOfStream() is END_OF_STREAM

    def test_size_is_zero(self):
        assert size_of(END_OF_STREAM) == 0

    def test_repr(self):
        assert "END_OF_STREAM" in repr(END_OF_STREAM)


class TestSizeOf:
    def test_synthetic_array(self):
        assert size_of(SyntheticArray(nbytes=3_000_000, sequence=5)) == 3_000_000

    def test_numpy_array(self):
        array = np.zeros(1000, dtype=np.float64)
        assert size_of(array) == 8000

    def test_scalars(self):
        assert size_of(7) == 8
        assert size_of(7.5) == 8
        assert size_of(1 + 2j) == 16
        assert size_of(True) == 1
        assert size_of(None) == 1

    def test_strings_and_bytes(self):
        assert size_of("abc") == 3
        assert size_of("åäö") == 6  # UTF-8
        assert size_of(b"12345") == 5

    def test_containers_recursive(self):
        assert size_of([1, 2, 3]) == 8 + 24
        assert size_of({"a": 1}) == 8 + 1 + 8

    def test_tagged_object_adds_header(self):
        inner = np.zeros(10)
        tagged = TaggedObject(tag="odd", sequence=3, payload=inner)
        assert size_of(tagged) == 16 + inner.nbytes

    def test_unknown_type_fallback(self):
        class Strange:
            pass

        assert size_of(Strange()) == 64
