"""Operator live-state snapshot/restore: the engine half of migration.

A migration record must capture exactly how far each operator had
progressed, and a warm-started fork must resume from that point: a
restored source generates only its *remaining* items, a restored fold
keeps its accumulator.  These are the properties ``Deployment.
snapshot_state`` / ``RunningProcess.restore_state`` build on.
"""

import pytest

from repro.engine import ExecutionSettings
from repro.engine.context import ExecutionContext
from repro.engine.operators import Count, GenerateArrays, Iota, Sum
from repro.sim import Store
from repro.util.errors import QueryExecutionError
from tests.conftest import drain_store, feed_store


def _ctx(env):
    return ExecutionContext(env, env.node("bg", 0), ExecutionSettings())


def _run_restored(env, operator_cls, state, inputs=(), **kwargs):
    """Build a fresh operator, warm-start it from ``state``, run it."""
    ctx = _ctx(env)
    in_stores = [Store(env.sim, name=f"in{i}") for i in range(len(inputs))]
    out_store = Store(env.sim, name="out")
    operator = operator_cls(ctx, in_stores, out_store, **kwargs)
    operator.restore_state(state)
    for store, items in zip(in_stores, inputs):
        feed_store(env.sim, store, items)
    env.sim.process(operator.run(), name="restored-op")
    collector = drain_store(env.sim, out_store)
    env.sim.run()
    assert collector.ok
    return collector.value


class TestSourceResume:
    def test_gen_array_resumes_mid_stream(self, env):
        ctx = _ctx(env)
        source = GenerateArrays(ctx, [], Store(env.sim), nbytes=500, count=5)
        source.sequence = 3  # as if three arrays were already emitted
        state = source.snapshot_state()
        assert state["name"] == "gen_array" and state["sequence"] == 3

        emitted = _run_restored(
            env, GenerateArrays, state, nbytes=500, count=5
        )
        assert [array.sequence for array in emitted] == [3, 4]

    def test_iota_resumes_mid_range(self, env):
        ctx = _ctx(env)
        source = Iota(ctx, [], Store(env.sim), low=1, high=6)
        source.position = 4
        emitted = _run_restored(
            env, Iota, source.snapshot_state(), low=1, high=6
        )
        assert emitted == [4, 5, 6]


class TestFoldResume:
    def test_count_keeps_its_accumulator(self, env):
        ctx = _ctx(env)
        fold = Count(ctx, [Store(env.sim)], Store(env.sim))
        fold.acc, fold.n = 5, 5  # five objects already folded in
        state = fold.snapshot_state()
        assert state["acc"] == 5

        emitted = _run_restored(env, Count, state, inputs=[["x", "y", "z"]])
        assert emitted == [8]

    def test_sum_keeps_its_accumulator(self, env):
        ctx = _ctx(env)
        fold = Sum(ctx, [Store(env.sim)], Store(env.sim))
        fold.acc, fold.n = 10.5, 3
        emitted = _run_restored(
            env, Sum, fold.snapshot_state(), inputs=[[1, 2]]
        )
        assert emitted == [13.5]


class TestSnapshotContract:
    def test_round_trip_preserves_progress_counters(self, env):
        ctx = _ctx(env)
        fold = Count(ctx, [Store(env.sim)], Store(env.sim))
        fold.objects_in, fold.objects_out = 7, 1
        fold.acc, fold.n = 7, 7
        clone = Count(_ctx(env), [Store(env.sim)], Store(env.sim))
        clone.restore_state(fold.snapshot_state())
        assert clone.snapshot_state() == fold.snapshot_state()

    def test_restoring_onto_the_wrong_operator_raises(self, env):
        ctx = _ctx(env)
        fold = Count(ctx, [Store(env.sim)], Store(env.sim))
        other = Iota(ctx, [], Store(env.sim), low=0, high=3)
        with pytest.raises(QueryExecutionError, match="cannot restore"):
            other.restore_state(fold.snapshot_state())

    def test_snapshot_is_plain_data(self, env):
        """Snapshots must be JSON-able: no operator, store, or sim refs."""
        import json

        ctx = _ctx(env)
        source = GenerateArrays(ctx, [], Store(env.sim), nbytes=100, count=2)
        json.dumps(source.snapshot_state())  # must not raise
