"""Tests for query termination: stop tokens, unbounded streams, flushing."""

import pytest

from repro.engine.control import StopToken
from repro.engine.settings import ExecutionSettings
from repro.scsql.session import SCSQSession
from repro.util.errors import QueryExecutionError, SimulationError
from tests.conftest import run_operator

UNBOUNDED_QUERY = """
select extract(a) from sp a
where a=sp(gen_array(10000,-1), 'bg', 1);
"""

FINITE_QUERY = """
select extract(b) from sp a, sp b
where b=sp(count(extract(a)), 'bg', 0)
and a=sp(gen_array(100000,5), 'bg', 1);
"""


class TestUnboundedStreams:
    def test_unbounded_gen_array_accepted(self):
        from repro.engine.operators import GenerateArrays

        # Validation only; actually running it would never end.
        session = SCSQSession()
        graph = session.compile(UNBOUNDED_QUERY)
        assert len(graph.sps) == 1

    def test_invalid_count_rejected(self, env):
        from repro.engine.operators import GenerateArrays

        with pytest.raises(QueryExecutionError):
            run_operator(env, GenerateArrays, [], nbytes=10, count=-2)


class TestUserStop:
    def test_stop_terminates_an_unbounded_query(self):
        session = SCSQSession()
        report = session.execute(UNBOUNDED_QUERY, stop_after=0.05)
        assert report.stopped
        assert len(report.result) > 0
        assert report.duration == pytest.approx(0.05, rel=0.02)

    def test_partial_results_scale_with_deadline(self):
        short = SCSQSession().execute(UNBOUNDED_QUERY, stop_after=0.02)
        long = SCSQSession().execute(UNBOUNDED_QUERY, stop_after=0.08)
        assert len(long.result) > len(short.result)

    def test_nodes_released_after_stop(self):
        session = SCSQSession()
        session.execute(UNBOUNDED_QUERY, stop_after=0.02)
        assert session.env.node("bg", 1).is_available

    def test_finite_query_unaffected_by_late_deadline(self):
        report = SCSQSession().execute(FINITE_QUERY, stop_after=1000.0)
        assert not report.stopped
        assert report.result == [5]
        assert report.duration < 1.0

    def test_stop_of_distributed_aggregation(self):
        session = SCSQSession()
        report = session.execute(
            """
            select extract(b) from sp a, sp b
            where b=sp(winagg(extract(a), 'count', 10, 10), 'bg', 0)
            and a=sp(gen_array(100000,-1), 'bg', 1);
            """,
            stop_after=0.1,
        )
        assert report.stopped
        assert len(report.result) > 0
        assert all(window == 10 for window in report.result)


class TestStopToken:
    def test_stop_is_idempotent(self, sim):
        token = StopToken(sim)
        token.stop()
        token.stop()
        assert token.stopped
        assert token.stop_time == 0.0

    def test_event_fires_on_stop(self, sim):
        token = StopToken(sim)
        seen = []

        def waiter():
            yield token.event
            seen.append(sim.now)

        def stopper():
            yield sim.timeout(2.0)
            token.stop()

        sim.process(waiter())
        sim.process(stopper())
        sim.run()
        assert seen == [2.0]

    def test_cancel_prevents_the_watchdog(self, sim):
        token = StopToken(sim)
        token.stop_at(10.0)

        def canceller():
            yield sim.timeout(1.0)
            token.cancel()

        sim.process(canceller())
        sim.run()
        assert not token.stopped
        assert token._watchdog is not None and token._watchdog.triggered


class TestFlushInterval:
    def test_low_rate_results_arrive_before_eos(self):
        """Window aggregates of a continuous query must reach the client
        manager without waiting for a full send buffer."""
        report = SCSQSession().execute(
            """
            select extract(b) from sp a, sp b
            where b=sp(winagg(extract(a), 'count', 5, 5), 'bg', 0)
            and a=sp(gen_array(50000,-1), 'bg', 1);
            """,
            stop_after=0.1,
        )
        assert len(report.result) >= 1

    def test_invalid_interval_rejected(self):
        with pytest.raises(SimulationError):
            ExecutionSettings(flush_interval=0.0)


class TestStopInboundQuery:
    def test_stop_unbounded_tcp_ingress(self):
        """Stopping mid-flight over the TCP ingress path: interrupted
        senders must release their NIC/window resources cleanly."""
        session = SCSQSession()
        report = session.execute(
            """
            select extract(b) from sp a, sp b
            where b=sp(winagg(extract(a), 'count', 3, 3), 'bg', 0)
            and a=sp(gen_array(1000000,-1), 'be', 1);
            """,
            stop_after=0.3,
        )
        assert report.stopped
        assert len(report.result) > 0
        assert report.ingress_bytes > 0
        assert session.env.node("be", 1).is_available
        assert session.env.node("bg", 0).is_available
