"""Property-based kernel invariants, cross-checked through the metrics layer.

These complement ``test_sim_properties.py``: where those assert invariants
with ad-hoc counters inside the test processes, these lean on the
observability hooks — if the instrumentation and the kernel disagree, one
of them is wrong.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import Instrumentation
from repro.obs.tracer import NULL_TRACER
from repro.sim import Interrupt, Resource, Simulator, Store


def _metrics_sim():
    obs = Instrumentation(tracer=NULL_TRACER)
    return Simulator(obs=obs), obs


@given(count=st.integers(2, 30), delay=st.floats(min_value=0.0, max_value=10.0))
@settings(max_examples=100, deadline=None)
def test_same_timestamp_ties_fire_in_creation_order(count, delay):
    """Events scheduled for the same instant fire in insertion order."""
    sim = Simulator()
    order = []

    def waiter(index):
        yield sim.timeout(delay)
        order.append(index)

    for index in range(count):
        sim.process(waiter(index))
    sim.run()
    assert order == list(range(count))


@given(delays=st.lists(st.floats(min_value=0.0, max_value=100.0),
                       min_size=1, max_size=40))
@settings(max_examples=100, deadline=None)
def test_timeouts_fire_exactly_once(delays):
    """Every timeout delivers exactly one wake-up, tallied by the metrics."""
    sim, obs = _metrics_sim()
    fired = []

    def waiter(delay):
        yield sim.timeout(delay)
        fired.append(delay)

    for delay in delays:
        sim.process(waiter(delay))
    sim.run()
    assert sorted(fired) == sorted(delays)
    snap = obs.snapshot()
    assert snap.counter("sim.timeouts_created") == len(delays)
    assert snap.counter("sim.processes_finished") == len(delays)


@given(victims=st.integers(1, 10), seed=st.integers(0, 2**32 - 1))
@settings(max_examples=60, deadline=None)
def test_interrupts_fire_exactly_once_per_victim(victims, seed):
    """Each interrupted process sees Interrupt once, at the interrupt time."""
    sim, obs = _metrics_sim()
    rng = random.Random(seed)
    caught = []

    def sleeper(index):
        try:
            yield sim.timeout(1000.0)
            raise AssertionError("interrupt never arrived")
        except Interrupt as interrupt:
            caught.append((index, interrupt.cause, sim.now))
        # an interrupted process keeps running afterwards
        yield sim.timeout(1.0)

    processes = [sim.process(sleeper(i), name=f"sleeper{i}")
                 for i in range(victims)]

    def killer():
        for index, victim in enumerate(processes):
            yield sim.timeout(rng.uniform(0.1, 5.0))
            victim.interrupt(cause=index)

    sim.process(killer(), name="killer")
    sim.run()
    assert len(caught) == victims
    assert sorted(index for index, _cause, _ts in caught) == list(range(victims))
    assert all(cause == index for index, cause, _ts in caught)
    snap = obs.snapshot()
    assert snap.counter("sim.interrupts") == victims
    assert snap.counter("sim.processes_failed") == 0


@given(
    holds=st.lists(st.floats(min_value=0.01, max_value=10.0),
                   min_size=1, max_size=30),
    starts=st.lists(st.floats(min_value=0.0, max_value=5.0),
                    min_size=1, max_size=30),
    capacity=st.integers(1, 4),
)
@settings(max_examples=60, deadline=None)
def test_resource_busy_series_never_exceeds_capacity(holds, starts, capacity):
    """The instrumented busy level proves capacity was never exceeded."""
    sim, obs = _metrics_sim()
    resource = Resource(sim, capacity=capacity, name="dev")

    def worker(start, hold):
        yield sim.timeout(start)
        with resource.request() as request:
            yield request
            yield sim.timeout(hold)

    jobs = [(start, hold) for start, hold in zip(starts, holds)]
    for start, hold in jobs:
        sim.process(worker(start, hold))
    sim.run()
    busy = obs.metrics.series["resource.busy[dev]"]
    busy.finalize(sim.now)
    assert busy.maximum <= capacity
    assert busy.current == 0  # everything released
    snap = obs.snapshot()
    assert snap.counter("resource.acquires[dev]") == len(jobs)
    # conservation: every job held for its full duration
    assert busy.integral > 0
    expected = sum(hold for _start, hold in jobs)
    assert abs(busy.integral - expected) < 1e-6 * max(1.0, expected)


@given(
    items=st.lists(st.integers(), min_size=1, max_size=60),
    capacity=st.integers(1, 6),
    seed=st.integers(0, 2**32 - 1),
)
@settings(max_examples=60, deadline=None)
def test_store_level_bounded_by_capacity(items, capacity, seed):
    """The observed store level never exceeds capacity, at any schedule."""
    sim, obs = _metrics_sim()
    store = Store(sim, capacity=capacity, name="box")
    rng = random.Random(seed)
    received = []

    def producer():
        for item in items:
            yield sim.timeout(rng.uniform(0.0, 1.0))
            yield store.put(item)

    def consumer():
        for _ in range(len(items)):
            yield sim.timeout(rng.uniform(0.0, 2.0))
            received.append((yield store.get()))

    sim.process(producer())
    sim.process(consumer())
    sim.run()
    assert received == items
    level = obs.metrics.series["store.level[box]"]
    level.finalize(sim.now)
    assert level.maximum <= capacity
    assert level.current == 0
