"""Unit tests for the event primitives of the simulation kernel."""

import pytest

from repro.sim import Interrupt
from repro.util.errors import SimulationError


class TestEventLifecycle:
    def test_new_event_is_pending(self, sim):
        event = sim.event()
        assert not event.triggered
        assert not event.processed

    def test_value_before_trigger_raises(self, sim):
        event = sim.event()
        with pytest.raises(SimulationError):
            _ = event.value
        with pytest.raises(SimulationError):
            _ = event.ok

    def test_succeed_carries_value(self, sim):
        event = sim.event()
        event.succeed(42)
        assert event.triggered
        assert event.ok
        assert event.value == 42

    def test_succeed_none_is_a_value(self, sim):
        event = sim.event()
        event.succeed()
        assert event.triggered
        assert event.value is None

    def test_double_trigger_raises(self, sim):
        event = sim.event()
        event.succeed(1)
        with pytest.raises(SimulationError):
            event.succeed(2)
        with pytest.raises(SimulationError):
            event.fail(RuntimeError("nope"))

    def test_fail_requires_exception(self, sim):
        event = sim.event()
        with pytest.raises(SimulationError):
            event.fail("not an exception")  # type: ignore[arg-type]

    def test_fail_carries_exception(self, sim):
        event = sim.event()
        error = RuntimeError("boom")
        event.fail(error)
        event._defused = True
        sim.run()
        assert not event.ok
        assert event.value is error

    def test_callback_after_processed_runs_immediately(self, sim):
        event = sim.event()
        event.succeed("x")
        sim.run()
        seen = []
        event._add_callback(lambda e: seen.append(e.value))
        assert seen == ["x"]


class TestTimeout:
    def test_timeout_advances_clock(self, sim):
        sim.timeout(2.5)
        sim.run()
        assert sim.now == pytest.approx(2.5)

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.timeout(-1.0)

    def test_timeout_value(self, sim):
        result = {}

        def proc():
            result["v"] = yield sim.timeout(1.0, value="hello")

        sim.process(proc())
        sim.run()
        assert result["v"] == "hello"

    def test_zero_delay_is_fine(self, sim):
        timeout = sim.timeout(0.0)
        sim.run()
        assert timeout.processed
        assert sim.now == 0.0


class TestUnhandledFailure:
    def test_unhandled_failure_crashes_simulation(self, sim):
        event = sim.event()
        event.fail(ValueError("lost"))
        with pytest.raises(SimulationError, match="unhandled failure"):
            sim.run()

    def test_handled_failure_is_fine(self, sim):
        event = sim.event()

        def waiter():
            try:
                yield event
            except ValueError:
                return "caught"

        proc = sim.process(waiter())
        event.fail(ValueError("lost"))
        sim.run()
        assert proc.value == "caught"


class TestConditions:
    def test_all_of_collects_values(self, sim):
        t1 = sim.timeout(1.0, value="a")
        t2 = sim.timeout(2.0, value="b")
        result = {}

        def waiter():
            result["v"] = yield sim.all_of([t1, t2])

        sim.process(waiter())
        sim.run()
        assert result["v"] == {t1: "a", t2: "b"}
        assert sim.now == pytest.approx(2.0)

    def test_any_of_triggers_on_first(self, sim):
        t1 = sim.timeout(1.0, value="fast")
        t2 = sim.timeout(5.0, value="slow")
        result = {}

        def waiter():
            result["v"] = yield sim.any_of([t1, t2])

        sim.process(waiter())
        sim.run()
        assert t1 in result["v"]
        assert t2 not in result["v"]

    def test_empty_all_of_triggers_immediately(self, sim):
        condition = sim.all_of([])
        assert condition.triggered

    def test_all_of_fails_fast(self, sim):
        bad = sim.event()

        def failer():
            yield sim.timeout(1.0)
            bad.fail(RuntimeError("dead"))

        def waiter():
            try:
                yield sim.all_of([bad, sim.timeout(10.0)])
            except RuntimeError:
                return sim.now

        sim.process(failer())
        proc = sim.process(waiter())
        sim.run()
        assert proc.value == pytest.approx(1.0)


class TestProcess:
    def test_join_returns_value(self, sim):
        def inner():
            yield sim.timeout(1.0)
            return 99

        def outer():
            value = yield sim.process(inner())
            return value + 1

        proc = sim.process(outer())
        sim.run()
        assert proc.value == 100

    def test_process_failure_propagates_to_joiner(self, sim):
        def inner():
            yield sim.timeout(1.0)
            raise KeyError("gone")

        def outer():
            try:
                yield sim.process(inner())
            except KeyError:
                return "handled"

        proc = sim.process(outer())
        sim.run()
        assert proc.value == "handled"

    def test_yield_non_event_raises(self, sim):
        def bad():
            yield 42

        sim.process(bad())
        with pytest.raises(SimulationError, match="non-event"):
            sim.run()

    def test_non_generator_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.process(lambda: None)  # type: ignore[arg-type]

    def test_interrupt_delivers_cause(self, sim):
        caught = {}

        def sleeper():
            try:
                yield sim.timeout(100.0)
            except Interrupt as interrupt:
                caught["cause"] = interrupt.cause
                caught["at"] = sim.now

        target = sim.process(sleeper())

        def interrupter():
            yield sim.timeout(3.0)
            target.interrupt("enough")

        sim.process(interrupter())
        sim.run()
        assert caught == {"cause": "enough", "at": 3.0}

    def test_interrupt_finished_process_raises(self, sim):
        def quick():
            return "done"
            yield  # pragma: no cover

        proc = sim.process(quick())
        sim.run()
        with pytest.raises(SimulationError):
            proc.interrupt()

    def test_is_alive(self, sim):
        def body():
            yield sim.timeout(1.0)

        proc = sim.process(body())
        assert proc.is_alive
        sim.run()
        assert not proc.is_alive
