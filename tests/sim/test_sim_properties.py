"""Property-based tests of the simulation kernel invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Resource, Simulator, Store


@given(delays=st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=50))
@settings(max_examples=100, deadline=None)
def test_events_fire_in_nondecreasing_time_order(delays):
    """Whatever the schedule, observed firing times never go backwards."""
    sim = Simulator()
    observed = []

    def waiter(delay):
        yield sim.timeout(delay)
        observed.append(sim.now)

    for delay in delays:
        sim.process(waiter(delay))
    sim.run()
    assert observed == sorted(observed)
    assert len(observed) == len(delays)


@given(items=st.lists(st.integers(), max_size=100), capacity=st.integers(1, 5))
@settings(max_examples=100, deadline=None)
def test_store_preserves_fifo_order_under_any_capacity(items, capacity):
    """A bounded store delivers exactly the items put, in order."""
    sim = Simulator()
    store = Store(sim, capacity=capacity)
    received = []

    def producer():
        for item in items:
            yield store.put(item)

    def consumer():
        for _ in range(len(items)):
            received.append((yield store.get()))

    sim.process(producer())
    sim.process(consumer())
    sim.run()
    assert received == items


@given(
    holds=st.lists(st.floats(min_value=0.01, max_value=10.0), min_size=1, max_size=30),
    capacity=st.integers(1, 4),
)
@settings(max_examples=60, deadline=None)
def test_resource_never_exceeds_capacity(holds, capacity):
    """Concurrent users of a resource never exceed its capacity."""
    sim = Simulator()
    resource = Resource(sim, capacity=capacity)
    active = {"count": 0, "peak": 0}

    def worker(hold):
        with resource.request() as request:
            yield request
            active["count"] += 1
            active["peak"] = max(active["peak"], active["count"])
            yield sim.timeout(hold)
            active["count"] -= 1

    for hold in holds:
        sim.process(worker(hold))
    sim.run()
    assert active["count"] == 0
    assert active["peak"] <= capacity
    assert active["peak"] == min(capacity, len(holds))
