"""Unit tests for Resource and Store."""

import pytest

from repro.sim import Interrupt, Resource, Store
from repro.util.errors import SimulationError


class TestResource:
    def test_capacity_validation(self, sim):
        with pytest.raises(SimulationError):
            Resource(sim, capacity=0)

    def test_grants_up_to_capacity(self, sim):
        resource = Resource(sim, capacity=2)
        first = resource.request()
        second = resource.request()
        third = resource.request()
        assert first.triggered and second.triggered
        assert not third.triggered
        assert resource.count == 2
        assert resource.queue_length == 1

    def test_fifo_service_order(self, sim):
        resource = Resource(sim, capacity=1)
        order = []

        def worker(tag, hold):
            with resource.request() as request:
                yield request
                order.append((sim.now, tag))
                yield sim.timeout(hold)

        sim.process(worker("a", 2.0))
        sim.process(worker("b", 1.0))
        sim.process(worker("c", 1.0))
        sim.run()
        assert order == [(0.0, "a"), (2.0, "b"), (3.0, "c")]

    def test_release_ungranted_request_withdraws_it(self, sim):
        resource = Resource(sim, capacity=1)
        held = resource.request()
        waiting = resource.request()
        resource.release(waiting)  # withdraw from the queue
        assert resource.queue_length == 0
        resource.release(held)
        assert resource.count == 0

    def test_context_manager_releases_on_interrupt(self, sim):
        resource = Resource(sim, capacity=1)

        def holder():
            with resource.request() as request:
                yield request
                try:
                    yield sim.timeout(100.0)
                except Interrupt:
                    pass

        def waiter():
            with resource.request() as request:
                yield request
                return sim.now

        holding = sim.process(holder())
        waiting = sim.process(waiter())

        def interrupter():
            yield sim.timeout(1.0)
            holding.interrupt()

        sim.process(interrupter())
        sim.run()
        assert waiting.value == pytest.approx(1.0)
        assert resource.count == 0

    def test_released_slot_goes_to_longest_waiter(self, sim):
        resource = Resource(sim, capacity=1)
        grants = []

        def worker(tag):
            with resource.request() as request:
                yield request
                grants.append(tag)
                yield sim.timeout(1.0)

        for tag in range(5):
            sim.process(worker(tag))
        sim.run()
        assert grants == [0, 1, 2, 3, 4]


class TestStore:
    def test_capacity_validation(self, sim):
        with pytest.raises(SimulationError):
            Store(sim, capacity=0)

    def test_put_get_fifo(self, sim):
        store = Store(sim)
        received = []

        def producer():
            for i in range(5):
                yield store.put(i)

        def consumer():
            for _ in range(5):
                received.append((yield store.get()))

        sim.process(producer())
        sim.process(consumer())
        sim.run()
        assert received == [0, 1, 2, 3, 4]

    def test_get_blocks_until_put(self, sim):
        store = Store(sim)
        got = {}

        def consumer():
            got["value"] = yield store.get()
            got["at"] = sim.now

        def producer():
            yield sim.timeout(3.0)
            yield store.put("late")

        sim.process(consumer())
        sim.process(producer())
        sim.run()
        assert got == {"value": "late", "at": 3.0}

    def test_put_blocks_when_full(self, sim):
        store = Store(sim, capacity=1)
        times = []

        def producer():
            for i in range(3):
                yield store.put(i)
                times.append(sim.now)

        def consumer():
            for _ in range(3):
                yield sim.timeout(2.0)
                yield store.get()

        sim.process(producer())
        sim.process(consumer())
        sim.run()
        # First put is immediate; each later put waits for a get (t=2, 4).
        assert times == [0.0, 2.0, 4.0]

    def test_waiting_getters_served_in_order(self, sim):
        store = Store(sim)
        order = []

        def consumer(tag):
            value = yield store.get()
            order.append((tag, value))

        for tag in ("a", "b"):
            sim.process(consumer(tag))

        def producer():
            yield store.put(1)
            yield store.put(2)

        sim.process(producer())
        sim.run()
        assert order == [("a", 1), ("b", 2)]

    def test_size_property(self, sim):
        store = Store(sim)
        store.put("x")
        store.put("y")
        assert store.size == 2
