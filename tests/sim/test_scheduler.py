"""Scheduler backends: the calendar queue pops in exact heap order.

The kernel's contract is the total order ``(when, rank, seq)``.  The
:class:`~repro.sim.scheduler.HeapScheduler` implements it literally (a
binary heap over those tuples), so it serves as the executable spec: the
property suite below drives both backends through adversarial schedules —
same-timestamp bursts, urgent/normal mixes, ``0.0``/``-0.0`` aliasing,
interleaved pushes and pops — and requires bit-identical pop sequences.
A second layer proves the same at the simulator level: full workloads
(timeout chains, interrupts, resource contention, store handoffs) must
produce identical event traces on either backend.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import (
    DEFAULT_SCHEDULER,
    SCHEDULERS,
    CalendarQueue,
    EventScheduler,
    HeapScheduler,
    Interrupt,
    Resource,
    ShuffleScheduler,
    Simulator,
    Store,
    make_scheduler,
    scheduler_override,
)
from repro.util.errors import SimulationError

_INF = float("inf")

#: A small pool of timestamps so bursts (many events at one instant) are
#: the common case, exactly the collision-heavy shape the calendar queue
#: optimizes for.  ``0.0``/``-0.0`` compare and hash equal but print
#: differently — both backends must treat them as one instant.
_TIME_POOL = [0.0, -0.0, 0.5, 1.0, 1.5, 2.0, 3.0, 10.0, 1e-9, 1e9]

_pushes = st.lists(
    st.tuples(
        st.one_of(
            st.sampled_from(_TIME_POOL),
            st.floats(min_value=-1e6, max_value=1e6,
                      allow_nan=False, allow_infinity=False),
        ),
        st.integers(0, 1),  # rank: _URGENT=0 / _NORMAL=1
    ),
    max_size=200,
)


def _drain(scheduler):
    order = []
    while True:
        item = scheduler.pop()
        if item is None:
            return order
        order.append(item)


class TestPopOrderEquivalence:
    @given(pushes=_pushes)
    @settings(max_examples=200, deadline=None)
    def test_full_drain_matches_heap(self, pushes):
        heap, calendar = HeapScheduler(), CalendarQueue()
        for token, (when, rank) in enumerate(pushes):
            heap.push(when, rank, token)
            calendar.push(when, rank, token)
        assert _drain(calendar) == _drain(heap)

    @given(
        pushes=_pushes,
        pop_gaps=st.lists(st.integers(0, 4), max_size=200),
    )
    @settings(max_examples=200, deadline=None)
    def test_interleaved_push_pop_matches_heap(self, pushes, pop_gaps):
        """Pops interleaved between pushes agree at every step.

        ``pop_gaps[i]`` pops up to that many events right after push ``i``
        — covering buckets that are consumed, deleted, and then repopulated
        at the same timestamp.
        """
        heap, calendar = HeapScheduler(), CalendarQueue()
        gaps = iter(pop_gaps)
        for token, (when, rank) in enumerate(pushes):
            heap.push(when, rank, token)
            calendar.push(when, rank, token)
            for _ in range(next(gaps, 0)):
                assert calendar.pop() == heap.pop()
                assert calendar.next_time() == heap.next_time()
        assert _drain(calendar) == _drain(heap)

    @given(pushes=_pushes)
    @settings(max_examples=100, deadline=None)
    def test_len_and_next_time_agree(self, pushes):
        heap, calendar = HeapScheduler(), CalendarQueue()
        for token, (when, rank) in enumerate(pushes):
            heap.push(when, rank, token)
            calendar.push(when, rank, token)
            assert len(calendar) == len(heap)
            assert calendar.next_time() == heap.next_time()
            assert bool(calendar) == bool(heap)

    def test_negative_zero_shares_the_zero_bucket(self):
        """-0.0 and 0.0 are one instant: insertion order alone breaks ties."""
        heap, calendar = HeapScheduler(), CalendarQueue()
        for token, when in enumerate([0.0, -0.0, 0.0, -0.0]):
            heap.push(when, 1, token)
            calendar.push(when, 1, token)
        assert [t for _, t in _drain(calendar)] == [0, 1, 2, 3]
        assert [t for _, t in _drain(heap)] == [0, 1, 2, 3]

    def test_urgent_overtakes_normal_within_an_instant(self):
        calendar = CalendarQueue()
        calendar.push(1.0, 1, "normal-a")
        calendar.push(1.0, 0, "urgent")
        calendar.push(1.0, 1, "normal-b")
        assert [e for _, e in _drain(calendar)] == [
            "urgent", "normal-a", "normal-b"
        ]


class TestSchedulerBasics:
    @pytest.mark.parametrize("name", sorted(SCHEDULERS))
    def test_empty_scheduler_contract(self, name):
        scheduler = make_scheduler(name)
        assert scheduler.pop() is None
        assert scheduler.next_time() == _INF
        assert len(scheduler) == 0
        assert not scheduler

    def test_make_scheduler_resolves_names_default_and_instances(self):
        assert isinstance(make_scheduler("heap"), HeapScheduler)
        assert isinstance(make_scheduler("calendar"), CalendarQueue)
        assert isinstance(make_scheduler(None), SCHEDULERS[DEFAULT_SCHEDULER])
        ready = CalendarQueue()
        assert make_scheduler(ready) is ready

    def test_make_scheduler_rejects_unknown_specs(self):
        with pytest.raises(SimulationError, match="unknown scheduler"):
            make_scheduler("fibonacci")
        with pytest.raises(SimulationError, match="unknown scheduler"):
            make_scheduler(42)

    def test_only_the_calendar_is_batched(self):
        assert CalendarQueue.batched
        assert not HeapScheduler.batched
        assert not EventScheduler.batched

    def test_simulator_exposes_its_scheduler(self):
        sim = Simulator(scheduler="heap")
        assert isinstance(sim.scheduler, HeapScheduler)
        assert isinstance(Simulator().scheduler, SCHEDULERS[DEFAULT_SCHEDULER])


class TestShuffleLegality:
    """The shuffle backend pops a *legal* order: time- and rank-correct,
    permuting exactly the same-``(when, rank)`` FIFO tie-break."""

    @staticmethod
    def _spine_and_runs(drained, ranks):
        """The ``(when, rank)`` dispatch spine and the token set per run."""
        spine, runs = [], []
        for when, token in drained:
            key = (when, ranks[token])
            spine.append(key)
            if runs and runs[-1][0] == key:
                runs[-1][1].add(token)
            else:
                runs.append((key, {token}))
        return spine, runs

    @given(pushes=_pushes, seed=st.integers(0, 7))
    @settings(max_examples=100, deadline=None)
    def test_drain_is_a_rank_respecting_permutation(self, pushes, seed):
        heap, shuffle = HeapScheduler(), ShuffleScheduler(seed)
        ranks = {}
        for token, (when, rank) in enumerate(pushes):
            heap.push(when, rank, token)
            shuffle.push(when, rank, token)
            ranks[token] = rank
        heap_spine, heap_runs = self._spine_and_runs(_drain(heap), ranks)
        shuf_spine, shuf_runs = self._spine_and_runs(_drain(shuffle), ranks)
        assert shuf_spine == heap_spine
        assert shuf_runs == heap_runs

    @given(pushes=_pushes, seed=st.integers(0, 7))
    @settings(max_examples=50, deadline=None)
    def test_same_seed_reproduces_the_same_order(self, pushes, seed):
        first, second = ShuffleScheduler(seed), ShuffleScheduler(seed)
        for token, (when, rank) in enumerate(pushes):
            first.push(when, rank, token)
            second.push(when, rank, token)
        assert _drain(first) == _drain(second)

    def test_different_seeds_permute_a_burst_differently(self):
        orders = {}
        for seed in (0, 1, 2):
            shuffle = ShuffleScheduler(seed)
            for token in range(32):
                shuffle.push(1.0, 1, token)
            orders[seed] = tuple(token for _, token in _drain(shuffle))
        assert len(set(orders.values())) > 1
        assert all(sorted(order) == list(range(32)) for order in orders.values())

    def test_urgent_still_overtakes_normal(self):
        shuffle = ShuffleScheduler(3)
        shuffle.push(1.0, 1, "normal-a")
        shuffle.push(1.0, 0, "urgent")
        shuffle.push(1.0, 1, "normal-b")
        drained = [token for _, token in _drain(shuffle)]
        assert drained[0] == "urgent"
        assert set(drained[1:]) == {"normal-a", "normal-b"}

    def test_len_counts_pending_events(self):
        shuffle = ShuffleScheduler(0)
        for token in range(5):
            shuffle.push(0.0, 1, token)
        assert len(shuffle) == 5 and shuffle
        shuffle.pop()
        assert len(shuffle) == 4
        _drain(shuffle)
        assert len(shuffle) == 0 and not shuffle

    def test_scheduler_override_scopes_the_default(self):
        with scheduler_override(lambda: ShuffleScheduler(7)):
            inside = Simulator()
            assert isinstance(inside.scheduler, ShuffleScheduler)
            assert inside.scheduler.seed == 7
            # Explicit specs keep their meaning inside the override scope.
            assert isinstance(Simulator(scheduler="heap").scheduler, HeapScheduler)
        assert isinstance(Simulator().scheduler, SCHEDULERS[DEFAULT_SCHEDULER])


def _run_traced(scheduler_name, workload):
    """Run ``workload(sim, trace)`` to completion; return the trace."""
    sim = Simulator(scheduler=scheduler_name)
    trace = []
    workload(sim, trace)
    sim.run()
    return trace


#: Backends bound to the FIFO same-instant contract (bit-identical
#: traces).  ``shuffle`` deliberately permutes same-instant order — its
#: trace is a *legal* reordering, checked separately below.
_FIFO_SCHEDULERS = sorted(set(SCHEDULERS) - {"shuffle"})


def _assert_backends_agree(workload):
    traces = {
        name: _run_traced(name, workload) for name in _FIFO_SCHEDULERS
    }
    reference = traces.pop("calendar")
    for name, trace in traces.items():
        assert trace == reference, f"{name} diverged from calendar"
    assert reference, "workload produced an empty trace"
    return reference


class TestSimulatorTraceEquivalence:
    @given(
        delays=st.lists(
            st.sampled_from([0.0, 0.25, 0.5, 1.0, 1.0, 2.0]),
            min_size=1, max_size=30,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_timeout_bursts(self, delays):
        def workload(sim, trace):
            def waiter(index, delay):
                yield sim.timeout(delay)
                trace.append(("woke", index, sim.now))

            for index, delay in enumerate(delays):
                sim.process(waiter(index, delay))

        _assert_backends_agree(workload)

    @given(
        holds=st.lists(
            st.sampled_from([0.0, 0.5, 1.0]), min_size=2, max_size=20
        ),
        capacity=st.integers(1, 3),
    )
    @settings(max_examples=50, deadline=None)
    def test_resource_contention(self, holds, capacity):
        def workload(sim, trace):
            resource = Resource(sim, capacity=capacity)

            def user(index, hold):
                with resource.request() as req:
                    yield req
                    trace.append(("acquired", index, sim.now))
                    yield sim.timeout(hold)
                trace.append(("released", index, sim.now))

            for index, hold in enumerate(holds):
                sim.process(user(index, hold))

        _assert_backends_agree(workload)

    @given(items=st.lists(st.integers(), min_size=1, max_size=30),
           capacity=st.integers(1, 4))
    @settings(max_examples=50, deadline=None)
    def test_store_handoffs(self, items, capacity):
        def workload(sim, trace):
            store = Store(sim, capacity=capacity)

            def producer():
                for item in items:
                    yield store.put(item)
                    trace.append(("put", item, sim.now))

            def consumer():
                for _ in items:
                    item = yield store.get()
                    trace.append(("got", item, sim.now))

            sim.process(producer())
            sim.process(consumer())

        _assert_backends_agree(workload)

    def test_interrupt_mid_wait(self):
        def workload(sim, trace):
            def sleeper():
                try:
                    yield sim.timeout(10.0)
                    trace.append(("slept", sim.now))
                except Interrupt as interrupt:
                    trace.append(("interrupted", interrupt.cause, sim.now))

            def interrupter(victim):
                yield sim.timeout(3.0)
                victim.interrupt("wake up")

            victim = sim.process(sleeper())
            sim.process(interrupter(victim))

        trace = _assert_backends_agree(workload)
        assert trace == [("interrupted", "wake up", 3.0)]

    def test_until_cutoff_agrees(self):
        for name in sorted(SCHEDULERS):
            sim = Simulator(scheduler=name)
            fired = []

            def waiter(delay):
                yield sim.timeout(delay)
                fired.append(sim.now)

            for delay in (1.0, 2.0, 3.0, 4.0):
                sim.process(waiter(delay))
            sim.run(until=2.5)
            assert sim.now == 2.5
            assert fired == [1.0, 2.0], name

    def test_events_dispatched_counts_agree(self):
        counts = {}
        for name in sorted(SCHEDULERS):
            sim = Simulator(scheduler=name)

            def chain(n):
                for _ in range(n):
                    yield sim.timeout(1.0)

            sim.process(chain(10))
            sim.process(chain(10))
            sim.run()
            counts[name] = sim.events_dispatched
        assert len(set(counts.values())) == 1, counts
