"""Unit tests for the simulator scheduler."""

import pytest

from repro.sim import Simulator
from repro.util.errors import SimulationError


class TestClock:
    def test_starts_at_zero(self, sim):
        assert sim.now == 0.0

    def test_peek_empty_is_infinite(self, sim):
        assert sim.peek() == float("inf")

    def test_peek_reports_next_event_time(self, sim):
        sim.timeout(5.0)
        sim.timeout(2.0)
        assert sim.peek() == pytest.approx(2.0)

    def test_step_empty_raises(self, sim):
        with pytest.raises(SimulationError):
            sim.step()


class TestRun:
    def test_run_until_stops_the_clock(self, sim):
        ticks = []

        def ticker():
            while True:
                yield sim.timeout(1.0)
                ticks.append(sim.now)

        sim.process(ticker())
        sim.run(until=3.5)
        assert sim.now == pytest.approx(3.5)
        assert ticks == [1.0, 2.0, 3.0]

    def test_run_until_past_queue_drain_advances_clock(self, sim):
        # The queue drains at t=1.0, but run(until=10.0) must still leave
        # the clock at 10.0 — time passes even when nothing happens.
        sim.timeout(1.0)
        assert sim.run(until=10.0) == pytest.approx(10.0)
        assert sim.now == pytest.approx(10.0)

    def test_run_until_on_empty_queue_advances_clock(self, sim):
        assert sim.run(until=2.5) == pytest.approx(2.5)
        assert sim.now == pytest.approx(2.5)

    def test_run_until_in_the_past_raises(self, sim):
        sim.timeout(5.0)
        sim.run()
        with pytest.raises(SimulationError):
            sim.run(until=1.0)

    def test_events_processed_in_time_order(self, sim):
        order = []
        for delay in (3.0, 1.0, 2.0):
            sim.process(self._at(sim, delay, order))
        sim.run()
        assert order == [1.0, 2.0, 3.0]

    @staticmethod
    def _at(sim, delay, order):
        def body():
            yield sim.timeout(delay)
            order.append(sim.now)

        return body()

    def test_same_time_events_keep_insertion_order(self, sim):
        order = []

        def body(tag):
            yield sim.timeout(1.0)
            order.append(tag)

        for tag in ("a", "b", "c"):
            sim.process(body(tag))
        sim.run()
        assert order == ["a", "b", "c"]


class TestRunProcess:
    def test_returns_the_process_value(self, sim):
        def body():
            yield sim.timeout(1.0)
            return {"answer": 42}

        assert sim.run_process(body()) == {"answer": 42}

    def test_reraises_the_process_exception(self, sim):
        def body():
            yield sim.timeout(1.0)
            raise LookupError("missing")

        with pytest.raises(LookupError, match="missing"):
            sim.run_process(body())

    def test_detects_deadlock(self, sim):
        def body():
            yield sim.event()  # never triggered

        with pytest.raises(SimulationError, match="deadlock"):
            sim.run_process(body())

    def test_determinism_across_instances(self):
        def workload(sim, log):
            def worker(tag, delay):
                yield sim.timeout(delay)
                log.append((sim.now, tag))

            for tag, delay in (("x", 2.0), ("y", 1.0), ("z", 2.0)):
                sim.process(worker(tag, delay))
            sim.run()

        log1, log2 = [], []
        workload(Simulator(), log1)
        workload(Simulator(), log2)
        assert log1 == log2
