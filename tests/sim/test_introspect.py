"""Waiter introspection: the diagnostic feed of the liveness analyzer."""

from repro.sim import Resource, Simulator, Store
from repro.sim.introspect import describe_event, wait_edges, waiters_of


def _blocked_getter(sim, store, name):
    def body():
        yield store.get()

    return sim.process(body(), name=name)


class TestWaitersOf:
    def test_store_getter_is_attributed_to_its_process(self):
        sim = Simulator()
        store = Store(sim, name="feed")
        process = _blocked_getter(sim, store, "consumer")
        sim.run()
        (event,) = store._getters
        assert waiters_of(event) == [process]
        assert process.is_alive

    def test_event_without_process_waiters_yields_nothing(self):
        sim = Simulator()
        event = sim.event()
        event.callbacks.append(lambda e: None)  # a bare function, no process
        assert waiters_of(event) == []


class TestWaitEdges:
    def test_store_get_edge(self):
        sim = Simulator()
        store = Store(sim, name="feed")
        process = _blocked_getter(sim, store, "consumer")
        sim.run()
        (edge,) = wait_edges([process], stores=[store])
        assert edge.kind == "store-get"
        assert "'feed'" in edge.detail
        assert edge.blockers == []

    def test_store_put_edge_on_a_full_store(self):
        sim = Simulator()
        store = Store(sim, capacity=1, name="narrow")
        store.put("occupies-the-slot")

        def producer():
            yield store.put("blocked")

        process = sim.process(producer(), name="producer")
        sim.run()
        (edge,) = wait_edges([process], stores=[store])
        assert edge.kind == "store-put"
        assert "'narrow'" in edge.detail

    def test_resource_edge_renders_occupancy(self):
        sim = Simulator()
        device = Resource(sim, capacity=1, name="link")
        holder_request = device.request()

        def contender():
            with device.request() as request:
                yield request

        process = sim.process(contender(), name="contender")
        sim.run()
        (edge,) = wait_edges([process])
        assert edge.kind == "resource"
        assert "1/1 held" in edge.detail
        device.release(holder_request)

    def test_join_edge_names_the_blocker(self):
        sim = Simulator()
        store = Store(sim, name="feed")
        wedged = _blocked_getter(sim, store, "wedged")

        def joiner():
            yield wedged

        process = sim.process(joiner(), name="joiner")
        sim.run()
        edges = {e.process.name: e for e in wait_edges([process, wedged], stores=[store])}
        assert edges["joiner"].kind == "join"
        assert edges["joiner"].blockers == [wedged]
        assert edges["wedged"].kind == "store-get"

    def test_bare_event_edge(self):
        sim = Simulator()
        rendezvous = sim.event()

        def waiter():
            yield rendezvous

        process = sim.process(waiter(), name="waiter")
        sim.run()
        (edge,) = wait_edges([process])
        assert edge.kind == "event"
        assert "rendezvous" in edge.detail

    def test_finished_processes_produce_no_edges(self):
        sim = Simulator()

        def quick():
            yield sim.timeout(0.0)

        process = sim.process(quick(), name="quick")
        sim.run()
        assert wait_edges([process]) == []

    def test_duplicate_processes_reported_once(self):
        sim = Simulator()
        store = Store(sim, name="feed")
        process = _blocked_getter(sim, store, "consumer")
        sim.run()
        assert len(wait_edges([process, process], stores=[store])) == 1


class TestDescribeEvent:
    def test_condition_description_counts_pending(self):
        sim = Simulator()
        store = Store(sim, name="feed")
        first = _blocked_getter(sim, store, "a")
        second = _blocked_getter(sim, store, "b")
        condition = sim.all_of([first, second])
        sim.run()
        assert "2 events" in describe_event(condition)

    def test_timeout_description(self):
        sim = Simulator()
        timeout = sim.timeout(2.5)
        assert "2.5" in describe_event(timeout)
