"""The public API surface: every exported name resolves and works."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.sim",
    "repro.net",
    "repro.hardware",
    "repro.engine",
    "repro.engine.operators",
    "repro.coordinator",
    "repro.obs",
    "repro.scsql",
    "repro.optimizer",
    "repro.core",
    "repro.core.experiments",
    "repro.workloads",
    "repro.util",
]


@pytest.mark.parametrize("package", PACKAGES)
def test_all_exports_resolve(package):
    module = importlib.import_module(package)
    exported = getattr(module, "__all__", [])
    assert exported, f"{package} should declare __all__"
    for name in exported:
        assert hasattr(module, name), f"{package}.{name} is exported but missing"


def test_version_present():
    import repro

    assert repro.__version__


def test_top_level_quickstart_surface():
    """The README quickstart works through the top-level imports alone."""
    from repro import ExecutionSettings, SCSQSession

    session = SCSQSession()
    report = session.execute(
        "select extract(b) from sp a, sp b "
        "where b=sp(count(extract(a)), 'bg', 0) "
        "and a=sp(gen_array(10000,3), 'bg', 1);",
        ExecutionSettings(mpi_buffer_bytes=2000),
    )
    assert report.scalar_result == 3
