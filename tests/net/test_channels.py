"""Unit tests for the channel abstraction."""

import pytest

from repro.net.channels import LatencyChannel, MpiChannel, TcpChannel
from repro.net.message import WireBuffer
from repro.sim import Store
from repro.util.errors import NetworkError


class TestEndpointValidation:
    def test_mpi_requires_bluegene_endpoints(self, env):
        store = Store(env.sim)
        with pytest.raises(NetworkError):
            MpiChannel(env.sim, env.node("be", 0), env.node("bg", 0), store, env.torus)

    def test_tcp_requires_linux_to_bluegene(self, env):
        store = Store(env.sim)
        with pytest.raises(NetworkError):
            TcpChannel(
                env.sim, env.node("bg", 0), env.node("bg", 1), store, env.fabric, "s"
            )


class TestLatencyChannel:
    def test_delivers_with_latency(self, quiet_env):
        env = quiet_env
        store = Store(env.sim)
        channel = LatencyChannel(
            env.sim, env.node("bg", 0), env.node("fe", 0), store, env.params
        )

        def run():
            yield from channel.open()
            yield from channel.send(WireBuffer.data("s", "bg:0", 125_000, []))
            yield from channel.close()
            buf = yield store.get()
            return buf.nbytes, env.sim.now

        nbytes, elapsed = env.sim.run_process(run())
        assert nbytes == 125_000
        expected = env.params.ethernet.switch_latency + 125_000 / env.params.ethernet.nic_rate
        assert elapsed == pytest.approx(expected)


class TestMpiChannelSend:
    def test_orders_buffers(self, env):
        inbox = Store(env.sim, capacity=4)
        channel = MpiChannel(env.sim, env.node("bg", 1), env.node("bg", 0), inbox, env.torus)
        sent = [WireBuffer.data("s", "bg:1", 1000, []) for _ in range(5)]

        def sender():
            yield from channel.open()
            for buf in sent:
                yield from channel.send(buf)
            yield from channel.close()

        def receiver():
            got = []
            for _ in range(5):
                got.append((yield inbox.get()))
            return got

        env.sim.process(sender())
        proc = env.sim.process(receiver())
        env.sim.run()
        assert [b.buffer_id for b in proc.value] == [b.buffer_id for b in sent]
