"""Unit tests for the 3D torus network model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware.bluegene import BlueGene, BlueGeneConfig
from repro.net.jitter import Jitter
from repro.net.message import WireBuffer
from repro.net.params import TorusParams
from repro.net.torus import RouteTable, TorusNetwork
from repro.sim import Simulator, Store
from repro.util.errors import NetworkError


def make_torus(shape=(4, 4, 2)):
    sim = Simulator()
    machine = BlueGene(BlueGeneConfig(torus_shape=shape, pset_size=8))
    return sim, TorusNetwork(sim, machine, TorusParams(), Jitter())


def torus_distance(a, b, shape):
    """Minimal hop distance on a wrap-around torus."""
    total = 0
    for x, y, size in zip(a, b, shape):
        d = abs(x - y)
        total += min(d, size - d)
    return total


class TestRouting:
    def test_paper_figure7_sequential_routes_through_a(self):
        _, torus = make_torus()
        # Figure 7A: b=node2 -> c=node0 passes node1 (where a runs).
        assert torus.route(2, 0) == [2, 1, 0]

    def test_paper_figure7_balanced_is_direct(self):
        _, torus = make_torus()
        assert torus.route(4, 0) == [4, 0]
        assert torus.route(1, 0) == [1, 0]

    def test_self_route(self):
        _, torus = make_torus()
        assert torus.route(3, 3) == [3]

    def test_wraparound_shortcut(self):
        _, torus = make_torus()
        # 0 -> 3 along X: backward around the wrap is 1 hop.
        assert torus.route(0, 3) == [0, 3]

    def test_hop_count(self):
        _, torus = make_torus()
        assert torus.hop_count(2, 0) == 2
        assert torus.hop_count(4, 0) == 1

    @given(
        src=st.integers(0, 31),
        dst=st.integers(0, 31),
    )
    @settings(max_examples=200, deadline=None)
    def test_routes_are_minimal_and_connected(self, src, dst):
        _, torus = make_torus()
        machine = torus.bluegene
        path = torus.route(src, dst)
        assert path[0] == src and path[-1] == dst
        # Each step moves to a torus neighbour.
        shape = machine.config.torus_shape
        for here, there in zip(path, path[1:]):
            assert torus_distance(
                machine.coord_of(here), machine.coord_of(there), shape
            ) == 1
        # The route takes the minimal number of hops.
        expected = torus_distance(machine.coord_of(src), machine.coord_of(dst), shape)
        assert len(path) - 1 == expected


class TestRouteTable:
    def test_memoized_route_equals_fresh_compute(self):
        _, torus = make_torus()
        table = torus.routes
        nodes = torus.bluegene.config.num_compute_nodes
        for src in range(nodes):
            for dst in range(nodes):
                assert table.route(src, dst) == table.compute(src, dst)

    def test_repeated_lookup_hits_the_memo(self):
        _, torus = make_torus()
        first = torus.route(2, 0)
        assert torus.route(2, 0) is first  # cached list, by reference
        assert len(torus.routes) == 1

    def test_table_shared_between_networks(self):
        machine = BlueGene(BlueGeneConfig(torus_shape=(4, 4, 2), pset_size=8))
        table = RouteTable(machine)
        one = TorusNetwork(Simulator(), machine, TorusParams(), Jitter(), routes=table)
        two = TorusNetwork(Simulator(), machine, TorusParams(), Jitter(), routes=table)
        assert one.route(5, 0) is two.route(5, 0)
        assert one.routes is two.routes is table


class TestRouteTableBound:
    def _table(self, max_entries):
        machine = BlueGene(BlueGeneConfig(torus_shape=(4, 4, 2), pset_size=8))
        return RouteTable(machine, max_entries=max_entries)

    def test_memo_never_exceeds_its_bound(self):
        table = self._table(max_entries=8)
        for dst in range(20):
            table.route(0, dst)
            assert len(table) <= 8
        assert len(table) == 8

    def test_eviction_is_fifo(self):
        table = self._table(max_entries=2)
        table.route(0, 1)
        table.route(0, 2)
        table.route(0, 3)  # evicts (0, 1), the oldest insertion
        assert set(table._routes) == {(0, 2), (0, 3)}

    def test_evicted_route_recomputes_identically(self):
        table = self._table(max_entries=1)
        first = list(table.route(0, 5))
        table.route(0, 6)  # evicts (0, 5)
        assert table.route(0, 5) == first

    def test_bound_must_be_positive(self):
        with pytest.raises(NetworkError):
            self._table(max_entries=0)

    def test_approx_bytes_tracks_occupancy(self):
        table = self._table(max_entries=64)
        empty = table.approx_bytes()
        for dst in range(16):
            table.route(0, dst)
        assert table.approx_bytes() > empty


class TestTransfer:
    def _transfer(self, torus, sim, src, dst, buffers, nbytes=1000, slots=4):
        inbox = Store(sim, capacity=slots)

        def sender():
            for _ in range(buffers):
                buf = WireBuffer.data("s", f"bg:{src}", nbytes, [])
                yield from torus.send(buf, src, dst, inbox)
            yield from torus.send(WireBuffer.end_of_stream("s", f"bg:{src}"), src, dst, inbox)

        def receiver():
            count = 0
            while True:
                buf = yield inbox.get()
                if buf.eos:
                    return count
                count += 1

        sim.process(sender())
        proc = sim.process(receiver())
        sim.run()
        return proc.value

    def test_delivery_and_counters(self):
        sim, torus = make_torus()
        received = self._transfer(torus, sim, 1, 0, buffers=10)
        assert received == 10
        assert torus.bytes_on_wire == 10_000
        assert torus.buffers_delivered == 11  # includes the EOS marker
        assert torus.source_switches == 0

    def test_send_to_self_rejected(self):
        sim, torus = make_torus()
        with pytest.raises(NetworkError):
            list(torus.send(WireBuffer.data("s", "bg:0", 10, []), 0, 0, Store(sim)))

    def test_two_hop_transfer_costs_more_than_one_hop(self):
        sim1, torus1 = make_torus()
        self._transfer(torus1, sim1, 1, 0, buffers=50)
        one_hop = sim1.now
        sim2, torus2 = make_torus()
        self._transfer(torus2, sim2, 2, 0, buffers=50)
        two_hops = sim2.now
        assert two_hops > one_hop

    def test_source_switch_penalty_counted_on_merge(self):
        sim, torus = make_torus()
        inbox = Store(sim, capacity=4)
        done = []

        def sender(src):
            for _ in range(20):
                buf = WireBuffer.data(f"s{src}", f"bg:{src}", 1000, [])
                yield from torus.send(buf, src, 0, inbox)
            done.append(src)

        def receiver():
            for _ in range(40):
                yield inbox.get()

        sim.process(sender(1))
        sim.process(sender(4))
        sim.process(receiver())
        sim.run()
        assert torus.source_switches > 10  # alternating arrivals switch often

    def test_contention_slows_transfers(self):
        # One stream through an idle intermediate node vs. the same stream
        # while the intermediate node's co-processor sends its own data.
        sim1, torus1 = make_torus()
        self._transfer(torus1, sim1, 2, 0, buffers=50)
        quiet = sim1.now

        sim2, torus2 = make_torus()
        inbox_own = Store(sim2, capacity=4)

        def own_traffic():
            for _ in range(50):
                buf = WireBuffer.data("own", "bg:1", 1000, [])
                yield from torus2.send(buf, 1, 5, inbox_own)

        def own_drain():
            for _ in range(50):
                yield inbox_own.get()

        sim2.process(own_traffic())
        sim2.process(own_drain())
        inbox = Store(sim2, capacity=4)

        def contended():
            for _ in range(50):
                buf = WireBuffer.data("s", "bg:2", 1000, [])
                yield from torus2.send(buf, 2, 0, inbox)

        def drain():
            for _ in range(50):
                yield inbox.get()

        sim2.process(contended())
        proc = sim2.process(drain())
        sim2.run()
        assert proc.ok
        assert sim2.now > quiet

    def test_eos_buffer_costs_no_wire_time(self):
        sim, torus = make_torus()
        inbox = Store(sim, capacity=2)

        def sender():
            yield from torus.send(WireBuffer.end_of_stream("s", "bg:1"), 1, 0, inbox)

        def receiver():
            buf = yield inbox.get()
            return buf.eos

        sim.process(sender())
        proc = sim.process(receiver())
        sim.run()
        assert proc.value
        assert torus.bytes_on_wire == 0


class TestStreamWindow:
    def test_in_flight_buffers_bounded(self):
        """No more than stream_window buffers of one stream are in flight
        (injected but undelivered) at any moment."""
        sim, torus = make_torus()
        window = torus.params.stream_window
        inbox = Store(sim, capacity=64)
        state = {"sent": 0, "delivered": 0, "peak": 0}

        def sender():
            for _ in range(30):
                buf = WireBuffer.data("s", "bg:2", 1000, [])
                yield from torus.send(buf, 2, 0, inbox)
                state["sent"] += 1
                in_flight = state["sent"] - state["delivered"]
                state["peak"] = max(state["peak"], in_flight)

        def receiver():
            for _ in range(30):
                yield inbox.get()
                state["delivered"] += 1

        sim.process(sender())
        sim.process(receiver())
        sim.run()
        assert state["sent"] == state["delivered"] == 30
        assert state["peak"] <= window + 1  # +1 for the buffer just injected

    def test_streams_have_independent_windows(self):
        sim, torus = make_torus()
        inbox = Store(sim, capacity=64)
        finished = []

        def sender(stream, src):
            for _ in range(10):
                buf = WireBuffer.data(stream, f"bg:{src}", 1000, [])
                yield from torus.send(buf, src, 0, inbox)
            finished.append(stream)

        def receiver():
            for _ in range(20):
                yield inbox.get()

        sim.process(sender("s1", 1))
        sim.process(sender("s2", 4))
        sim.process(receiver())
        sim.run()
        assert sorted(finished) == ["s1", "s2"]


class TestStreamRegistry:
    def test_counts_per_node(self):
        _, torus = make_torus()
        assert torus.incoming_stream_count(0) == 1  # floor for costing
        torus.register_stream(0, "a")
        torus.register_stream(0, "b")
        assert torus.incoming_stream_count(0) == 2
        torus.unregister_stream(0, "a")
        assert torus.incoming_stream_count(0) == 1

    def test_unregister_unknown_is_harmless(self):
        _, torus = make_torus()
        torus.unregister_stream(5, "ghost")
        assert torus.incoming_stream_count(5) == 1

    def test_switch_cost_scales_with_streams(self):
        _, torus = make_torus()
        assert torus._switch_cost(0) == 0.0
        torus.register_stream(0, "a")
        assert torus._switch_cost(0) == 0.0  # a single stream never switches
        torus.register_stream(0, "b")
        penalty = torus.params.source_switch_penalty
        assert torus._switch_cost(0) == pytest.approx(penalty)
        torus.register_stream(0, "c")
        assert torus._switch_cost(0) == pytest.approx(2 * penalty)
