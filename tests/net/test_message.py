"""Unit tests for wire-level message types."""

from repro.net.message import ControlKind, ControlMessage, Fragment, WireBuffer


class TestWireBuffer:
    def test_data_buffers_get_unique_ids(self):
        a = WireBuffer.data("s", "n", 10, [])
        b = WireBuffer.data("s", "n", 10, [])
        assert a.buffer_id != b.buffer_id
        assert not a.eos

    def test_end_of_stream_marker(self):
        eos = WireBuffer.end_of_stream("s", "n")
        assert eos.eos
        assert eos.nbytes == 0
        assert eos.fragments == ()

    def test_fragments_are_preserved(self):
        fragments = [Fragment(object_id=1, index=0, total=2, nbytes=5)]
        buffer = WireBuffer.data("s", "n", 5, fragments)
        assert buffer.fragments[0].object_id == 1


class TestFragment:
    def test_is_last(self):
        assert Fragment(object_id=1, index=1, total=2, nbytes=5).is_last
        assert not Fragment(object_id=1, index=0, total=2, nbytes=5).is_last

    def test_payload_defaults_to_none(self):
        assert Fragment(object_id=1, index=0, total=1, nbytes=5).payload is None


class TestControlMessage:
    def test_kinds(self):
        message = ControlMessage(kind=ControlKind.STOP, sender="rp-1")
        assert message.kind is ControlKind.STOP
        assert message.info is None
