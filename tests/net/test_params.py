"""Unit tests for the network cost-model parameters."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net.params import (
    CpuCostParams,
    IONodeParams,
    NetworkParams,
    TorusParams,
)
from repro.util.units import gbps


class TestTorusParams:
    def test_packet_count_pads_to_one(self):
        params = TorusParams()
        assert params.packet_count(1) == 1
        assert params.packet_count(100) == 1
        assert params.packet_count(1024) == 1
        assert params.packet_count(1025) == 2
        assert params.packet_count(0) == 1

    def test_packet_time_matches_link_rate(self):
        params = TorusParams()
        assert params.packet_time() == pytest.approx(1024 / gbps(1.4))

    def test_wire_time_quantized(self):
        params = TorusParams()
        assert params.wire_time(100) == params.wire_time(1024)
        assert params.wire_time(2048) == pytest.approx(2 * params.packet_time())

    def test_cache_factor_flat_below_knee(self):
        params = TorusParams()
        assert params.cache_factor(100) == 1.0
        assert params.cache_factor(1000) == 1.0
        assert params.cache_factor(1001) > 1.0

    def test_cache_factor_saturates(self):
        params = TorusParams()
        assert params.cache_factor(100_000_000) == pytest.approx(
            1.0 + params.cache_penalty, rel=0.01
        )

    def test_receive_cheaper_than_handling(self):
        params = TorusParams()
        for size in (100, 1000, 10_000, 1_000_000):
            assert params.receive_time(size) < params.handling_time(size)

    @given(st.integers(1, 10_000_000))
    def test_cache_factor_bounded_and_monotone_structure(self, nbytes):
        params = TorusParams()
        factor = params.cache_factor(nbytes)
        assert 1.0 <= factor <= 1.0 + params.cache_penalty

    @given(a=st.integers(1, 1_000_000), b=st.integers(1, 1_000_000))
    def test_handling_time_monotone_in_size(self, a, b):
        params = TorusParams()
        small, large = min(a, b), max(a, b)
        assert params.handling_time(small) <= params.handling_time(large) + 1e-12


class TestCpuCostParams:
    def test_marshal_time_has_fixed_and_linear_parts(self):
        params = CpuCostParams()
        base = params.marshal_time(0)
        assert base == pytest.approx(params.per_buffer_overhead)
        assert params.marshal_time(1_000_000) == pytest.approx(
            params.per_buffer_overhead + 1_000_000 / params.marshal_rate
        )

    def test_demarshal_symmetric_by_default(self):
        params = CpuCostParams()
        assert params.demarshal_time(5000) == pytest.approx(params.marshal_time(5000))


class TestIONodeParams:
    def test_defaults_reflect_published_envelope(self):
        params = IONodeParams()
        assert params.nic_rate == pytest.approx(gbps(1.0))
        assert params.tree_rate == pytest.approx(gbps(2.8))
        # Single receiver tops out below the I/O node NIC (observation 2).
        assert params.compute_receive_rate * 8 < params.nic_rate * 8


class TestNetworkParams:
    def test_with_overrides_replaces_sections(self):
        params = NetworkParams()
        modified = params.with_overrides(torus=TorusParams(link_rate=gbps(2.8)))
        assert modified.torus.link_rate == pytest.approx(gbps(2.8))
        assert params.torus.link_rate == pytest.approx(gbps(1.4))
        assert modified.cpu is params.cpu
