"""Unit tests for the jitter model."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net.jitter import Jitter
from repro.util.errors import SimulationError


class TestJitter:
    def test_zero_magnitude_is_exact(self):
        jitter = Jitter(magnitude=0.0, seed=1)
        assert all(jitter.scale() == 1.0 for _ in range(10))
        assert jitter.apply(3.5) == 3.5

    def test_same_seed_same_sequence(self):
        a = Jitter(magnitude=0.05, seed=42)
        b = Jitter(magnitude=0.05, seed=42)
        assert [a.scale() for _ in range(20)] == [b.scale() for _ in range(20)]

    def test_different_seeds_differ(self):
        a = Jitter(magnitude=0.05, seed=1)
        b = Jitter(magnitude=0.05, seed=2)
        assert [a.scale() for _ in range(5)] != [b.scale() for _ in range(5)]

    def test_magnitude_validation(self):
        with pytest.raises(SimulationError):
            Jitter(magnitude=-0.1)
        with pytest.raises(SimulationError):
            Jitter(magnitude=1.0)

    @given(
        magnitude=st.floats(min_value=0.0, max_value=0.5),
        seed=st.integers(0, 1000),
        cost=st.floats(min_value=0.0, max_value=1e3),
    )
    def test_scaled_costs_stay_within_bounds(self, magnitude, seed, cost):
        jitter = Jitter(magnitude=magnitude, seed=seed)
        for _ in range(5):
            scaled = jitter.apply(cost)
            assert cost * (1 - magnitude) <= scaled <= cost * (1 + magnitude)
