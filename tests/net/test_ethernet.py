"""Unit tests for the Ethernet fabric and TCP ingress model."""

import pytest

from repro.net.ethernet import TcpStreamConnection
from repro.net.message import WireBuffer
from repro.sim import Store
from repro.util.errors import NetworkError


def make_connection(env, be_index=0, bg_index=0, stream="s0", slots=8):
    inbox = Store(env.sim, capacity=slots)
    connection = TcpStreamConnection(
        env.fabric, env.node("be", be_index), bg_index, inbox, stream
    )
    return connection, inbox


class TestRegistry:
    def test_open_and_close_update_counts(self, env):
        connection, _ = make_connection(env)
        env.sim.run_process(connection.open())
        fabric = env.fabric
        assert fabric.distinct_external_hosts == 1
        assert fabric.io_connection_count(0) == 1
        assert fabric.io_host_count(0) == 1
        env.sim.run_process(connection.close())
        assert fabric.distinct_external_hosts == 0
        assert fabric.io_connection_count(0) == 0
        assert fabric.io_host_count(0) == 0

    def test_double_open_rejected(self, env):
        connection, _ = make_connection(env)
        env.sim.run_process(connection.open())
        with pytest.raises(NetworkError):
            env.sim.run_process(connection.open())

    def test_send_on_closed_connection_rejected(self, env):
        connection, _ = make_connection(env)
        buf = WireBuffer.data("s0", "be:0", 1000, [])
        with pytest.raises(NetworkError):
            env.sim.run_process(connection.send(buf))

    def test_duplicate_registration_rejected(self, env):
        env.fabric.register_connection(env.node("be", 0), 0, "x")
        with pytest.raises(NetworkError):
            env.fabric.register_connection(env.node("be", 0), 0, "x")

    def test_unregister_unknown_rejected(self, env):
        with pytest.raises(NetworkError):
            env.fabric.unregister_connection(env.node("be", 0), 0, "ghost")

    def test_distinct_hosts_counted_once(self, env):
        for stream in ("a", "b", "c"):
            env.fabric.register_connection(env.node("be", 1), 0, stream)
        assert env.fabric.distinct_external_hosts == 1
        assert env.fabric.io_connection_count(0) == 3


class TestPenalties:
    def test_connection_sharing_slows_the_proxy(self, env):
        fabric = env.fabric
        fabric.register_connection(env.node("be", 0), 0, "a")
        solo = fabric._io_service_rate(0)
        fabric.register_connection(env.node("be", 0), 0, "b")
        shared = fabric._io_service_rate(0)
        assert shared < solo
        expected = solo / (1 + fabric.params.io_node.connection_sharing_penalty)
        assert shared == pytest.approx(expected)

    def test_distinct_hosts_slow_the_proxy_further(self, env):
        fabric = env.fabric
        fabric.register_connection(env.node("be", 0), 0, "a")
        fabric.register_connection(env.node("be", 0), 0, "b")
        same_host = fabric._io_service_rate(0)
        fabric.unregister_connection(env.node("be", 0), 0, "b")
        fabric.register_connection(env.node("be", 1), 0, "b")
        two_hosts = fabric._io_service_rate(0)
        assert two_hosts < same_host

    def test_uplink_efficiency_degrades_with_hosts(self, env):
        fabric = env.fabric
        assert fabric._uplink_efficiency() == 1.0
        fabric.register_connection(env.node("be", 0), 0, "a")
        assert fabric._uplink_efficiency() == 1.0
        fabric.register_connection(env.node("be", 1), 1, "b")
        two = fabric._uplink_efficiency()
        fabric.register_connection(env.node("be", 2), 2, "c")
        three = fabric._uplink_efficiency()
        assert three < two < 1.0


class TestFlowControl:
    def test_window_bounds_in_flight_buffers(self, env):
        """No more than window_segments buffers of one connection may be
        between send() completion and delivery."""
        connection, inbox = make_connection(env, slots=64)
        window = env.params.tcp.window_segments
        stats = {"sent": 0, "delivered": 0, "peak": 0}

        def sender():
            yield from connection.open()
            for _ in range(20):
                buf = WireBuffer.data("s0", "be:0", 65536, [])
                yield from connection.send(buf)
                stats["sent"] += 1
                in_flight = stats["sent"] - stats["delivered"]
                stats["peak"] = max(stats["peak"], in_flight)
            yield from connection.close()

        def receiver():
            for _ in range(20):
                yield inbox.get()
                stats["delivered"] += 1

        env.sim.process(sender())
        env.sim.process(receiver())
        env.sim.run()
        assert stats["sent"] == stats["delivered"] == 20
        assert stats["peak"] <= window + 1  # +1: the buffer just sent

    def test_close_waits_for_inflight_delivery(self, env):
        connection, inbox = make_connection(env, slots=64)

        def run():
            yield from connection.open()
            for _ in range(3):
                yield from connection.send(WireBuffer.data("s0", "be:0", 65536, []))
            yield from connection.close()
            # After close, everything must already be in the inbox.
            return inbox.size

        delivered = env.sim.run_process(run())
        assert delivered == 3
        assert env.fabric.distinct_external_hosts == 0


class TestEndToEnd:
    def test_bytes_are_counted(self, env):
        connection, inbox = make_connection(env, slots=64)

        def run():
            yield from connection.open()
            for _ in range(5):
                yield from connection.send(WireBuffer.data("s0", "be:0", 65536, []))
            yield from connection.close()

        env.sim.run_process(run())
        assert env.fabric.bytes_ingress == 5 * 65536
        assert env.fabric.buffers_forwarded == 5

    def test_nic_validation(self, env):
        with pytest.raises(NetworkError):
            env.fabric.nic(env.node("bg", 0))

    def test_unknown_io_node_rejected(self, env):
        with pytest.raises(NetworkError):
            env.fabric.io_proxy(99)
