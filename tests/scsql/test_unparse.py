"""Round-trip tests for the SCSQL unparser: parse(unparse(ast)) == ast."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.scsql.ast import (
    CondKind,
    Condition,
    CreateFunction,
    Decl,
    FuncCall,
    Literal,
    Param,
    SelectQuery,
    SetExpr,
    Var,
)
from repro.scsql.parser import parse
from repro.scsql.unparse import unparse, unparse_expr
from repro.util.errors import QueryError

PAPER_QUERIES = [
    """
    select extract(b)
    from sp a, sp b
    where b=sp(streamof(count(extract(a))), 'bg', 0)
    and a=sp(gen_array(3000000,100), 'bg', 1);
    """,
    """
    select extract(c)
    from sp a, sp b, sp c
    where c=sp(count(merge({a,b})), 'bg', 0)
    and a=sp(gen_array(3000000,100), 'bg', 1)
    and b=sp(gen_array(3000000,100), 'bg', 2);
    """,
    """
    select extract(c) from
    bag of sp a, bag of sp b, sp c, integer n
    where c=sp(streamof(sum(merge(b))), 'bg')
    and b=spv(
      (select streamof(count(extract(p)))
       from sp p
       where p in a),
      'bg', psetrr())
    and a=spv(
      (select gen_array(3000000,100)
       from integer i where i in iota(1,n)),
      'be', urr('be'))
    and n=4;
    """,
    """
    create function radix2(string s) -> stream
    as select radixcombine(merge({a,b}))
    from sp a, sp b, sp c
    where a=sp(fft(odd(extract(c))), 'bg')
    and b=sp(fft(even(extract(c))), 'bg')
    and c=sp(receiver(s), 'bg');
    """,
]


class TestPaperQueriesRoundTrip:
    @pytest.mark.parametrize("text", PAPER_QUERIES)
    def test_roundtrip(self, text):
        ast = parse(text)
        rendered = unparse(ast)
        assert parse(rendered) == ast

    def test_unparse_is_stable(self):
        ast = parse(PAPER_QUERIES[0])
        once = unparse(ast)
        assert unparse(parse(once)) == once


class TestErrors:
    def test_unrepresentable_string(self):
        with pytest.raises(QueryError, match="quote"):
            unparse_expr(Literal("it's"))


# ----------------------------------------------------------------------
# Hypothesis: generated ASTs survive the round trip.
# ----------------------------------------------------------------------
_names = st.sampled_from(["a", "b", "c", "p", "n", "x", "stream_1", "Gen"])
_safe_strings = st.text(
    alphabet=st.characters(whitelist_categories=("Ll", "Lu", "Nd"), max_codepoint=127),
    max_size=8,
)
_literals = st.one_of(
    st.integers(min_value=-10**6, max_value=10**6).map(Literal),
    _safe_strings.map(Literal),
)


def _exprs(depth: int = 2):
    if depth == 0:
        return st.one_of(_literals, _names.map(Var))
    sub = _exprs(depth - 1)
    return st.one_of(
        _literals,
        _names.map(Var),
        st.builds(
            FuncCall,
            name=_names,
            args=st.lists(sub, max_size=3).map(tuple),
        ),
        st.builds(SetExpr, items=st.lists(sub, min_size=1, max_size=3).map(tuple)),
    )


_decls = st.builds(
    Decl,
    name=_names,
    type_name=st.sampled_from(["sp", "integer", "string", "stream"]),
    is_bag=st.booleans(),
)

_conditions = st.builds(
    Condition,
    kind=st.sampled_from([CondKind.EQ, CondKind.IN]),
    var=_names,
    expr=_exprs(),
)

_queries = st.builds(
    SelectQuery,
    select=_exprs(),
    decls=st.lists(_decls, min_size=1, max_size=3).map(tuple),
    conditions=st.lists(_conditions, max_size=3).map(tuple),
)

_functions = st.builds(
    CreateFunction,
    name=_names,
    params=st.lists(
        st.builds(Param, name=_names, type_name=st.sampled_from(["string", "integer", "stream"])),
        max_size=2,
    ).map(tuple),
    return_type=st.sampled_from(["stream", "integer"]),
    body=_queries,
)


@given(query=_queries)
@settings(max_examples=200, deadline=None)
def test_generated_selects_roundtrip(query):
    assert parse(unparse(query)) == query


@given(definition=_functions)
@settings(max_examples=100, deadline=None)
def test_generated_functions_roundtrip(definition):
    assert parse(unparse(definition)) == definition


@given(query=_queries)
@settings(max_examples=100, deadline=None)
def test_nested_queries_roundtrip_as_expressions(query):
    outer = SelectQuery(
        select=FuncCall(name="merge", args=(query,)),
        decls=(Decl(name="z", type_name="integer"),),
        conditions=(Condition(kind=CondKind.EQ, var="z", expr=Literal(1)),),
    )
    assert parse(unparse(outer)) == outer
