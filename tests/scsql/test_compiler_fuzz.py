"""Fuzzing the compiler: random ASTs must fail *cleanly* or compile.

Whatever hypothesis throws at it, the compiler may only raise
:class:`QueryError` subclasses (semantic rejection) — never KeyError,
AttributeError, RecursionError, or other internal crashes.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware.environment import Environment, EnvironmentConfig
from repro.scsql.ast import (
    CondKind,
    Condition,
    Decl,
    FuncCall,
    Literal,
    SelectQuery,
    SetExpr,
    Var,
)
from repro.scsql.compiler import QueryCompiler
from repro.util.errors import QueryError

# Names drawn from a pool that includes builtin function names, cluster
# strings, and plain variables — maximizing weird collisions.
_names = st.sampled_from(
    ["a", "b", "c", "n", "i", "p", "sp", "spv", "extract", "merge",
     "count", "iota", "gen_array", "urr", "first", "bg", "be"]
)
_literals = st.one_of(
    st.integers(-10, 10_000_000).map(Literal),
    st.sampled_from(["bg", "be", "fe", "gpu", "pattern"]).map(Literal),
)


def _exprs(depth=3):
    if depth == 0:
        return st.one_of(_literals, _names.map(Var))
    sub = _exprs(depth - 1)
    return st.one_of(
        _literals,
        _names.map(Var),
        st.builds(FuncCall, name=_names, args=st.lists(sub, max_size=3).map(tuple)),
        st.builds(SetExpr, items=st.lists(sub, min_size=1, max_size=3).map(tuple)),
        st.builds(
            SelectQuery,
            select=sub,
            decls=st.lists(
                st.builds(
                    Decl,
                    name=_names,
                    type_name=st.sampled_from(["sp", "integer", "string"]),
                    is_bag=st.booleans(),
                ),
                min_size=1,
                max_size=2,
            ).map(tuple),
            conditions=st.lists(
                st.builds(
                    Condition,
                    kind=st.sampled_from([CondKind.EQ, CondKind.IN]),
                    var=_names,
                    expr=sub,
                ),
                max_size=2,
            ).map(tuple),
        ),
    )


_queries = st.builds(
    SelectQuery,
    select=_exprs(),
    decls=st.lists(
        st.builds(
            Decl,
            name=_names,
            type_name=st.sampled_from(["sp", "integer", "string", "stream"]),
            is_bag=st.booleans(),
        ),
        min_size=1,
        max_size=4,
    ).map(tuple),
    conditions=st.lists(
        st.builds(
            Condition,
            kind=st.sampled_from([CondKind.EQ, CondKind.IN]),
            var=_names,
            expr=_exprs(),
        ),
        max_size=4,
    ).map(tuple),
)


@given(query=_queries)
@settings(max_examples=300, deadline=None)
def test_compiler_rejects_garbage_cleanly(query):
    compiler = QueryCompiler(Environment(EnvironmentConfig()))
    try:
        graph = compiler.compile_select(query)
    except QueryError:
        return  # clean semantic rejection
    # If it compiled, the graph must be internally consistent.
    graph.validate()
