"""Unit tests for the SCSQL parser."""

import pytest

from repro.scsql.ast import (
    CondKind,
    CreateFunction,
    FuncCall,
    Literal,
    SelectQuery,
    SetExpr,
    Var,
)
from repro.scsql.parser import parse, parse_query
from repro.util.errors import QueryParseError


class TestSelectQueries:
    def test_minimal_query(self):
        query = parse_query("select extract(a) from sp a")
        assert isinstance(query.select, FuncCall)
        assert query.decls[0].name == "a"
        assert query.decls[0].type_name == "sp"
        assert not query.decls[0].is_bag

    def test_bag_of_declaration(self):
        query = parse_query("select merge(a) from bag of sp a")
        assert query.decls[0].is_bag

    def test_conditions_parsed(self):
        query = parse_query(
            "select extract(b) from sp a, sp b, integer n "
            "where b=sp(count(extract(a)), 'bg') and n=4"
        )
        assert [c.kind for c in query.conditions] == [CondKind.EQ, CondKind.EQ]
        assert query.conditions[1].expr == Literal(4)

    def test_in_condition(self):
        query = parse_query(
            "select gen_array(10,2) from integer i where i in iota(1,5)"
        )
        condition = query.conditions[0]
        assert condition.kind is CondKind.IN
        assert condition.var == "i"

    def test_set_expression(self):
        query = parse_query("select radixcombine(merge({a,b})) from sp a, sp b")
        merge = query.select.args[0]
        assert isinstance(merge.args[0], SetExpr)
        assert merge.args[0].items == (Var("a"), Var("b"))

    def test_nested_select_as_argument(self):
        query = parse_query(
            "select merge(x) from bag of sp x where x=spv("
            "(select gen_array(100,1) from integer i where i in iota(1,3)),"
            " 'be', 1)"
        )
        spv = query.conditions[0].expr
        assert isinstance(spv.args[0], SelectQuery)

    def test_trailing_semicolon_ok(self):
        parse_query("select extract(a) from sp a;")


class TestCreateFunction:
    def test_radix2_definition(self):
        statement = parse(
            """
            create function radix2(string s) -> stream
            as select radixcombine(merge({a,b}))
            from sp a, sp b, sp c
            where a=sp(fft(odd(extract(c))), 'bg')
            and b=sp(fft(even(extract(c))), 'bg')
            and c=sp(receiver(s), 'bg');
            """
        )
        assert isinstance(statement, CreateFunction)
        assert statement.name == "radix2"
        assert statement.params[0].name == "s"
        assert statement.params[0].type_name == "string"
        assert statement.return_type == "stream"
        assert len(statement.body.conditions) == 3

    def test_zero_parameter_function(self):
        statement = parse(
            "create function f() -> stream as select extract(a) from sp a "
            "where a=sp(iota(1,3), 'bg')"
        )
        assert statement.params == ()


class TestErrors:
    def test_missing_from(self):
        with pytest.raises(QueryParseError, match="from"):
            parse("select extract(a)")

    def test_unknown_type(self):
        with pytest.raises(QueryParseError, match="unknown type"):
            parse("select x from gadget x")

    def test_condition_needs_eq_or_in(self):
        with pytest.raises(QueryParseError, match="'=' or 'in'"):
            parse("select x from sp x where x")

    def test_trailing_garbage(self):
        with pytest.raises(QueryParseError, match="trailing"):
            parse("select extract(a) from sp a extra")

    def test_parse_query_rejects_function(self):
        with pytest.raises(QueryParseError):
            parse_query(
                "create function f() -> stream as select extract(a) from sp a"
            )

    def test_unclosed_paren(self):
        with pytest.raises(QueryParseError):
            parse("select extract(a from sp a")

    def test_error_carries_position(self):
        try:
            parse("select x from\ngadget x")
        except QueryParseError as error:
            assert error.line == 2
        else:
            pytest.fail("expected a parse error")


class TestFreeVars:
    def test_select_query_free_vars(self):
        query = parse_query(
            "select merge(a) from bag of sp a where a=spv("
            "(select gen_array(10,1) from integer i where i in iota(1,n)), 'be')"
        )
        assert query.free_vars() == {"n"}
