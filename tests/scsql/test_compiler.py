"""Unit tests for the SCSQL compiler (setup evaluation, plan building)."""

import pytest

from repro.coordinator.allocation import (
    ExplicitNodesSpec,
    InPsetSpec,
    UrrSpec,
)
from repro.coordinator.deployer import resolve_allocations
from repro.scsql.compiler import QueryCompiler
from repro.scsql.parser import parse_query
from repro.util.errors import QuerySemanticError


def compile_text(env, text, functions=None):
    return QueryCompiler(env, functions or {}).compile_select(parse_query(text))


class TestBasicCompilation:
    def test_simple_sp_graph(self, env):
        graph = compile_text(
            env,
            "select extract(b) from sp a, sp b "
            "where b=sp(count(extract(a)), 'bg', 0) "
            "and a=sp(gen_array(1000,3), 'bg', 1)",
        )
        assert len(graph.sps) == 2
        assert graph.root_plan.name == "input"
        plans = {sp.plan.name for sp in graph.sps.values()}
        assert plans == {"count", "gen_array"}

    def test_definitions_in_any_order(self, env):
        """Query 1 defines c before b; the compiler reorders."""
        graph = compile_text(
            env,
            "select extract(c) from sp b, sp c "
            "where c=sp(extract(b), 'bg') and b=sp(iota(1,3), 'bg')",
        )
        assert len(graph.sps) == 2

    def test_forward_stream_reference_is_not_a_cycle(self, env):
        """The radix2 pattern: a extracts from c, c defined later."""
        graph = compile_text(
            env,
            "select extract(a) from sp a, sp c "
            "where a=sp(count(extract(c)), 'bg') and c=sp(iota(1,9), 'bg')",
        )
        assert len(graph.sps) == 2

    def test_true_setup_cycle_rejected(self, env):
        with pytest.raises(QuerySemanticError, match="cyclic"):
            compile_text(
                env,
                "select n from integer n, integer m where n=iota(1,m) and m=iota(1,n)",
            )

    def test_spv_expands_iteration(self, env):
        graph = compile_text(
            env,
            "select merge(a) from bag of sp a, integer n "
            "where a=spv((select gen_array(100,1) from integer i "
            "where i in iota(1,n)), 'be', 1) and n=5",
        )
        assert len(graph.sps) == 5
        assert len(list(graph.root_plan.input_leaves())) == 5

    def test_spv_over_sp_bag(self, env):
        graph = compile_text(
            env,
            "select extract(c) from bag of sp a, bag of sp b, sp c, integer n "
            "where c=sp(sum(merge(b)), 'bg') "
            "and b=spv((select count(extract(p)) from sp p where p in a), 'bg') "
            "and a=spv((select gen_array(100,2) from integer i "
            "where i in iota(1,n)), 'be') and n=3",
        )
        # 3 generators + 3 counters + 1 summer.
        assert len(graph.sps) == 7

    def test_spv_set_expression(self, env):
        graph = compile_text(
            env,
            "select merge(a) from bag of sp a "
            "where a=spv({iota(1,3), iota(4,6)}, 'bg')",
        )
        assert len(graph.sps) == 2

    def test_name_hints_in_sp_ids(self, env):
        graph = compile_text(
            env,
            "select extract(b) from sp a, sp b "
            "where b=sp(count(extract(a)), 'bg') and a=sp(iota(1,2), 'bg')",
        )
        hints = {sp_id.split("@")[0] for sp_id in graph.sps}
        assert hints == {"a", "b"}


class TestAllocationResolution:
    def _allocations(self, env, text):
        graph = compile_text(env, text)
        resolve_allocations(graph, env)
        return {sp.sp_id.split("@")[0]: sp.allocation for sp in graph.sps.values()}

    def test_constant_allocation_compiles_to_spec(self, env):
        graph = compile_text(
            env, "select extract(a) from sp a where a=sp(iota(1,2), 'bg', 7)"
        )
        (sp,) = [sp for sp in graph.sps.values() if sp.sp_id.startswith("a")]
        # The compiled form is symbolic and environment-free...
        assert sp.allocation == ExplicitNodesSpec((7,))
        assert sp.allocation.constant_node == 7

    def test_constant_allocation(self, env):
        allocations = self._allocations(
            env,
            "select extract(a) from sp a where a=sp(iota(1,2), 'bg', 7)",
        )
        node = allocations["a"].select(env.cndb("bg"))
        assert node.index == 7

    def test_urr_allocation(self, env):
        graph = compile_text(
            env,
            "select merge(a) from bag of sp a "
            "where a=spv((select gen_array(10,1) from integer i "
            "where i in iota(1,3)), 'be', urr('be'))",
        )
        # All spv members share one spec instance from the compiler...
        specs = {id(sp.allocation) for sp in graph.sps.values()}
        assert len(specs) == 1
        assert next(iter(graph.sps.values())).allocation == UrrSpec("be")
        # ...which resolves once and is shared: placements spread over be nodes.
        resolve_allocations(graph, env)
        sequences = {id(sp.allocation) for sp in graph.sps.values()}
        assert len(sequences) == 1
        placements = set()
        for sp in graph.sps.values():
            node = sp.allocation.select(env.cndb("be"))
            node.acquire()
            placements.add(node.index)
        assert placements == {0, 1, 2}

    def test_inpset_resolved_against_target_cluster(self, env):
        graph = compile_text(
            env,
            "select extract(b) from sp b where b=sp(iota(1,2), 'bg', inPset(1))",
        )
        (sp,) = graph.sps.values()
        assert sp.allocation == InPsetSpec("bg", 1)
        resolve_allocations(graph, env)
        node = sp.allocation.select(env.cndb("bg"))
        assert env.bluegene.pset_of(node.index) == 1

    def test_allocation_query_outside_sp_rejected(self, env):
        with pytest.raises(QuerySemanticError, match="allocation sequence"):
            compile_text(env, "select n from integer n where n=psetrr()")

    def test_bad_allocation_value_rejected(self, env):
        with pytest.raises(QuerySemanticError, match="allocation"):
            compile_text(
                env, "select extract(a) from sp a where a=sp(iota(1,2), 'bg', 'east')"
            )


class TestSemanticErrors:
    def test_unknown_cluster(self, env):
        with pytest.raises(QuerySemanticError, match="unknown cluster"):
            compile_text(env, "select extract(a) from sp a where a=sp(iota(1,2), 'gpu')")

    def test_undeclared_variable(self, env):
        with pytest.raises(QuerySemanticError, match="not declared"):
            compile_text(env, "select extract(a) from sp a where q=sp(iota(1,2), 'bg')")

    def test_unbound_variable(self, env):
        with pytest.raises(QuerySemanticError, match="undeclared variable"):
            compile_text(env, "select extract(q) from sp a where a=sp(iota(1,2), 'bg')")

    def test_double_definition(self, env):
        with pytest.raises(QuerySemanticError, match="defined twice"):
            compile_text(
                env,
                "select n from integer n where n=1 and n=2",
            )

    def test_top_level_iteration_rejected(self, env):
        with pytest.raises(QuerySemanticError, match="spv"):
            compile_text(env, "select i from integer i where i in iota(1,3)")

    def test_extract_needs_sp(self, env):
        with pytest.raises(QuerySemanticError, match="extract"):
            compile_text(env, "select extract(n) from integer n where n=4")

    def test_extract_of_bag_rejected(self, env):
        with pytest.raises(QuerySemanticError, match="merge"):
            compile_text(
                env,
                "select extract(a) from bag of sp a "
                "where a=spv({iota(1,2)}, 'bg')",
            )

    def test_merge_of_scalar_rejected(self, env):
        with pytest.raises(QuerySemanticError, match="merge"):
            compile_text(env, "select merge(n) from integer n where n=4")

    def test_unknown_function(self, env):
        with pytest.raises(QuerySemanticError, match="unknown function"):
            compile_text(env, "select teleport(a) from sp a where a=sp(iota(1,2), 'bg')")

    def test_sp_in_stream_context_rejected(self, env):
        with pytest.raises(QuerySemanticError, match="stream process"):
            compile_text(env, "select sp(iota(1,2), 'bg') from integer n where n=1")

    def test_bad_arity(self, env):
        with pytest.raises(QuerySemanticError, match="argument"):
            compile_text(env, "select count() from integer n where n=1")

    def test_set_expr_is_not_a_stream(self, env):
        with pytest.raises(QuerySemanticError, match="set expression"):
            compile_text(
                env,
                "select {a,b} from sp a, sp b "
                "where a=sp(iota(1,2), 'bg') and b=sp(iota(1,2), 'bg')",
            )


class TestUserFunctions:
    def _radix2(self, env):
        from repro.scsql.ast import CreateFunction
        from repro.scsql.compiler import FunctionDef
        from repro.scsql.parser import parse

        definition = parse(
            """
            create function radix2(string s) -> stream
            as select radixcombine(merge({a,b}))
            from sp a, sp b, sp c
            where a=sp(fft(odd(extract(c))), 'bg')
            and b=sp(fft(even(extract(c))), 'bg')
            and c=sp(receiver(s), 'bg');
            """
        )
        assert isinstance(definition, CreateFunction)
        return {"radix2": FunctionDef(definition)}

    def test_function_expansion_creates_sps(self, env):
        from repro.engine.operators.sources import ExternalReceiver

        ExternalReceiver.register("test-sig", lambda: iter([]))
        try:
            graph = compile_text(
                env,
                "select radix2('test-sig') from integer z where z=0",
                functions=self._radix2(env),
            )
            assert len(graph.sps) == 3
            assert graph.root_plan.name == "radixcombine"
        finally:
            ExternalReceiver.unregister("test-sig")

    def test_wrong_arity_rejected(self, env):
        with pytest.raises(QuerySemanticError, match="argument"):
            compile_text(
                env,
                "select radix2('a','b') from integer z where z=0",
                functions=self._radix2(env),
            )

    def test_function_body_cannot_see_caller_vars(self, env):
        from repro.scsql.ast import CreateFunction
        from repro.scsql.compiler import FunctionDef
        from repro.scsql.parser import parse

        definition = parse(
            "create function leaky() -> stream as "
            "select extract(a) from sp a where a=sp(iota(1,hidden), 'bg')"
        )
        functions = {"leaky": FunctionDef(definition)}
        with pytest.raises(QuerySemanticError, match="hidden"):
            compile_text(
                env,
                "select leaky() from integer hidden where hidden=4",
                functions=functions,
            )


class TestSetupLevelNestedSelects:
    def test_nested_select_as_setup_bag(self, env):
        """A nested select in setup context denotes a bag of values."""
        graph = compile_text(
            env,
            "select merge(g) from bag of sp g, integer n "
            "where g=spv((select grep('NEEDLE', filename(i)) "
            "from integer i where i in iota(1,n)), 'be') and n=3",
        )
        assert len(graph.sps) == 3
        patterns = {sp.plan.args for sp in graph.sps.values()}
        # Each grep got a distinct filename from the setup-level filename(i).
        assert len(patterns) == 3

    def test_cartesian_iteration(self, env):
        graph = compile_text(
            env,
            "select merge(g) from bag of sp g "
            "where g=spv((select gen_array(100,1) "
            "from integer i, integer j "
            "where i in iota(1,2) and j in iota(1,3)), 'be')",
        )
        assert len(graph.sps) == 6

    def test_allocation_from_set_expression(self, env):
        graph = compile_text(
            env,
            "select merge(a) from bag of sp a "
            "where a=spv({iota(1,2), iota(3,4)}, 'bg', {5, 6})",
        )
        resolve_allocations(graph, env)
        placements = []
        for sp in graph.sps.values():
            node = sp.allocation.select(env.cndb("bg"))
            node.acquire()
            placements.append(node.index)
        assert placements == [5, 6]

    def test_duplicate_iteration_variable_rejected(self, env):
        with pytest.raises(QuerySemanticError, match="two 'in' conditions"):
            compile_text(
                env,
                "select merge(a) from bag of sp a "
                "where a=spv((select gen_array(100,1) "
                "from integer i where i in iota(1,2) and i in iota(1,2)), 'be')",
            )

    def test_iteration_over_scalar_rejected(self, env):
        with pytest.raises(QuerySemanticError, match="bag"):
            compile_text(
                env,
                "select merge(a) from bag of sp a, integer n "
                "where n=4 and a=spv((select gen_array(100,1) "
                "from integer i where i in n), 'be')",
            )

    def test_first_requires_two_args(self, env):
        with pytest.raises(QuerySemanticError, match="first"):
            compile_text(
                env,
                "select first(extract(a)) from sp a where a=sp(iota(1,3), 'bg')",
            )
