"""Unit tests for the SCSQL tokenizer."""

import pytest

from repro.scsql.lexer import TokenKind, tokenize
from repro.util.errors import QueryParseError


def kinds(text):
    return [t.kind for t in tokenize(text)][:-1]  # drop END


class TestBasics:
    def test_keywords_case_insensitive(self):
        tokens = tokenize("SELECT From wHeRe")
        assert [t.kind for t in tokens[:-1]] == [TokenKind.KEYWORD] * 3
        assert [t.text for t in tokens[:-1]] == ["select", "from", "where"]

    def test_identifiers_keep_case(self):
        token = tokenize("gen_Array")[0]
        assert token.kind is TokenKind.IDENT
        assert token.text == "gen_Array"

    def test_punctuation(self):
        assert kinds("(){},;=") == [
            TokenKind.LPAREN,
            TokenKind.RPAREN,
            TokenKind.LBRACE,
            TokenKind.RBRACE,
            TokenKind.COMMA,
            TokenKind.SEMICOLON,
            TokenKind.EQUALS,
        ]

    def test_arrow(self):
        assert kinds("->") == [TokenKind.ARROW]

    def test_end_token_always_present(self):
        assert tokenize("")[-1].kind is TokenKind.END


class TestLiterals:
    def test_integers_and_floats(self):
        assert tokenize("3000000")[0].value == 3_000_000
        assert tokenize("2.5")[0].value == 2.5
        assert tokenize("1e3")[0].value == 1000.0

    def test_negative_number(self):
        assert tokenize("-5")[0].value == -5

    def test_strings(self):
        token = tokenize("'bg'")[0]
        assert token.kind is TokenKind.STRING
        assert token.text == "bg"

    def test_unterminated_string(self):
        with pytest.raises(QueryParseError, match="unterminated"):
            tokenize("'oops")

    def test_value_on_non_number_rejected(self):
        with pytest.raises(QueryParseError):
            tokenize("abc")[0].value


class TestPositionsAndComments:
    def test_line_and_column_tracked(self):
        tokens = tokenize("select\n  extract(b)")
        extract = tokens[1]
        assert (extract.line, extract.column) == (2, 3)

    def test_comments_skipped(self):
        tokens = tokenize("select -- this is a comment\nx")
        assert [t.text for t in tokens[:-1]] == ["select", "x"]

    def test_unexpected_character(self):
        with pytest.raises(QueryParseError, match="unexpected character"):
            tokenize("select @")


class TestPaperQueries:
    def test_query1_tokenizes(self):
        text = """
        select extract(c) from
        bag of sp a, sp b, sp c, integer n
        where c=sp(extract(b), 'bg') and n=4;
        """
        tokens = tokenize(text)
        assert tokens[-1].kind is TokenKind.END
        assert sum(1 for t in tokens if t.kind is TokenKind.STRING) == 1
