"""End-to-end tests of SCSQL sessions (parse -> compile -> execute)."""

import numpy as np
import pytest

from repro.engine.settings import ExecutionSettings
from repro.scsql.session import SCSQSession
from repro.util.errors import QuerySemanticError
from repro.workloads import corpus, make_signal_source, signal_stream


class TestSimpleQueries:
    def test_count_of_generated_stream(self):
        session = SCSQSession()
        report = session.execute(
            "select extract(b) from sp a, sp b "
            "where b=sp(streamof(count(extract(a))), 'bg', 0) "
            "and a=sp(gen_array(10000,7), 'bg', 1);"
        )
        assert report.scalar_result == 7

    def test_sum_of_iota(self):
        session = SCSQSession()
        report = session.execute(
            "select extract(b) from sp a, sp b "
            "where b=sp(sum(extract(a)), 'bg') and a=sp(iota(1,100), 'bg');"
        )
        assert report.scalar_result == 5050

    def test_create_function_returns_none(self):
        session = SCSQSession()
        result = session.execute(
            "create function f() -> stream as select extract(a) from sp a "
            "where a=sp(iota(1,3), 'bg');"
        )
        assert result is None

    def test_function_redefinition_rejected(self):
        session = SCSQSession()
        definition = (
            "create function f() -> stream as select extract(a) from sp a "
            "where a=sp(iota(1,3), 'bg');"
        )
        session.execute(definition)
        with pytest.raises(QuerySemanticError, match="already defined"):
            session.execute(definition)

    def test_window_aggregate_in_query(self):
        session = SCSQSession()
        report = session.execute(
            "select extract(b) from sp a, sp b "
            "where b=sp(winagg(extract(a), 'sum', 3), 'bg') "
            "and a=sp(iota(1,5), 'bg');"
        )
        assert report.result == [6, 9, 12]

    def test_compile_without_execution(self):
        session = SCSQSession()
        graph = session.compile(
            "select extract(a) from sp a where a=sp(iota(1,3), 'bg');"
        )
        assert len(graph.sps) == 1
        # Nothing ran: simulated time untouched.
        assert session.env.sim.now == 0.0


class TestMapReduceGrep:
    """The paper's distributed grep example, scaled down."""

    def test_parallel_grep_counts_markers(self):
        session = SCSQSession()
        n_files = 6
        report = session.execute(
            f"""
            select count(merge(g)) from bag of sp g
            where g=spv(
              (select grep('{corpus.MARKER}', filename(i))
               from integer i where i in iota(1,{n_files})),
              'be', urr('be'));
            """
        )
        assert report.scalar_result == n_files * corpus.expected_marker_count()

    def test_grep_lines_delivered(self):
        session = SCSQSession()
        report = session.execute(
            f"""
            select merge(g) from bag of sp g
            where g=spv(
              (select grep('{corpus.MARKER}', filename(i))
               from integer i where i in iota(1,2)),
              'be', 1);
            """
        )
        assert len(report.result) == 2 * corpus.expected_marker_count()
        assert all(corpus.MARKER in line for line in report.result)


class TestRadix2:
    """The paper's radix2 FFT parallelization, verified against numpy."""

    RADIX2 = """
    create function radix2(string s) -> stream
    as select radixcombine(merge({a,b}))
    from sp a, sp b, sp c
    where a=sp(fft(odd(extract(c))), 'bg')
    and b=sp(fft(even(extract(c))), 'bg')
    and c=sp(receiver(s), 'bg');
    """

    def test_radix2_matches_numpy(self):
        source = "radix2-test-signals"
        SCSQSession.register_source(source, make_signal_source(4, n_points=128, seed=11))
        try:
            session = SCSQSession()
            session.execute(self.RADIX2)
            report = session.execute(f"select radix2('{source}') from integer z where z=0;")
        finally:
            SCSQSession.unregister_source(source)
        expected = [np.fft.fft(x) for x in signal_stream(4, n_points=128, seed=11)]
        assert len(report.result) == 4
        for got, want in zip(report.result, expected):
            assert np.allclose(got, want)

    def test_unregistered_source_fails_at_execution(self):
        session = SCSQSession()
        session.execute(self.RADIX2)
        with pytest.raises(Exception, match="no external source"):
            session.execute("select radix2('ghost-source') from integer z where z=0;")


class TestSettingsPlumb:
    def test_buffer_settings_change_timing(self):
        query = (
            "select extract(b) from sp a, sp b "
            "where b=sp(count(extract(a)), 'bg', 0) "
            "and a=sp(gen_array(300000,5), 'bg', 1);"
        )
        fast = SCSQSession().execute(query, ExecutionSettings(mpi_buffer_bytes=1000))
        slow = SCSQSession().execute(query, ExecutionSettings(mpi_buffer_bytes=100))
        assert fast.duration < slow.duration


class TestExplain:
    QUERY = (
        "select extract(c) from sp a, sp b, sp c "
        "where c=sp(count(merge({a,b})), 'bg') "
        "and a=sp(gen_array(200000,10), 'bg') "
        "and b=sp(gen_array(200000,10), 'bg');"
    )

    def test_shows_plans_and_placement(self):
        text = SCSQSession().explain(self.QUERY)
        assert "gen_array(200000, 10)" in text
        assert "merge()" in text
        assert "optimizer placement:" in text
        assert "predicted bottleneck bandwidth" in text

    def test_explicit_allocations_are_marked(self):
        text = SCSQSession().explain(
            "select extract(a) from sp a where a=sp(iota(1,3), 'bg', 7);"
        )
        assert "(explicit allocation)" in text
        assert "optimizer placement:" not in text

    def test_explain_does_not_execute_or_pin(self):
        session = SCSQSession()
        session.explain(self.QUERY)
        assert session.env.sim.now == 0.0
        graph = session.compile(self.QUERY)
        assert all(sp.allocation is None for sp in graph.sps.values())
