"""The live-telemetry CLI surface: ``repro top`` and the --live flags."""

import json

import pytest

from repro.__main__ import main


def read_jsonl(path):
    with open(path, encoding="utf-8") as handle:
        return [json.loads(line) for line in handle if line.strip()]


class TestTop:
    def test_once_renders_table_and_verdict(self, capsys):
        assert main(["top", "--point", "fig15", "--once"]) == 0
        out = capsys.readouterr().out
        assert "fig15[Q5,n=5]" in out
        assert "p95" in out  # the table header
        assert "bottleneck: io-proxy[1]" in out
        assert "saturated pset:io-proxy[1]" in out

    def test_streaming_mode_prints_rows_as_windows_close(self, capsys):
        assert main(["top", "--point", "fig15"]) == 0
        out = capsys.readouterr().out
        # one row per window, announced before the cumulative footer
        assert out.index("io-proxy[1]") < out.index("cumulative:")

    def test_live_out_and_prom_exports(self, tmp_path, capsys):
        series = tmp_path / "top.jsonl"
        prom = tmp_path / "top.prom"
        assert main([
            "top", "--point", "fig15", "--once",
            "--live-out", str(series), "--prom", str(prom),
        ]) == 0
        records = read_jsonl(series)
        kinds = [record["kind"] for record in records]
        assert kinds[0] == "meta"
        assert "window" in kinds and "health" in kinds
        meta = records[0]
        assert meta["label"] == "fig15[Q5,n=5]"
        assert meta["culprit"] == "io-proxy[1]"
        exposition = prom.read_text()
        assert "repro_flow_latency_seconds" in exposition
        assert 'quantile="0.99"' in exposition
        assert "repro_health_events_total" in exposition

    def test_unknown_point_rejected(self, capsys):
        assert main(["top", "--point", "nonsense", "--once"]) == 2
        assert "unknown sample point" in capsys.readouterr().err

    def test_deterministic_for_fixed_seed(self, tmp_path):
        paths = [tmp_path / "a.jsonl", tmp_path / "b.jsonl"]
        for path in paths:
            assert main([
                "top", "--point", "fig8", "--once",
                "--seed", "5", "--live-out", str(path),
            ]) == 0
        assert read_jsonl(paths[0]) == read_jsonl(paths[1])


class TestBenchLiveFlags:
    def test_gate_mode_rejects_live_flags(self, tmp_path, capsys):
        assert main([
            "bench", "--out", str(tmp_path / "b.json"),
            "--live-out", str(tmp_path / "live.jsonl"),
        ]) == 2
        assert "--mode power or" in capsys.readouterr().err

    def test_fault_mode_rejects_live_flags(self, tmp_path, capsys):
        assert main([
            "bench", "--mode", "throughput", "--fault", "kill-node", "--smoke",
            "--live-window", "0.001",
        ]) == 2
        assert "not wired" in capsys.readouterr().err

    def test_power_mode_embeds_series(self, tmp_path, capsys):
        out = tmp_path / "bench.json"
        live = tmp_path / "live.jsonl"
        assert main([
            "bench", "--mode", "power", "--smoke", "--out", str(out),
            "--live-out", str(live), "--live-window", "0.0005",
        ]) == 0
        document = json.loads(out.read_text())
        assert document["version"] == 2
        assert any(key.startswith("power[") for key in document["series"])
        labels = [record["label"] for record in read_jsonl(live)]
        assert labels == sorted(document["series"])
        assert "windowed series" in capsys.readouterr().out


class TestMultiqueryLiveFlags:
    def test_live_table_and_jsonl(self, tmp_path, capsys):
        live = tmp_path / "mq.jsonl"
        assert main([
            "multiquery", "--streams", "1", "--count", "2",
            "--array-bytes", "500000", "--live-out", str(live),
        ]) == 0
        out = capsys.readouterr().out
        assert "cumulative:" in out  # the live table rendered
        records = read_jsonl(live)
        assert records[0]["kind"] == "meta"
        assert records[0]["label"] == "multiquery"

    def test_without_live_flags_nothing_changes(self, capsys):
        assert main([
            "multiquery", "--streams", "1", "--count", "2",
            "--array-bytes", "500000",
        ]) == 0
        assert "cumulative:" not in capsys.readouterr().out
