"""P² sketch accuracy against the exact percentiles of util.stats.

The contract pinned here is the one ``repro.obs.sketch`` documents:

* any sketch with at most ``exact_limit`` observations answers **exactly**
  (it still holds the raw samples and defers to
  :func:`repro.util.stats.percentile`);
* past the limit the P² markers answer: always inside the observed
  ``[min, max]`` range (hypothesis-checked on adversarial inputs, where
  "adversarial" includes sorted, duplicated, and two-point data), and
  within a small fraction of the value range on continuous
  distributions — including heavy-tailed, bimodal, and pre-sorted ones.

Two-point / atomic distributions are deliberately *excluded* from the
value-tolerance assertions: their quantile function is a step, and any
interpolating estimator may land anywhere inside the gap.  The bounds
invariant is the guarantee that survives even there.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.sketch import DEFAULT_QUANTILES, LatencySketch, P2Quantile
from repro.util.stats import percentile


def filled(samples, **kwargs):
    sketch = LatencySketch(**kwargs)
    for value in samples:
        sketch.add(value)
    return sketch


finite = st.floats(min_value=-1e9, max_value=1e9,
                   allow_nan=False, allow_infinity=False)


class TestP2Quantile:
    def test_rejects_degenerate_quantiles(self):
        for q in (0.0, 1.0, -0.5, 1.5):
            with pytest.raises(ValueError):
                P2Quantile(q)

    def test_empty_value_rejected(self):
        with pytest.raises(ValueError):
            P2Quantile(0.5).value

    def test_small_n_is_exact(self):
        samples = [5.0, 1.0, 4.0, 2.0]
        estimator = P2Quantile(0.5)
        for i, value in enumerate(samples, start=1):
            estimator.add(value)
            assert estimator.count == i
            assert estimator.value == percentile(samples[:i], 50.0)

    def test_tracks_median_of_a_long_stream(self):
        rng = random.Random(3)
        samples = [rng.uniform(0.0, 100.0) for _ in range(5000)]
        estimator = P2Quantile(0.5)
        for value in samples:
            estimator.add(value)
        assert estimator.value == pytest.approx(percentile(samples, 50.0),
                                                abs=1.5)


class TestExactMode:
    """Below the retention limit the sketch IS util.stats.percentile."""

    @given(st.lists(finite, min_size=1, max_size=64))
    def test_exact_below_limit(self, samples):
        sketch = filled(samples)  # default exact_limit=64
        assert sketch.exact
        for q in DEFAULT_QUANTILES:
            assert sketch.quantile(q) == percentile(samples, q * 100.0)
        # untracked quantiles also answer while the raw buffer is held
        assert sketch.quantile(0.25) == percentile(samples, 25.0)

    def test_handover_at_limit(self):
        sketch = filled(range(10), exact_limit=10)
        assert sketch.exact
        sketch.add(10.0)
        assert not sketch.exact
        with pytest.raises(ValueError):
            sketch.quantile(0.25)  # untracked: raw buffer is gone

    def test_empty_sketch(self):
        sketch = LatencySketch()
        with pytest.raises(ValueError):
            sketch.quantile(0.5)
        assert sketch.mean == 0.0
        assert sketch.summary() == {
            "n": 0, "mean": 0.0, "min": 0.0, "max": 0.0,
            "p50": 0.0, "p95": 0.0, "p99": 0.0,
        }


class TestP2Mode:
    @given(st.lists(finite, min_size=65, max_size=200))
    @settings(max_examples=60)
    def test_bounds_invariant_on_adversarial_inputs(self, samples):
        """Estimates never leave [min, max], whatever the input looks like."""
        sketch = filled(samples)
        assert not sketch.exact
        lo, hi = min(samples), max(samples)
        for q in DEFAULT_QUANTILES:
            assert lo <= sketch.quantile(q) <= hi

    @given(st.lists(finite, min_size=1, max_size=120))
    @settings(max_examples=60)
    def test_counts_and_extremes(self, samples):
        sketch = filled(samples, exact_limit=0)
        assert sketch.count == len(samples)
        assert sketch.minimum == min(samples)
        assert sketch.maximum == max(samples)
        assert sketch.total == pytest.approx(sum(samples))

    def test_determinism(self):
        """Same observation sequence -> bit-identical estimates."""
        rng = random.Random(11)
        samples = [rng.lognormvariate(0.0, 1.0) for _ in range(500)]
        first = filled(samples).summary()
        second = filled(samples).summary()
        assert first == second

    @pytest.mark.parametrize("name,maker", [
        ("uniform", lambda rng: [rng.uniform(0.0, 1.0) for _ in range(1000)]),
        ("normal", lambda rng: [rng.gauss(10.0, 2.0) for _ in range(1000)]),
        ("heavy-tail", lambda rng: [rng.lognormvariate(0.0, 1.5)
                                    for _ in range(1000)]),
        ("bimodal", lambda rng: [
            rng.gauss(1.0, 0.1) if rng.random() < 0.7 else rng.gauss(100.0, 5.0)
            for _ in range(1000)
        ]),
        ("sorted-asc", lambda rng: sorted(rng.uniform(0.0, 1.0)
                                          for _ in range(1000))),
        ("sorted-desc", lambda rng: sorted(
            (rng.uniform(0.0, 1.0) for _ in range(1000)), reverse=True)),
        ("constant", lambda rng: [3.7] * 1000),
    ])
    def test_tolerance_on_adversarial_distributions(self, name, maker):
        """Range-relative error stays small on continuous distributions.

        Observed worst cases sit under 2% of the value range for these
        inputs (4.3% for p99 on short heavy tails); 10% is the pinned
        ceiling, far below anything the live plane would misreport as a
        different bottleneck.
        """
        samples = maker(random.Random(42))
        sketch = filled(samples, exact_limit=0)
        spread = (max(samples) - min(samples)) or 1.0
        for q in DEFAULT_QUANTILES:
            exact = percentile(samples, q * 100.0)
            assert abs(sketch.quantile(q) - exact) / spread < 0.10, (
                f"{name}: q={q} estimate {sketch.quantile(q)} vs {exact}"
            )


class TestSummary:
    def test_summary_keys_follow_quantiles(self):
        sketch = filled([1.0, 2.0], quantiles=(0.5, 0.999))
        assert set(sketch.summary()) == {"n", "mean", "min", "max",
                                         "p50", "p99_9"}

    def test_repr_reports_mode(self):
        assert "exact" in repr(filled([1.0]))
        assert "p2" in repr(filled(range(100)))
