"""Unit tests for the metric primitives (counters, gauges, time-weighted)."""

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    MetricsRegistry,
    TimeWeightedStat,
)


class TestCounter:
    def test_accumulates(self):
        counter = Counter()
        counter.add()
        counter.add(2.5)
        assert counter.value == 3.5


class TestGauge:
    def test_tracks_peak(self):
        gauge = Gauge()
        gauge.set(3)
        gauge.set(7)
        gauge.set(2)
        assert gauge.value == 2
        assert gauge.peak == 7


class TestTimeWeightedStat:
    def test_integral_and_mean(self):
        stat = TimeWeightedStat()
        stat.update(0.0, 2.0)   # level 2 from t=0
        stat.update(4.0, 0.0)   # back to 0 at t=4
        stat.finalize(10.0)
        assert stat.integral == pytest.approx(8.0)
        assert stat.mean(10.0) == pytest.approx(0.8)
        assert stat.maximum == 2.0

    def test_dwell_histogram_is_time_weighted(self):
        stat = TimeWeightedStat()
        stat.update(0.0, 1.0)
        stat.update(3.0, 2.0)
        stat.update(4.0, 0.0)
        stat.finalize(4.0)
        assert stat.dwell[1.0] == pytest.approx(3.0)
        assert stat.dwell[2.0] == pytest.approx(1.0)
        assert stat.time_at_or_above(1) == pytest.approx(4.0)
        assert stat.time_at_or_above(2) == pytest.approx(1.0)

    def test_empty_span_mean_is_current(self):
        stat = TimeWeightedStat()
        assert stat.mean() == 0.0
        stat.update(0.0, 5.0)
        assert stat.mean() == 5.0  # zero elapsed time: no division

    def test_finalize_is_idempotent(self):
        stat = TimeWeightedStat()
        stat.update(0.0, 1.0)
        stat.finalize(2.0)
        stat.finalize(2.0)
        assert stat.integral == pytest.approx(2.0)

    def test_mean_extends_open_interval(self):
        stat = TimeWeightedStat()
        stat.update(0.0, 4.0)
        # Interval still open; mean(now) extrapolates the current level.
        assert stat.mean(2.0) == pytest.approx(4.0)


class TestMetricsRegistry:
    def test_instruments_are_memoized(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("g") is registry.gauge("g")
        assert registry.time_weighted("t") is registry.time_weighted("t")

    def test_snapshot_is_plain_data(self):
        registry = MetricsRegistry()
        registry.add("events", 3)
        registry.set_gauge("depth", 2)
        registry.set_gauge("depth", 1)
        registry.update_series("level", 0.0, 1.0)
        registry.update_series("level", 2.0, 0.0)
        snap = registry.snapshot(now=4.0)
        assert snap.counter("events") == 3
        assert snap.counter("missing") == 0.0
        assert snap.gauges["depth"] == 1
        assert snap.peak("depth") == 2
        assert snap.time_weighted["level"]["integral"] == pytest.approx(2.0)
        assert snap.time_weighted["level"]["mean"] == pytest.approx(0.5)
        assert snap.now == 4.0

    def test_series_starts_at_first_observation_time(self):
        registry = MetricsRegistry()
        # First update at t=5: the series must not count [0, 5) as dwell.
        registry.update_series("late", 5.0, 1.0)
        registry.update_series("late", 7.0, 0.0)
        series = registry.series["late"]
        assert series.elapsed() == pytest.approx(2.0)
        assert series.mean() == pytest.approx(1.0)
