"""Kernel hooks feed the instrumentation hub with the right observations."""

import pytest

from repro.obs import Instrumentation
from repro.obs.instrument import NULL_OBS
from repro.obs.tracer import NULL_TRACER
from repro.sim.core import Simulator
from repro.sim.events import Interrupt
from repro.sim.resources import Resource, Store


def _instrumented():
    obs = Instrumentation()
    sim = Simulator(obs=obs)
    return sim, obs


class TestDefaults:
    def test_uninstrumented_simulator_shares_null_obs(self):
        assert Simulator().obs is NULL_OBS
        assert Simulator().obs is Simulator().obs
        assert not NULL_OBS.enabled

    def test_bind_attaches_simulator(self):
        sim, obs = _instrumented()
        assert obs.sim is sim
        assert obs.now == 0.0


class TestKernelCounters:
    def test_steps_timeouts_and_processes_counted(self):
        sim, obs = _instrumented()

        def worker():
            yield sim.timeout(1.0)
            yield sim.timeout(2.0)

        sim.process(worker(), name="worker")
        sim.run()
        snap = obs.snapshot()
        assert snap.counter("sim.timeouts_created") == 2
        assert snap.counter("sim.processes_started") == 1
        assert snap.counter("sim.processes_finished") == 1
        assert snap.counter("sim.processes_failed") == 0
        assert snap.counter("sim.events_processed") >= 3  # init + 2 timeouts
        assert snap.now == 3.0

    def test_failed_process_counted(self):
        sim, obs = _instrumented()

        def broken():
            yield sim.timeout(1.0)
            raise RuntimeError("boom")

        proc = sim.process(broken(), name="broken")
        proc._add_callback(lambda event: setattr(event, "_defused", True))
        sim.run()
        assert obs.snapshot().counter("sim.processes_failed") == 1

    def test_interrupt_counted_and_traced(self):
        sim, obs = _instrumented()

        def sleeper():
            try:
                yield sim.timeout(10.0)
            except Interrupt:
                pass

        def killer(victim):
            yield sim.timeout(1.0)
            victim.interrupt("stop")

        victim = sim.process(sleeper(), name="sleeper")
        sim.process(killer(victim), name="killer")
        sim.run()
        assert obs.snapshot().counter("sim.interrupts") == 1
        instants = [r for r in obs.tracer if r.kind == "instant"]
        assert any(r.name == "interrupt" and r.track == "process:sleeper"
                   for r in instants)


class TestProcessSpans:
    def test_process_lifetime_recorded(self):
        sim, obs = _instrumented()

        def worker():
            yield sim.timeout(4.0)

        sim.process(worker(), name="worker")
        sim.run()
        begins = [r for r in obs.tracer
                  if r.kind == "span_begin" and r.track == "process:worker"]
        ends = [r for r in obs.tracer
                if r.kind == "span_end" and r.track == "process:worker"]
        assert len(begins) == len(ends) == 1
        assert begins[0].ident == ends[0].ident
        assert ends[0].ts - begins[0].ts == pytest.approx(4.0)


class TestResourceHooks:
    def test_busy_and_queue_series(self):
        sim, obs = _instrumented()
        device = Resource(sim, capacity=1, name="dev")

        def worker(hold):
            with device.request() as req:
                yield req
                yield sim.timeout(hold)

        sim.process(worker(2.0))
        sim.process(worker(3.0))  # waits until t=2, holds until t=5
        sim.run()
        assert obs.resource_busy_time("dev") == pytest.approx(5.0)
        assert obs.resource_occupancy("dev") == pytest.approx(5.0)
        snap = obs.snapshot()
        assert snap.counter("resource.acquires[dev]") == 2
        assert snap.counter("resource.waits[dev]") == 1
        queue = obs.metrics.series["resource.queue[dev]"]
        assert queue.maximum == 1
        busy = obs.metrics.series["resource.busy[dev]"]
        assert busy.maximum == 1  # capacity never exceeded

    def test_hold_spans_pair_up(self):
        sim, obs = _instrumented()
        device = Resource(sim, capacity=2, name="dev")

        def worker():
            with device.request() as req:
                yield req
                yield sim.timeout(1.0)

        for _ in range(3):
            sim.process(worker())
        sim.run()
        holds = [r for r in obs.tracer if r.track == "resource:dev"]
        begins = {r.ident for r in holds if r.kind == "span_begin"}
        ends = {r.ident for r in holds if r.kind == "span_end"}
        assert len(begins) == 3
        assert begins == ends

    def test_withdrawn_request_counted(self):
        sim, obs = _instrumented()
        device = Resource(sim, capacity=1, name="dev")

        def holder():
            with device.request() as req:
                yield req
                yield sim.timeout(5.0)

        def impatient():
            req = device.request()
            yield sim.timeout(1.0)
            req.cancel()

        sim.process(holder())
        sim.process(impatient())
        sim.run()
        snap = obs.snapshot()
        assert snap.counter("resource.withdrawals[dev]") == 1
        assert snap.counter("resource.acquires[dev]") == 1

    def test_busiest_resource(self):
        sim, obs = _instrumented()
        fast = Resource(sim, name="coproc[0]")
        slow = Resource(sim, name="coproc[1]")
        other = Resource(sim, name="link[a]")

        def use(resource, hold):
            with resource.request() as req:
                yield req
                yield sim.timeout(hold)

        sim.process(use(fast, 1.0))
        sim.process(use(slow, 3.0))
        sim.process(use(other, 9.0))
        sim.run()
        assert obs.busiest_resource("coproc") == ("coproc[1]", pytest.approx(3.0))
        assert obs.busiest_resource() == ("link[a]", pytest.approx(9.0))
        assert obs.busiest_resource("nic") == (None, 0.0)


class TestStoreHooks:
    def test_levels_tracked_over_time(self):
        sim, obs = _instrumented()
        box = Store(sim, capacity=10, name="inbox")

        def producer():
            for i in range(3):
                yield sim.timeout(1.0)
                yield box.put(i)

        def consumer():
            yield sim.timeout(10.0)
            for _ in range(3):
                yield box.get()

        sim.process(producer())
        sim.process(consumer())
        sim.run()
        level = obs.metrics.series["store.level[inbox]"]
        level.finalize(sim.now)
        assert level.maximum == 3
        assert level.current == 0
        samples = [r for r in obs.tracer if r.track == "store:inbox"]
        assert [r.args for r in samples[:3]] == [1, 2, 3]


class TestMetricsOnlyMode:
    def test_null_tracer_keeps_metrics(self):
        obs = Instrumentation(tracer=NULL_TRACER)
        sim = Simulator(obs=obs)
        device = Resource(sim, name="dev")

        def worker():
            with device.request() as req:
                yield req
                yield sim.timeout(2.0)

        sim.process(worker(), name="w")
        sim.run()
        assert len(obs.tracer) == 0
        assert obs.resource_busy_time("dev") == pytest.approx(2.0)
        assert obs.snapshot().counter("sim.processes_finished") == 1
