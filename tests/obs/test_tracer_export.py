"""Tracer record semantics and the Chrome trace / JSON-lines exporters."""

import io
import json

import pytest

from repro.obs.export import (
    chrome_trace,
    trace_record_dict,
    utilization_summary,
    write_chrome_trace,
    write_trace_jsonl,
)
from repro.obs.instrument import Instrumentation
from repro.obs.tracer import NULL_TRACER, NullTracer, Tracer
from repro.sim.core import Simulator
from repro.sim.resources import Resource


def _sample_tracer() -> Tracer:
    tracer = Tracer()
    tracer.span_begin(0.0, "resource:link", "hold", ident=1)
    tracer.span_end(2.5, "resource:link", "hold", ident=1)
    tracer.instant(1.0, "process:rx", "interrupt", args={"cause": "stop"})
    tracer.counter(3.0, "store:inbox", "size", 4)
    return tracer


class TestTracer:
    def test_records_accumulate_in_order(self):
        tracer = _sample_tracer()
        assert len(tracer) == 4
        kinds = [r.kind for r in tracer]
        assert kinds == ["span_begin", "span_end", "instant", "counter"]

    def test_null_tracer_is_inert(self):
        NULL_TRACER.span_begin(0.0, "t", "n", ident=1)
        NULL_TRACER.instant(0.0, "t", "n")
        NULL_TRACER.counter(0.0, "t", "n", 1)
        assert len(NULL_TRACER) == 0
        assert list(NULL_TRACER) == []
        assert not NULL_TRACER.enabled
        assert isinstance(Tracer(), NullTracer)  # substitutable


class TestJsonLines:
    def test_round_trip(self, tmp_path):
        tracer = _sample_tracer()
        path = str(tmp_path / "trace.jsonl")
        count = write_trace_jsonl(path, tracer)
        assert count == 4
        lines = [json.loads(line) for line in open(path, encoding="utf-8")]
        assert lines[0] == {
            "ts": 0.0, "kind": "span_begin", "track": "resource:link",
            "name": "hold", "id": 1,
        }
        assert lines[2]["args"] == {"cause": "stop"}
        assert lines[3]["args"] == 4

    def test_accepts_file_handle(self):
        buffer = io.StringIO()
        assert write_trace_jsonl(buffer, _sample_tracer()) == 4
        assert len(buffer.getvalue().splitlines()) == 4

    def test_record_dict_omits_empty_fields(self):
        record = next(iter(_sample_tracer()))
        assert "args" not in trace_record_dict(record)


class TestChromeTrace:
    def test_document_shape(self):
        document = chrome_trace([("run", _sample_tracer())])
        assert document["displayTimeUnit"] == "ms"
        json.dumps(document)  # must be serializable as-is

    def test_span_pair_becomes_complete_event(self):
        document = chrome_trace([("run", _sample_tracer())])
        complete = [e for e in document["traceEvents"] if e["ph"] == "X"]
        assert len(complete) == 1
        (event,) = complete
        assert event["ts"] == 0.0
        assert event["dur"] == pytest.approx(2.5e6)  # seconds -> microseconds
        assert event["cat"] == "resource"

    def test_metadata_names_processes_and_threads(self):
        document = chrome_trace([("alpha", _sample_tracer()),
                                 ("beta", Tracer())])
        meta = [e for e in document["traceEvents"] if e["ph"] == "M"]
        process_names = {e["pid"]: e["args"]["name"] for e in meta
                         if e["name"] == "process_name"}
        assert process_names == {1: "alpha", 2: "beta"}
        thread_names = {e["args"]["name"] for e in meta
                        if e["name"] == "thread_name"}
        assert thread_names == {"resource:link", "process:rx", "store:inbox"}

    def test_instant_and_counter_events(self):
        document = chrome_trace([("run", _sample_tracer())])
        instants = [e for e in document["traceEvents"] if e["ph"] == "i"]
        counters = [e for e in document["traceEvents"] if e["ph"] == "C"]
        assert instants[0]["name"] == "interrupt"
        assert instants[0]["s"] == "t"
        assert counters[0]["args"] == {"size": 4}

    def test_unclosed_span_is_flushed_at_last_timestamp(self):
        tracer = Tracer()
        tracer.span_begin(1.0, "process:main", "main", ident=7)
        tracer.counter(5.0, "store:x", "size", 0)  # advances last_ts
        document = chrome_trace([("run", tracer)])
        complete = [e for e in document["traceEvents"] if e["ph"] == "X"]
        assert len(complete) == 1
        assert complete[0]["args"] == {"unfinished": True}
        assert complete[0]["dur"] == pytest.approx(4.0e6)

    def test_durations_never_negative(self):
        document = chrome_trace([("run", _sample_tracer())])
        for event in document["traceEvents"]:
            if event["ph"] == "X":
                assert event["dur"] >= 0

    def test_write_to_file(self, tmp_path):
        path = str(tmp_path / "trace.json")
        document = write_chrome_trace(path, [("run", _sample_tracer())])
        on_disk = json.load(open(path, encoding="utf-8"))
        assert on_disk == json.loads(json.dumps(document))


class TestUtilizationSummary:
    def test_reports_resources_stores_and_counters(self):
        obs = Instrumentation()
        sim = Simulator(obs=obs)
        link = Resource(sim, capacity=1, name="link[a->b]")

        def worker():
            with link.request() as req:
                yield req
                yield sim.timeout(2.0)

        sim.process(worker())
        sim.run()
        obs.add("torus.wire_bytes", 1024)
        obs.record_level("ethernet.io_connections[0]", 2)
        text = utilization_summary(obs)
        assert "link[a->b]" in text
        assert "busy 2.000000s" in text
        assert "torus.wire_bytes" in text
        assert "ethernet.io_connections[0]" in text
        # per-resource acquire counters are noise and stay out of the report
        assert "resource.acquires[" not in text

    def test_empty_run_has_no_divisions_by_zero(self):
        obs = Instrumentation()
        Simulator(obs=obs)
        text = utilization_summary(obs)
        assert "t=0.000000s" in text
