"""The live telemetry plane: windowed sampling, health events, zero cost.

Covers the tentpole invariants of the streaming sampler:

* window accounting is lossless — every processed event and completed
  flow lands in exactly one ``[start, end)`` window;
* the sampler adds **zero simulation events**, enabled or not (it
  piggybacks on the kernel's ``on_step`` hook instead of scheduling);
* for a fixed seed the windowed p95 series and health-event sequence
  are deterministic;
* on the paper's Figure 15 Q5 n=5 run the continuous detector flags the
  shared I/O proxy as saturated *mid-run* and names the same culprit as
  the post-hoc critical-path profile;
* a kill-node fault emits ``degraded`` -> ``recovered`` health events
  bracketing the replan;
* the new obs modules stay clean under the DET001-005 determinism lint
  (checked as if they lived in a hot-path package).
"""

from pathlib import Path

import pytest

from repro.analysis.lint import lint_file
from repro.core.experiments.fig15 import inbound_query
from repro.hardware.environment import (
    Environment,
    EnvironmentConfig,
    shared_template,
)
from repro.obs import Instrumentation, profile
from repro.obs.flow import NULL_FLOWS
from repro.obs.health import ContinuousBottleneckDetector, HealthEvent
from repro.obs.live import DEFAULT_WINDOW, NULL_LIVE, LiveSampler, NullLiveSampler
from repro.obs.tracer import NULL_TRACER
from repro.scsql.session import SCSQSession

FIG15_QUERY = inbound_query(5, 5, 300_000, 3)


def run_fig15(sampler=None, seed=0, flows=None):
    """One Fig 15 Q5 n=5 run; returns (report, obs)."""
    config = EnvironmentConfig().with_seed(seed)
    obs = Instrumentation(tracer=NULL_TRACER, flows=flows, live=sampler)
    env = Environment(config, obs=obs, template=shared_template(config))
    report = SCSQSession(env).execute(FIG15_QUERY)
    if sampler is not None:
        sampler.finalize(env.sim.now)
    return report, obs


@pytest.fixture(scope="module")
def fig15_live():
    """One sampled Fig 15 run shared by the read-only assertions."""
    sampler = LiveSampler(window=DEFAULT_WINDOW)
    report, obs = run_fig15(sampler)
    return sampler, report, obs


class TestNullSampler:
    def test_shared_disabled_singleton(self):
        assert not NULL_LIVE.enabled
        assert Instrumentation(tracer=NULL_TRACER).live is NULL_LIVE
        assert NULL_LIVE.windows == []
        assert NULL_LIVE.health_events == []

    def test_null_hooks_are_noops(self):
        null = NullLiveSampler()
        null.on_step(1.0)
        null.on_failure("x", "node")
        null.note_capacity("cpu[0]", 2.0)
        null.finalize()
        assert null.window == 0.0

    def test_disabled_sampler_changes_nothing(self):
        """With live off the run is identical to a metrics-only run."""
        baseline, base_obs = run_fig15(None)
        sampled, live_obs = run_fig15(LiveSampler(window=DEFAULT_WINDOW))
        assert sampled.result == baseline.result
        assert sampled.duration == baseline.duration  # float-exact
        assert (
            live_obs.snapshot().counter("sim.events_processed")
            == base_obs.snapshot().counter("sim.events_processed")
        )


class TestWindowAccounting:
    def test_windows_tile_the_run(self, fig15_live):
        sampler, report, obs = fig15_live
        windows = sampler.windows
        assert windows, "a multi-millisecond run must produce windows"
        assert windows[0].start == 0.0
        for index, window in enumerate(windows):
            assert window.index == index
            assert window.start < window.end
        for left, right in zip(windows, windows[1:]):
            assert left.end == right.start
        # interior windows have the configured span; the last is partial,
        # closing at the simulator's final instant (which may trail the
        # result delivery while run-out events drain)
        for window in windows[:-1]:
            assert window.span == pytest.approx(DEFAULT_WINDOW)
        assert report.duration <= windows[-1].end
        assert windows[-1].span <= DEFAULT_WINDOW + 1e-12

    def test_every_event_lands_in_exactly_one_window(self, fig15_live):
        sampler, _report, obs = fig15_live
        total = obs.snapshot().counter("sim.events_processed")
        assert sum(w.events for w in sampler.windows) == total

    def test_every_flow_lands_in_exactly_one_window(self, fig15_live):
        sampler, _report, obs = fig15_live
        completed = [r for r in obs.flows.completed if not r.eos]
        assert sum(w.flows_completed for w in sampler.windows) == len(completed)
        assert sampler.latency.count == len(completed)
        assert sum(w.bytes_delivered for w in sampler.windows) == sum(
            r.nbytes for r in completed
        )

    def test_sampler_adds_zero_events_even_when_enabled(self):
        """The sampler observes the event loop; it never schedules into it."""
        _report, plain_obs = run_fig15(None, flows=NULL_FLOWS)
        _report, live_obs = run_fig15(
            LiveSampler(window=DEFAULT_WINDOW), flows=NULL_FLOWS
        )
        assert (
            live_obs.snapshot().counter("sim.events_processed")
            == plain_obs.snapshot().counter("sim.events_processed")
        )

    def test_rebind_rejected(self, fig15_live):
        sampler, _report, _obs = fig15_live
        with pytest.raises(RuntimeError):
            Instrumentation(tracer=NULL_TRACER, live=sampler)

    def test_series_extraction(self, fig15_live):
        sampler, _report, _obs = fig15_live
        document = sampler.series_document()
        count = len(sampler.windows)
        for key in ("end", "p50", "p95", "p99", "mbps", "flows"):
            assert len(document[key]) == count
        assert document["window_s"] == DEFAULT_WINDOW
        assert document["culprit"] == "io-proxy[1]"


class TestDeterminism:
    def test_windowed_series_deterministic_for_fixed_seed(self):
        first = LiveSampler(window=DEFAULT_WINDOW)
        second = LiveSampler(window=DEFAULT_WINDOW)
        run_fig15(first, seed=3)
        run_fig15(second, seed=3)
        assert first.series_document() == second.series_document()
        assert (
            [e.to_dict() for e in first.health_events]
            == [e.to_dict() for e in second.health_events]
        )


class TestFig15MidRunDetection:
    """The continuous detector reaches the paper's Fig 15 verdict mid-run."""

    def test_io_proxy_flagged_saturated_before_completion(self, fig15_live):
        sampler, report, _obs = fig15_live
        saturated = [
            e for e in sampler.health_events
            if e.kind == "saturated" and e.subject == "io-proxy[1]"
        ]
        assert saturated, "the shared I/O proxy must saturate"
        assert saturated[0].scope == "pset"
        assert saturated[0].time < 0.5 * report.duration, (
            "detection must happen mid-run, not in hindsight"
        )

    def test_culprit_matches_posthoc_profile(self, fig15_live):
        sampler, _report, obs = fig15_live
        posthoc = profile([obs])
        assert posthoc.bottleneck is not None
        assert sampler.culprit == posthoc.bottleneck.resource == "io-proxy[1]"

    def test_saturation_recovers_by_the_end(self, fig15_live):
        sampler, _report, _obs = fig15_live
        detector = sampler.detector
        assert "io-proxy[1]" not in detector.saturated
        recovered = [
            e for e in detector.events_of("recovered")
            if e.subject == "io-proxy[1]"
        ]
        assert recovered


class TestFaultHealthEvents:
    """kill-node: degraded -> recovered events bracket the replan."""

    @pytest.fixture(scope="class")
    def faulted(self):
        from repro.bench.faults import (
            FaultSchedule,
            FaultTask,
            fault_queries,
            run_faulted_session,
        )
        from repro.bench.query_stream import registered

        task = FaultTask(seed=0, streams=2, scenario="kill-node")
        queries = fault_queries(task)
        config = task.env_config.with_seed(task.seed)
        with registered(queries):
            healthy_env = Environment(config, template=shared_template(config))
            healthy = run_faulted_session(
                healthy_env, queries, FaultSchedule(), settings=task.settings
            )
            fault_time = 0.5 * healthy.makespan
            schedule = FaultSchedule.single("kill-node", fault_time, seed=0)
            sampler = LiveSampler(window=fault_time / 10.0)
            env = Environment(
                config,
                obs=Instrumentation(tracer=NULL_TRACER, live=sampler),
                template=shared_template(config),
            )
            result = run_faulted_session(
                env, queries, schedule, settings=task.settings
            )
            sampler.finalize(env.sim.now)
        return sampler, result, fault_time

    def test_fault_emits_degraded_at_the_instant(self, faulted):
        sampler, result, fault_time = faulted
        degraded = [
            e for e in sampler.health_events
            if e.kind == "degraded" and e.scope == "node"
        ]
        assert [e.subject for e in degraded] == result.failed_nodes
        assert degraded[0].time == pytest.approx(fault_time)
        assert "fault injection" in degraded[0].detail

    def test_replacement_delivery_emits_recovered(self, faulted):
        sampler, result, fault_time = faulted
        assert result.replacements == ["s1+r1/"]
        recovered = [
            e for e in sampler.health_events
            if e.kind == "recovered" and "replacement s1+r1/" in e.detail
        ]
        assert len(recovered) == 1
        assert recovered[0].subject == "stream:s1"
        assert recovered[0].time == pytest.approx(fault_time + result.recovery_s)

    def test_events_bracket_the_replan(self, faulted):
        sampler, result, fault_time = faulted
        degraded = next(
            e for e in sampler.health_events
            if e.kind == "degraded" and e.scope == "node"
        )
        recovered = next(
            e for e in sampler.health_events
            if e.kind == "recovered" and "replacement" in e.detail
        )
        assert degraded.time < recovered.time < result.makespan + 1e-12


class TestDetectorUnit:
    """State-machine behaviour on synthetic windows (no simulator)."""

    @staticmethod
    def feed(detector, values, name="io-proxy[1]"):
        events = []
        for index, value in enumerate(values):
            start = index * 1.0
            events.extend(detector.observe_window(
                index, start, start + 1.0, {name: value}, {}, {}
            ))
        return events

    def test_hysteresis_requires_consecutive_windows(self):
        detector = ContinuousBottleneckDetector(up_windows=2, down_windows=2)
        events = self.feed(detector, [0.9, 0.5, 0.9, 0.5, 0.9])
        assert events == []  # never two high windows in a row

    def test_saturate_then_recover(self):
        detector = ContinuousBottleneckDetector(up_windows=2, down_windows=2)
        events = self.feed(detector, [0.9, 0.9, 0.7, 0.5, 0.5])
        assert [e.kind for e in events] == ["saturated", "recovered"]
        assert events[0].window == 1
        assert events[1].window == 4  # the 0.7 band window does not count

    def test_band_holds_state_without_flapping(self):
        detector = ContinuousBottleneckDetector(up_windows=1, down_windows=1)
        events = self.feed(detector, [0.9, 0.7, 0.7, 0.7])
        assert [e.kind for e in events] == ["saturated"]
        assert detector.saturated == ["io-proxy[1]"]

    def test_culprit_prefers_dominant_saturated_leader(self):
        detector = ContinuousBottleneckDetector()
        for index, util in enumerate([
            {"a[0]": 1.0, "b[0]": 0.2},
            {"a[0]": 1.0, "b[0]": 0.2},
            {"a[0]": 1.0, "b[0]": 0.2},
            {"a[0]": 0.1, "b[0]": 0.9},   # brief spike elsewhere
            {"a[0]": 0.0, "b[0]": 0.0},   # idle tail
        ]):
            detector.observe_window(index, index * 1.0, index + 1.0, util, {}, {})
        assert detector.culprit == "a[0]"

    def test_stream_stall_needs_consecutive_quiet_windows(self):
        detector = ContinuousBottleneckDetector(stall_windows=2)
        detector.observe_window(0, 0.0, 1.0, {}, {"s0": 100.0}, {"s0": 1})
        events = detector.observe_window(1, 1.0, 2.0, {}, {}, {"s0": 1})
        assert events == []  # one quiet window is a burst gap, not a stall
        events = detector.observe_window(2, 2.0, 3.0, {}, {}, {"s0": 1})
        assert [e.kind for e in events] == ["degraded"]
        events = detector.observe_window(3, 3.0, 4.0, {}, {"s0": 50.0}, {})
        assert [e.kind for e in events] == ["recovered"]

    def test_validation(self):
        with pytest.raises(ValueError):
            ContinuousBottleneckDetector(high=0.0)
        with pytest.raises(ValueError):
            ContinuousBottleneckDetector(high=0.8, low=0.9)
        with pytest.raises(ValueError):
            ContinuousBottleneckDetector(up_windows=0)

    def test_event_rendering(self):
        event = HealthEvent(time=1.5, window=3, kind="saturated",
                            scope="pset", subject="io-proxy[1]", value=0.97,
                            detail="why")
        assert "io-proxy[1]" in str(event) and "why" in str(event)
        assert event.to_dict()["kind"] == "saturated"


class TestLintCleanliness:
    """The live-plane modules pass DET001-005 even under hot-path rules."""

    @pytest.mark.parametrize("module", ["live", "sketch", "health"])
    def test_clean_under_hot_path_rules(self, module, tmp_path):
        source = (
            Path(__file__).resolve().parents[2]
            / "src" / "repro" / "obs" / f"{module}.py"
        )
        # Re-home the module under repro/sim/ so every hot-path-only rule
        # applies, then demand a clean bill.
        hot = tmp_path / "repro" / "sim"
        hot.mkdir(parents=True)
        target = hot / f"{module}.py"
        target.write_text(source.read_text())
        assert lint_file(target) == []
