"""Critical-path profiler: bottleneck identification regression tests.

The acceptance criteria of the observability PR: on the paper's known
hotspot configurations the profiler's *top-ranked* resource must name the
mechanism the paper identifies —

* Figure 8, sequential placement: the intermediate co-processor (node 1
  forwards the b->c traffic while also running stream process x), and
* Figure 15, Q5 at n=5: the I/O node shared by two Blue Gene nodes
  (observation 5: "two of them had to share one I/O link").
"""

import json

import pytest

from repro.core.experiments.fig8 import BALANCED, SEQUENTIAL, merge_query
from repro.core.experiments.fig15 import inbound_query
from repro.core.measurement import measure_query_bandwidth
from repro.engine.settings import ExecutionSettings
from repro.obs import Instrumentation, profile, profile_flows
from repro.obs.flow import NULL_FLOWS, FlowRecorder
from repro.obs.profile import BottleneckReport
from repro.obs.tracer import NULL_TRACER
from repro.net.message import WireBuffer


def _flows_only(_repeat: int) -> Instrumentation:
    return Instrumentation(tracer=NULL_TRACER)


def _observe(query: str, payload: int, settings=None) -> Instrumentation:
    result = measure_query_bandwidth(
        query,
        payload_bytes=payload,
        settings=settings or ExecutionSettings(),
        repeats=1,
        obs_factory=_flows_only,
    )
    (obs,) = result.observations
    return obs


def _fig8_report(placement) -> BottleneckReport:
    x, y = placement
    obs = _observe(
        merge_query(100_000, 4, x, y),
        payload=2 * 100_000 * 4,
        settings=ExecutionSettings(mpi_buffer_bytes=100_000),
    )
    return profile([obs])


def _fig15_report(n: int) -> BottleneckReport:
    obs = _observe(inbound_query(5, n, 300_000, 3), payload=n * 300_000 * 3)
    return profile([obs])


class TestFig8Bottleneck:
    def test_sequential_blames_intermediate_coprocessor(self):
        """Paper fig 8: node 1 forwards b->c traffic AND runs x."""
        report = _fig8_report(SEQUENTIAL)
        x, _ = SEQUENTIAL
        assert report.bottleneck is not None
        assert report.bottleneck.resource == f"coproc[{x}]"

    def test_balanced_does_not_blame_node_one(self):
        """With x moved off the route, node 1 stops being the hotspot."""
        report = _fig8_report(BALANCED)
        assert report.bottleneck is not None
        assert report.bottleneck.resource != "coproc[1]"


class TestFig15Bottleneck:
    def test_q5_n5_blames_shared_io_proxy(self):
        """Observation 5: at n=5 two senders share one I/O node."""
        report = _fig15_report(5)
        assert report.bottleneck is not None
        assert report.bottleneck.resource.startswith("io-proxy[")

    def test_q5_n4_is_not_io_proxy_limited(self):
        """At n=4 every sender has its own I/O node; the shared
        ethernet uplink dominates instead."""
        report = _fig15_report(4)
        assert report.bottleneck is not None
        assert not report.bottleneck.resource.startswith("io-proxy[")


class TestReportShape:
    def test_empty_sources_give_wellformed_empty_report(self):
        report = profile([NULL_FLOWS, FlowRecorder(), Instrumentation(tracer=NULL_TRACER)])
        assert report.flows == 0
        assert report.bottleneck is None
        assert report.top(3) == []
        assert "0 flows" in report.format_text()
        payload = report.to_json()
        assert payload["flows"] == 0
        assert payload["resources"] == []

    def test_profile_flows_aggregates_and_ranks(self):
        recorder = FlowRecorder()
        for _ in range(3):
            buffer = WireBuffer.data("a->b", "n0", 1000, fragments=())
            recorder.begin(buffer, 0.0)
            recorder.hop(buffer, "slow", 2.0, resource="hot", processing=1.5)
            recorder.hop(buffer, "fast", 2.5, resource="cold", wire=0.25)
            recorder.complete(buffer, 3.0)
        report = profile_flows(recorder.completed)
        assert report.flows == 3
        assert report.bottleneck.resource == "hot"
        assert report.bottleneck.service == pytest.approx(4.5)
        assert report.bottleneck.critical_votes == 3
        ranked = [c.resource for c in report.top(5)]
        assert ranked == ["hot", "cold"]
        (stream,) = report.streams
        assert stream.stream_id == "a->b"
        assert stream.flows == 3
        assert stream.mean == pytest.approx(3.0)

    def test_profile_flows_skips_eos_records(self):
        recorder = FlowRecorder()
        eos = WireBuffer.end_of_stream("a->b", "n0")
        recorder.begin(eos, 0.0)
        recorder.complete(eos, 1.0)
        report = profile_flows(recorder.completed)
        assert report.flows == 0

    def test_format_text_and_json_round_trip(self, tmp_path):
        report = _fig8_report(SEQUENTIAL)
        text = report.format_text()
        assert "coproc[1]" in text.splitlines()[0] or "coproc[1]" in text
        path = tmp_path / "bottlenecks.json"
        report.write_json(str(path))
        payload = json.loads(path.read_text())
        assert payload["resources"][0]["resource"] == "coproc[1]"
        assert payload["flows"] == report.flows
        assert any(s["stream_id"] for s in payload["streams"])
