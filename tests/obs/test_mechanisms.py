"""Mechanism regression tests: the instrumentation sees *why* the curves bend.

Each published shape reproduced by the experiments has a mechanism behind
it; these tests pin those mechanisms with metrics instead of trusting that
the right bandwidth emerged for the right reason:

* Figure 8 — under the sequential node selection (x=1, y=2) node b's
  torus traffic is routed *through* the intermediate node's communication
  co-processor, so ``coproc[1]`` is the busiest; the balanced selection
  (x=1, y=4) leaves the receiver's own co-processor busiest.
* Figure 15 — Query 5's dip at n=5 happens because a partition has four
  I/O nodes, so a fifth receiving pset must share one of them.
* Figure 6 — buffers below the 1024-byte torus packet are padded, so
  bytes on the wire far exceed the payload.
"""


from repro.core.experiments.fig6 import point_to_point_query
from repro.core.experiments.fig8 import BALANCED, SEQUENTIAL, merge_query
from repro.core.experiments.fig15 import inbound_query
from repro.core.measurement import measure_query_bandwidth
from repro.engine.settings import ExecutionSettings
from repro.obs import Instrumentation
from repro.obs.tracer import NULL_TRACER


def _metrics_only(_repeat: int) -> Instrumentation:
    return Instrumentation(tracer=NULL_TRACER)


def _observe(query: str, payload: int, settings: ExecutionSettings) -> Instrumentation:
    result = measure_query_bandwidth(
        query,
        payload_bytes=payload,
        settings=settings,
        repeats=1,
        obs_factory=_metrics_only,
    )
    (obs,) = result.observations
    return obs


class TestFig8IntermediateCoprocessor:
    """Sequential placement funnels b's stream through node 1's co-processor."""

    SETTINGS = ExecutionSettings(mpi_buffer_bytes=100_000)

    def _busiest_coproc(self, x: int, y: int) -> str:
        query = merge_query(100_000, 4, x, y)
        obs = _observe(query, payload=2 * 100_000 * 4, settings=self.SETTINGS)
        name, busy = obs.busiest_resource("coproc")
        assert busy > 0.0
        return name

    def test_sequential_routes_through_intermediate_node(self):
        x, y = SEQUENTIAL
        assert self._busiest_coproc(x, y) == f"coproc[{x}]"

    def test_balanced_keeps_receiver_coproc_busiest(self):
        assert self._busiest_coproc(*BALANCED) == "coproc[0]"


class TestFig15ConnectionSharing:
    """At n=5 one of the partition's four I/O nodes serves two connections."""

    def _io_connection_peaks(self, n: int):
        query = inbound_query(5, n, 300_000, 3)
        obs = _observe(query, payload=n * 300_000 * 3,
                       settings=ExecutionSettings())
        snap = obs.snapshot()
        return [
            peak
            for name, peak in sorted(snap.peaks.items())
            if name.startswith("ethernet.io_connections[")
        ]

    def test_four_streams_spread_over_four_io_nodes(self):
        assert self._io_connection_peaks(4) == [1, 1, 1, 1]

    def test_fifth_stream_shares_an_io_node(self):
        peaks = self._io_connection_peaks(5)
        assert sorted(peaks) == [1, 1, 1, 2]


class TestFig6PacketPadding:
    """Sub-1KB buffers are padded to whole 1024-byte torus packets."""

    def _wire_ratio(self, buffer_bytes: int) -> float:
        query = point_to_point_query(30_000, 4)
        obs = _observe(query, payload=30_000 * 4,
                       settings=ExecutionSettings(mpi_buffer_bytes=buffer_bytes))
        snap = obs.snapshot()
        payload = snap.counter("torus.payload_bytes")
        wire = snap.counter("torus.wire_bytes")
        assert payload >= 30_000 * 4  # the stream actually flowed
        return wire / payload

    def test_tiny_buffers_mostly_padding(self):
        # 200-byte buffers ride in 1024-byte packets: > 2x overhead.
        assert self._wire_ratio(200) > 2.0

    def test_kilobyte_buffers_fit_packets(self):
        assert self._wire_ratio(1000) < 1.1
        assert self._wire_ratio(2000) < 1.1

    def test_padding_explains_the_knee(self):
        # The wire-byte inflation is monotone in buffer shrinkage.
        assert self._wire_ratio(200) > self._wire_ratio(1000)
