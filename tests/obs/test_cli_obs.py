"""The --trace / --metrics-out CLI flags, exercised in-process."""

import json

from repro.__main__ import main

QUERY = (
    "select extract(b) from sp a, sp b "
    "where b=sp(count(extract(a)), 'bg', 0) "
    "and a=sp(gen_array(10000,3), 'bg', 1);"
)


def _trace_is_valid_chrome(path: str) -> dict:
    document = json.load(open(path, encoding="utf-8"))
    assert isinstance(document["traceEvents"], list)
    assert document["traceEvents"], "trace must not be empty"
    phases = {event["ph"] for event in document["traceEvents"]}
    assert "M" in phases and "X" in phases
    for event in document["traceEvents"]:
        assert "pid" in event and "tid" in event
        if event["ph"] == "X":
            assert event["dur"] >= 0
    return document


def test_query_trace_and_metrics(tmp_path, capsys):
    trace = tmp_path / "trace.json"
    assert main([
        "query", QUERY, "--trace", str(trace), "--metrics-out", "-",
    ]) == 0
    out = capsys.readouterr().out
    assert "result: [3]" in out
    assert "observability summary" in out
    assert "coproc[0]" in out  # the receiving node's co-processor showed up
    _trace_is_valid_chrome(str(trace))


def test_query_jsonl_trace(tmp_path):
    trace = tmp_path / "trace.jsonl"
    metrics = tmp_path / "metrics.txt"
    assert main([
        "query", QUERY, "--trace", str(trace), "--metrics-out", str(metrics),
    ]) == 0
    lines = [json.loads(line) for line in open(trace, encoding="utf-8")]
    assert lines[0] == {"section": "query"}
    kinds = {line.get("kind") for line in lines[1:]}
    assert {"span_begin", "span_end"} <= kinds
    assert "observability summary" in metrics.read_text(encoding="utf-8")


def test_query_metrics_only_skips_tracing(tmp_path, capsys):
    assert main(["query", QUERY, "--metrics-out", "-"]) == 0
    out = capsys.readouterr().out
    assert "observability summary" in out
    assert "sim.events_processed" in out


def test_fig8_trace_carries_flow_arrows(tmp_path, capsys):
    """--trace enables flow tracing: hop slices + s/t/f arrow events."""
    trace = tmp_path / "fig8_flows.json"
    assert main([
        "fig8", "--quick", "--repeats", "1", "--trace", str(trace),
    ]) == 0
    capsys.readouterr()
    document = _trace_is_valid_chrome(str(trace))
    phases = {event["ph"] for event in document["traceEvents"]}
    assert {"s", "f"} <= phases  # causal arrows from birth to delivery
    flow_threads = {
        event["args"]["name"]
        for event in document["traceEvents"]
        if event["ph"] == "M" and event["name"] == "thread_name"
        and str(event["args"].get("name", "")).startswith("flow:")
    }
    assert flow_threads, "each stream edge gets its own flow thread"


def test_fig8_bottlenecks_to_stdout(capsys):
    assert main([
        "fig8", "--quick", "--repeats", "1", "--bottlenecks", "-",
    ]) == 0
    out = capsys.readouterr().out
    assert "critical-path profile" in out
    assert "coproc[" in out


def test_fig8_bottlenecks_to_json(tmp_path, capsys):
    report = tmp_path / "bottlenecks.json"
    assert main([
        "fig8", "--quick", "--repeats", "1", "--bottlenecks", str(report),
    ]) == 0
    capsys.readouterr()
    payload = json.load(open(report, encoding="utf-8"))
    assert payload["flows"] > 0
    assert payload["resources"], "ranked resource list must not be empty"
    assert {"resource", "service_s", "queue_wait_s"} <= set(payload["resources"][0])


def test_ablations_accept_observability_flags(tmp_path, capsys):
    trace = tmp_path / "ablations.json"
    metrics = tmp_path / "ablations_metrics.txt"
    report = tmp_path / "ablations_bn.json"
    assert main([
        "ablations", "--quick", "--repeats", "1",
        "--trace", str(trace), "--metrics-out", str(metrics),
        "--bottlenecks", str(report),
    ]) == 0
    capsys.readouterr()
    _trace_is_valid_chrome(str(trace))
    assert "observability summary" in metrics.read_text(encoding="utf-8")
    assert json.load(open(report, encoding="utf-8"))["flows"] > 0


def test_scaling_accept_observability_flags(tmp_path, capsys):
    metrics = tmp_path / "scaling_metrics.txt"
    report = tmp_path / "scaling_bn.txt"
    assert main([
        "scaling", "--quick", "--repeats", "1",
        "--metrics-out", str(metrics), "--bottlenecks", str(report),
    ]) == 0
    capsys.readouterr()
    assert "observability summary" in metrics.read_text(encoding="utf-8")
    assert "critical-path profile" in report.read_text(encoding="utf-8")


def test_fig8_run_exports_valid_trace(tmp_path, capsys):
    """Acceptance: a traced Figure 8 run produces a loadable Chrome trace."""
    trace = tmp_path / "fig8.json"
    assert main([
        "fig8", "--quick", "--repeats", "1", "--trace", str(trace),
    ]) == 0
    document = _trace_is_valid_chrome(str(trace))
    names = {
        event["args"]["name"]
        for event in document["traceEvents"]
        if event["ph"] == "M" and event["name"] == "process_name"
    }
    # one trace process per (point, repeat) with a descriptive label
    assert any(name.startswith("fig8 B=1000 seq/single") for name in names)
    assert any(name.startswith("fig8 B=200000 bal/double") for name in names)
    assert "balanced advantage" in capsys.readouterr().out
