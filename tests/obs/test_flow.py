"""Flow-level causal tracing: recorder unit tests + propagation edge cases.

The unit tests drive :class:`~repro.obs.flow.FlowRecorder` directly; the
query-level tests run real experiments and assert the properties the
latency attribution rests on:

* hop components of every completed flow sum exactly to its end-to-end
  latency (nothing double counted, nothing lost);
* merge fan-in keeps per-source flows separate (each input stream edge has
  its own flow ids and latencies);
* a multi-hop torus route logs one forwarding hop per intermediate node;
* a finished stream leaves no in-flight records behind (the receiver
  drops what the end-of-stream marker may have overtaken).
"""

import pytest

from repro.core.experiments.fig6 import point_to_point_query
from repro.core.experiments.fig8 import SEQUENTIAL, merge_query
from repro.core.measurement import measure_query_bandwidth
from repro.engine.settings import ExecutionSettings
from repro.net.message import WireBuffer
from repro.obs import Instrumentation, MetricsRegistry
from repro.obs.flow import NULL_FLOWS, FlowRecorder
from repro.obs.tracer import NULL_TRACER


def _flows_only(_repeat: int) -> Instrumentation:
    return Instrumentation(tracer=NULL_TRACER)


def _observe(query: str, payload: int, settings=None) -> Instrumentation:
    result = measure_query_bandwidth(
        query,
        payload_bytes=payload,
        settings=settings or ExecutionSettings(),
        repeats=1,
        obs_factory=_flows_only,
    )
    (obs,) = result.observations
    return obs


def _buffer(stream="s", source="n0", nbytes=1000) -> WireBuffer:
    return WireBuffer.data(stream, source, nbytes, fragments=())


class TestFlowRecorderUnit:
    def test_begin_hop_complete_partitions_latency(self):
        recorder = FlowRecorder()
        buffer = _buffer()
        recorder.begin(buffer, 1.0)
        recorder.hop(buffer, "a", 1.5, resource="r1", serialize=0.2)
        recorder.hop(buffer, "b", 2.5, wire=0.4, processing=0.1)
        recorder.complete(buffer, 3.0)
        (record,) = recorder.completed
        assert record.latency == pytest.approx(2.0)
        assert [h.stage for h in record.hops] == ["a", "b", "deliver.tail"]
        first, second, tail = record.hops
        assert first.queue_wait == pytest.approx(0.3)  # 0.5 interval - 0.2
        assert second.queue_wait == pytest.approx(0.5)  # 1.0 - 0.4 - 0.1
        assert tail.queue_wait == pytest.approx(0.5)
        totals = record.component_totals()
        assert sum(totals.values()) == pytest.approx(record.latency)

    def test_over_declared_service_is_scaled_not_negative(self):
        recorder = FlowRecorder()
        buffer = _buffer()
        recorder.begin(buffer, 0.0)
        # declares 2s of wire inside a 1s interval (e.g. jittered baseline)
        recorder.hop(buffer, "x", 1.0, resource="r", wire=1.5, processing=0.5)
        recorder.complete(buffer, 1.0)
        (record,) = recorder.completed
        hop = record.hops[0]
        assert hop.queue_wait == 0.0
        assert hop.wire == pytest.approx(0.75)
        assert hop.processing == pytest.approx(0.25)
        assert hop.service == pytest.approx(hop.duration)

    def test_hooks_on_unbegun_buffer_are_ignored(self):
        recorder = FlowRecorder()
        buffer = _buffer()
        recorder.hop(buffer, "a", 1.0)
        recorder.complete(buffer, 2.0)
        assert recorder.completed == []
        assert recorder.in_flight_count == 0

    def test_drop_stream_removes_only_that_stream(self):
        recorder = FlowRecorder()
        mine, other = _buffer(stream="mine"), _buffer(stream="other")
        recorder.begin(mine, 0.0)
        recorder.begin(other, 0.0)
        assert recorder.drop_stream("mine") == 1
        assert recorder.dropped == 1
        assert recorder.in_flight_count == 1
        assert recorder.in_flight_of("other")
        # dropping again is a no-op, and later hooks on the dropped buffer
        # are silently ignored
        assert recorder.drop_stream("mine") == 0
        recorder.complete(mine, 1.0)
        assert recorder.completed == []

    def test_latencies_exclude_eos_by_default(self):
        recorder = FlowRecorder()
        data = _buffer()
        eos = WireBuffer.end_of_stream("s", "n0")
        for buffer in (data, eos):
            recorder.begin(buffer, 0.0)
            recorder.complete(buffer, 2.0)
        assert recorder.latencies() == [pytest.approx(2.0)]
        assert len(recorder.latencies(include_eos=True)) == 2

    def test_publish_sets_stream_gauges(self):
        recorder = FlowRecorder()
        for _ in range(4):
            buffer = _buffer(stream="edge")
            recorder.begin(buffer, 0.0)
            recorder.hop(buffer, "a", 1.0, resource="r", wire=0.25)
            recorder.complete(buffer, 1.0)
        metrics = MetricsRegistry()
        recorder.publish(metrics)
        assert metrics.gauges["flow.completed[edge]"].value == 4
        assert metrics.gauges["flow.latency.p95[edge]"].value == pytest.approx(1.0)
        assert metrics.gauges["flow.time.wire[edge]"].value == pytest.approx(1.0)
        assert metrics.gauges["flow.time.queue_wait[edge]"].value == pytest.approx(3.0)
        # publishing twice is idempotent (gauges, not counters)
        recorder.publish(metrics)
        assert metrics.gauges["flow.completed[edge]"].value == 4

    def test_null_recorder_is_inert(self):
        buffer = _buffer()
        NULL_FLOWS.begin(buffer, 0.0)
        NULL_FLOWS.hop(buffer, "a", 1.0)
        NULL_FLOWS.complete(buffer, 2.0)
        assert NULL_FLOWS.enabled is False
        assert NULL_FLOWS.completed == []
        assert NULL_FLOWS.in_flight_count == 0
        assert NULL_FLOWS.drop_stream("s") == 0


class TestFlowPropagation:
    """Query-level edge cases over the real engine + network models."""

    def test_hops_sum_to_end_to_end_latency(self):
        """The acceptance criterion: attribution partitions the latency."""
        obs = _observe(
            point_to_point_query(100_000, 4),
            payload=100_000 * 4,
            settings=ExecutionSettings(mpi_buffer_bytes=100_000),
        )
        records = obs.flows.completed
        assert records
        for record in records:
            hop_sum = sum(hop.duration for hop in record.hops)
            assert hop_sum == pytest.approx(record.latency, abs=1e-12)
            component_sum = sum(record.component_totals().values())
            assert component_sum == pytest.approx(record.latency, abs=1e-9)

    def test_merge_fan_in_preserves_per_source_flows(self):
        x, y = SEQUENTIAL
        obs = _observe(
            merge_query(100_000, 4, x, y),
            payload=2 * 100_000 * 4,
            settings=ExecutionSettings(mpi_buffer_bytes=100_000),
        )
        streams = {
            record.stream_id: record
            for record in obs.flows.completed
            if not record.eos
        }
        # the merge's two input edges both have completed flows...
        merge_edges = [s for s in streams if "->c@" in s]
        assert len(merge_edges) == 2
        # ...and flow ids never collide across edges
        ids = [r.flow_id for r in obs.flows.completed]
        assert len(ids) == len(set(ids))
        for edge in merge_edges:
            assert obs.flows.latencies(edge)

    def test_torus_multi_hop_logs_every_intermediate_node(self):
        """b=node 2 -> c=node 0 routes through node 1 (paper Figure 7A)."""
        x, y = SEQUENTIAL
        obs = _observe(
            merge_query(100_000, 4, x, y),
            payload=2 * 100_000 * 4,
            settings=ExecutionSettings(mpi_buffer_bytes=100_000),
        )
        multi_hop = [
            record
            for record in obs.flows.completed
            if not record.eos
            and any(hop.stage.startswith("torus.forward[") for hop in record.hops)
        ]
        assert multi_hop, "the sequential placement must route via node 1"
        for record in multi_hop:
            stages = [hop.stage for hop in record.hops]
            assert f"torus.forward[{x}]" in stages
            resources = {hop.resource for hop in record.hops}
            assert f"coproc[{x}]" in resources

    def test_finished_streams_leave_no_in_flight_records(self):
        """Channel + stream teardown must not leak the in-flight table."""
        obs = _observe(
            merge_query(100_000, 4, *SEQUENTIAL),
            payload=2 * 100_000 * 4,
            settings=ExecutionSettings(mpi_buffer_bytes=100_000),
        )
        assert obs.flows.in_flight_count == 0
        assert obs.flows.completed  # the flows finished rather than vanished

    def test_snapshot_carries_flow_latency_metrics(self):
        obs = _observe(
            point_to_point_query(50_000, 3),
            payload=50_000 * 3,
            settings=ExecutionSettings(mpi_buffer_bytes=50_000),
        )
        snap = obs.snapshot()
        flow_gauges = [n for n in snap.gauges if n.startswith("flow.latency.p95[")]
        assert flow_gauges
