"""Subscribable control feeds: flow and health-event listeners.

The adaptive runtime rides push subscriptions instead of polling:
``FlowRecorder.add_listener`` delivers every sealed flow record and
``ContinuousBottleneckDetector.add_listener`` every health event, at
emission time.  The contract under test is symmetric on both feeds — a
subscribed listener sees every event, and a **detached listener never
fires again** (so controllers and forked environments cannot leak stale
callbacks).
"""

import pytest

from repro.obs.flow import NULL_FLOWS, FlowRecorder, NullFlowRecorder
from repro.obs.health import ContinuousBottleneckDetector


class _Buffer:
    """The minimal WireBuffer surface the flow recorder reads."""

    def __init__(self, buffer_id, stream_id="s0/x", nbytes=1000):
        self.buffer_id = buffer_id
        self.stream_id = stream_id
        self.source = "a@1"
        self.nbytes = nbytes
        self.eos = False


class TestFlowListeners:
    def test_listener_sees_every_completion(self):
        recorder = FlowRecorder()
        seen = []
        recorder.add_listener(seen.append)
        for index in range(3):
            buffer = _Buffer(index)
            recorder.begin(buffer, 0.0)
            recorder.complete(buffer, 1.0 + index)
        assert [record.buffer_id for record in seen] == [0, 1, 2]
        assert seen == recorder.completed

    def test_detached_listener_never_fires_again(self):
        recorder = FlowRecorder()
        seen = []
        listener = seen.append
        recorder.add_listener(listener)
        first = _Buffer(0)
        recorder.begin(first, 0.0)
        recorder.complete(first, 1.0)
        recorder.remove_listener(listener)
        second = _Buffer(1)
        recorder.begin(second, 2.0)
        recorder.complete(second, 3.0)
        assert len(seen) == 1  # the detached listener missed the second flow
        assert len(recorder.completed) == 2  # the recorder itself did not

    def test_remove_is_idempotent(self):
        recorder = FlowRecorder()
        listener = lambda record: None  # noqa: E731
        recorder.remove_listener(listener)  # never added: ignored
        recorder.add_listener(listener)
        recorder.remove_listener(listener)
        recorder.remove_listener(listener)  # already gone: ignored

    def test_null_recorder_rejects_subscription(self):
        with pytest.raises(RuntimeError, match="disabled flow recorder"):
            NULL_FLOWS.add_listener(lambda record: None)
        NULL_FLOWS.remove_listener(lambda record: None)  # detach is a no-op
        assert not NullFlowRecorder().enabled


def _window(detector, index, utilization):
    span = 0.001
    return detector.observe_window(
        index, index * span, (index + 1) * span, utilization, {}, {}
    )


class TestHealthListeners:
    def test_listener_receives_emitted_events(self):
        detector = ContinuousBottleneckDetector(up_windows=2)
        seen = []
        detector.add_listener(seen.append)
        _window(detector, 0, {"cpu[0]": 0.95})
        assert seen == []  # one hot window is below the hysteresis count
        _window(detector, 1, {"cpu[0]": 0.95})
        assert [event.kind for event in seen] == ["saturated"]
        assert seen[0].subject == "cpu[0]"
        assert seen == detector.events

    def test_detached_listener_never_fires_again(self):
        detector = ContinuousBottleneckDetector(up_windows=1, down_windows=1)
        seen = []
        detector.add_listener(seen.append)
        _window(detector, 0, {"cpu[0]": 0.95})
        assert [event.kind for event in seen] == ["saturated"]
        detector.remove_listener(seen.append)
        _window(detector, 1, {"cpu[0]": 0.1})
        assert len(seen) == 1  # the recovery fired without us
        assert [event.kind for event in detector.events] == [
            "saturated",
            "recovered",
        ]

    def test_remove_is_idempotent(self):
        detector = ContinuousBottleneckDetector()
        listener = lambda event: None  # noqa: E731
        detector.remove_listener(listener)
        detector.add_listener(listener)
        detector.remove_listener(listener)
        detector.remove_listener(listener)

    def test_listeners_fire_in_subscription_order(self):
        detector = ContinuousBottleneckDetector(up_windows=1)
        order = []
        detector.add_listener(lambda event: order.append("first"))
        detector.add_listener(lambda event: order.append("second"))
        _window(detector, 0, {"cpu[0]": 0.95})
        assert order == ["first", "second"]
