"""Unit tests for the mini Linear Road workload and keyed windows."""

import pytest

from repro.engine.operators import GroupWindowAggregate
from repro.util.errors import QueryExecutionError
from repro.workloads.linear_road import (
    CONGESTION_SPEED,
    Accident,
    expected_congested_windows,
    partition_by_segment,
    position_reports,
)
from tests.conftest import run_operator


class TestWorkloadGenerator:
    def test_deterministic(self):
        a = position_reports(5, 4, 20, seed=3)
        b = position_reports(5, 4, 20, seed=3)
        assert a == b

    def test_report_shape_and_volume(self):
        reports = position_reports(3, 4, 10, seed=0)
        assert len(reports) == 30
        for tick, vid, segment, speed in reports:
            assert 0 <= tick < 10
            assert 0 <= vid < 3
            assert 0 <= segment < 4
            assert speed > 0

    def test_accident_depresses_speeds(self):
        accident = Accident(segment=1, start_tick=0, end_tick=50)
        reports = position_reports(10, 4, 50, seed=1, accident=accident)
        in_accident = [r[3] for r in reports if r[2] == 1]
        elsewhere = [r[3] for r in reports if r[2] != 1]
        assert max(in_accident) < CONGESTION_SPEED
        assert min(elsewhere) > CONGESTION_SPEED

    def test_partitioning_is_complete(self):
        reports = position_reports(6, 3, 12, seed=2)
        partitions = partition_by_segment(reports, 3)
        assert sum(len(p) for p in partitions.values()) == len(reports)
        for segment, rows in partitions.items():
            assert all(r[2] == segment for r in rows)

    def test_validation(self):
        with pytest.raises(QueryExecutionError):
            position_reports(0, 3, 5)

    def test_reference_congestion_count(self):
        speeds = [60.0] * 10 + [20.0] * 10
        # windows of 5: two free-flow, two congested
        assert expected_congested_windows(speeds, 5) == 2


class TestGroupWindowAggregate:
    REPORTS = [
        (0, 1, 0, 50.0),
        (1, 2, 0, 30.0),
        (2, 1, 0, 60.0),
        (3, 2, 0, 40.0),
        (4, 1, 0, 70.0),
    ]

    def test_per_key_tumbling_windows(self, env):
        out = run_operator(
            env,
            GroupWindowAggregate,
            [self.REPORTS],
            fn="avg",
            size=2,
            key_index=1,
            value_index=3,
        )
        assert (1, 55.0) in out  # vehicle 1: (50+60)/2
        assert (2, 35.0) in out  # vehicle 2: (30+40)/2
        # vehicle 1's leftover partial window flushes at EOS
        assert (1, 70.0) in out

    def test_partial_flush_disabled(self, env):
        out = run_operator(
            env,
            GroupWindowAggregate,
            [self.REPORTS],
            fn="avg",
            size=2,
            key_index=1,
            value_index=3,
            flush_partial=False,
        )
        assert (1, 70.0) not in out

    def test_bad_field_index(self, env):
        with pytest.raises(QueryExecutionError, match="could not read"):
            run_operator(
                env,
                GroupWindowAggregate,
                [[(1, 2)]],
                fn="avg",
                size=2,
                key_index=5,
                value_index=1,
            )

    def test_unknown_aggregate(self, env):
        with pytest.raises(QueryExecutionError):
            run_operator(
                env, GroupWindowAggregate, [[]], fn="median", size=2,
                key_index=0, value_index=1,
            )


class TestScsqlGroupwin:
    def test_groupwin_in_query(self):
        from repro.scsql.session import SCSQSession

        reports = TestGroupWindowAggregate.REPORTS
        SCSQSession.register_source("lr-reports", lambda: iter(reports))
        try:
            session = SCSQSession()
            report = session.execute(
                "select extract(b) from sp a, sp b "
                "where b=sp(groupwin(extract(a), 'avg', 2, 1, 3), 'bg') "
                "and a=sp(receiver('lr-reports'), 'bg');"
            )
        finally:
            SCSQSession.unregister_source("lr-reports")
        assert (1, 55.0) in report.result
        assert (2, 35.0) in report.result
