"""Unit tests for the synthetic workloads."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.errors import QueryExecutionError
from repro.workloads import (
    MARKER,
    expected_marker_count,
    filename,
    make_signal_source,
    read_file,
    signal_stream,
    sinusoid_mixture,
)


class TestCorpus:
    def test_filenames_are_stable(self):
        assert filename(3) == "stream-log-0003.txt"

    def test_files_are_deterministic(self):
        assert read_file(filename(5)) == read_file(filename(5))

    def test_files_differ(self):
        assert read_file(filename(1)) != read_file(filename(2))

    def test_marker_density(self):
        lines = read_file(filename(0))
        planted = sum(1 for line in lines if MARKER in line)
        assert planted == expected_marker_count()

    def test_unknown_file_rejected(self):
        with pytest.raises(QueryExecutionError):
            read_file("random.txt")

    def test_line_count_parameter(self):
        assert len(read_file(filename(0), lines=50)) == 50
        planted = sum(1 for line in read_file(filename(0), lines=50) if MARKER in line)
        assert planted == expected_marker_count(50)


class TestSignals:
    def test_tone_shows_up_in_fft_bin(self):
        signal = sinusoid_mixture(256, [(10, 1.0)], noise=0.0)
        spectrum = np.abs(np.fft.fft(signal))
        assert np.argmax(spectrum[1:129]) + 1 == 10

    def test_non_power_of_two_rejected(self):
        with pytest.raises(QueryExecutionError):
            sinusoid_mixture(100, [(1, 1.0)])

    def test_stream_is_deterministic(self):
        a = signal_stream(3, n_points=64, seed=5)
        b = signal_stream(3, n_points=64, seed=5)
        assert all(np.array_equal(x, y) for x, y in zip(a, b))

    def test_source_factory_restarts(self):
        factory = make_signal_source(2, n_points=64)
        first = list(factory())
        second = list(factory())
        assert len(first) == len(second) == 2
        assert all(np.array_equal(x, y) for x, y in zip(first, second))


@given(st.integers(0, 9999))
def test_every_filename_reads(i):
    lines = read_file(filename(i), lines=20)
    assert len(lines) == 20
