"""Edge cases of the three workload generators.

Malformed parameters, empty and single-tuple streams, and the rate-limit
boundaries the benchmark harness depends on — a truncated stream must be a
bit-identical prefix of the unlimited one, or same-seed fault repeats
diverge.
"""

import numpy as np
import pytest

from repro.util.errors import QueryExecutionError
from repro.workloads import corpus
from repro.workloads.linear_road import Accident, position_reports
from repro.workloads.signals import make_signal_source, signal_stream, sinusoid_mixture


class TestLinearRoadEdges:
    def test_zero_vehicles_rejected(self):
        with pytest.raises(QueryExecutionError, match="at least one"):
            position_reports(0, 4, 10)

    def test_zero_segments_rejected(self):
        with pytest.raises(QueryExecutionError, match="at least one"):
            position_reports(4, 0, 10)

    def test_zero_ticks_rejected(self):
        with pytest.raises(QueryExecutionError, match="at least one"):
            position_reports(4, 4, 0)

    def test_negative_rate_limit_rejected(self):
        with pytest.raises(QueryExecutionError, match="max_reports"):
            position_reports(4, 4, 10, max_reports=-1)

    def test_zero_rate_limit_is_an_empty_stream(self):
        assert position_reports(4, 4, 10, max_reports=0) == []

    def test_single_tuple_stream(self):
        reports = position_reports(4, 4, 10, max_reports=1)
        assert len(reports) == 1
        tick, vid, segment, speed = reports[0]
        assert (tick, vid) == (0, 0)
        assert 0 <= segment < 4
        assert speed > 0.0

    @pytest.mark.parametrize("cap", [1, 7, 39, 40, 41, 1000])
    def test_rate_limit_truncates_to_an_identical_prefix(self, cap):
        full = position_reports(4, 4, 10, seed=3)
        limited = position_reports(4, 4, 10, seed=3, max_reports=cap)
        assert limited == full[:cap]

    def test_rate_limit_interacts_with_accidents(self):
        accident = Accident(segment=1, start_tick=2, end_tick=8)
        full = position_reports(6, 4, 12, seed=1, accident=accident)
        limited = position_reports(
            6, 4, 12, seed=1, accident=accident, max_reports=len(full) - 5
        )
        assert limited == full[:-5]


class TestSignalsEdges:
    def test_negative_count_rejected(self):
        with pytest.raises(QueryExecutionError, match="count"):
            signal_stream(-1)

    def test_zero_count_is_a_valid_empty_stream(self):
        assert signal_stream(0) == []

    def test_single_array_stream(self):
        (array,) = signal_stream(1, n_points=256)
        assert array.shape == (256,)

    @pytest.mark.parametrize("n_points", [0, 1, 3, 100, 1023])
    def test_non_power_of_two_length_rejected(self, n_points):
        with pytest.raises(QueryExecutionError, match="power of two"):
            sinusoid_mixture(n_points, [(1, 1.0)])

    def test_minimum_length_accepted(self):
        assert sinusoid_mixture(2, [(1, 1.0)]).shape == (2,)

    def test_factory_is_re_iterable(self):
        # The engine re-pulls a source factory on redeploy; each call must
        # restart the stream from the beginning with identical content.
        factory = make_signal_source(3, n_points=128, seed=9)
        first = list(factory())
        second = list(factory())
        assert len(first) == len(second) == 3
        for a, b in zip(first, second):
            np.testing.assert_array_equal(a, b)


class TestCorpusEdges:
    def test_unknown_filename_rejected(self):
        with pytest.raises(QueryExecutionError, match="unknown corpus file"):
            corpus.read_file("not-a-corpus-file.log")

    def test_negative_line_count_rejected(self):
        with pytest.raises(QueryExecutionError, match="line count"):
            corpus.read_file(corpus.filename(1), lines=-1)

    def test_zero_lines_is_an_empty_file(self):
        assert corpus.read_file(corpus.filename(1), lines=0) == []
        assert corpus.expected_marker_count(0) == 0

    def test_single_line_file_carries_the_marker(self):
        (line,) = corpus.read_file(corpus.filename(1), lines=1)
        assert corpus.MARKER in line
        assert corpus.expected_marker_count(1) == 1

    @pytest.mark.parametrize("lines", [1, 16, 17, 18, 200])
    def test_marker_count_matches_generated_lines(self, lines):
        generated = corpus.read_file(corpus.filename(7), lines=lines)
        counted = sum(1 for line in generated if corpus.MARKER in line)
        assert counted == corpus.expected_marker_count(lines)

    def test_truncation_is_a_prefix(self):
        full = corpus.read_file(corpus.filename(2), lines=200)
        assert corpus.read_file(corpus.filename(2), lines=50) == full[:50]
