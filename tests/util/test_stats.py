"""Unit tests for measurement statistics."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.stats import summarize


class TestSummarize:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_single_sample(self):
        stats = summarize([5.0])
        assert stats.mean == 5.0
        assert stats.std == 0.0
        assert stats.minimum == stats.maximum == 5.0

    def test_known_values(self):
        stats = summarize([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0])
        assert stats.mean == pytest.approx(5.0)
        assert stats.std == pytest.approx(math.sqrt(32 / 7))
        assert stats.minimum == 2.0
        assert stats.maximum == 9.0

    def test_relative_std(self):
        stats = summarize([9.0, 11.0])
        assert stats.relative_std == pytest.approx(stats.std / 10.0)

    def test_relative_std_zero_mean(self):
        assert summarize([-1.0, 1.0]).relative_std == 0.0

    def test_str_rendering(self):
        assert "n=2" in str(summarize([1.0, 2.0]))

    def test_zero_variance(self):
        """Identical repeats: a plain zero std, not NaN from rounding."""
        stats = summarize([3.7] * 5)
        assert stats.mean == 3.7
        assert stats.std == 0.0
        assert stats.relative_std == 0.0
        assert not math.isnan(stats.std)

    def test_single_sample_relative_std(self):
        # one repeat: std is defined as 0, so relative_std must not divide
        # by a zero-sample count or return NaN
        stats = summarize([0.0])
        assert stats.std == 0.0
        assert stats.relative_std == 0.0


@given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=100))
def test_bounds_hold(samples):
    stats = summarize(samples)
    tolerance = 1e-9 * max(1.0, abs(stats.minimum), abs(stats.maximum))
    assert stats.minimum - tolerance <= stats.mean <= stats.maximum + tolerance
    assert stats.std >= 0.0
    assert len(stats.samples) == len(samples)
