"""Unit tests for measurement statistics."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.stats import p50, p95, p99, percentile, summarize


class TestSummarize:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_single_sample(self):
        stats = summarize([5.0])
        assert stats.mean == 5.0
        assert stats.std == 0.0
        assert stats.minimum == stats.maximum == 5.0

    def test_known_values(self):
        stats = summarize([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0])
        assert stats.mean == pytest.approx(5.0)
        assert stats.std == pytest.approx(math.sqrt(32 / 7))
        assert stats.minimum == 2.0
        assert stats.maximum == 9.0

    def test_relative_std(self):
        stats = summarize([9.0, 11.0])
        assert stats.relative_std == pytest.approx(stats.std / 10.0)

    def test_relative_std_zero_mean(self):
        assert summarize([-1.0, 1.0]).relative_std == 0.0

    def test_str_rendering(self):
        assert "n=2" in str(summarize([1.0, 2.0]))

    def test_zero_variance(self):
        """Identical repeats: a plain zero std, not NaN from rounding."""
        stats = summarize([3.7] * 5)
        assert stats.mean == 3.7
        assert stats.std == 0.0
        assert stats.relative_std == 0.0
        assert not math.isnan(stats.std)

    def test_single_sample_relative_std(self):
        # one repeat: std is defined as 0, so relative_std must not divide
        # by a zero-sample count or return NaN
        stats = summarize([0.0])
        assert stats.std == 0.0
        assert stats.relative_std == 0.0


@given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=100))
def test_bounds_hold(samples):
    stats = summarize(samples)
    tolerance = 1e-9 * max(1.0, abs(stats.minimum), abs(stats.maximum))
    assert stats.minimum - tolerance <= stats.mean <= stats.maximum + tolerance
    assert stats.std >= 0.0
    assert len(stats.samples) == len(samples)


class TestPercentile:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            percentile([], 50.0)

    def test_out_of_range_q_rejected(self):
        with pytest.raises(ValueError):
            percentile([1.0], -0.1)
        with pytest.raises(ValueError):
            percentile([1.0], 100.1)

    def test_single_sample_is_every_percentile(self):
        for q in (0.0, 37.0, 50.0, 95.0, 100.0):
            assert percentile([4.2], q) == 4.2

    def test_extremes(self):
        values = [5.0, 1.0, 3.0]
        assert percentile(values, 0.0) == 1.0
        assert percentile(values, 100.0) == 5.0

    def test_median_odd(self):
        assert percentile([9.0, 1.0, 5.0], 50.0) == 5.0

    def test_median_even_interpolates(self):
        assert percentile([1.0, 2.0, 3.0, 4.0], 50.0) == pytest.approx(2.5)

    def test_linear_interpolation(self):
        # rank = 0.75 * (3 - 1) = 1.5 -> halfway between 20 and 30
        assert percentile([10.0, 20.0, 30.0], 75.0) == pytest.approx(25.0)

    def test_input_order_irrelevant_and_unmodified(self):
        values = [3.0, 1.0, 2.0]
        assert percentile(values, 50.0) == 2.0
        assert values == [3.0, 1.0, 2.0]

    def test_shorthands(self):
        values = list(range(101))  # 0..100: p-th percentile is p exactly
        assert p50(values) == 50.0
        assert p95(values) == 95.0
        assert p99(values) == 99.0

    @given(
        st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=60),
        st.floats(min_value=0.0, max_value=100.0),
    )
    def test_percentile_within_bounds_and_monotone(self, samples, q):
        value = percentile(samples, q)
        assert min(samples) <= value <= max(samples)
        assert percentile(samples, 0.0) <= value <= percentile(samples, 100.0)
