"""Unit tests for unit conversions and formatting."""

import pytest

from repro.util.units import (
    bits_to_bytes,
    bytes_to_bits,
    format_bytes,
    format_rate,
    gbps,
    mbps,
    rate_bps,
)
from repro.util import units


class TestConversions:
    def test_bits_bytes_roundtrip(self):
        assert bits_to_bytes(bytes_to_bits(123.0)) == pytest.approx(123.0)

    def test_mbps(self):
        # 920 Mbps = 115 MB/s
        assert mbps(920) == pytest.approx(115e6)

    def test_gbps(self):
        # 1.4 Gbps torus link = 175 MB/s
        assert gbps(1.4) == pytest.approx(175e6)

    def test_rate_bps_inverts_mbps(self):
        assert rate_bps(mbps(920)) == pytest.approx(920e6)

    def test_rate_mbps(self):
        assert units.rate_mbps(mbps(345)) == pytest.approx(345)


class TestFormatting:
    def test_format_bytes_scales(self):
        assert format_bytes(3_000_000) == "3 MB"
        assert format_bytes(1_000) == "1 KB"
        assert format_bytes(12) == "12 B"
        assert format_bytes(2_500_000_000) == "2.5 GB"

    def test_format_rate_uses_bits(self):
        assert format_rate(mbps(920)) == "920 Mbps"
        assert format_rate(gbps(1.4)) == "1.4 Gbps"
        assert format_rate(100) == "800 bps"
