"""Benchmark: regenerate Figure 8 (merge bandwidth by node selection).

Runs the buffer sweep for the sequential (through a busy intermediate
co-processor) and balanced node selections, with single and double
buffering, prints the figure's series, and asserts the published shape.
"""

import pytest

from repro.core.experiments import run_fig6, run_fig8

BUFFER_SIZES = (1000, 2000, 5000, 10_000, 50_000, 200_000, 1_000_000)


@pytest.fixture(scope="module")
def fig8_result():
    return run_fig8(buffer_sizes=BUFFER_SIZES, repeats=3, target_buffers=600)


def test_fig8_regenerates(benchmark, fig8_result):
    result = benchmark.pedantic(
        lambda: run_fig8(buffer_sizes=(200_000,), repeats=3, target_buffers=600),
        iterations=1,
        rounds=3,
    )
    assert result.balanced_advantage() > 1.3


def test_fig8_shape_holds(fig8_result):
    print()
    print(fig8_result.format_table())
    # (1) Bandwidth depends highly on node allocation: balanced wins by
    #     up to ~60% (paper section 5).
    advantage = fig8_result.balanced_advantage(double_buffering=True)
    assert 1.4 <= advantage <= 1.9
    # (2) Double buffering is less significant than for point-to-point.
    fig6 = run_fig6(buffer_sizes=(1_000_000,), repeats=3, target_buffers=600)
    p2p_gain = fig6.optimum(True).mbps / fig6.optimum(False).mbps
    merge_single = fig8_result.best(True, False).mbps
    merge_double = fig8_result.best(True, True).mbps
    assert merge_double / merge_single < p2p_gain
    # (3) Buffers below 10K are much slower for merging than larger ones.
    balanced = {p.buffer_bytes: p.mbps for p in fig8_result.curve(True, True)}
    assert balanced[1000] < 0.5 * balanced[200_000]
    assert balanced[2000] < 0.7 * balanced[200_000]
