"""Micro-benchmarks of the library's hot components.

Not paper figures — these track the performance of the substrate itself:
the DES kernel's event throughput (on *both* scheduler backends, side by
side), marshaling, SCSQL parsing/compilation, and a small end-to-end
query.  Useful for catching performance regressions when extending the
engine, and for seeing exactly what the calendar queue buys on each
workload shape.
"""


import pytest

from repro.engine.marshal import StreamDemarshaller, StreamMarshaller
from repro.engine.objects import SyntheticArray
from repro.scsql.compiler import QueryCompiler
from repro.scsql.parser import parse_query
from repro.scsql.session import SCSQSession
from repro.sim import SCHEDULERS, Resource, Simulator, Store, Timeout

#: Both kernel backends, benchmarked side by side on every kernel-shaped
#: workload below (``pytest-benchmark`` groups the variants by test name).
BACKENDS = sorted(SCHEDULERS)

QUERY3 = """
select extract(c) from
bag of sp a, bag of sp b, sp c, integer n
where c=sp(streamof(sum(merge(b))), 'bg')
and b=spv(
  (select streamof(count(extract(p)))
   from sp p
   where p in a),
  'bg', inPset(1))
and a=spv(
  (select gen_array(3000000,100)
   from integer i where i in iota(1,n)),
  'be', 1)
and n=4;
"""


@pytest.mark.parametrize("backend", BACKENDS)
def test_kernel_event_throughput(benchmark, backend):
    """Producer/consumer ping-pong: ~4 events per item."""

    def run():
        sim = Simulator(scheduler=backend)
        store = Store(sim, capacity=8)

        def producer():
            for i in range(5000):
                yield store.put(i)

        def consumer():
            for _ in range(5000):
                yield store.get()

        sim.process(producer())
        sim.process(consumer())
        sim.run()
        return sim

    benchmark(run)


@pytest.mark.parametrize("backend", BACKENDS)
def test_kernel_resource_contention(benchmark, backend):
    """Many processes contending for one channel-like resource.

    This is the shape of the torus fast path: every hop is a request /
    hold / release cycle on a capacity-1 :class:`Resource`, with a waiter
    queue that is mostly non-empty.  Tracks the resource fast paths
    (inline succeed, deque waiters) the kernel optimizations target.
    """

    def run():
        sim = Simulator(scheduler=backend)
        channel = Resource(sim, capacity=1)

        def hopper():
            for _ in range(500):
                request = channel.request()
                yield request
                yield sim.timeout(1e-6)
                channel.release(request)

        for _ in range(16):
            sim.process(hopper())
        sim.run()
        return sim

    benchmark(run)


@pytest.mark.parametrize("backend", BACKENDS)
def test_kernel_synchronized_bursts(benchmark, backend):
    """Thousands of timers firing at shared instants: the calendar's case.

    Every period boundary is one bucket of ``streams`` simultaneous
    timeouts — the dominant access pattern of large stream deployments
    (and of the BENCH ``scale`` figure, which runs this shape at 4096
    streams).  The heap pays ``O(log n)`` per event here; the calendar
    queue pays ``O(1)`` and touches its time heap once per instant.
    """

    streams, ticks = 512, 20

    class Tick:
        __slots__ = ("sim", "remaining", "_cb")

        def __init__(self, sim, ticks):
            self.sim = sim
            self.remaining = ticks
            self._cb = self._fire
            Timeout(sim, 1.0).callbacks.append(self._cb)

        def _fire(self, event):
            remaining = self.remaining - 1
            if remaining:
                self.remaining = remaining
                Timeout(self.sim, 1.0).callbacks.append(self._cb)

    def run():
        sim = Simulator(scheduler=backend)
        for _ in range(streams):
            Tick(sim, ticks)
        sim.run()
        assert sim.events_dispatched == streams * ticks
        return sim

    benchmark(run)


def test_marshal_roundtrip_throughput(benchmark):
    """Fragmenting 3 MB arrays into 64 KB buffers and reassembling."""

    arrays = [SyntheticArray(nbytes=3_000_000, sequence=i) for i in range(10)]

    def run():
        marshaller = StreamMarshaller("s", "src", 65536)
        demarshaller = StreamDemarshaller()
        out = []
        for array in arrays:
            for buffer in marshaller.add(array):
                out.extend(demarshaller.accept(buffer))
        tail = marshaller.flush()
        if tail:
            out.extend(demarshaller.accept(tail))
        assert len(out) == len(arrays)

    benchmark(run)


def test_scsql_parse_speed(benchmark):
    """Parsing the paper's Query 3 text."""
    result = benchmark(lambda: parse_query(QUERY3))
    assert len(result.conditions) == 4


def test_scsql_compile_speed(benchmark):
    """Parse + compile Query 3 to a 9-process graph on a fresh environment."""
    from repro.hardware.environment import Environment, EnvironmentConfig

    def run():
        compiler = QueryCompiler(Environment(EnvironmentConfig()))
        return compiler.compile_select(parse_query(QUERY3))

    graph = benchmark(run)
    assert len(graph.sps) == 9


def test_end_to_end_small_query(benchmark):
    """Full pipeline: parse, compile, deploy, simulate, collect."""

    def run():
        session = SCSQSession()
        report = session.execute(
            "select extract(b) from sp a, sp b "
            "where b=sp(count(extract(a)), 'bg', 0) "
            "and a=sp(gen_array(100000,10), 'bg', 1);"
        )
        assert report.scalar_result == 10

    benchmark(run)
