"""Benchmark: regenerate Figure 6 (intra-BG point-to-point bandwidth).

Runs the full buffer-size sweep for single and double buffering, prints the
figure's series, and asserts the published shape:

* optimum at 1000 bytes for both buffering modes,
* degradation below (packet padding) and above (cache misses) the knee,
* double buffering paying off for large buffers.
"""

import pytest

from repro.core.experiments import run_fig6

BUFFER_SIZES = (100, 200, 500, 1000, 2000, 5000, 10_000, 50_000, 200_000, 1_000_000)


@pytest.fixture(scope="module")
def fig6_result():
    return run_fig6(buffer_sizes=BUFFER_SIZES, repeats=3, target_buffers=800)


def test_fig6_regenerates(benchmark, fig6_result):
    result = benchmark.pedantic(
        lambda: run_fig6(buffer_sizes=(1000,), repeats=3, target_buffers=800),
        iterations=1,
        rounds=3,
    )
    assert result.optimum(True).buffer_bytes == 1000


def test_fig6_shape_holds(fig6_result):
    print()
    print(fig6_result.format_table())
    # Optimal buffer size is 1000 bytes for both modes.
    assert fig6_result.optimum(False).buffer_bytes == 1000
    assert fig6_result.optimum(True).buffer_bytes == 1000
    single = {p.buffer_bytes: p.mbps for p in fig6_result.curve(False)}
    double = {p.buffer_bytes: p.mbps for p in fig6_result.curve(True)}
    # Rising left flank, dropping right flank.
    assert single[100] < single[500] < single[1000]
    assert double[100] < double[500] < double[1000]
    assert single[5000] < single[1000]
    assert double[5000] < double[1000]
    # Double buffering pays off for large buffers...
    assert double[1_000_000] > 1.15 * single[1_000_000]
    # ...but not for small ones.
    assert double[100] < 1.1 * single[100]
