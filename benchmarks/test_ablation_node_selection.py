"""Benchmark ablation: naive vs knowledge-based automatic node selection.

The paper's conclusions: "We are currently experimenting with refinements
of the node selection algorithm for the BlueGene based on the results of
this paper."  This ablation quantifies that refinement: the same inbound
workload with *no* allocation sequences, placed by the naive next-available
selector versus the knowledge-based selector built from observations (1)
and (3) — spread BlueGene receivers over psets, co-locate back-end senders.
"""

import pytest

from repro.core.experiments import run_node_selection_ablation


@pytest.fixture(scope="module")
def ablation_result():
    return run_node_selection_ablation(
        stream_counts=(2, 4, 6, 8), repeats=3, count=5
    )


def test_node_selection_regenerates(benchmark):
    result = benchmark.pedantic(
        lambda: run_node_selection_ablation(stream_counts=(4,), repeats=3, count=5),
        iterations=1,
        rounds=3,
    )
    assert result.improvement(4) > 2.0


def test_knowledge_based_selection_wins(ablation_result):
    print()
    print(ablation_result.format_table())
    for n in (2, 4, 6, 8):
        assert ablation_result.improvement(n) > 1.5
    # The gain is largest exactly where naive placement funnels everything
    # through one I/O node from many hosts.
    assert ablation_result.improvement(4) > 5.0
