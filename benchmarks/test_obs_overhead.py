"""Observability overhead: kernel throughput with and without instrumentation.

The contract is near-zero cost when disabled — every hook site is one
attribute check on the shared null hub.  These benchmarks quantify it, and
show what enabling metrics or full tracing costs (which is allowed to be
substantial: it is opt-in).
"""

from repro.core.experiments.fig6 import point_to_point_query
from repro.core.measurement import measure_query_bandwidth
from repro.engine.settings import ExecutionSettings
from repro.obs import Instrumentation
from repro.obs.flow import NULL_FLOWS
from repro.obs.tracer import NULL_TRACER
from repro.sim import Resource, Simulator, Store

ITEMS = 5000


def _pingpong(sim):
    store = Store(sim, capacity=8, name="box")
    device = Resource(sim, capacity=1, name="dev")

    def producer():
        for i in range(ITEMS):
            yield store.put(i)

    def consumer():
        for _ in range(ITEMS):
            yield store.get()
            if _ % 100 == 0:
                with device.request() as req:
                    yield req
                    yield sim.timeout(0.001)

    sim.process(producer())
    sim.process(consumer())
    sim.run()
    return sim


def test_kernel_throughput_uninstrumented(benchmark):
    """Baseline: the shared NULL_OBS hub (the default on every simulator)."""
    benchmark(lambda: _pingpong(Simulator()))


def test_kernel_throughput_metrics_only(benchmark):
    """Metrics enabled, tracing off — the cheap always-on-able mode."""
    benchmark(lambda: _pingpong(Simulator(obs=Instrumentation(tracer=NULL_TRACER))))


def test_kernel_throughput_full_tracing(benchmark):
    """Metrics plus a full timeline trace — the heavyweight opt-in."""
    benchmark(lambda: _pingpong(Simulator(obs=Instrumentation())))


# ----------------------------------------------------------------------
# Flow-tracing overhead (PR 2): the flow hooks live in the engine drivers
# and network models, so they are exercised with a real query run, not a
# kernel ping-pong.  Disabled flows must stay within noise of PR 1's
# metrics-only instrumentation: each hook site is one attribute access
# plus a falsy ``enabled`` check on the shared NULL_FLOWS singleton.
# ----------------------------------------------------------------------
def _measured_query(obs_factory):
    return measure_query_bandwidth(
        point_to_point_query(20_000, 8),
        payload_bytes=20_000 * 8,
        settings=ExecutionSettings(mpi_buffer_bytes=20_000),
        repeats=1,
        obs_factory=obs_factory,
    )


def test_query_uninstrumented(benchmark):
    """Baseline: no Instrumentation at all (NULL_OBS hub)."""
    benchmark(lambda: _measured_query(None))


def test_query_metrics_flows_disabled(benchmark):
    """PR-1 shape: metrics on, flow tracing explicitly off.

    Comparing against ``test_query_flows_enabled`` isolates the cost of
    the recorder itself; comparing against ``test_query_uninstrumented``
    bounds the cost of the disabled hooks.
    """
    benchmark(lambda: _measured_query(
        lambda _k: Instrumentation(tracer=NULL_TRACER, flows=NULL_FLOWS)
    ))


def test_query_flows_enabled(benchmark):
    """Full flow tracing: per-hop records on every buffer (opt-in)."""
    benchmark(lambda: _measured_query(
        lambda _k: Instrumentation(tracer=NULL_TRACER)
    ))


# ----------------------------------------------------------------------
# Live-telemetry overhead (PR 7): the sampler piggybacks on on_step, so
# even *enabled* it schedules zero simulation events; disabled it is one
# `live.enabled` attribute check on the shared NULL_LIVE singleton,
# inside the hooks the earlier rows already measure.  The functional
# zero-extra-events guarantee is pinned in tests/obs/test_live.py;
# these rows quantify the wall-time side: metrics-only (live disabled)
# must sit within noise of the PR-1 metrics row, and the enabled
# sampler's cost scales with windows closed, not events processed.
# ----------------------------------------------------------------------
def _live_sampler():
    from repro.obs.live import LiveSampler

    return LiveSampler(window=0.002)


def test_kernel_throughput_live_disabled(benchmark):
    """Metrics hub with the null live sampler (the default): the new
    `live.enabled` check must not move the metrics-only row."""
    benchmark(lambda: _pingpong(
        Simulator(obs=Instrumentation(tracer=NULL_TRACER, flows=NULL_FLOWS))
    ))


def test_query_live_sampler_enabled(benchmark):
    """Windowed sampling + P2 sketches on every completed flow (opt-in)."""
    benchmark(lambda: _measured_query(
        lambda _k: Instrumentation(tracer=NULL_TRACER, live=_live_sampler())
    ))
