"""Observability overhead: kernel throughput with and without instrumentation.

The contract is near-zero cost when disabled — every hook site is one
attribute check on the shared null hub.  These benchmarks quantify it, and
show what enabling metrics or full tracing costs (which is allowed to be
substantial: it is opt-in).
"""

from repro.obs import Instrumentation
from repro.obs.tracer import NULL_TRACER
from repro.sim import Resource, Simulator, Store

ITEMS = 5000


def _pingpong(sim):
    store = Store(sim, capacity=8, name="box")
    device = Resource(sim, capacity=1, name="dev")

    def producer():
        for i in range(ITEMS):
            yield store.put(i)

    def consumer():
        for _ in range(ITEMS):
            yield store.get()
            if _ % 100 == 0:
                with device.request() as req:
                    yield req
                    yield sim.timeout(0.001)

    sim.process(producer())
    sim.process(consumer())
    sim.run()
    return sim


def test_kernel_throughput_uninstrumented(benchmark):
    """Baseline: the shared NULL_OBS hub (the default on every simulator)."""
    benchmark(lambda: _pingpong(Simulator()))


def test_kernel_throughput_metrics_only(benchmark):
    """Metrics enabled, tracing off — the cheap always-on-able mode."""
    benchmark(lambda: _pingpong(Simulator(obs=Instrumentation(tracer=NULL_TRACER))))


def test_kernel_throughput_full_tracing(benchmark):
    """Metrics plus a full timeline trace — the heavyweight opt-in."""
    benchmark(lambda: _pingpong(Simulator(obs=Instrumentation())))
