"""Benchmark: the cost-based optimizer against the placement baselines.

The endgame of the paper: its measurements exist so that node selection
can be automated.  This bench compares three automatic placers on
workloads with *no* user allocation sequences:

* **naive** — the paper's baseline, next available node;
* **knowledge** — hand-coded rules from the paper's observations;
* **cost-based** — the :class:`~repro.optimizer.CostBasedPlacer`, searching
  placements with the analytic model of the calibrated substrate.

The cost-based placer should match the hand-coded rules on the inbound
workload (it rediscovers Query 5's topology) and beat naive on the
intra-BlueGene merge workload, where the rules of thumb do not apply.
"""

import pytest

from repro.coordinator import ClientManager, CoordinatorRegistry
from repro.coordinator.allocation import KnowledgeBasedSelector
from repro.core.experiments.ablations import automatic_inbound_query
from repro.engine import ExecutionSettings
from repro.hardware import Environment
from repro.optimizer import CostBasedPlacer
from repro.scsql.compiler import QueryCompiler
from repro.scsql.parser import parse_query

MERGE_QUERY = """
select extract(c)
from sp a, sp b, sp c
where c=sp(count(merge({a,b})), 'bg')
and a=sp(gen_array(200000,15), 'bg')
and b=sp(gen_array(200000,15), 'bg');
"""
MERGE_PAYLOAD = 2 * 200_000 * 15

INBOUND_N = 4
INBOUND_QUERY = automatic_inbound_query(INBOUND_N, 3_000_000, 5)
INBOUND_PAYLOAD = INBOUND_N * 3_000_000 * 5


def run_query(text, payload, placer_kind, settings):
    env = Environment()
    graph = QueryCompiler(env).compile_select(parse_query(text))
    coordinators = None
    if placer_kind == "knowledge":
        coordinators = CoordinatorRegistry(env, KnowledgeBasedSelector())
    elif placer_kind == "cost":
        CostBasedPlacer(env, settings).place(graph)
    report = ClientManager(env, coordinators).execute(graph, settings)
    return payload * 8 / report.duration / 1e6


@pytest.fixture(scope="module")
def results():
    table = {}
    merge_settings = ExecutionSettings(mpi_buffer_bytes=100_000)
    inbound_settings = ExecutionSettings()
    for placer in ("naive", "knowledge", "cost"):
        table[("merge", placer)] = run_query(
            MERGE_QUERY, MERGE_PAYLOAD, placer, merge_settings
        )
        table[("inbound", placer)] = run_query(
            INBOUND_QUERY, INBOUND_PAYLOAD, placer, inbound_settings
        )
    return table


def test_optimizer_regenerates(benchmark):
    settings = ExecutionSettings(mpi_buffer_bytes=100_000)
    value = benchmark.pedantic(
        lambda: run_query(MERGE_QUERY, MERGE_PAYLOAD, "cost", settings),
        iterations=1,
        rounds=3,
    )
    assert value > 0


def test_optimizer_comparison(results):
    print()
    print("Automatic placement comparison (Mbps):")
    print(f"{'workload':>10}  {'naive':>8}  {'knowledge':>10}  {'cost-based':>11}")
    for workload in ("merge", "inbound"):
        print(
            f"{workload:>10}  {results[(workload, 'naive')]:>8.1f}  "
            f"{results[(workload, 'knowledge')]:>10.1f}  "
            f"{results[(workload, 'cost')]:>11.1f}"
        )
    # Inbound: the search matches the hand-coded knowledge rules.
    assert results[("inbound", "cost")] > 0.95 * results[("inbound", "knowledge")]
    assert results[("inbound", "cost")] > 5 * results[("inbound", "naive")]
    # Merge: the rules of thumb don't cover torus adjacency; the search does.
    assert results[("merge", "cost")] > 1.1 * results[("merge", "naive")]
    assert results[("merge", "cost")] >= 0.95 * results[("merge", "knowledge")]
