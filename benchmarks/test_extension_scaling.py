"""Benchmark extension: inbound scaling with partition size (future work).

Answers the paper's open question (section 5): "It remains to be
investigated what happens for large amounts of back-end and I/O nodes."
"""

import pytest

from repro.core.experiments import run_scaling_study


@pytest.fixture(scope="module")
def study():
    return run_scaling_study(repeats=3, array_count=4)


def test_scaling_regenerates(benchmark):
    result = benchmark.pedantic(
        lambda: run_scaling_study(
            partitions=(((4, 4, 2), 4),), uplinks_gbps=(1.0,), repeats=2, array_count=4
        ),
        iterations=1,
        rounds=3,
    )
    assert result.at(5, 4, 1.0).mbps > 800


def test_scaling_conclusions_hold(study):
    print()
    print(study.format_table())
    # With the testbed's 1 Gbps uplink, the shared switch port is the
    # ceiling: Query 5 stays flat no matter how many I/O nodes exist.
    q5_1g = [study.at(5, size, 1.0).mbps for size in (4, 8, 16)]
    assert max(q5_1g) < 1.05 * min(q5_1g)
    # The spread-host topology (Q6) gets *worse* with partition size at
    # 1 Gbps: more distinct hosts, more ingress coordination overhead —
    # the paper's co-location advice matters more at scale, not less.
    assert study.at(6, 16, 1.0).mbps < study.at(6, 4, 1.0).mbps
    # A 10x uplink removes the ceiling: Q6 then scales with the partition
    # (parallel back-end NICs + parallel I/O nodes), while Q5 stays pinned
    # at its single back-end NIC.
    assert study.at(6, 16, 10.0).mbps > 3 * study.at(6, 4, 10.0).mbps
    assert study.at(5, 16, 10.0).mbps < 1.1 * study.at(5, 4, 10.0).mbps
