"""Benchmark ablation: optimal buffer size per communication pattern.

Paper section 5: "The optimal stream buffer size for MPI communication
inside BlueGene was highly dependent on whether point-to-point or merging
stream communication was performed.  In general, the buffer should be much
larger in the case of stream merging."
"""

import pytest

from repro.core.experiments import run_buffer_choice_ablation

BUFFER_SIZES = (500, 1000, 2000, 10_000, 100_000, 1_000_000)


@pytest.fixture(scope="module")
def ablation_result():
    return run_buffer_choice_ablation(buffer_sizes=BUFFER_SIZES, repeats=3)


def test_buffer_choice_regenerates(benchmark):
    result = benchmark.pedantic(
        lambda: run_buffer_choice_ablation(buffer_sizes=(1000, 100_000), repeats=3),
        iterations=1,
        rounds=3,
    )
    assert result.optimal_buffer("p2p") == 1000


def test_patterns_want_different_buffers(ablation_result):
    print()
    print(ablation_result.format_table())
    assert ablation_result.optimal_buffer("p2p") == 1000
    assert ablation_result.optimal_buffer("merge") >= 10_000
    # The merge penalty of small buffers is dramatic, not marginal.
    merge = ablation_result.merge
    assert merge[1000].mean_mbps < 0.5 * merge[100_000].mean_mbps
