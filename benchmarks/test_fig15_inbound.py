"""Benchmark: regenerate Figure 15 (inbound streaming, Queries 1-6).

Sweeps the number of parallel back-end streams for all six inbound
topologies, prints the figure's series, and asserts the five published
observations of section 3.2.
"""

import pytest

from repro.core.experiments import run_fig15

STREAM_COUNTS = (1, 2, 3, 4, 5, 6, 7, 8)


@pytest.fixture(scope="module")
def fig15_result():
    return run_fig15(stream_counts=STREAM_COUNTS, repeats=3, array_count=5)


def test_fig15_regenerates(benchmark):
    result = benchmark.pedantic(
        lambda: run_fig15(stream_counts=(4,), queries=(5,), repeats=3, array_count=5),
        iterations=1,
        rounds=3,
    )
    assert result.at(5, 4).mbps > 800


def test_fig15_shape_holds(fig15_result):
    result = fig15_result
    print()
    print(result.format_table())
    # (1) Queries 1-4 use one I/O node and are far below Queries 5-6.
    for q in (1, 2, 3, 4):
        for n in (3, 4, 5, 8):
            assert result.at(q, n).mbps < 0.5 * result.at(5, n).mbps
    # (2) Queries 3/4 slightly better than 1/2 at small n; no further gain
    #     from more receiving compute nodes once the I/O node binds.
    assert result.at(3, 2).mbps > 1.05 * result.at(1, 2).mbps
    assert result.at(4, 2).mbps >= 0.99 * result.at(2, 2).mbps
    # (3) Query 5 peaks at ~920 Mbps; n=4 is at (or within noise of) the
    #     peak — n=8 recovers to the same NIC-bound plateau.
    peak = result.peak(5)
    assert 850 <= peak.mbps <= 960
    assert result.at(5, 4).mbps >= 0.98 * peak.mbps
    assert result.at(5, 4).mbps > 1.1 * result.at(6, 4).mbps
    # (4) Query 1 beats Query 2 (co-locating back-end senders wins).
    for n in (2, 3, 4, 5, 8):
        assert result.at(1, n).mbps > 1.1 * result.at(2, n).mbps
    # (5) Query 5 dips at n=5: compute nodes start sharing I/O nodes.
    assert result.at(5, 5).mbps < 0.9 * result.at(5, 4).mbps
