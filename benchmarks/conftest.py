"""Benchmark suite configuration: everything here is marked ``slow``.

The benchmarks are excluded from quick test runs with ``-m "not slow"``
(CI runs the tier-1 tests that way); run them explicitly with
``pytest benchmarks``.
"""

import pytest


def pytest_collection_modifyitems(items):
    for item in items:
        item.add_marker(pytest.mark.slow)
