"""Benchmark extension: mini Linear Road throughput vs parallelism.

The paper's future work (§5): evaluate with "benchmarks such as The Linear
Road Benchmark" and "analyze the performance of continuous queries
involving expensive functions".  This bench runs the per-segment
congestion pipeline at increasing segment parallelism and reports report-
processing throughput, verifying the toll results against the reference
computation at every scale.
"""

import pytest

from repro.scsql.session import SCSQSession
from repro.workloads.linear_road import (
    CONGESTION_SPEED,
    Accident,
    expected_congested_windows,
    partition_by_segment,
    position_reports,
    segment_speeds,
)

WINDOW = 20
TICKS = 200
VEHICLES_PER_SEGMENT = 6


def run_pipeline(n_segments: int) -> dict:
    reports = position_reports(
        VEHICLES_PER_SEGMENT * n_segments,
        n_segments,
        TICKS,
        seed=11,
        accident=Accident(segment=0, start_tick=40, end_tick=160),
    )
    partitions = partition_by_segment(reports, n_segments)
    for segment, rows in partitions.items():
        speeds = segment_speeds(rows)
        SCSQSession.register_source(f"lr-seg-{segment}", lambda s=speeds: iter(s))
    decls = ", ".join(f"sp s{i}" for i in range(n_segments))
    conjuncts = " and ".join(
        f"s{i}=sp(below(winagg(receiver('lr-seg-{i}'), 'avg', {WINDOW}, {WINDOW}),"
        f" {CONGESTION_SPEED}), 'bg', psetrr())"
        for i in range(n_segments)
    )
    merge_set = "{" + ", ".join(f"s{i}" for i in range(n_segments)) + "}"
    query = f"select merge({merge_set}) from {decls} where {conjuncts};"
    try:
        report = SCSQSession().execute(query)
    finally:
        for segment in range(n_segments):
            SCSQSession.unregister_source(f"lr-seg-{segment}")
    expected = sum(
        expected_congested_windows(segment_speeds(rows), WINDOW)
        for rows in partitions.values()
    )
    return {
        "tolls": len(report.result),
        "expected": expected,
        "reports": len(reports),
        "duration": report.duration,
    }


@pytest.fixture(scope="module")
def sweep():
    return {n: run_pipeline(n) for n in (1, 2, 4, 8)}


def test_linear_road_regenerates(benchmark):
    result = benchmark.pedantic(lambda: run_pipeline(4), iterations=1, rounds=3)
    assert result["tolls"] == result["expected"]


def test_linear_road_scaling(sweep):
    print()
    print("Mini Linear Road: congestion pipeline throughput")
    print(f"{'segments':>9}  {'reports':>8}  {'tolls':>6}  {'ms':>8}  {'reports/s':>12}")
    for n, row in sweep.items():
        rate = row["reports"] / row["duration"]
        print(
            f"{n:>9}  {row['reports']:>8}  {row['tolls']:>6}  "
            f"{row['duration'] * 1e3:>8.2f}  {rate:>12.0f}"
        )
        # Correctness at every scale.
        assert row["tolls"] == row["expected"]
        assert row["tolls"] > 0  # the accident must be detected
    # Parallel segments process a proportionally larger report volume in
    # comparable time: throughput grows with parallelism.
    rate_1 = sweep[1]["reports"] / sweep[1]["duration"]
    rate_8 = sweep[8]["reports"] / sweep[8]["duration"]
    assert rate_8 > 3 * rate_1
