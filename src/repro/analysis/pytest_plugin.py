"""Pytest integration of the dynamic sanitizers.

Two opt-in modes, registered on the test suite by the repository's root
``conftest.py``:

* ``--sanitize`` — every test runs inside a
  :func:`repro.analysis.sanitize.sanitizer` scope: each
  ``Deployment.teardown()`` / ``Deployer.migrate()`` the test triggers is
  audited for leaks, and a test whose scope ends with findings **fails**
  with the ``SANxxx`` report.  Deployments torn down while their simulator
  still had queued events get their liveness audit at test end, and only
  if the queue drained by then — a test may legitimately abandon a
  half-run simulation.  Mark a test ``@pytest.mark.no_sanitize`` to exempt
  it (e.g. tests that construct deliberately-leaky wreckage).

* ``--chaos-seed N`` — tests marked ``@pytest.mark.chaos`` run under
  :func:`repro.analysis.sanitize.chaos`: every default-configured
  simulator they build gets a seeded
  :class:`~repro.sim.scheduler.ShuffleScheduler` and the order-independent
  :class:`~repro.net.jitter.KeyedJitter`.  Chaos-marked tests assert
  seed-independence of their own results, so running the suite under
  several ``--chaos-seed`` values (CI does 3) is a schedule-race sweep.

Both modes compose: ``pytest --sanitize --chaos-seed 7``.
"""

from __future__ import annotations

from contextlib import ExitStack
from typing import Iterator

import pytest

from repro.analysis import sanitize

__all__ = ["pytest_addoption", "pytest_configure", "pytest_runtest_call"]


def pytest_addoption(parser: pytest.Parser) -> None:
    group = parser.getgroup("sanitize", "repro dynamic sanitizers")
    group.addoption(
        "--sanitize",
        action="store_true",
        default=False,
        help="audit every deployment teardown/migration for leaks "
        "(SAN2xx/SAN3xx) and fail tests whose sanitizer scope has findings",
    )
    group.addoption(
        "--chaos-seed",
        type=int,
        default=None,
        metavar="N",
        help="run @pytest.mark.chaos tests under ShuffleScheduler(N) and "
        "keyed jitter (same-instant event order permuted)",
    )


def pytest_configure(config: pytest.Config) -> None:
    config.addinivalue_line(
        "markers",
        "chaos: replay this test under the chaos scheduler when "
        "--chaos-seed is given",
    )
    config.addinivalue_line(
        "markers",
        "no_sanitize: exempt this test from the --sanitize leak audit "
        "(it builds deliberately-leaky state)",
    )


@pytest.hookimpl(wrapper=True)
def pytest_runtest_call(item: pytest.Item) -> Iterator[None]:
    chaos_seed = item.config.getoption("--chaos-seed")
    apply_chaos = (
        chaos_seed is not None
        and item.get_closest_marker("chaos") is not None
    )
    apply_sanitizer = (
        item.config.getoption("--sanitize")
        and item.get_closest_marker("no_sanitize") is None
        # A nested scope (a test exercising the sanitizer itself) would
        # refuse to start; such tests audit themselves already.
        and not sanitize.enabled()
    )
    scope = None
    with ExitStack() as stack:
        if apply_chaos:
            stack.enter_context(sanitize.chaos(chaos_seed))
        if apply_sanitizer:
            scope = stack.enter_context(
                sanitize.sanitizer(label=item.nodeid, strict=False)
            )
        result = yield
    if scope is not None and not scope.report.ok():
        pytest.fail(
            "sanitizer findings:\n" + scope.report.format_text(),
            pytrace=False,
        )
    return result
