"""Static analysis of compiled queries and of the simulator's own code.

Two halves:

* :mod:`repro.analysis.verifier` — proves a compiled
  :class:`~repro.scsql.plan.DeploymentPlan` deployable (or rejects it with
  coded diagnostics) by replaying placement against a CNDB snapshot, and
  warns where the cost model shows a topology link-bound.
* :mod:`repro.analysis.lint` — AST lints keeping the simulation kernel
  deterministic (no wall clock, no global RNG, no set-order dependence,
  ``__slots__`` events, guarded obs hooks).

Entry points: ``Deployer.verify(plan)``, ``python -m repro analyze``, and
``python -m repro.analysis.lint``.
"""

from repro.analysis.diagnostics import (
    CATALOG,
    AnalysisReport,
    Diagnostic,
    PlanVerificationError,
    Severity,
)
from repro.analysis.snapshot import EnvironmentSnapshot
from repro.analysis.verifier import PlanVerifier, verify_plan

__all__ = [
    "AnalysisReport",
    "CATALOG",
    "Diagnostic",
    "EnvironmentSnapshot",
    "PlanVerificationError",
    "PlanVerifier",
    "Severity",
    "verify_plan",
]
