"""Determinism and correctness lints for the simulation kernel.

The DES substrate must be bit-reproducible: two runs with the same seed
must schedule the same events in the same order.  The lints below catch
the ways that property has historically been lost in stream-processing
simulators — wall-clock reads, unseeded global randomness, iteration over
unordered sets — plus two kernel-hygiene rules (``__slots__`` on event
classes, observability hooks outside their disabled-singleton guard).

Rules (``DET00x``):

* **DET001** — no wall-clock time sources (``time.time``,
  ``time.perf_counter``, ``time.monotonic``, ``datetime.now``, ...) in
  simulation code; simulated time comes from ``sim.now``.
* **DET002** — no module-level/global randomness (``random.random``,
  ``random.randint``, ...); use a seeded ``random.Random(seed)`` instance.
* **DET003** — no iteration over set displays or ``set()`` results; set
  iteration order is undefined across runs and Python builds.
* **DET004** — kernel classes must stay flat: *every* class in
  ``repro.sim`` (events, schedulers, resources, the simulator itself)
  and the snapshot/template classes of ``repro.hardware.environment``
  must declare ``__slots__`` (or ``@dataclass(slots=True)``); they are
  allocated per event / per fork and must not carry instance dicts.
* **DET005** — observability hook calls (``*.obs.on_*``, ``*.flows.*``)
  must be guarded by an ``if ....enabled`` test, so the disabled
  singleton costs nothing.
* **DET006** — listener lifecycle (anywhere in ``repro``): every
  ``add_listener()`` call must pass an ``owner=`` tag (the ``SAN206``
  leak census names leaks by owner), and a scope that subscribes a
  listener must somewhere call ``remove_listener()``.  Deliberate
  environment-lifetime subscriptions suppress the rule with a comment.
* **DET007** — no reliance on raw scheduler internals (``_heap``,
  ``_buckets``, ``_times``...) outside ``repro.sim``: same-instant
  bucket layout is backend-specific and permuted by the chaos
  scheduler, so reading it re-introduces exactly the schedule-order
  dependence the ``SAN101`` sanitizer exists to catch.

Run standalone (CI does)::

    python -m repro.analysis.lint [paths...] [--json]

Suppressions: ``# lint: disable=DET003`` on the offending line, or a
module-level ``# lint: disable-file=DET004`` anywhere in the file.
"""

from __future__ import annotations

import ast
import json
import re
import sys
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.diagnostics import Diagnostic, Severity

__all__ = ["LintRule", "RULES", "lint_file", "lint_paths", "main"]

#: Directories (relative to ``src/repro``) whose code is simulation-kernel
#: hot path and must stay deterministic.  ``hardware`` joined when the
#: snapshot/fork lifecycle made topology state part of the kernel proper.
HOT_PACKAGES = ("sim", "net", "engine", "hardware")

#: Individual modules outside the hot packages that sit on the
#: simulation's decision path and must obey the same determinism rules.
#: The adaptive controller steps the simulator and picks migration
#: victims — any nondeterminism there reorders every event after it.
HOT_MODULES = (("core", "adaptive.py"),)

#: Wall-clock attribute calls banned in hot packages (DET001).
WALL_CLOCK_CALLS = {
    ("time", "time"),
    ("time", "time_ns"),
    ("time", "perf_counter"),
    ("time", "perf_counter_ns"),
    ("time", "monotonic"),
    ("time", "monotonic_ns"),
    ("time", "process_time"),
    ("datetime", "now"),
    ("datetime", "utcnow"),
    ("date", "today"),
}

#: ``random``-module functions that consume the *global* (unseeded) RNG
#: (DET002).  ``random.Random(seed)`` instances are the sanctioned way.
GLOBAL_RANDOM_CALLS = {
    "random",
    "randint",
    "randrange",
    "uniform",
    "gauss",
    "choice",
    "choices",
    "shuffle",
    "sample",
    "seed",
}

_SUPPRESS_LINE = re.compile(r"#\s*lint:\s*disable=([A-Z0-9,\s]+)")
_SUPPRESS_FILE = re.compile(r"#\s*lint:\s*disable-file=([A-Z0-9,\s]+)")


def _parse_suppressions(source: str) -> Tuple[Set[str], Dict[int, Set[str]]]:
    """File-wide and per-line (1-based) rule suppressions from comments."""
    file_wide: Set[str] = set()
    per_line: Dict[int, Set[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_FILE.search(line)
        if match:
            file_wide |= {c.strip() for c in match.group(1).split(",") if c.strip()}
        match = _SUPPRESS_LINE.search(line)
        if match:
            codes = {c.strip() for c in match.group(1).split(",") if c.strip()}
            per_line.setdefault(lineno, set()).update(codes)
    return file_wide, per_line


class LintRule:
    """One lint rule: a code, a description, and an AST check.

    Subclasses override :meth:`check`, yielding ``(lineno, message)``
    pairs.  ``hot_path_only`` restricts a rule to the simulation-kernel
    packages (:data:`HOT_PACKAGES`).
    """

    code = "DET000"
    title = "abstract rule"
    hot_path_only = True

    def check(self, tree: ast.Module, path: Path) -> Iterable[Tuple[int, str]]:
        raise NotImplementedError

    def applies_to(self, path: Path) -> bool:
        if not self.hot_path_only:
            return True
        parts = path.parts
        if "repro" not in parts:
            return False
        rest = parts[parts.index("repro") + 1:]
        if not rest:
            return False
        return rest[0] in HOT_PACKAGES or tuple(rest) in HOT_MODULES


class WallClockRule(LintRule):
    code = "DET001"
    title = "wall-clock time source in simulation code"

    def check(self, tree: ast.Module, path: Path) -> Iterable[Tuple[int, str]]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and (func.value.id, func.attr) in WALL_CLOCK_CALLS
            ):
                yield (
                    node.lineno,
                    f"{func.value.id}.{func.attr}() reads the wall clock; "
                    "simulated time must come from sim.now",
                )


class GlobalRandomRule(LintRule):
    code = "DET002"
    title = "unseeded global randomness in simulation code"

    def check(self, tree: ast.Module, path: Path) -> Iterable[Tuple[int, str]]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id == "random"
                and func.attr in GLOBAL_RANDOM_CALLS
            ):
                yield (
                    node.lineno,
                    f"random.{func.attr}() consumes the global RNG; use a "
                    "seeded random.Random(seed) instance",
                )


class SetIterationRule(LintRule):
    code = "DET003"
    title = "iteration over an unordered set"

    @staticmethod
    def _is_set_expr(node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in ("set", "frozenset")
            # sorted(set(...)) etc. re-establish order; bare set() does not
        )

    def check(self, tree: ast.Module, path: Path) -> Iterable[Tuple[int, str]]:
        for node in ast.walk(tree):
            iters: List[ast.AST] = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                iters.extend(gen.iter for gen in node.generators)
            for it in iters:
                if self._is_set_expr(it):
                    yield (
                        it.lineno,
                        "iterating a set: order varies between runs/builds; "
                        "iterate a list/tuple or sort first",
                    )


class SlotsRule(LintRule):
    code = "DET004"
    title = "kernel class without __slots__"

    #: Every class in the kernel package is hot enough to require flat
    #: instances — events, schedulers, resources, the simulator.  In the
    #: hardware package only the fork-lifecycle classes qualify: snapshot
    #: and template instances are allocated per fork/snapshot.
    hot_path_only = True

    #: Hardware class-name suffixes covered by the rule.
    HARDWARE_SUFFIXES = ("Snapshot", "Template")

    def applies_to(self, path: Path) -> bool:
        parts = path.parts
        if "repro" not in parts:
            return False
        rest = parts[parts.index("repro") + 1:]
        return bool(rest) and rest[0] in ("sim", "hardware")

    @staticmethod
    def _declares_slots(cls: ast.ClassDef) -> bool:
        for stmt in cls.body:
            if isinstance(stmt, ast.Assign) and any(
                isinstance(t, ast.Name) and t.id == "__slots__"
                for t in stmt.targets
            ):
                return True
            if (
                isinstance(stmt, ast.AnnAssign)
                and isinstance(stmt.target, ast.Name)
                and stmt.target.id == "__slots__"
            ):
                return True
        # @dataclass(slots=True) synthesizes __slots__ at class creation.
        for deco in cls.decorator_list:
            if isinstance(deco, ast.Call) and any(
                kw.arg == "slots"
                and isinstance(kw.value, ast.Constant)
                and kw.value.value is True
                for kw in deco.keywords
            ):
                return True
        return False

    def _covers(self, cls: ast.ClassDef, package: str) -> bool:
        if package == "sim":
            # Exception subclasses carry a base-class __dict__ regardless;
            # __slots__ there is convention, not a memory win, so they are
            # exempt.
            return not any(
                isinstance(b, ast.Name) and b.id in ("Exception", "BaseException")
                for b in cls.bases
            )
        return cls.name.endswith(self.HARDWARE_SUFFIXES)

    def check(self, tree: ast.Module, path: Path) -> Iterable[Tuple[int, str]]:
        parts = path.parts
        package = parts[parts.index("repro") + 1]
        for cls in (n for n in ast.walk(tree) if isinstance(n, ast.ClassDef)):
            if not self._covers(cls, package):
                continue
            if not self._declares_slots(cls):
                noun = (
                    "kernel class" if package == "sim"
                    else "fork-lifecycle class"
                )
                yield (
                    cls.lineno,
                    f"{noun} {cls.name} has no __slots__ (or "
                    "dataclass slots=True); instances are allocated on the "
                    "hot path and must stay flat",
                )


class ObsGuardRule(LintRule):
    code = "DET005"
    title = "observability hook call outside its enabled-guard"

    @staticmethod
    def _is_obs_call(node: ast.Call) -> Optional[str]:
        """The rendered hook name when ``node`` is an obs hook call."""
        func = node.func
        if not isinstance(func, ast.Attribute):
            return None
        # *.obs.on_xxx(...) / obs.on_xxx(...)
        if func.attr.startswith("on_"):
            owner = func.value
            if isinstance(owner, ast.Attribute) and owner.attr in ("obs", "flows"):
                return f"{owner.attr}.{func.attr}"
            if isinstance(owner, ast.Name) and owner.id in ("obs", "flows"):
                return f"{owner.id}.{func.attr}"
        # *.flows.begin/advance/end(...)
        if func.attr in ("begin", "advance", "end"):
            owner = func.value
            if isinstance(owner, ast.Attribute) and owner.attr == "flows":
                return f"flows.{func.attr}"
        return None

    @staticmethod
    def _guards(test: ast.AST) -> bool:
        """True when an ``if`` test consults an ``.enabled`` flag."""
        for sub in ast.walk(test):
            if isinstance(sub, ast.Attribute) and sub.attr == "enabled":
                return True
            if isinstance(sub, ast.Name) and sub.id == "enabled":
                return True
        return False

    def check(self, tree: ast.Module, path: Path) -> Iterable[Tuple[int, str]]:
        guarded_spans: List[Tuple[int, int]] = []
        for node in ast.walk(tree):
            if isinstance(node, ast.If) and self._guards(node.test):
                end = max(
                    (getattr(n, "end_lineno", n.lineno) for n in node.body),
                    default=node.lineno,
                )
                start = node.body[0].lineno if node.body else node.lineno
                guarded_spans.append((start, end))
            if isinstance(node, ast.IfExp) and self._guards(node.test):
                guarded_spans.append((node.lineno, getattr(node, "end_lineno", node.lineno)))
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            hook = self._is_obs_call(node)
            if hook is None:
                continue
            line = node.lineno
            if any(start <= line <= end for start, end in guarded_spans):
                continue
            yield (
                line,
                f"obs hook {hook}() called outside an `if ....enabled:` "
                "guard; the disabled singleton must cost nothing",
            )


class ListenerLifecycleRule(LintRule):
    code = "DET006"
    title = "listener subscription without owner tag or matching detach"
    hot_path_only = False

    @staticmethod
    def _listener_calls(scope: ast.AST) -> Tuple[List[ast.Call], int]:
        adds: List[ast.Call] = []
        removes = 0
        for node in ast.walk(scope):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
            ):
                continue
            if node.func.attr == "add_listener":
                adds.append(node)
            elif node.func.attr == "remove_listener":
                removes += 1
        return adds, removes

    def check(self, tree: ast.Module, path: Path) -> Iterable[Tuple[int, str]]:
        classes = [n for n in ast.walk(tree) if isinstance(n, ast.ClassDef)]
        claimed: Set[int] = set()
        scopes: List[Tuple[str, ast.AST]] = [
            (f"class {cls.name}", cls) for cls in classes
        ]
        for _label, cls in scopes:
            for node in ast.walk(cls):
                claimed.add(id(node))
        for label, scope in scopes:
            adds, removes = self._listener_calls(scope)
            yield from self._judge(label, adds, removes)
        # Module-level calls (outside every class definition).
        module_adds: List[ast.Call] = []
        module_removes = 0
        for node in ast.walk(tree):
            if id(node) in claimed or not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
            ):
                continue
            if node.func.attr == "add_listener":
                module_adds.append(node)
            elif node.func.attr == "remove_listener":
                module_removes += 1
        yield from self._judge("module scope", module_adds, module_removes)

    @staticmethod
    def _judge(
        label: str, adds: List[ast.Call], removes: int
    ) -> Iterable[Tuple[int, str]]:
        for call in adds:
            if not any(kw.arg == "owner" for kw in call.keywords):
                yield (
                    call.lineno,
                    "add_listener() without an owner= tag; the SAN206 "
                    "listener census cannot name the component responsible "
                    "for detaching it",
                )
            if removes == 0:
                yield (
                    call.lineno,
                    f"{label} subscribes a listener but never calls "
                    "remove_listener(); the subscription outlives its owner "
                    "(SAN206 at runtime) unless it is environment-lifetime — "
                    "suppress with a justifying comment if so",
                )


class SchedulerInternalsRule(LintRule):
    code = "DET007"
    title = "reliance on raw scheduler internals outside the kernel"
    hot_path_only = False

    #: Private queue-layout attributes of the scheduler backends.  Their
    #: same-instant bucket order is backend-specific (and permuted by the
    #: chaos ShuffleScheduler); only the kernel itself may walk them.
    INTERNALS = ("_heap", "_buckets", "_times", "_next_seq")

    def applies_to(self, path: Path) -> bool:
        parts = path.parts
        if "repro" not in parts:
            return False
        rest = parts[parts.index("repro") + 1:]
        # The kernel is the one sanctioned reader of its own layout.
        return bool(rest) and rest[0] != "sim"

    def check(self, tree: ast.Module, path: Path) -> Iterable[Tuple[int, str]]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Attribute):
                continue
            if node.attr not in self.INTERNALS:
                continue
            if isinstance(node.value, ast.Name) and node.value.id == "self":
                continue  # a class's own attribute, not a scheduler's
            yield (
                node.lineno,
                f"access to scheduler internal .{node.attr}: same-instant "
                "bucket layout is backend-specific and shuffled under "
                "chaos; use the EventScheduler interface (push/pop/"
                "next_time) instead",
            )


#: The rule registry, in execution (and documentation) order.
RULES: Tuple[LintRule, ...] = (
    WallClockRule(),
    GlobalRandomRule(),
    SetIterationRule(),
    SlotsRule(),
    ObsGuardRule(),
    ListenerLifecycleRule(),
    SchedulerInternalsRule(),
)


def lint_file(path: Path, rules: Sequence[LintRule] = RULES) -> List[Diagnostic]:
    """Lint one Python file; returns findings (suppressions applied)."""
    source = path.read_text()
    file_wide, per_line = _parse_suppressions(source)
    tree = ast.parse(source, filename=str(path))
    findings: List[Diagnostic] = []
    for rule in rules:
        if not rule.applies_to(path) or rule.code in file_wide:
            continue
        for lineno, message in rule.check(tree, path):
            if rule.code in per_line.get(lineno, ()):
                continue
            findings.append(
                Diagnostic(
                    code=rule.code,
                    severity=Severity.ERROR,
                    message=message,
                    path=str(path),
                    line=lineno,
                )
            )
    findings.sort(key=lambda d: (d.path or "", d.line or 0, d.code))
    return findings


def _default_paths() -> List[Path]:
    """The whole ``repro`` package: per-rule ``applies_to`` scopes checks.

    Historically only the hot packages were walked; the everywhere-rules
    (``DET006``/``DET007``) widened the default to the full tree — the
    hot-path rules still restrict themselves via :data:`HOT_PACKAGES` /
    :data:`HOT_MODULES`.
    """
    return [Path(__file__).resolve().parent.parent]


def lint_paths(paths: Sequence[Path]) -> List[Diagnostic]:
    """Lint every ``*.py`` under the given files/directories."""
    findings: List[Diagnostic] = []
    for path in paths:
        if path.is_dir():
            for file in sorted(path.rglob("*.py")):
                findings.extend(lint_file(file))
        else:
            findings.extend(lint_file(path))
    return findings


def main(argv: Optional[Sequence[str]] = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.lint",
        description="Determinism/correctness lints for the simulation kernel.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files or directories to lint (default: repro's sim/net/engine)",
    )
    parser.add_argument("--json", action="store_true", help="machine-readable output")
    args = parser.parse_args(argv)
    paths = args.paths or _default_paths()
    findings = lint_paths(paths)
    if args.json:
        print(json.dumps([d.to_dict() for d in findings], indent=2))
    else:
        for finding in findings:
            print(finding.format())
        print(f"{len(findings)} finding(s) in {len(paths)} path(s)")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
