"""Frozen environment state for static plan verification.

The verifier replays the deployer's placement decisions without a live
simulator.  :class:`EnvironmentSnapshot` gives it the piece of the
environment placement actually consults — the per-cluster CNDBs (node
status + round-robin cursors) plus the cost-model parameters — as private
copies, so verification can ``acquire()`` nodes and consume allocation
sequences without disturbing anything real.

The snapshot duck-types as an
:class:`~repro.hardware.environment.Environment` for
:meth:`~repro.coordinator.allocation.AllocationSpec.resolve` (which only
calls ``env.cndb(cluster)``), so the compiler's symbolic allocation specs
resolve against it unchanged.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Tuple

from repro.hardware.cndb import ComputeNodeDatabase
from repro.hardware.environment import (
    BACKEND,
    BLUEGENE,
    DEFAULT_CLUSTERS,
    FRONTEND,
    Environment,
    EnvironmentConfig,
)
from repro.hardware.node import Node
from repro.net.params import NetworkParams
from repro.util.errors import HardwareError


def _copy_cndb(cndb: ComputeNodeDatabase) -> ComputeNodeDatabase:
    """A deep-enough copy: fresh Node objects, same occupancy and cursor."""
    nodes = [dataclasses.replace(node) for node in cndb.all_nodes()]
    copy = ComputeNodeDatabase(cndb.cluster, nodes)
    copy._rr_cursor = cndb._rr_cursor
    return copy


class EnvironmentSnapshot:
    """A mutable private copy of placement-relevant environment state."""

    def __init__(
        self, cndbs: Dict[str, ComputeNodeDatabase], params: NetworkParams
    ) -> None:
        self.cndbs = cndbs
        self.params = params

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_config(cls, config: Optional[EnvironmentConfig] = None) -> "EnvironmentSnapshot":
        """A snapshot of a *fresh* environment with the given topology.

        Builds only the CNDBs (no simulator, no networks): this is what
        ``python -m repro analyze`` uses, and what the verifier assumes
        when no live environment is supplied.
        """
        config = config or EnvironmentConfig()
        # Deferred: building the clusters pulls in the hardware layer only
        # when a from-config snapshot is actually requested.
        from repro.hardware.bluegene import BlueGene
        from repro.hardware.linux_cluster import LinuxCluster, LinuxClusterConfig

        bluegene = BlueGene(config.bluegene)
        backend = LinuxCluster(LinuxClusterConfig(BACKEND, config.backend_nodes))
        frontend = LinuxCluster(LinuxClusterConfig(FRONTEND, config.frontend_nodes))
        cndbs = {
            BLUEGENE: ComputeNodeDatabase(BLUEGENE, bluegene.compute_nodes),
            BACKEND: ComputeNodeDatabase(BACKEND, backend.nodes),
            FRONTEND: ComputeNodeDatabase(FRONTEND, frontend.nodes),
        }
        return cls(cndbs=cndbs, params=config.params)

    @classmethod
    def from_environment(cls, env: Environment) -> "EnvironmentSnapshot":
        """A snapshot of a *live* environment's current placement state.

        Node occupancy carries over, so verifying a plan against an
        environment that already hosts deployments detects cross-plan
        double allocation (``SCSQ201``); round-robin cursors carry over,
        so selector placement is predicted exactly.
        """
        cndbs = {name: _copy_cndb(env.cndb(name)) for name in env.cluster_names()}
        return cls(cndbs=cndbs, params=env.params)

    # ------------------------------------------------------------------
    # Environment duck-typing (what AllocationSpec.resolve() touches)
    # ------------------------------------------------------------------
    def cluster_names(self) -> Tuple[str, ...]:
        if set(self.cndbs) == set(DEFAULT_CLUSTERS):
            return DEFAULT_CLUSTERS
        return tuple(self.cndbs)

    def cndb(self, cluster: str) -> ComputeNodeDatabase:
        try:
            return self.cndbs[cluster]
        except KeyError:
            raise HardwareError(
                f"unknown cluster {cluster!r}; expected one of {sorted(self.cndbs)}"
            ) from None

    def node(self, cluster: str, index: int) -> Node:
        return self.cndb(cluster).node(index)

    def busy_nodes(self) -> Dict[str, int]:
        """node_id -> running_processes for every currently busy node."""
        return {
            node.node_id: node.running_processes
            for cndb in self.cndbs.values()
            for node in cndb.all_nodes()
            if node.running_processes > 0
        }

    def __repr__(self) -> str:
        sizes = {name: cndb.num_nodes() for name, cndb in self.cndbs.items()}
        return f"<EnvironmentSnapshot {sizes}>"
