"""Seeded-defect micro-harnesses: one intentional bug per ``SAN`` code.

Each function in :data:`DEFECTS` builds a small real scenario — usually the
Figure 6 point-to-point query on a fresh environment — sabotages exactly
one lifecycle obligation, and returns the sanitizer's report.  They are the
executable specification of the ``SANxxx`` catalogue: the sanitizer test
suite asserts each harness produces its code, and
``python -m repro analyze --sanitize --defect SANxxx`` must exit non-zero
on every one of them (the self-check CI runs).

The sabotage patterns are the real-world bug shapes the sanitizer exists
to catch: a teardown path that forgets one close call, a dangling blocking
``get()``, a carrier that never unregisters, an acquired node slot with no
matching release, an observability subscription with no matching detach,
and interrupt-swallowing processes that wedge a drained simulator.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterator, Tuple

from repro.analysis import sanitize
from repro.analysis.diagnostics import AnalysisReport

__all__ = ["DEFECTS", "run_defect"]


def _deployed_fig6(flows: bool = False) -> Tuple[Any, Any]:
    """A deployed-and-finished tiny fig6 query, ready to sabotage.

    Returns ``(env, deployment)``; the caller tears down and audits.
    """
    from repro.coordinator.deployer import Deployer
    from repro.core.experiments.fig6 import point_to_point_query
    from repro.hardware.environment import Environment, EnvironmentConfig
    from repro.obs import Instrumentation
    from repro.obs.flow import FlowRecorder
    from repro.scsql.plan import compile_plan

    obs = Instrumentation(flows=FlowRecorder()) if flows else None
    env = Environment(EnvironmentConfig(), obs=obs)
    deployer = Deployer(env)
    plan = compile_plan(point_to_point_query(1024, 8))
    deployment = deployer.deploy(deployer.place(plan))
    deployment.run()
    return env, deployment


def _stubborn(sim: Any, store: Any, name: str) -> Any:
    """A process that swallows its termination interrupt and re-blocks —
    the bug shape of a worker loop with an over-broad ``except``."""
    from repro.sim import Interrupt

    def body() -> Iterator[Any]:
        while True:
            try:
                yield store.get()
            except Interrupt:
                continue

    return sim.process(body(), name=name)


def defect_san101() -> AnalysisReport:
    """A harness whose outcome is the dispatch order of simultaneous events."""
    from repro.sim import Simulator

    def harness() -> Tuple[int, ...]:
        sim = Simulator()
        order = []

        def note(tag: int) -> Iterator[Any]:
            yield sim.timeout(0.0)
            order.append(tag)

        for tag in range(8):
            sim.process(note(tag))
        sim.run()
        return tuple(order)

    report, _outcomes = sanitize.run_shuffled(
        harness, seeds=(0, 1, 2, 3), label="defect:SAN101"
    )
    return report


def defect_san201() -> AnalysisReport:
    """A worker that survives teardown by swallowing its interrupt."""
    from repro.sim import Store

    with sanitize.sanitizer(label="defect:SAN201", strict=False) as scope:
        env, deployment = _deployed_fig6()
        rp = next(iter(deployment.rps.values()))
        private = Store(env.sim, name="defect.private")
        rp._processes.append(_stubborn(env.sim, private, "defect.survivor"))
        deployment.teardown()
        env.sim.run()
        sanitize.assert_quiescent(env, raise_on_findings=False)
    return scope.report


def defect_san202() -> AnalysisReport:
    """A teardown path that forgets to close one receive inbox."""
    with sanitize.sanitizer(label="defect:SAN202", strict=False) as scope:
        env, deployment = _deployed_fig6()
        for rp in deployment.rps.values():
            for port in rp.input_ports:
                port.inbox.close = lambda: None  # type: ignore[method-assign]
        deployment.teardown()
        sanitize.assert_quiescent(env, raise_on_findings=False)
    return scope.report


def defect_san203() -> AnalysisReport:
    """A live worker left blocked on a kernel store after teardown.

    The waiter must be *alive*: inert getter events of interrupt-killed
    processes are dead state the deployment collects, not leaks.
    """
    with sanitize.sanitizer(label="defect:SAN203", strict=False) as scope:
        env, deployment = _deployed_fig6()
        rp = next(iter(deployment.rps.values()))
        assert rp.result_store is not None
        _stubborn(env.sim, rp.result_store, "defect.blocked-get")
        deployment.teardown()
        env.sim.run()
        sanitize.assert_quiescent(env, raise_on_findings=False)
    return scope.report


def defect_san204() -> AnalysisReport:
    """A carrier registration with no matching unregister."""
    with sanitize.sanitizer(label="defect:SAN204", strict=False) as scope:
        env, deployment = _deployed_fig6()
        env.torus.register_stream(0, "defect->ghost")
        deployment.teardown()
        sanitize.assert_quiescent(env, raise_on_findings=False)
    return scope.report


def defect_san205() -> AnalysisReport:
    """A node slot acquired outside any deployment and never released."""
    from repro.hardware.environment import BLUEGENE

    with sanitize.sanitizer(label="defect:SAN205", strict=False) as scope:
        env, deployment = _deployed_fig6()
        env.node(BLUEGENE, 0).acquire()
        deployment.teardown()
        sanitize.assert_quiescent(env, raise_on_findings=False)
    return scope.report


def defect_san206() -> AnalysisReport:
    """An observability subscription whose owner never detaches it."""
    with sanitize.sanitizer(label="defect:SAN206", strict=False) as scope:
        env, deployment = _deployed_fig6(flows=True)
        # The never-detached subscription is the point of this harness.
        env.obs.flows.add_listener(  # lint: disable=DET006
            lambda record: None, owner="defect-harness"
        )
        deployment.teardown()
        sanitize.assert_quiescent(env, raise_on_findings=False)
    return scope.report


def defect_san301() -> AnalysisReport:
    """Two interrupt-swallowing workers cross-blocked on empty stores."""
    from repro.sim import Store

    with sanitize.sanitizer(label="defect:SAN301", strict=False) as scope:
        env, deployment = _deployed_fig6()
        rp = next(iter(deployment.rps.values()))
        first = Store(env.sim, name="defect.first")
        second = Store(env.sim, name="defect.second")
        rp._processes.append(_stubborn(env.sim, first, "defect.wedge-a"))
        rp._processes.append(_stubborn(env.sim, second, "defect.wedge-b"))
        deployment.teardown()
        env.sim.run()
        sanitize.assert_quiescent(env, raise_on_findings=False)
    return scope.report


#: code -> micro-harness producing it.  Iterated by the CLI self-check and
#: the per-code sanitizer tests.
DEFECTS: Dict[str, Callable[[], AnalysisReport]] = {
    "SAN101": defect_san101,
    "SAN201": defect_san201,
    "SAN202": defect_san202,
    "SAN203": defect_san203,
    "SAN204": defect_san204,
    "SAN205": defect_san205,
    "SAN206": defect_san206,
    "SAN301": defect_san301,
}


def run_defect(code: str) -> AnalysisReport:
    """Run one seeded-defect harness; raises ``KeyError`` on unknown codes."""
    return DEFECTS[code]()
