"""Dynamic sanitizers: schedule races, resource leaks, and liveness.

The static half of :mod:`repro.analysis` proves things about *plans*; this
module audits *executions*.  Three analyzers share the ``SANxxx`` range of
the diagnostic catalogue:

* **schedule-race detector** (``SAN1xx``) — replays a harness under the
  seeded :class:`~repro.sim.scheduler.ShuffleScheduler`, which permutes the
  dispatch order of same-instant/same-rank events (every permutation is a
  legal total order under the kernel's ``(when, rank, seq)`` contract).
  A harness whose outcome changes across shuffle seeds depends on incidental
  FIFO order — the simulation equivalent of a data race (``SAN101``).
  :func:`chaos` also swaps the sequential :class:`~repro.net.jitter.Jitter`
  for the order-independent :class:`~repro.net.jitter.KeyedJitter`: the
  stock jitter draws from one RNG *in dispatch order*, which would make
  every jittered run order-dependent by construction and mask real races.

* **leak sanitizer** (``SAN2xx``) — audits every
  :meth:`~repro.coordinator.deployer.Deployment.teardown` and
  :meth:`~repro.coordinator.deployer.Deployer.migrate` for state that
  outlived its owner: live kernel processes (``SAN201``), open inboxes
  (``SAN202``), blocked store waiters (``SAN203``), wire carrier
  registrations (``SAN204``), node slots not returned to the CNDB
  (``SAN205``), and observability listeners (``SAN206``).

* **liveness analyzer** (``SAN301``) — when the event queue drains with
  waiters outstanding, renders the wait-for graph
  (:mod:`repro.sim.introspect`) and names the wedged culprits instead of
  leaving a silent hang in the numbers.

Teardown is asynchronous at heart: :meth:`RunningProcess.terminate`
*schedules* interrupts, so a mid-run teardown cannot be judged for live
processes synchronously.  Audits therefore run in two phases — structural
checks (inboxes, carriers, node slots, listeners) immediately at teardown,
liveness checks (processes, waiters) either immediately when the event
queue is already drained or deferred to :func:`assert_quiescent` /
sanitizer-scope exit.

Usage::

    from repro.analysis import sanitize

    with sanitize.sanitizer() as scope:      # audits every teardown
        with sanitize.chaos(seed=1):          # shuffle + keyed jitter
            outcome = run_harness()
        sanitize.assert_quiescent(env)        # env-level leak audit
    # strict scope: raises SanitizationError when findings exist

Entry points: ``python -m repro analyze --sanitize``, the pytest plugin
(:mod:`repro.analysis.pytest_plugin`, ``--sanitize`` / ``--chaos-seed``),
and the bench/faults/adaptive harness flags.  The code catalogue is
documented in ``docs/static-analysis.md``.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    FrozenSet,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.analysis.diagnostics import (
    CATALOG,
    AnalysisReport,
    Diagnostic,
)
from repro.util.errors import SanitizationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.coordinator.deployer import Deployment
    from repro.hardware.environment import Environment
    from repro.obs.flow import NullFlowRecorder

__all__ = [
    "SanitizerScope",
    "assert_quiescent",
    "audit_migrate",
    "audit_teardown",
    "chaos",
    "current",
    "enabled",
    "flow_fingerprint",
    "run_shuffled",
    "sanitizer",
]

#: Listener owners that legitimately live as long as the environment:
#: the live sampler subscribes to flow completions at construction and is
#: torn down with the instrumentation hub itself.
ENV_LIFETIME_OWNERS: FrozenSet[str] = frozenset({"live-sampler"})


def _san(
    code: str,
    message: str,
    sp_id: Optional[str] = None,
) -> Diagnostic:
    """A sanitizer diagnostic with its catalogued default severity."""
    severity, _title = CATALOG[code]
    return Diagnostic(code=code, severity=severity, message=message, sp_id=sp_id)


# ---------------------------------------------------------------------------
# Chaos mode: legal same-instant permutations, order-independent jitter
# ---------------------------------------------------------------------------
@contextmanager
def chaos(seed: int = 0) -> Iterator[None]:
    """Scope within which every default-configured simulator is chaotic.

    Installs two paired overrides:

    * :class:`~repro.sim.scheduler.ShuffleScheduler` — dispatches
      same-``(when, rank)`` events in a seeded random order instead of
      insertion order;
    * :class:`~repro.net.jitter.KeyedJitter` — jitter noise as a pure
      function of ``(seed, cost)`` instead of sequential draws from one
      RNG, so the jitter a message sees cannot depend on dispatch order.

    A correct harness produces **bit-identical** results for every chaos
    seed (the keyed jitter depends only on the environment seed, not the
    chaos seed).  Results legitimately differ from un-chaosed runs when
    jitter is enabled — compare chaos runs against chaos runs.
    """
    from repro.net.jitter import KeyedJitter, jitter_override
    from repro.sim.scheduler import ShuffleScheduler, scheduler_override

    with scheduler_override(lambda: ShuffleScheduler(seed)):
        with jitter_override(KeyedJitter):
            yield


# ---------------------------------------------------------------------------
# Sanitizer scope
# ---------------------------------------------------------------------------
class SanitizerScope:
    """Mutable state of one active :func:`sanitizer` scope.

    Attributes:
        report: Accumulates every finding of the scope.
        strict: Raise :class:`SanitizationError` at scope exit on findings.
        deferred: Deployments torn down while their simulator still had
            events queued; their liveness audit re-runs at scope exit (or
            at :func:`assert_quiescent`) once the queue has drained.
    """

    def __init__(self, label: str = "sanitize", strict: bool = True) -> None:
        self.report = AnalysisReport(label=label)
        self.strict = strict
        self.deferred: List["Deployment"] = []
        self.audited = 0


_SCOPE: Optional[SanitizerScope] = None


def enabled() -> bool:
    """True while a :func:`sanitizer` scope is active (audit hooks fire)."""
    return _SCOPE is not None


def current() -> Optional[SanitizerScope]:
    """The active scope, or None.  Read-only use (reports, tests)."""
    return _SCOPE


@contextmanager
def sanitizer(
    label: str = "sanitize", strict: bool = True
) -> Iterator[SanitizerScope]:
    """Scope within which every teardown/migration is audited for leaks.

    Yields the :class:`SanitizerScope`; its ``report`` carries the findings.
    At a clean exit, deployments whose liveness audit was deferred (torn
    down mid-run) are re-audited if their simulator has drained since.
    With ``strict`` (the default) a scope with findings raises
    :class:`~repro.util.errors.SanitizationError`; pass ``strict=False``
    to collect findings and judge the report yourself.

    Scopes do not nest: the audit hooks are module-global.
    """
    global _SCOPE
    if _SCOPE is not None:
        raise SanitizationError("sanitizer scopes do not nest")
    scope = SanitizerScope(label=label, strict=strict)
    _SCOPE = scope
    try:
        yield scope
        flush_deferred(scope)
        if strict and not scope.report.ok():
            _raise(scope.report)
    finally:
        _SCOPE = None


def _raise(report: AnalysisReport) -> None:
    failing = report.errors + report.warnings
    raise SanitizationError(
        f"sanitizer found {len(failing)} defect(s) in {report.label!r}:\n"
        + "\n".join("  " + d.format() for d in failing),
        diagnostics=failing,
    )


def flush_deferred(scope: SanitizerScope) -> None:
    """Re-audit deferred deployments whose simulator has since drained.

    A deployment torn down mid-run holds pending interrupts — its processes
    are still formally alive and cannot be judged leaked.  Once the event
    queue drains, every interrupt has dispatched and whatever is left is a
    leak.  Deployments whose simulator still has queued events are kept
    deferred (the caller may legitimately still be running it).
    """
    still_deferred: List["Deployment"] = []
    for deployment in scope.deferred:
        if deployment.env.sim.peek() == float("inf"):
            _audit_liveness(scope.report, deployment)
        else:
            still_deferred.append(deployment)
    scope.deferred[:] = still_deferred


# ---------------------------------------------------------------------------
# Leak audits (hooked by Deployment.teardown / Deployer.migrate)
# ---------------------------------------------------------------------------
def audit_teardown(deployment: "Deployment") -> None:
    """Audit one just-torn-down deployment (called from ``teardown()``).

    Structural leaks — open inboxes, carrier registrations, unreleased
    node slots, the deployment's own flow listener — are synchronous facts
    and are checked immediately.  Liveness (processes, waiters) is checked
    immediately only when the event queue is already drained; otherwise the
    deployment is deferred (see :func:`flush_deferred`).
    """
    scope = _SCOPE
    if scope is None:
        return
    scope.audited += 1
    _audit_structural(scope.report, deployment)
    if deployment.env.sim.peek() == float("inf"):
        _audit_liveness(scope.report, deployment)
    else:
        scope.deferred.append(deployment)


def audit_migrate(
    old: "Deployment", replacement: "Deployment", env: "Environment"
) -> None:
    """Audit a completed migration (called from ``Deployer.migrate``).

    The old generation's teardown was already audited by
    :func:`audit_teardown` from inside ``migrate``; this checks the
    hand-off itself: the old generation's flow listener must be gone and
    the replacement's must be attached exactly once, so per-deployment
    flow accounting survives generations without double counting.
    """
    scope = _SCOPE
    if scope is None:
        return
    flows = env.obs.flows
    if not flows.enabled:
        return
    owners = flows.listener_owners()
    if old.owner_tag != replacement.owner_tag and old.owner_tag in owners:
        scope.report.add(_san(
            "SAN206",
            f"migration to {replacement.rp_prefix!r} left the old "
            f"generation's flow listener attached (owner {old.owner_tag!r})",
        ))
    count = owners.count(replacement.owner_tag)
    if count > 1:
        scope.report.add(_san(
            "SAN206",
            f"flow listener of {replacement.owner_tag!r} attached "
            f"{count} times after migration (double accounting)",
        ))


def _audit_structural(report: AnalysisReport, deployment: "Deployment") -> None:
    """Checks that must hold the instant ``teardown()`` returns."""
    env = deployment.env
    label = deployment.owner_tag
    for rp_id, data in deployment.census().items():
        for inbox_name in data["open_inboxes"]:
            report.add(_san(
                "SAN202",
                f"inbox {inbox_name!r} of {rp_id} is still open after "
                f"teardown of {label}",
                sp_id=rp_id,
            ))
        if not data["node_released"]:
            report.add(_san(
                "SAN205",
                f"RP {rp_id} did not return its node slot to the CNDB "
                f"at teardown of {label}",
                sp_id=rp_id,
            ))
    registered = {stream for _node, stream in env.torus.active_stream_census()}
    for stream_id in deployment.stream_ids():
        if stream_id in registered:
            report.add(_san(
                "SAN204",
                f"stream {stream_id!r} is still registered with the torus "
                f"after teardown of {label} (its receive switching cost "
                f"taxes every later deployment)",
            ))
    flows = env.obs.flows
    if flows.enabled and label in flows.listener_owners():
        report.add(_san(
            "SAN206",
            f"flow listener of {label!r} survived its deployment's teardown",
        ))


def _live_waiters(store: Any) -> int:
    """Waiter events on ``store`` with a still-alive process attached.

    A store of a terminated deployment routinely keeps inert getter/putter
    events whose process died by interrupt — dead state collected with the
    deployment, not a leak.  A waiter is *blocked* (``SAN203``) only while
    a live process would resume from it.
    """
    from repro.sim.introspect import waiters_of

    count = 0
    for event in list(store._getters) + list(store._putters):
        if any(process.is_alive for process in waiters_of(event)):
            count += 1
    return count


def _audit_liveness(report: AnalysisReport, deployment: "Deployment") -> None:
    """Checks valid only once the event queue has drained (no interrupts
    still in flight): leaked processes, blocked waiters, wedged culprits."""
    from repro.sim.introspect import wait_edges

    label = deployment.owner_tag
    live = []
    stores = []
    for rp in deployment.rps.values():
        live.extend(rp.live_processes())
        stores.extend(rp.kernel_stores())
    for process in live:
        report.add(_san(
            "SAN201",
            f"process {process.name!r} is still alive after teardown of "
            f"{label} and the event queue drained",
        ))
    for store in stores:
        waiting = _live_waiters(store)
        if waiting:
            report.add(_san(
                "SAN203",
                f"store {store.name!r} holds {waiting} blocked waiter(s) "
                f"after teardown of {label}",
            ))
    if live:
        for edge in wait_edges(live, stores=stores):
            blockers = (
                " <- " + ", ".join(repr(b.name) for b in edge.blockers)
                if edge.blockers else ""
            )
            report.add(_san(
                "SAN301",
                f"wedged: {edge.process.name!r} waits on {edge.kind} — "
                f"{edge.detail}{blockers}",
            ))


# ---------------------------------------------------------------------------
# Environment-level quiescence
# ---------------------------------------------------------------------------
def assert_quiescent(
    env: "Environment",
    allowed_owners: FrozenSet[str] = ENV_LIFETIME_OWNERS,
    raise_on_findings: bool = True,
) -> AnalysisReport:
    """Audit an environment for leaked state after all work is done.

    Call at harness end, after the final ``sim.run()`` returned and every
    deployment was torn down.  Checks, environment-wide:

    * ``SAN204`` — carrier registrations left in the torus; flow records
      still in flight on a drained simulator (their streams closed without
      :meth:`~repro.obs.flow.FlowRecorder.drop_stream`);
    * ``SAN205`` — per-node occupancy differing from the template's
      pristine state (somebody acquired a slot and never released it);
    * ``SAN206`` — flow/detector listeners whose owner is not in
      ``allowed_owners`` (default: the env-lifetime live sampler);
    * deferred deployment audits (``SAN201``/``SAN203``/``SAN301``) of an
      active :func:`sanitizer` scope, for deployments on this simulator.

    Findings are also appended to the active scope's report.  Returns the
    quiescence report; raises :class:`SanitizationError` on findings unless
    ``raise_on_findings=False``.
    """
    report = AnalysisReport(label="quiescence")
    scope = _SCOPE
    drained = env.sim.peek() == float("inf")
    if scope is not None:
        still_deferred: List["Deployment"] = []
        for deployment in scope.deferred:
            if deployment.env.sim is env.sim and drained:
                _audit_liveness(report, deployment)
            else:
                still_deferred.append(deployment)
        scope.deferred[:] = still_deferred

    for node, stream_id in env.torus.active_stream_census():
        report.add(_san(
            "SAN204",
            f"stream {stream_id!r} is still registered at torus node "
            f"{node} with no deployment left to own it",
        ))
    flows = env.obs.flows
    if flows.enabled and drained and flows.in_flight_count:
        for stream_id, count in sorted(flows.in_flight_streams().items()):
            report.add(_san(
                "SAN204",
                f"{count} flow record(s) of stream {stream_id!r} still in "
                f"flight on a drained simulator (closed without "
                f"drop_stream)",
            ))

    pristine = dict(env.template._pristine.node_status)
    for name in sorted(env.cndbs):
        cndb = env.cndbs[name]
        for node, (running, _failed) in zip(cndb._nodes, pristine[name]):
            if node.running_processes != running:
                report.add(_san(
                    "SAN205",
                    f"node {node.node_id} holds {node.running_processes} "
                    f"running process(es), pristine state had {running} — "
                    f"a slot was never returned to the CNDB",
                ))

    if flows.enabled:
        for owner in flows.listener_owners():
            if owner not in allowed_owners:
                report.add(_san(
                    "SAN206",
                    f"flow listener owned by {owner or '<untagged>'!r} is "
                    f"still attached at quiescence",
                ))
    live = env.obs.live
    if live.enabled:
        for owner in live.detector.listener_owners():
            if owner not in allowed_owners:
                report.add(_san(
                    "SAN206",
                    f"health listener owned by {owner or '<untagged>'!r} "
                    f"is still attached at quiescence",
                ))

    if scope is not None:
        scope.report.extend(report)
    if raise_on_findings and not report.ok():
        _raise(report)
    return report


# ---------------------------------------------------------------------------
# Schedule-race replay
# ---------------------------------------------------------------------------
def flow_fingerprint(
    flows: "NullFlowRecorder",
) -> Dict[str, Tuple[int, int, int, float, float]]:
    """Order-insensitive per-stream aggregate of completed flows.

    Maps ``stream_id`` to ``(count, bytes, eos_count, first_birth,
    last_delivered)``.  Same-instant shuffling may legally swap which of
    two simultaneous buffers wins a FIFO slot — individual hop timestamps
    are not schedule-invariant — but the stream-level totals and envelope
    are, so this is the granularity ``SAN101`` compares at.
    """
    out: Dict[str, Tuple[int, int, int, float, float]] = {}
    for record in flows.completed:
        count, nbytes, eos, birth, delivered = out.get(
            record.stream_id, (0, 0, 0, float("inf"), float("-inf"))
        )
        out[record.stream_id] = (
            count + 1,
            nbytes + record.nbytes,
            eos + (1 if record.eos else 0),
            min(birth, record.birth),
            max(delivered, record.delivered or float("-inf")),
        )
    return out


def _describe_divergence(baseline: Any, other: Any) -> str:
    """A short rendering of how two harness outcomes differ."""
    if isinstance(baseline, dict) and isinstance(other, dict):
        keys = sorted(
            set(baseline) | set(other),
            key=str,
        )
        differing = [
            str(key) for key in keys
            if baseline.get(key, _MISSING) != other.get(key, _MISSING)
        ]
        preview = ", ".join(differing[:4])
        more = f" (+{len(differing) - 4} more)" if len(differing) > 4 else ""
        return f"keys differ: {preview}{more}"
    base_text, other_text = repr(baseline), repr(other)
    if len(base_text) > 120:
        base_text = base_text[:117] + "..."
    if len(other_text) > 120:
        other_text = other_text[:117] + "..."
    return f"{base_text} != {other_text}"


_MISSING = object()


def run_shuffled(
    harness: Callable[[], Any],
    seeds: Sequence[int] = (0, 1, 2),
    label: str = "chaos-replay",
) -> Tuple[AnalysisReport, List[Any]]:
    """Replay ``harness`` under each chaos seed and flag divergence.

    ``harness`` is a zero-argument callable returning any equality-
    comparable outcome — durations, result payloads,
    :func:`flow_fingerprint` maps, or a dict bundling all three.  Every
    seed's outcome must equal the first seed's **exactly** (bit-identical
    floats): a mismatch is a schedule race and yields one ``SAN101``
    diagnostic per diverging seed.

    Returns ``(report, outcomes)``; outcomes in seed order, for callers
    that also want to compare against a reference value.
    """
    if not seeds:
        raise SanitizationError("run_shuffled needs at least one chaos seed")
    report = AnalysisReport(label=label)
    outcomes: List[Any] = []
    for seed in seeds:
        with chaos(seed):
            outcomes.append(harness())
    baseline = outcomes[0]
    for seed, outcome in zip(seeds[1:], outcomes[1:]):
        if outcome != baseline:
            report.add(_san(
                "SAN101",
                f"chaos seed {seed} diverged from seed {seeds[0]}: "
                f"{_describe_divergence(baseline, outcome)} — the harness "
                f"outcome depends on same-instant event dispatch order",
            ))
    if _SCOPE is not None:
        _SCOPE.report.extend(report)
    return report, outcomes
