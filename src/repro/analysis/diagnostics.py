"""Diagnostics: the structured output of every `repro.analysis` pass.

A :class:`Diagnostic` is one finding — a stable code (``SCSQ...``), a
severity, a message, and where it points: the stream process, the SCSQL
source span of the ``sp()``/``spv()`` call that created it, or a file/line
for lint findings.  An :class:`AnalysisReport` collects the findings of one
verification run and renders them as text or JSON.

The full code catalogue lives in ``docs/static-analysis.md``; the
:data:`CATALOG` table here is the machine-readable half (code -> default
severity + one-line title), used by the CLI and the docs test.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.util.errors import PlanVerificationError
from repro.util.source import Span

__all__ = [
    "Severity",
    "Diagnostic",
    "AnalysisReport",
    "PlanVerificationError",
    "CATALOG",
]


class Severity(enum.Enum):
    """How bad a finding is.  Errors fail deployment; warnings fail only in
    strict mode; infos are advisory (model-derived bounds, etc.)."""

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    def __str__(self) -> str:
        return self.value


#: code -> (default severity, one-line title).  Every diagnostic the
#: verifier can emit is registered here; ``docs/static-analysis.md``
#: documents each with a minimal triggering example.
CATALOG: Dict[str, Tuple[Severity, str]] = {
    # SCSQ0xx — process-graph structure
    "SCSQ001": (Severity.ERROR, "query graph has no root plan or an SP has no compiled plan"),
    "SCSQ002": (Severity.ERROR, "plan subscribes to an unknown stream process"),
    "SCSQ003": (Severity.ERROR, "cycle in the stream-process subscription graph"),
    "SCSQ004": (Severity.WARNING, "dangling stream: an SP's output is never consumed"),
    # SCSQ1xx — allocation / placement
    "SCSQ101": (Severity.ERROR, "stream process targets an unknown cluster"),
    "SCSQ102": (Severity.ERROR, "explicit allocation names a node absent from the CNDB"),
    "SCSQ103": (Severity.ERROR, "node over-subscribed by explicit allocations"),
    "SCSQ104": (Severity.ERROR, "allocation sequence exhausted before every SP was placed"),
    "SCSQ105": (Severity.ERROR, "inPset() names a pset absent from the CNDB"),
    "SCSQ106": (Severity.ERROR, "psetrr() on a cluster without psets"),
    "SCSQ107": (Severity.ERROR, "cluster has no available node for an unconstrained SP"),
    # SCSQ2xx — cross-plan (concurrent deployments)
    "SCSQ201": (Severity.ERROR, "node already allocated by a concurrently deployed plan"),
    # SCSQ3xx — locality
    "SCSQ301": (Severity.WARNING, "SP pinned outside the pset receiving its inbound streams"),
    # SCSQ4xx — cost-model capacity bounds
    "SCSQ401": (Severity.WARNING, "inbound streams share one I/O-node proxy (link-bound)"),
    "SCSQ402": (Severity.INFO, "multiple sender hosts share the ingress uplink"),
    # SAN1xx — schedule-race sanitizer (chaos replay)
    "SAN101": (Severity.ERROR, "harness result depends on same-instant event dispatch order"),
    # SAN2xx — leak sanitizer (teardown / migration quiescence)
    "SAN201": (Severity.ERROR, "live process survived deployment teardown"),
    "SAN202": (Severity.ERROR, "inbox left open after deployment teardown"),
    "SAN203": (Severity.ERROR, "kernel store has blocked waiters after teardown"),
    "SAN204": (Severity.ERROR, "wire carrier registration leaked past teardown"),
    "SAN205": (Severity.ERROR, "node occupancy not returned to the CNDB"),
    "SAN206": (Severity.ERROR, "observability listener leaked past its owner's lifetime"),
    # SAN3xx — liveness analyzer
    "SAN301": (Severity.ERROR, "simulation wedged: waiters outstanding with no runnable event"),
}


@dataclass(frozen=True)
class Diagnostic:
    """One static-analysis finding.

    Attributes:
        code: Stable catalogue code (``SCSQ103``, ``DET001``, ...).
        severity: Effective severity of this occurrence.
        message: Human-readable description with the concrete ids/bounds.
        sp_id: Stream process the finding is about, when applicable.
        span: SCSQL source position of the offending ``sp()``/``spv()``
            call, when the plan was compiled from source text.
        path: Source file, for lint findings.
        line: 1-based line in ``path``, for lint findings.
    """

    code: str
    severity: Severity
    message: str
    sp_id: Optional[str] = None
    span: Optional[Span] = None
    path: Optional[str] = None
    line: Optional[int] = None

    def format(self) -> str:
        """``error[SCSQ103] <line:col> <sp>: message`` (parts as known)."""
        where = []
        if self.path:
            where.append(f"{self.path}:{self.line}" if self.line else self.path)
        if self.span is not None:
            where.append(str(self.span))
        if self.sp_id:
            where.append(self.sp_id)
        location = " ".join(where)
        head = f"{self.severity}[{self.code}]"
        return f"{head} {location}: {self.message}" if location else f"{head}: {self.message}"

    def to_dict(self) -> Dict[str, object]:
        data: Dict[str, object] = {
            "code": self.code,
            "severity": self.severity.value,
            "message": self.message,
        }
        if self.sp_id:
            data["sp_id"] = self.sp_id
        if self.span is not None:
            data["line"], data["column"] = self.span.line, self.span.column
        if self.path:
            data["path"] = self.path
            if self.line:
                data["line"] = self.line
        return data


def diagnostic(
    code: str,
    message: str,
    sp_id: Optional[str] = None,
    span: Optional[Span] = None,
    severity: Optional[Severity] = None,
) -> Diagnostic:
    """Build a verifier diagnostic with its catalogued default severity."""
    default, _title = CATALOG[code]
    return Diagnostic(
        code=code,
        severity=severity or default,
        message=message,
        sp_id=sp_id,
        span=span,
    )


@dataclass
class AnalysisReport:
    """All findings of one plan verification.

    ``label`` names what was verified (a query label, a sweep-point key)
    so multi-plan reports stay readable.
    """

    label: str = "query"
    diagnostics: List[Diagnostic] = field(default_factory=list)

    def add(self, diag: Diagnostic) -> None:
        self.diagnostics.append(diag)

    def extend(self, other: "AnalysisReport") -> None:
        self.diagnostics.extend(other.diagnostics)

    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    @property
    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.WARNING]

    @property
    def infos(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.INFO]

    def ok(self, strict: bool = False) -> bool:
        """True when the plan may deploy: no errors (strict: no warnings)."""
        if self.errors:
            return False
        return not (strict and self.warnings)

    def format_text(self, verbose: bool = False) -> str:
        """Pretty multi-line rendering; infos only when ``verbose``."""
        shown = [
            d
            for d in self.diagnostics
            if verbose or d.severity is not Severity.INFO
        ]
        lines = [f"== {self.label}: " + self.summary()]
        lines.extend("  " + d.format() for d in shown)
        return "\n".join(lines)

    def summary(self) -> str:
        counts = (len(self.errors), len(self.warnings), len(self.infos))
        if counts == (0, 0, 0):
            return "ok"
        return f"{counts[0]} error(s), {counts[1]} warning(s), {counts[2]} info(s)"

    def to_json(self) -> str:
        return json.dumps(
            {
                "label": self.label,
                "ok": self.ok(),
                "diagnostics": [d.to_dict() for d in self.diagnostics],
            },
            indent=2,
        )

    def raise_if_failed(self, strict: bool = False) -> None:
        """Raise :class:`PlanVerificationError` unless :meth:`ok`."""
        if self.ok(strict=strict):
            return
        failing = self.errors + (self.warnings if strict else [])
        raise PlanVerificationError(
            f"plan verification failed for {self.label!r}: "
            + "; ".join(d.format() for d in failing),
            diagnostics=failing,
        )
