"""``python -m repro analyze``: static verification from the command line.

Compiles SCSQL statements (from arguments, files, or an example script's
``scsql_queries()`` hook), runs the :mod:`repro.analysis.verifier` pass
pipeline over every resulting plan against the paper's default topology,
pretty-prints the diagnostics, and exits non-zero when any plan has
errors (or, with ``--strict``, warnings).

``--sweeps`` verifies the full fig6/fig8/fig15 (and ablation) sweep grids
— every plan a ``python -m repro all`` run would deploy — which is what CI
runs to keep the experiment definitions deployable.
"""

from __future__ import annotations

import argparse
import importlib.util
import json
import sys
from pathlib import Path
from typing import Any, Dict, Iterable, List, Tuple

from repro.analysis.diagnostics import AnalysisReport, Diagnostic, Severity
from repro.analysis.snapshot import EnvironmentSnapshot
from repro.analysis.verifier import PlanVerifier
from repro.scsql.ast import CreateFunction
from repro.scsql.compiler import FunctionDef
from repro.scsql.parser import parse
from repro.scsql.plan import compile_plan
from repro.util.errors import QueryError

__all__ = ["run_analyze", "add_analyze_parser", "split_statements"]


def split_statements(text: str) -> List[str]:
    """Split SCSQL source into ``;``-separated statements.

    Respects single-quoted strings (the only SCSQL quoting form); empty
    fragments (trailing semicolons, blank lines) are dropped.
    """
    statements: List[str] = []
    current: List[str] = []
    in_string = False
    for ch in text:
        if ch == "'":
            in_string = not in_string
        if ch == ";" and not in_string:
            statements.append("".join(current))
            current = []
        else:
            current.append(ch)
    statements.append("".join(current))
    return [s.strip() for s in statements if s.strip()]


def _compile_failure(label: str, exc: Exception) -> AnalysisReport:
    """A synthetic error report for a statement that didn't compile."""
    report = AnalysisReport(label=label)
    report.add(
        Diagnostic(
            code="SCSQ000",
            severity=Severity.ERROR,
            message=f"statement does not compile: {exc}",
        )
    )
    return report


def _verify_statements(
    statements: Iterable[Tuple[str, str]],
) -> List[AnalysisReport]:
    """Compile and verify labelled statements, sharing a function registry.

    ``create function`` statements register their function for the
    statements that follow (mirroring a session) and produce no report.
    Each select query is verified against a *fresh* topology snapshot, as
    ``Deployer.run`` on a fresh environment would see it (concurrent-
    deployment conflicts are the ``MultiQuerySession(verify=...)`` path).
    """
    functions = {}
    reports: List[AnalysisReport] = []
    for label, text in statements:
        try:
            statement = parse(text)
            if isinstance(statement, CreateFunction):
                functions[statement.name] = FunctionDef(statement)
                continue
            plan = compile_plan(text, functions=dict(functions))
        except QueryError as exc:
            reports.append(_compile_failure(label, exc))
            continue
        verifier = PlanVerifier(EnvironmentSnapshot.from_config())
        reports.append(verifier.verify(plan, label=label))
    return reports


def _example_statements(path: Path) -> List[Tuple[str, str]]:
    """Load an example script's queries via its ``scsql_queries()`` hook.

    The hook returns an iterable of SCSQL statement strings or
    ``(label, statement)`` pairs, in session order (function definitions
    before the queries that use them).
    """
    spec = importlib.util.spec_from_file_location(f"_analyze_{path.stem}", path)
    if spec is None or spec.loader is None:
        raise SystemExit(f"analyze: cannot import example {path}")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    hook = getattr(module, "scsql_queries", None)
    if hook is None:
        raise SystemExit(
            f"analyze: example {path} has no scsql_queries() hook; add one "
            "returning its SCSQL statements in session order"
        )
    statements: List[Tuple[str, str]] = []
    for index, entry in enumerate(hook()):
        if isinstance(entry, str):
            statements.append((f"{path.stem}[{index}]", entry))
        else:
            label, text = entry
            statements.append((f"{path.stem}:{label}", text))
    return statements


def _sweep_statements() -> List[Tuple[str, str]]:
    """Every distinct query text of the fig6/fig8/fig15/ablation sweeps."""
    from repro.core.experiments.ablations import automatic_inbound_query
    from repro.core.experiments.fig6 import (
        DEFAULT_BUFFER_SIZES as FIG6_SIZES,
        point_to_point_query,
        scaled_workload,
    )
    from repro.core.experiments.fig8 import (
        BALANCED,
        DEFAULT_BUFFER_SIZES as FIG8_SIZES,
        SEQUENTIAL,
        merge_query,
    )
    from repro.core.experiments.fig15 import (
        DEFAULT_STREAM_COUNTS,
        PAPER_ARRAY_BYTES,
        QUERY_NUMBERS,
        inbound_query,
    )

    statements: List[Tuple[str, str]] = []
    for buffer_bytes in FIG6_SIZES:
        array_bytes, count = scaled_workload(buffer_bytes, 1500)
        statements.append(
            (f"fig6 B={buffer_bytes}", point_to_point_query(array_bytes, count))
        )
    for buffer_bytes in FIG8_SIZES:
        array_bytes, count = scaled_workload(buffer_bytes, 1200)
        for balanced in (False, True):
            x, y = BALANCED if balanced else SEQUENTIAL
            statements.append(
                (
                    f"fig8 B={buffer_bytes} {'bal' if balanced else 'seq'}",
                    merge_query(array_bytes, count, x, y),
                )
            )
    for query_number in QUERY_NUMBERS:
        for n in DEFAULT_STREAM_COUNTS:
            statements.append(
                (
                    f"fig15 Q{query_number} n={n}",
                    inbound_query(query_number, n, PAPER_ARRAY_BYTES, 10),
                )
            )
    for n in (2, 4, 6, 8):
        statements.append(
            (f"ablation auto n={n}", automatic_inbound_query(n, PAPER_ARRAY_BYTES, 10))
        )
    return statements


def _bench_statements() -> List[Tuple[str, str]]:
    """Every deck query the benchmark harness would deploy.

    The full deck for a handful of numbered streams (enough to cover every
    kind x every per-stream source-name/file-range specialization), at both
    shipped scales — what the CI ``bench-faults`` job verifies before it
    runs anything.
    """
    from repro.bench.query_stream import (
        DEFAULT_SCALE,
        SMOKE_SCALE,
        build_query,
        query_order,
    )

    statements: List[Tuple[str, str]] = []
    for scale in (DEFAULT_SCALE, SMOKE_SCALE):
        for stream_id in range(4):
            for kind in query_order(stream_id):
                query = build_query(kind, stream_id, scale)
                statements.append(
                    (f"bench {scale.name} s{stream_id} {kind}", query.query)
                )
    return statements


def _parse_seeds(text: str) -> List[int]:
    try:
        return [int(part) for part in text.split(",") if part.strip()]
    except ValueError:
        raise SystemExit(
            f"analyze: --chaos-seeds wants comma-separated integers, got {text!r}"
        ) from None


def _sanitize_clean_run(seeds: List[int]) -> "AnalysisReport":
    """The dynamic self-check: a real harness must be sanitizer-clean.

    Runs the small Figure 6 point-to-point query under every chaos seed
    inside one sanitizer scope — leak audits at teardown, an env-level
    quiescence audit per run, and the cross-seed ``SAN101`` comparison
    over the result duration plus the stream-level flow fingerprint.
    """
    from repro.analysis import sanitize
    from repro.coordinator.deployer import Deployer
    from repro.core.experiments.fig6 import point_to_point_query, scaled_workload
    from repro.hardware.environment import Environment, EnvironmentConfig
    from repro.obs import Instrumentation
    from repro.obs.flow import FlowRecorder

    array_bytes, count = scaled_workload(4096, 120)
    plan = compile_plan(point_to_point_query(array_bytes, count))

    def harness() -> Dict[str, Any]:
        env = Environment(
            EnvironmentConfig(), obs=Instrumentation(flows=FlowRecorder())
        )
        deployer = Deployer(env)
        deployment = deployer.deploy(deployer.place(plan))
        report = deployment.run()
        deployment.teardown()
        sanitize.assert_quiescent(env, raise_on_findings=False)
        return {
            "duration": report.duration,
            "flows": sanitize.flow_fingerprint(env.obs.flows),
        }

    with sanitize.sanitizer(label="sanitize:fig6", strict=False) as scope:
        sanitize.run_shuffled(harness, seeds=seeds, label="sanitize:fig6")
    return scope.report


def _run_sanitize(args: argparse.Namespace) -> Tuple[List["AnalysisReport"], int]:
    """The ``--sanitize`` mode: defect harnesses or the clean self-check."""
    from repro.analysis.defects import DEFECTS, run_defect

    seeds = _parse_seeds(args.chaos_seeds)
    if not seeds:
        raise SystemExit("analyze: --chaos-seeds must name at least one seed")
    reports: List[AnalysisReport] = []
    if args.defects:
        codes = (
            sorted(DEFECTS)
            if "all" in args.defects
            else list(dict.fromkeys(args.defects))
        )
        for code in codes:
            if code not in DEFECTS:
                raise SystemExit(
                    f"analyze: unknown defect {code!r} (expected one of "
                    f"{sorted(DEFECTS)} or 'all')"
                )
            reports.append(run_defect(code))
    else:
        reports.append(_sanitize_clean_run(seeds))
    failed = [r for r in reports if not r.ok(strict=args.strict)]
    return reports, 1 if failed else 0


def run_analyze(args: argparse.Namespace) -> int:
    statements: List[Tuple[str, str]] = []
    for index, text in enumerate(args.queries):
        for sub_index, stmt in enumerate(split_statements(text)):
            statements.append((f"arg{index}[{sub_index}]", stmt))
    for file_path in args.files:
        path = Path(file_path)
        for sub_index, stmt in enumerate(split_statements(path.read_text())):
            statements.append((f"{path.name}[{sub_index}]", stmt))
    for example in args.examples:
        statements.extend(_example_statements(Path(example)))
    if args.sweeps:
        statements.extend(_sweep_statements())
    if args.bench:
        statements.extend(_bench_statements())
    if args.sanitize:
        sanitize_reports, sanitize_exit = _run_sanitize(args)
        if args.json:
            print(
                json.dumps(
                    {
                        "ok": sanitize_exit == 0,
                        "strict": args.strict,
                        "reports": [
                            json.loads(r.to_json()) for r in sanitize_reports
                        ],
                    },
                    indent=2,
                )
            )
        else:
            for report in sanitize_reports:
                print(report.format_text(verbose=args.verbose))
            failing = sum(
                1 for r in sanitize_reports if not r.ok(strict=args.strict)
            )
            print(
                f"analyze --sanitize: {len(sanitize_reports)} report(s), "
                f"{failing} with findings"
            )
        if not statements:
            return sanitize_exit
        static_exit = _run_static(args, statements)
        return max(sanitize_exit, static_exit)
    if not statements:
        print(
            "analyze: nothing to verify (pass queries, --file, --example, "
            "--sweeps, --bench, or --sanitize)",
            file=sys.stderr,
        )
        return 2
    return _run_static(args, statements)


def _run_static(args: argparse.Namespace, statements: List[Tuple[str, str]]) -> int:

    reports = _verify_statements(statements)
    failed = [r for r in reports if not r.ok(strict=args.strict)]
    if args.json:
        print(
            json.dumps(
                {
                    "ok": not failed,
                    "strict": args.strict,
                    "reports": [json.loads(r.to_json()) for r in reports],
                },
                indent=2,
            )
        )
    else:
        for report in reports:
            if report.diagnostics or args.verbose:
                print(report.format_text(verbose=args.verbose))
        clean = sum(1 for r in reports if not r.diagnostics)
        print(
            f"analyze: {len(reports)} plan(s) verified, {clean} clean, "
            f"{len(failed)} failing"
            + (" (strict)" if args.strict else "")
        )
    return 1 if failed else 0


def add_analyze_parser(sub: Any) -> None:
    """Register the ``analyze`` subcommand on a subparsers object."""
    p = sub.add_parser(
        "analyze",
        help="statically verify SCSQL plans (no simulation)",
        description=(
            "Compile SCSQL statements and run the static plan verifier: "
            "placement conflicts, exhausted allocation sequences, graph "
            "defects, and cost-model capacity bounds, with SCSQxxx codes. "
            "See docs/static-analysis.md for the catalogue."
        ),
    )
    p.add_argument(
        "queries",
        nargs="*",
        help="SCSQL statements (';'-separated; create-function statements "
        "register functions for later statements)",
    )
    p.add_argument(
        "--file",
        dest="files",
        action="append",
        default=[],
        metavar="PATH",
        help="read ';'-separated SCSQL statements from a file",
    )
    p.add_argument(
        "--example",
        dest="examples",
        action="append",
        default=[],
        metavar="PATH.py",
        help="verify the queries an example script declares via its "
        "scsql_queries() hook",
    )
    p.add_argument(
        "--sweeps",
        action="store_true",
        help="verify every plan of the fig6/fig8/fig15/ablation sweeps",
    )
    p.add_argument(
        "--bench",
        action="store_true",
        help="verify every deck query of the benchmark harness "
        "(see docs/benchmarking.md)",
    )
    p.add_argument(
        "--sanitize",
        action="store_true",
        help="run the dynamic sanitizers (leak audit + chaos replay of a "
        "reference harness); with --defect, run seeded-defect harnesses "
        "instead — exits non-zero whenever findings exist",
    )
    p.add_argument(
        "--defect",
        dest="defects",
        action="append",
        default=[],
        metavar="SANxxx",
        help="with --sanitize: run this seeded-defect micro-harness "
        "(repeatable; 'all' runs every one).  Each is expected to produce "
        "its SAN code, so the exit status is non-zero",
    )
    p.add_argument(
        "--chaos-seeds",
        default="0,1,2",
        metavar="N,N,...",
        help="comma-separated ShuffleScheduler seeds for --sanitize chaos "
        "replay (default: 0,1,2)",
    )
    p.add_argument(
        "--strict",
        action="store_true",
        help="treat warnings as failures (errors always fail)",
    )
    p.add_argument("--json", action="store_true", help="machine-readable output")
    p.add_argument(
        "--verbose",
        action="store_true",
        help="also print clean reports and info-level diagnostics",
    )
    p.set_defaults(func=run_analyze)
