"""Static verification of deployment plans.

A :class:`PlanVerifier` proves — without running a simulation — that a
compiled :class:`~repro.scsql.plan.DeploymentPlan` can deploy onto a given
environment, and warns about placements the cost model can already show to
be link-bound.  It runs a pass pipeline over the plan's process graph and a
CNDB snapshot:

1. **Structure** (``SCSQ00x``): missing plans, subscriptions to unknown
   stream processes, cycles in the subscription graph, dangling streams.
2. **Placement** (``SCSQ1xx``/``SCSQ201``): a *static placement
   simulation* that replays exactly what
   :class:`~repro.coordinator.deployer.Deployment` construction does —
   resolve each allocation-spec instance once, walk the stream processes
   in graph order, select a node per RP (allocation sequence or the naive
   selector), acquire it — against a private
   :class:`~repro.analysis.snapshot.EnvironmentSnapshot`.  Any failure the
   deployer would hit is reported with a precise code instead of a deep
   ``AllocationError``; because the replay is exact, *verifier-accepts
   implies deploy-succeeds* on an environment in the snapshot's state.
3. **Locality** (``SCSQ301``): pinned stream processes whose intra-
   BlueGene streams cross pset boundaries.
4. **Capacity** (``SCSQ4xx``): inbound (back-end -> BlueGene) connection
   fan-in that the calibrated cost model proves link-bound — e.g. the
   shared io-proxy funnel behind the paper's Figure 15 Query 5 dip.

Use :func:`verify_plan` for the one-shot form, or
``Deployer.verify(plan)`` to check against a live environment (which also
detects double allocation across concurrently deployed plans).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set, Tuple

from repro.analysis.diagnostics import AnalysisReport, diagnostic
from repro.analysis.snapshot import EnvironmentSnapshot
from repro.coordinator.allocation import (
    AllocationSequence,
    AllocationSpec,
    ExplicitNodesSpec,
    InPsetSpec,
    NaiveSelector,
    NodeSelector,
    PsetRoundRobinSpec,
)
from repro.coordinator.graph import QueryGraph, SPDef
from repro.hardware.environment import BACKEND, BLUEGENE, FRONTEND
from repro.hardware.node import Node
from repro.util.errors import AllocationError, HardwareError
from repro.util.units import MEGA

__all__ = ["PlanVerifier", "verify_plan"]


def _graph_of(plan: Any) -> QueryGraph:
    """Accept a DeploymentPlan, PlacedPlan, or bare QueryGraph."""
    graph = getattr(plan, "graph", plan)
    if not isinstance(graph, QueryGraph):
        raise TypeError(f"cannot verify {plan!r}: no query graph found")
    return graph


class PlanVerifier:
    """Verifies plans against one (mutable, private) environment snapshot.

    Verifying a plan acquires its nodes *in the snapshot*, so verifying
    several plans through one verifier checks them as concurrent
    deployments: a node taken by an earlier plan surfaces as ``SCSQ201``
    for a later one.  Use a fresh verifier (or :func:`verify_plan`) for
    independent checks.
    """

    def __init__(
        self,
        snapshot: Optional[EnvironmentSnapshot] = None,
        selector: Optional[NodeSelector] = None,
    ) -> None:
        self.snapshot = snapshot or EnvironmentSnapshot.from_config()
        self.selector = selector or NaiveSelector()
        #: node_id -> sp label, for nodes acquired by earlier verified plans.
        self._owners: Dict[str, str] = {
            node_id: "a pre-existing deployment"
            for node_id in self.snapshot.busy_nodes()
        }

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def verify(
        self,
        plan: Any,
        label: str = "query",
        selector: Optional[NodeSelector] = None,
    ) -> AnalysisReport:
        """Run every pass over one plan; returns the full report.

        ``selector`` overrides the verifier's node-selection algorithm for
        this plan (pass the deployment's strategy selector to predict its
        placement exactly).
        """
        report = AnalysisReport(label=label)
        graph = _graph_of(plan).instantiate()
        structure_ok = self._check_structure(graph, report)
        if not structure_ok:
            return report  # placement over a broken graph compounds noise
        placements = self._check_placement(graph, report, label, selector)
        self._check_locality(graph, report, placements)
        self._check_capacity(graph, report, placements)
        return report

    # ------------------------------------------------------------------
    # Pass 1: graph structure (SCSQ00x)
    # ------------------------------------------------------------------
    def _check_structure(self, graph: QueryGraph, report: AnalysisReport) -> bool:
        ok = True
        if graph.root_plan is None:
            report.add(diagnostic("SCSQ001", "query graph has no root plan"))
            return False
        for sp in graph.sps.values():
            if sp.plan is None:
                report.add(
                    diagnostic(
                        "SCSQ001",
                        f"stream process {sp.sp_id!r} has no compiled subquery plan",
                        sp_id=sp.sp_id,
                        span=sp.span,
                    )
                )
                ok = False
        if not ok:
            return False

        # Unknown producers (SCSQ002).
        consumed: Set[str] = set()
        subscriptions: Dict[str, List[str]] = {}
        for sp in graph.sps.values():
            assert sp.plan is not None
            producers = graph.producers_of(sp.plan)
            subscriptions[sp.sp_id] = producers
            for producer in producers:
                if producer not in graph.sps:
                    report.add(
                        diagnostic(
                            "SCSQ002",
                            f"stream process {sp.sp_id!r} subscribes to unknown "
                            f"stream process {producer!r}",
                            sp_id=sp.sp_id,
                            span=sp.span,
                        )
                    )
                    ok = False
                consumed.add(producer)
        for producer in graph.producers_of(graph.root_plan):
            if producer not in graph.sps:
                report.add(
                    diagnostic(
                        "SCSQ002",
                        "the client manager's root plan subscribes to unknown "
                        f"stream process {producer!r}",
                    )
                )
                ok = False
            consumed.add(producer)
        if not ok:
            return False

        # Cycles (SCSQ003): depth-first search over sp -> producer edges.
        state: Dict[str, int] = {}  # 0 = visiting, 1 = done

        def visit(sp_id: str, trail: Tuple[str, ...]) -> Optional[Tuple[str, ...]]:
            if state.get(sp_id) == 1:
                return None
            if state.get(sp_id) == 0:
                return trail[trail.index(sp_id):] + (sp_id,)
            state[sp_id] = 0
            for producer in subscriptions[sp_id]:
                cycle = visit(producer, trail + (sp_id,))
                if cycle is not None:
                    return cycle
            state[sp_id] = 1
            return None

        for sp_id in graph.sps:
            cycle = visit(sp_id, ())
            if cycle is not None:
                report.add(
                    diagnostic(
                        "SCSQ003",
                        "subscription cycle "
                        + " -> ".join(cycle)
                        + ": the streams can never end and the query deadlocks",
                        sp_id=cycle[0],
                        span=graph.sps[cycle[0]].span,
                    )
                )
                return False

        # Dangling streams (SCSQ004, warning): produced but never consumed.
        for sp in graph.sps.values():
            if sp.sp_id not in consumed:
                report.add(
                    diagnostic(
                        "SCSQ004",
                        f"the output stream of {sp.sp_id!r} is never consumed "
                        "(dangling stream process)",
                        sp_id=sp.sp_id,
                        span=sp.span,
                    )
                )
        return True

    # ------------------------------------------------------------------
    # Pass 2: static placement simulation (SCSQ1xx, SCSQ201)
    # ------------------------------------------------------------------
    def _resolve_specs(
        self, graph: QueryGraph, report: AnalysisReport
    ) -> Tuple[Dict[int, AllocationSequence], bool]:
        """Mirror ``resolve_allocations``: one resolution per spec instance."""
        resolved: Dict[int, AllocationSequence] = {}
        ok = True
        for sp in graph.sps.values():
            allocation = sp.allocation
            if not isinstance(allocation, AllocationSpec):
                continue
            if id(allocation) in resolved:
                continue
            try:
                resolved[id(allocation)] = allocation.resolve(self.snapshot)
            except HardwareError as exc:
                code = "SCSQ101"
                if isinstance(allocation, InPsetSpec):
                    code = "SCSQ105"
                elif isinstance(allocation, PsetRoundRobinSpec):
                    code = "SCSQ106"
                report.add(diagnostic(code, str(exc), sp_id=sp.sp_id, span=sp.span))
                ok = False
            except AllocationError as exc:
                report.add(diagnostic("SCSQ102", str(exc), sp_id=sp.sp_id, span=sp.span))
                ok = False
        return resolved, ok

    def _check_placement(
        self,
        graph: QueryGraph,
        report: AnalysisReport,
        label: str,
        selector: Optional[NodeSelector] = None,
    ) -> Dict[str, Node]:
        placements: Dict[str, Node] = {}
        selector = selector or self.selector
        resolved, ok = self._resolve_specs(graph, report)
        if not ok:
            return placements
        acquired_here: Set[str] = set()
        for sp in graph.sps.values():
            try:
                cndb = self.snapshot.cndb(sp.cluster)
            except HardwareError as exc:
                report.add(diagnostic("SCSQ101", str(exc), sp_id=sp.sp_id, span=sp.span))
                continue
            allocation = sp.allocation
            if isinstance(allocation, AllocationSpec):
                allocation = resolved[id(allocation)]
            try:
                if isinstance(allocation, AllocationSequence):
                    node = self._select_constrained(
                        sp, allocation, cndb, acquired_here, report
                    )
                elif allocation is None:
                    node = selector.select(cndb)
                else:  # unknown directive type: leave to the deployer
                    node = None
            except (AllocationError, HardwareError) as exc:
                code = "SCSQ107" if allocation is None else "SCSQ104"
                report.add(diagnostic(code, str(exc), sp_id=sp.sp_id, span=sp.span))
                continue
            if node is None:
                continue
            node.acquire()
            acquired_here.add(node.node_id)
            self._owners.setdefault(node.node_id, f"{label}:{sp.sp_id}")
            placements[sp.sp_id] = node
        # The client manager's own collector RP lands on fe:0 (Linux,
        # unbounded) — acquire it too so the replay stays exact.
        try:
            self.snapshot.node(FRONTEND, 0).acquire()
        except HardwareError:
            pass  # non-default topology without a front end: nothing to check
        return placements

    def _select_constrained(
        self,
        sp: SPDef,
        sequence: AllocationSequence,
        cndb: Any,
        acquired_here: Set[str],
        report: AnalysisReport,
    ) -> Optional[Node]:
        """Select via an allocation sequence, classifying every failure."""
        constant = sequence.constant_node
        if constant is None:
            # Non-constant: any failure is sequence exhaustion (SCSQ104) —
            # lookup of a nonexistent member raises through select() too,
            # but carries its own message; classify it as SCSQ102.
            try:
                return sequence.select(cndb)
            except AllocationError as exc:
                if "does not exist" in str(exc):
                    report.add(
                        diagnostic("SCSQ102", str(exc), sp_id=sp.sp_id, span=sp.span)
                    )
                else:
                    report.add(
                        diagnostic(
                            "SCSQ104",
                            f"allocation sequence of {sp.sp_id!r} is exhausted: {exc}",
                            sp_id=sp.sp_id,
                            span=sp.span,
                        )
                    )
                return None
        # Constant node: distinguish missing / over-subscribed / taken by
        # another plan, which the deployer folds into one AllocationError.
        try:
            node = cndb.node(constant)
        except HardwareError:
            report.add(
                diagnostic(
                    "SCSQ102",
                    f"stream process {sp.sp_id!r} explicitly selects node "
                    f"{constant} of cluster {cndb.cluster!r}, which does not exist "
                    f"(cluster has nodes 0..{cndb.num_nodes() - 1})",
                    sp_id=sp.sp_id,
                    span=sp.span,
                )
            )
            return None
        if node.is_available:
            return node
        if node.node_id in acquired_here:
            report.add(
                diagnostic(
                    "SCSQ103",
                    f"node {node.node_id} is over-subscribed: {sp.sp_id!r} selects "
                    "it explicitly but this plan already placed a stream process "
                    "there, and the node accepts a single process",
                    sp_id=sp.sp_id,
                    span=sp.span,
                )
            )
        else:
            owner = self._owners.get(node.node_id, "another deployment")
            report.add(
                diagnostic(
                    "SCSQ201",
                    f"node {node.node_id} selected by {sp.sp_id!r} is already "
                    f"allocated by {owner}",
                    sp_id=sp.sp_id,
                    span=sp.span,
                )
            )
        return None

    # ------------------------------------------------------------------
    # Pass 3: pset locality (SCSQ301)
    # ------------------------------------------------------------------
    def _pinned_pset(self, sp: SPDef) -> Optional[int]:
        """The pset a *pinned* bg stream process is constrained to, if any."""
        if sp.cluster != BLUEGENE:
            return None
        allocation = sp.allocation
        if isinstance(allocation, InPsetSpec):
            return allocation.pset_id
        constant = None
        if isinstance(allocation, (ExplicitNodesSpec, AllocationSequence)):
            constant = allocation.constant_node
        if constant is None:
            return None
        try:
            return self.snapshot.node(BLUEGENE, constant).pset_id
        except HardwareError:
            return None

    def _check_locality(
        self, graph: QueryGraph, report: AnalysisReport, placements: Dict[str, Node]
    ) -> None:
        for sp in graph.sps.values():
            consumer_pset = self._pinned_pset(sp)
            if consumer_pset is None:
                continue
            assert sp.plan is not None
            for producer_id in graph.producers_of(sp.plan):
                producer = graph.sps.get(producer_id)
                if producer is None:
                    continue
                producer_pset = self._pinned_pset(producer)
                if producer_pset is None or producer_pset == consumer_pset:
                    continue
                report.add(
                    diagnostic(
                        "SCSQ301",
                        f"stream process {sp.sp_id!r} is pinned to pset "
                        f"{consumer_pset} but consumes {producer_id!r} pinned to "
                        f"pset {producer_pset}; the stream crosses pset "
                        "boundaries (longer torus routes, no shared I/O node)",
                        sp_id=sp.sp_id,
                        span=sp.span,
                    )
                )

    # ------------------------------------------------------------------
    # Pass 4: cost-model capacity bounds (SCSQ40x)
    # ------------------------------------------------------------------
    def _check_capacity(
        self, graph: QueryGraph, report: AnalysisReport, placements: Dict[str, Node]
    ) -> None:
        """Prove inbound fan-in link-bound from the calibrated cost model.

        Uses the placements the static simulation just computed (identical
        to what the deployer will do), so unconstrained stream processes
        participate too.
        """
        io = self.snapshot.params.io_node
        # Inbound edges: a be producer feeding a bg consumer over TCP.
        inbound: List[Tuple[str, str]] = []  # (producer, consumer)
        for sp in graph.sps.values():
            if sp.cluster != BLUEGENE or sp.sp_id not in placements:
                continue
            assert sp.plan is not None
            for producer_id in graph.producers_of(sp.plan):
                producer = graph.sps.get(producer_id)
                if producer is not None and producer.cluster == BACKEND:
                    inbound.append((producer_id, sp.sp_id))
        if not inbound:
            return
        # SCSQ401: connections sharing one I/O-node proxy.
        per_pset: Dict[int, List[Tuple[str, str]]] = {}
        for producer_id, consumer_id in inbound:
            pset = placements[consumer_id].pset_id
            if pset is not None:
                per_pset.setdefault(pset, []).append((producer_id, consumer_id))
        for pset in sorted(per_pset):
            edges = per_pset[pset]
            connections = len(edges)
            if connections < 2:
                continue
            bound = io.proxy_rate / (1.0 + io.connection_sharing_penalty * (connections - 1))
            consumers = sorted({consumer for _, consumer in edges})
            first = graph.sps[consumers[0]]
            report.add(
                diagnostic(
                    "SCSQ401",
                    f"{connections} inbound connections share the I/O-node proxy "
                    f"of pset {pset} (consumers: {', '.join(consumers)}); the "
                    "cost model bounds their aggregate bandwidth at "
                    f"{bound * 8.0 / MEGA:.0f} Mbps — spread receivers over "
                    "psets (psetrr()) to engage more I/O nodes",
                    sp_id=first.sp_id,
                    span=first.span,
                )
            )
        # SCSQ402 (info): several distinct back-end hosts share the ingress
        # uplink and pay the host-coordination penalty.
        hosts = sorted(
            {
                placements[producer_id].node_id
                for producer_id, _ in inbound
                if producer_id in placements
            }
        )
        if len(hosts) >= 2:
            factor = 1.0 / (1.0 + io.uplink_host_coordination * (len(hosts) - 1))
            report.add(
                diagnostic(
                    "SCSQ402",
                    f"{len(hosts)} back-end hosts ({', '.join(hosts)}) feed the "
                    "BlueGene ingress concurrently; the shared-uplink "
                    f"coordination penalty scales their rate by {factor:.2f}",
                )
            )


def verify_plan(
    plan: Any,
    env: Any = None,
    config: Any = None,
    label: str = "query",
    selector: Optional[NodeSelector] = None,
) -> AnalysisReport:
    """Verify one plan against a fresh snapshot (one-shot convenience).

    Args:
        plan: A :class:`~repro.scsql.plan.DeploymentPlan`,
            :class:`~repro.coordinator.deployer.PlacedPlan`, or bare
            :class:`~repro.coordinator.graph.QueryGraph`.
        env: Live environment to snapshot (detects cross-plan conflicts);
            mutually exclusive with ``config``.
        config: Topology to verify against when no environment exists
            (default: the paper's).
        label: Name used in the report and error messages.
        selector: Node selector the deployment will use (default naive).
    """
    if env is not None:
        snapshot = EnvironmentSnapshot.from_environment(env)
    else:
        snapshot = EnvironmentSnapshot.from_config(config)
    return PlanVerifier(snapshot, selector=selector).verify(plan, label=label)
