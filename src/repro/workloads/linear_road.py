"""A miniature Linear Road workload.

The paper's future work (§5): "Further measurements could be made using
benchmarks such as The Linear Road Benchmark."  This module provides a
scaled-down, deterministic Linear-Road-style workload: vehicles drive along
a segmented expressway emitting position reports ``(tick, vehicle, segment,
speed)``; an optional *accident* depresses speeds in one segment for a time
span, which the monitoring queries must detect (congestion => toll).

Reports are pre-partitioned by segment — matching both Linear Road's
per-segment detectors and SCSQ's parallelize-by-construction model (one
stream process per segment, as the paper parallelizes by receiver).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.util.errors import QueryExecutionError

#: A position report: (tick, vehicle id, segment, speed in mph).
PositionReport = Tuple[int, int, int, float]

FREE_FLOW_SPEED = 60.0
ACCIDENT_SPEED = 15.0
#: Linear Road's congestion rule of thumb: tolls below 40 mph average.
CONGESTION_SPEED = 40.0


@dataclass(frozen=True)
class Accident:
    """A speed-depressing incident in one segment over a tick range."""

    segment: int
    start_tick: int
    end_tick: int

    def covers(self, segment: int, tick: int) -> bool:
        return segment == self.segment and self.start_tick <= tick < self.end_tick


def position_reports(
    n_vehicles: int,
    n_segments: int,
    ticks: int,
    seed: int = 0,
    accident: Optional[Accident] = None,
    max_reports: Optional[int] = None,
) -> List[PositionReport]:
    """Generate the full report stream, ordered by tick then vehicle.

    Vehicles cycle through the segments at one segment per ~4 ticks and
    report every tick; speeds are free-flow with seeded noise, or accident
    speed inside an accident's span.

    ``max_reports`` rate-limits the stream: generation stops after that
    many reports (``0`` yields an empty stream).  The generated prefix is
    identical to the unlimited stream's — the cap truncates, it does not
    re-seed — so a rate-limited run is a prefix of the full run.
    """
    if n_vehicles < 1 or n_segments < 1 or ticks < 1:
        raise QueryExecutionError(
            f"need at least one vehicle/segment/tick, got "
            f"{n_vehicles}/{n_segments}/{ticks}"
        )
    if max_reports is not None and max_reports < 0:
        raise QueryExecutionError(
            f"max_reports must be >= 0, got {max_reports}"
        )
    rng = random.Random(seed)
    offsets = [rng.randrange(n_segments * 4) for _ in range(n_vehicles)]
    reports: List[PositionReport] = []
    for tick in range(ticks):
        for vid in range(n_vehicles):
            if max_reports is not None and len(reports) >= max_reports:
                return reports
            segment = ((tick + offsets[vid]) // 4) % n_segments
            if accident is not None and accident.covers(segment, tick):
                speed = ACCIDENT_SPEED + rng.uniform(-3.0, 3.0)
            else:
                speed = FREE_FLOW_SPEED + rng.uniform(-5.0, 5.0)
            reports.append((tick, vid, segment, round(speed, 2)))
    return reports


def partition_by_segment(
    reports: List[PositionReport], n_segments: int
) -> Dict[int, List[PositionReport]]:
    """Split the report stream into per-segment detector streams."""
    partitions: Dict[int, List[PositionReport]] = {s: [] for s in range(n_segments)}
    for report in reports:
        partitions[report[2]].append(report)
    return partitions


def segment_speeds(reports: List[PositionReport]) -> List[float]:
    """The speed column of a (single-segment) report stream."""
    return [report[3] for report in reports]


def expected_congested_windows(
    speeds: List[float], window: int, threshold: float = CONGESTION_SPEED
) -> int:
    """Reference result: tumbling-window averages below the toll threshold."""
    congested = 0
    for start in range(0, len(speeds) - window + 1, window):
        mean = sum(speeds[start : start + window]) / window
        if mean < threshold:
            congested += 1
    return congested
