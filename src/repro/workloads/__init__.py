"""Synthetic workloads: the data the paper's queries run over.

The real LOFAR antenna streams and file tables are not available; these
modules generate deterministic substitutes — numeric array streams, a text
corpus for distributed grep, and signal arrays for the radix2 FFT example.
"""

from repro.workloads.corpus import MARKER, expected_marker_count, filename, read_file
from repro.workloads.linear_road import (
    Accident,
    expected_congested_windows,
    partition_by_segment,
    position_reports,
    segment_speeds,
)
from repro.workloads.signals import make_signal_source, signal_stream, sinusoid_mixture

__all__ = [
    "MARKER",
    "filename",
    "read_file",
    "expected_marker_count",
    "sinusoid_mixture",
    "signal_stream",
    "make_signal_source",
    "Accident",
    "position_reports",
    "partition_by_segment",
    "segment_speeds",
    "expected_congested_windows",
]
