"""Synthetic text corpus for the distributed grep (mapreduce) example.

The paper's mapreduce query greps "a pattern on the i-th filename in a
table" across 1000 parallel processes.  We have no such file table, so this
module generates a deterministic synthetic corpus: ``filename(i)`` names a
virtual file whose lines are generated pseudo-randomly from a seed derived
from the file name.  A known marker pattern is planted on a deterministic
subset of lines so example and test results are checkable.
"""

from __future__ import annotations

import random
from typing import List

from repro.util.errors import QueryExecutionError

#: Pattern planted in the corpus; greps for this have verifiable counts.
MARKER = "NEEDLE"

_WORDS = (
    "antenna", "baseline", "beam", "channel", "correlator", "dipole",
    "fringe", "gain", "image", "jansky", "kelvin", "lobe", "noise",
    "pulsar", "quasar", "receiver", "spectrum", "telescope", "uvplane",
    "visibility",
)

_DEFAULT_LINES = 200
_MARKER_EVERY = 17  # plant the marker on every 17th line


def filename(i: int) -> str:
    """The i-th filename of the corpus table (the paper's ``filename(i)``)."""
    return f"stream-log-{int(i):04d}.txt"


def read_file(name: str, lines: int = _DEFAULT_LINES) -> List[str]:
    """Generate the lines of a corpus file, deterministically from its name.

    Raises:
        QueryExecutionError: If ``name`` is not a corpus filename.
    """
    if not name.startswith("stream-log-") or not name.endswith(".txt"):
        raise QueryExecutionError(f"unknown corpus file {name!r}")
    if lines < 0:
        raise QueryExecutionError(f"line count must be >= 0, got {lines}")
    rng = random.Random(name)
    result = []
    for line_no in range(lines):
        words = rng.choices(_WORDS, k=rng.randint(4, 10))
        if line_no % _MARKER_EVERY == 0:
            words.insert(rng.randrange(len(words) + 1), MARKER)
        result.append(f"{name}:{line_no}: " + " ".join(words))
    return result


def expected_marker_count(lines: int = _DEFAULT_LINES) -> int:
    """How many lines of one corpus file contain :data:`MARKER`."""
    return (lines + _MARKER_EVERY - 1) // _MARKER_EVERY
