"""Signal generators for the radix2 FFT example.

The paper's radix2 query function consumes "a stream of 1D arrays of signal
data" from a receiver.  These factories produce deterministic synthetic
signals — mixtures of sinusoids plus seeded noise — suitable for verifying
the parallel FFT against ``numpy.fft.fft``.
"""

from __future__ import annotations

from typing import Iterator, List, Sequence, Tuple

import numpy as np

from repro.util.errors import QueryExecutionError


def sinusoid_mixture(
    n_points: int,
    tones: Sequence[Tuple[float, float]],
    noise: float = 0.0,
    seed: int = 0,
) -> np.ndarray:
    """One signal array: a sum of (frequency-bin, amplitude) tones + noise.

    Frequencies are expressed as FFT bin numbers, so a tone at bin k shows
    up as a spike at index k of the FFT — handy for assertions.
    """
    if n_points < 2 or n_points & (n_points - 1):
        raise QueryExecutionError(f"signal length must be a power of two >= 2, got {n_points}")
    t = np.arange(n_points)
    signal = np.zeros(n_points, dtype=float)
    for bin_number, amplitude in tones:
        signal += amplitude * np.cos(2 * np.pi * bin_number * t / n_points)
    if noise:
        rng = np.random.default_rng(seed)
        signal += noise * rng.standard_normal(n_points)
    return signal


def signal_stream(
    count: int, n_points: int = 1024, noise: float = 0.05, seed: int = 0
) -> List[np.ndarray]:
    """A finite stream of ``count`` signal arrays with varying tone content.

    ``count=0`` is a valid (empty) stream — a query over it must still
    terminate cleanly on the end-of-stream marker alone.
    """
    if count < 0:
        raise QueryExecutionError(f"signal count must be >= 0, got {count}")
    arrays = []
    for k in range(count):
        tones = [(1 + (k % (n_points // 4)), 1.0), (n_points // 8, 0.5)]
        arrays.append(
            sinusoid_mixture(n_points, tones, noise=noise, seed=seed + k)
        )
    return arrays


def make_signal_source(count: int, n_points: int = 1024, seed: int = 0):
    """Zero-argument factory for the engine's external source registry."""

    def factory() -> Iterator[np.ndarray]:
        return iter(signal_stream(count, n_points=n_points, seed=seed))

    return factory
