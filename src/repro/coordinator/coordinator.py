"""Cluster coordinators.

"When the client manager identifies an SP, the sub-query of that SP is
registered with the coordinator of the cluster where the sub-query is to be
executed ... Then, the coordinator starts an RP to execute the sub-query"
(paper section 2.2).  One coordinator per cluster (feCC, beCC, bgCC) owns
the cluster's CNDB and performs node selection.

The BlueGene peculiarity is preserved: compute nodes cannot accept
connections, so the bgCC "retrieves new sub-queries from the feCC by
polling"; registrations destined for the BlueGene transit the front-end
coordinator and pay a polling latency before the RP exists.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional

from repro.coordinator.allocation import AllocationSequence, NaiveSelector, NodeSelector
from repro.engine.rp import RunningProcess
from repro.engine.settings import ExecutionSettings
from repro.engine.sqep import OpSpec
from repro.hardware.environment import BLUEGENE, Environment
from repro.hardware.node import Node
from repro.util.errors import AllocationError, HardwareError

#: Simulated delay of one bgCC poll of the feCC registration queue.
BG_POLL_INTERVAL = 1e-3


class ClusterCoordinator:
    """Registration point and node selector for one cluster."""

    def __init__(
        self,
        env: Environment,
        cluster: str,
        selector: Optional[NodeSelector] = None,
    ):
        self.env = env
        self.cluster = cluster
        self.cndb = env.cndb(cluster)
        self.selector = selector or NaiveSelector()
        self.started_rps: List[RunningProcess] = []
        self._ids = itertools.count()

    @property
    def registration_latency(self) -> float:
        """Simulated setup latency of registering one subquery here.

        Only the BlueGene pays a polling delay; direct coordinators accept
        registrations immediately.
        """
        return BG_POLL_INTERVAL if self.cluster == BLUEGENE else 0.0

    def select_node(
        self,
        allocation: Optional[AllocationSequence],
        selector: Optional[NodeSelector] = None,
    ) -> Node:
        """Choose the node for a new RP, honouring an allocation sequence.

        ``selector`` overrides this coordinator's default node-selection
        algorithm for unconstrained placements (a deployment's placement
        strategy may differ from the coordinator's standing policy).
        """
        if allocation is not None:
            return allocation.select(self.cndb)
        try:
            return (selector or self.selector).select(self.cndb)
        except HardwareError as exc:  # normalized error type for callers
            raise AllocationError(str(exc)) from exc

    def start_rp(
        self,
        sp_id: str,
        plan: OpSpec,
        settings: ExecutionSettings,
        allocation: Optional[AllocationSequence] = None,
        selector: Optional[NodeSelector] = None,
        rp_id: Optional[str] = None,
    ) -> RunningProcess:
        """Register a subquery and start its running process.

        ``rp_id`` overrides the running process's id (deployments hosting
        several concurrent queries prefix ids to keep stream ids unique);
        the default is the stream process id itself.
        """
        node = self.select_node(allocation, selector)
        rp = RunningProcess(
            rp_id=rp_id if rp_id is not None else sp_id,
            env=self.env,
            node=node,
            plan=plan,
            settings=settings,
        )
        self.started_rps.append(rp)
        return rp


class CoordinatorRegistry:
    """All cluster coordinators of one environment (feCC, beCC, bgCC)."""

    def __init__(self, env: Environment, selector: Optional[NodeSelector] = None):
        self.env = env
        self.coordinators: Dict[str, ClusterCoordinator] = {
            name: ClusterCoordinator(env, name, selector)
            for name in env.cluster_names()
        }

    def __getitem__(self, cluster: str) -> ClusterCoordinator:
        try:
            return self.coordinators[cluster]
        except KeyError:
            raise AllocationError(
                f"no coordinator for cluster {cluster!r}; "
                f"known clusters: {sorted(self.coordinators)}"
            ) from None
