"""The deployer: explicit place -> deploy -> run -> teardown lifecycle.

This is the coordinator-layer half of the compile-once query lifecycle
(parse -> compile -> **place -> deploy -> run -> teardown**).  The SCSQL
front end produces an environment-independent
:class:`~repro.scsql.plan.DeploymentPlan`; the :class:`Deployer` binds it
to one live :class:`~repro.hardware.environment.Environment`:

* :meth:`Deployer.place` applies a :class:`PlacementStrategy` — the
  paper's node-selection algorithms (:class:`SelectorPlacement`) or the
  cost-based optimizer (:class:`CostBasedPlacement`) — to a fresh
  instantiation of the plan's graph, yielding a :class:`PlacedPlan`.
* :meth:`Deployer.deploy` resolves the symbolic allocation constraints
  against the environment's CNDBs, asks each cluster coordinator to start
  the running processes, and wires the subscription edges — a live
  :class:`Deployment`.
* :meth:`Deployment.run` drives one query to completion (the classic
  single-query path), while :meth:`Deployment.start` /
  :meth:`Deployment.finish` let several deployments share one simulation —
  the concurrent-CQ path of :class:`~repro.core.multiquery.MultiQuerySession`.
* :meth:`Deployment.teardown` stops leftover RPs, returns their nodes to
  the CNDBs, and restores the CNDB round-robin cursors to their
  deploy-time positions, so redeploying on the same environment neither
  raises nor shifts placement.

"When a user submits a CQ, it is optimized and started in the client
manager" (paper section 2.2) — :class:`~repro.coordinator.client_manager.
ClientManager` remains as the one-shot facade over this lifecycle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, Iterator, List, Optional

from repro.coordinator.allocation import (
    AllocationSequence,
    AllocationSpec,
    ExplicitNodesSpec,
    NaiveSelector,
    NodeSelector,
)
from repro.coordinator.coordinator import CoordinatorRegistry
from repro.coordinator.graph import QueryGraph
from repro.engine.control import StopToken
from repro.engine.monitor import RPStatistics, snapshot
from repro.engine.objects import END_OF_STREAM
from repro.engine.rp import RunningProcess
from repro.engine.settings import ExecutionSettings
from repro.hardware.environment import FRONTEND, Environment
from repro.obs.metrics import MetricsSnapshot
from repro.util.errors import PlanVerificationError, QueryExecutionError

if TYPE_CHECKING:
    from repro.analysis.diagnostics import AnalysisReport
    from repro.hardware.node import Node
    from repro.sim.events import Process

#: Reserved id of the deployment's own collector RP (the client manager's
#: root plan interpreter).
ROOT_RP_ID = "__client_manager__"


@dataclass
class MigrationRecord:
    """The audit trail of one live migration attempt.

    Attributes:
        sp_id: The migrated stream process (unprefixed id).
        source: Node id the SP ran on before the migration.
        target: Node id the optimizer chose (where the SP runs after a
            successful migration; a rolled-back attempt stays on ``source``).
        rp_prefix: Prefix of the new deployment generation (``"<label>+gN/"``).
        time: Simulated second the migration was initiated.
        ok: True when the migrated plan passed verification and deployed.
        rolled_back: True when verification rejected the move and the
            deployment was restored at its original placement.
        detail: Human-readable outcome (the verifier's complaint on rollback).
        snapshot: Live operator state captured just before the old
            generation was quiesced (:meth:`Deployment.snapshot_state`).
    """

    sp_id: str
    source: str
    target: str
    rp_prefix: str
    time: float
    ok: bool
    rolled_back: bool = False
    detail: str = ""
    snapshot: Dict[str, dict] = field(default_factory=dict)


@dataclass
class ExecutionReport:
    """Everything a measurement needs to know about one query run."""

    result: List[Any]
    """The objects the root select produced, in arrival order."""

    duration: float
    """Simulated seconds from query start to final result delivery."""

    rp_placements: Dict[str, str] = field(default_factory=dict)
    """Stream process id -> node id, for topology assertions."""

    bytes_sent: Dict[str, int] = field(default_factory=dict)
    """Stream process id -> payload bytes its senders pushed."""

    torus_bytes: int = 0
    """Total payload bytes carried by the BlueGene torus."""

    ingress_bytes: int = 0
    """Total payload bytes injected into the BlueGene over TCP."""

    source_switches: int = 0
    """Receiver co-processor source switches (merging overhead indicator)."""

    stopped: bool = False
    """True when the query was terminated by user intervention rather than
    by its streams ending (the result holds whatever arrived before the
    stop)."""

    rp_statistics: Dict[str, RPStatistics] = field(default_factory=dict)
    """Per-RP monitoring snapshots (paper Figure 3, responsibility v)."""

    metrics: Optional[MetricsSnapshot] = None
    """Frozen observability metrics of the run, when the environment was
    created with an :class:`~repro.obs.Instrumentation` (None otherwise)."""

    def describe(self) -> str:
        """Human-readable execution summary: result, time, per-RP activity."""
        lines = [
            f"result: {self.result!r}",
            f"duration: {self.duration * 1e3:.3f} ms simulated"
            + (" (stopped)" if self.stopped else ""),
        ]
        for rp_id in sorted(self.rp_statistics):
            lines.append(self.rp_statistics[rp_id].describe())
        return "\n".join(lines)

    @property
    def scalar_result(self) -> Any:
        """The single value of a one-element result stream.

        Raises:
            QueryExecutionError: If the result is not exactly one object.
        """
        if len(self.result) != 1:
            raise QueryExecutionError(
                f"expected a single result object, got {len(self.result)}"
            )
        return self.result[0]


# ----------------------------------------------------------------------
# Allocation resolution
# ----------------------------------------------------------------------
def resolve_allocations(graph: QueryGraph, env: Environment) -> None:
    """Materialize symbolic allocation specs against ``env``, in place.

    Each :class:`~repro.coordinator.allocation.AllocationSpec` *instance*
    resolves exactly once per call — the members of one ``spv()`` share one
    spec instance, so they end up consuming one shared stateful sequence,
    matching the paper's semantics (and the former compile-time behaviour
    bit for bit).  Already-resolved sequences pass through untouched, so
    the function is idempotent.

    Raises:
        PlanVerificationError: When an explicit allocation names a node the
            target environment's CNDB does not contain.  Checked eagerly
            here — before any RP starts — so a typo like ``sp(..., 'bg',
            999)`` fails with the offending node id instead of surfacing as
            an :class:`~repro.util.errors.AllocationError` deep inside node
            selection, halfway through a partially started deployment.
    """
    resolved: Dict[int, AllocationSequence] = {}
    for sp in graph.sps.values():
        allocation = sp.allocation
        if isinstance(allocation, ExplicitNodesSpec):
            cndb = env.cndb(sp.cluster)
            known = {node.index for node in cndb.all_nodes()}
            missing = [index for index in allocation.nodes if index not in known]
            if missing:
                from repro.analysis.diagnostics import diagnostic

                rendered = ", ".join(str(index) for index in missing)
                raise PlanVerificationError(
                    f"stream process {sp.sp_id!r} explicitly selects node(s) "
                    f"{rendered} absent from the CNDB of cluster "
                    f"{sp.cluster!r} (it has {cndb.num_nodes()} nodes)",
                    diagnostics=[
                        diagnostic(
                            "SCSQ102",
                            f"stream process {sp.sp_id!r} explicitly selects "
                            f"node {index} of cluster {sp.cluster!r}, which "
                            "does not exist",
                            sp_id=sp.sp_id,
                            span=sp.span,
                        )
                        for index in missing
                    ],
                )
        if isinstance(allocation, AllocationSpec):
            sequence = resolved.get(id(allocation))
            if sequence is None:
                sequence = resolved[id(allocation)] = allocation.resolve(env)
            sp.allocation = sequence


# ----------------------------------------------------------------------
# Placement strategies
# ----------------------------------------------------------------------
class PlacementStrategy:
    """How stream processes without explicit allocations get their nodes.

    Explicit allocation sequences in the query always win (the paper's
    rule); a strategy only governs the unconstrained stream processes —
    either by *pinning* them during :meth:`prepare` (cost-based placement)
    or by nominating a :class:`~repro.coordinator.allocation.NodeSelector`
    the coordinators consult at deploy time (selector placement).
    """

    name = "strategy"

    @property
    def selector(self) -> Optional[NodeSelector]:
        """Node selector the coordinators should use (None: their default)."""
        return None

    def prepare(
        self, graph: QueryGraph, env: Environment, settings: ExecutionSettings
    ) -> None:
        """Annotate ``graph`` (e.g. pin allocations) before deployment."""


class SelectorPlacement(PlacementStrategy):
    """Placement by a node-selection algorithm, decided at deploy time.

    This is the paper's default pipeline: the cluster coordinators pick
    "the next available node" (naive) — or any other
    :class:`~repro.coordinator.allocation.NodeSelector`, e.g. the
    knowledge-based policy of the ablation study — as each RP starts.
    """

    def __init__(self, selector: Optional[NodeSelector] = None):
        self._selector = selector or NaiveSelector()

    @property
    def name(self) -> str:  # type: ignore[override]
        return f"selector:{self._selector.name}"

    @property
    def selector(self) -> Optional[NodeSelector]:
        return self._selector

    def prepare(
        self, graph: QueryGraph, env: Environment, settings: ExecutionSettings
    ) -> None:
        pass  # selection happens per-RP at deploy time, on live CNDB state


class CostBasedPlacement(PlacementStrategy):
    """Placement by the cost-based optimizer, pinned at place time.

    Runs :class:`~repro.optimizer.placement.CostBasedPlacer` over the
    instantiated graph, pinning every unconstrained stream process to the
    node that maximizes the predicted bottleneck bandwidth.
    """

    name = "cost-based"

    def __init__(self, settings: Optional[ExecutionSettings] = None):
        self._settings = settings

    def prepare(
        self, graph: QueryGraph, env: Environment, settings: ExecutionSettings
    ) -> None:
        from repro.optimizer.placement import CostBasedPlacer  # import cycle

        CostBasedPlacer(env, self._settings or settings).place(graph)


@dataclass
class PlacedPlan:
    """A plan bound to a placement decision, ready to deploy.

    The graph is a private instantiation (the source
    :class:`~repro.scsql.plan.DeploymentPlan` stays pristine), possibly
    carrying placer-pinned allocations; unresolved symbolic specs are
    materialized at deploy time.
    """

    graph: QueryGraph
    settings: ExecutionSettings
    selector: Optional[NodeSelector] = None
    strategy_name: str = "selector:naive"


# ----------------------------------------------------------------------
# Deployment
# ----------------------------------------------------------------------
class Deployment:
    """One continuous query deployed onto an environment.

    Construction *is* deployment: allocation specs are resolved, every
    stream process gets a running process on a coordinator-selected node,
    and subscription edges are wired.  The query then either runs alone
    (:meth:`run`) or cooperatively with other deployments sharing the
    environment's simulator (:meth:`start` + one ``sim.run()`` +
    :meth:`finish`).

    ``rp_prefix`` namespaces the running-process ids (and thereby stream
    ids) so concurrent deployments of identical plans stay distinct; the
    reported placements and statistics keep the *unprefixed* stream-process
    ids, matching the single-query reports.
    """

    def __init__(
        self,
        env: Environment,
        coordinators: CoordinatorRegistry,
        node: "Node",
        placed: PlacedPlan,
        rp_prefix: str = "",
    ):
        self.env = env
        self.coordinators = coordinators
        self.node = node
        self.graph = placed.graph
        self.settings = placed.settings
        self.rp_prefix = rp_prefix
        self.graph.validate()
        # Snapshot the CNDB round-robin cursors before any node selection,
        # so teardown() can rewind placement state to the deploy point.
        self._cursor_snapshot = {
            name: env.cndb(name)._rr_cursor for name in env.cluster_names()
        }
        resolve_allocations(self.graph, env)
        self.rps: Dict[str, RunningProcess] = {}
        setup_latency = 0.0
        for sp in self.graph.sps.values():
            coordinator = coordinators[sp.cluster]
            self.rps[sp.sp_id] = coordinator.start_rp(
                sp.sp_id,
                sp.plan,
                self.settings,
                allocation=sp.allocation,
                selector=placed.selector,
                rp_id=rp_prefix + sp.sp_id,
            )
            setup_latency = max(setup_latency, coordinator.registration_latency)
        assert self.graph.root_plan is not None  # validate() checked
        self.root = RunningProcess(
            rp_prefix + ROOT_RP_ID, env, node, self.graph.root_plan, self.settings
        )
        self.rps[ROOT_RP_ID] = self.root
        self._wire()
        self.setup_latency = setup_latency
        self.start_time: Optional[float] = None
        self._process = None
        self._collector = None
        self._stop_token: Optional[StopToken] = None
        self._torn_down = False
        # Per-deployment flow accounting: a completion listener scoped to
        # this deployment's streams, attached for its lifetime and detached
        # by teardown() (the leak sanitizer's SAN206 census flags it if a
        # teardown path ever forgets).
        self.flows_delivered = 0
        self.flow_bytes = 0
        self._flow_listener: Optional[Any] = None
        flows = env.obs.flows
        if flows.enabled:
            self._stream_sources = frozenset(
                rp.rp_id for rp in self.rps.values()
            )
            self._flow_listener = self._observe_flow
            flows.add_listener(self._observe_flow, owner=self.owner_tag)

    @property
    def owner_tag(self) -> str:
        """Identity of this deployment in the obs listener census."""
        return f"deployment:{self.rp_prefix.rstrip('/') or ROOT_RP_ID}"

    def _observe_flow(self, record: Any) -> None:
        source, _, _ = record.stream_id.partition("->")
        if source in self._stream_sources:
            self.flows_delivered += 1
            self.flow_bytes += record.nbytes

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def run(self, stop_after: Optional[float] = None) -> ExecutionReport:
        """Run this query to completion on a quiescent simulator.

        Finite queries run until their streams end.  ``stop_after`` arms a
        user stop at that simulated time — the paper's "explicit user
        intervention" — terminating every RP; the report then carries the
        partial result with ``stopped=True``.
        """
        stop_token = self._arm(stop_after)
        self.start_time = self.env.sim.now
        result, finished_at = self.env.sim.run_process(
            self._drive(stop_token), name=self.rp_prefix + "client-manager"
        )
        return self._report(result, finished_at, stop_token)

    def start(self, stop_after: Optional[float] = None) -> "Process":
        """Spawn this query's driver process without running the simulator.

        Used when several deployments share one environment: start each,
        run the simulator once, then :meth:`finish` each.  Returns the
        driver :class:`~repro.sim.core.Process`.
        """
        if self._process is not None:
            raise QueryExecutionError("deployment already started")
        self._stop_token = self._arm(stop_after)
        self.start_time = self.env.sim.now
        self._process = self.env.sim.process(
            self._drive(self._stop_token), name=self.rp_prefix + "client-manager"
        )
        # finish() re-raises the driver's failure; keep the kernel's
        # unhandled-exception check from firing first.
        self._process._add_callback(lambda event: setattr(event, "_defused", True))
        return self._process

    def finish(self) -> ExecutionReport:
        """Collect the report of a :meth:`start`-ed query after the run."""
        process = self._process
        if process is None:
            raise QueryExecutionError("deployment was never started")
        if not process.triggered:
            raise QueryExecutionError(
                f"deployment {self.rp_prefix or ROOT_RP_ID!r} never finished "
                "(simulator stopped early or deadlocked)"
            )
        if not process.ok:
            raise process.value
        result, finished_at = process.value
        return self._report(result, finished_at, self._stop_token)

    def teardown(self) -> None:
        """Release the deployment's resources back to the environment.

        Stops any still-live RP processes, returns every RP's node slot to
        its CNDB (normally-completed RPs already released theirs on join —
        this is idempotent), and rewinds the CNDB round-robin cursors to
        their deploy-time positions.  After teardown the environment hosts
        a redeployment of the same plan with identical placement.
        """
        if self._torn_down:
            return
        self._torn_down = True
        for rp in self.rps.values():
            rp.terminate()
            rp.release_node()
        for cluster, cursor in self._cursor_snapshot.items():
            self.env.cndb(cluster)._rr_cursor = cursor
        # Interrupt the collector: an external teardown (fault harness,
        # migration of a wedged query) would otherwise leave it blocked on
        # the root result store forever.  Only the collector is interrupted
        # directly — its failure propagates through _drive's any_of wait,
        # whose handler unwinds the driver; interrupting _drive as well
        # would orphan the pending condition event undefused.
        if self._collector is not None and self._collector.is_alive:
            self._collector.interrupt("deployment torn down")
        for process in (self._process, self._collector):
            if process is not None and process.is_alive:
                process._add_callback(
                    lambda event: setattr(event, "_defused", True)
                )
        # Terminated receivers never consume their EOS, so the in-flight
        # flow records of this deployment's streams would otherwise sit in
        # the recorder's table forever (SAN204 at quiescence).  Dropping is
        # a no-op for streams that ran to completion.
        flows = self.env.obs.flows
        if flows.enabled:
            for stream_id in self.stream_ids():
                flows.drop_stream(stream_id)
        if self._flow_listener is not None:
            self.env.obs.flows.remove_listener(self._flow_listener)
            self._flow_listener = None
        from repro.analysis import sanitize

        if sanitize.enabled():
            sanitize.audit_teardown(self)

    @property
    def torn_down(self) -> bool:
        return self._torn_down

    def stream_ids(self) -> List[str]:
        """Every wire stream this deployment's senders opened, sorted."""
        return sorted(
            sender.stream_id
            for rp in self.rps.values()
            for sender in rp.senders
        )

    def census(self) -> Dict[str, dict]:
        """Quiescence-relevant state of every RP (leak-sanitizer feed)."""
        return {rp_id: rp.census() for rp_id, rp in sorted(self.rps.items())}

    def snapshot_state(self) -> Dict[str, dict]:
        """Live operator state of every RP, keyed by unprefixed sp id.

        Captured by :meth:`Deployer.migrate` immediately before the old
        generation is quiesced; the record is what a warm-started fork
        would :meth:`~repro.engine.rp.RunningProcess.restore_state` from.
        """
        return {sp_id: rp.snapshot_state() for sp_id, rp in self.rps.items()}

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _arm(self, stop_after: Optional[float]) -> Optional[StopToken]:
        if stop_after is None:
            return None
        stop_token = StopToken(self.env.sim)
        stop_token.attach(self.rps.values())
        stop_token.stop_at(stop_after)
        return stop_token

    def _report(
        self,
        result: List[Any],
        finished_at: float,
        stop_token: Optional[StopToken],
    ) -> ExecutionReport:
        assert self.start_time is not None
        rp_statistics = {rp_id: snapshot(rp) for rp_id, rp in self.rps.items()}
        if self.env.obs.enabled:
            # Unify RP-level monitoring with the obs registry: the metrics
            # snapshot then carries the per-RP operator/stream counters.
            for stats in rp_statistics.values():
                stats.publish(self.env.obs.metrics)
        return ExecutionReport(
            result=result,
            duration=finished_at - self.start_time,
            rp_placements={rp_id: rp.node.node_id for rp_id, rp in self.rps.items()},
            bytes_sent={rp_id: rp.bytes_sent for rp_id, rp in self.rps.items()},
            torus_bytes=self.env.torus.bytes_on_wire,
            ingress_bytes=self.env.fabric.bytes_ingress,
            source_switches=self.env.torus.source_switches,
            stopped=stop_token.stopped if stop_token else False,
            rp_statistics=rp_statistics,
            metrics=self.env.obs.snapshot() if self.env.obs.enabled else None,
        )

    def _wire(self) -> None:
        """Build every RP and connect subscription edges to producers."""
        for rp in self.rps.values():
            for port in rp.build():
                try:
                    producer = self.rps[port.producer_sp]
                except KeyError:
                    raise QueryExecutionError(
                        f"RP {rp.rp_id} subscribes to unknown producer "
                        f"{port.producer_sp!r}"
                    ) from None
                producer.add_subscriber(rp, port.inbox)

    def _drive(self, stop_token: Optional[StopToken]) -> Iterator[Any]:
        """Main simulation process: start RPs, collect the root stream."""
        sim = self.env.sim
        if self.setup_latency:
            # bgCC polls the feCC for new subqueries before RPs exist there.
            yield sim.timeout(self.setup_latency)
        if self._torn_down:
            # Torn down before the driver's first step (e.g. a same-instant
            # fault replan): starting the RPs of a dead generation would
            # run a zombie query that wedges on its closed inboxes.
            if stop_token is not None:
                stop_token.cancel()
            return [], sim.now
        # Any RP process crash fails this event, aborting the query promptly
        # (otherwise a dead operator would leave its subscribers waiting on
        # a stream that never ends).
        failure = sim.event()
        for rp in self.rps.values():
            rp.start(failure=failure)
        collected: List[Any] = []
        collector = sim.process(
            self._collect(collected), name=self.rp_prefix + "cm-collector"
        )
        # Tracked so teardown() can interrupt it: a deployment torn down
        # externally (fault harness, migration of a wedged query) must not
        # leave its collector blocked on the root result store forever.
        self._collector = collector
        waits = [collector, failure]
        if stop_token is not None:
            waits.append(stop_token.event)
        try:
            yield sim.any_of(waits)
        except BaseException:
            # An RP crashed: terminate the query and surface the error.
            for rp in self.rps.values():
                rp.terminate()
            if collector.is_alive:
                collector.interrupt("query failed")
                collector._add_callback(lambda event: setattr(event, "_defused", True))
            raise
        if stop_token is not None:
            if stop_token.stopped and collector.is_alive:
                collector.interrupt("query stopped")
                collector._add_callback(lambda event: setattr(event, "_defused", True))
            else:
                stop_token.cancel()  # completed normally; stand the watchdog down
        # The measured query time ends when the result stream completes at
        # the client manager (stray scheduler events — e.g. pending flush
        # timers — must not count).
        finished_at = sim.now
        for rp in self.rps.values():
            yield from rp.join()
        return collected, finished_at

    def _collect(self, collected: List[Any]) -> Iterator[Any]:
        """Drain the root result stream into ``collected`` until EOS."""
        assert self.root.result_store is not None
        while True:
            obj = yield self.root.result_store.get()
            if obj is END_OF_STREAM:
                return
            collected.append(obj)

    def __repr__(self) -> str:
        return (
            f"<Deployment prefix={self.rp_prefix!r} sps={len(self.graph.sps)} "
            f"on {self.env!r}>"
        )


# ----------------------------------------------------------------------
# Deployer
# ----------------------------------------------------------------------
class Deployer:
    """Binds compiled deployment plans to one live environment.

    The explicit-lifecycle successor of the one-shot client manager::

        deployer = Deployer(env)
        placed = deployer.place(plan, CostBasedPlacement())
        deployment = deployer.deploy(placed)
        report = deployment.run()
        deployment.teardown()

    or, for the common single-query case, :meth:`run` does all four steps.
    """

    def __init__(self, env: Environment, coordinators: Optional[CoordinatorRegistry] = None):
        self.env = env
        self.coordinators = coordinators or CoordinatorRegistry(env)
        self.node = env.node(FRONTEND, 0)
        self.deployments: List[Deployment] = []

    def place(
        self,
        plan: Any,
        strategy: Optional[PlacementStrategy] = None,
        settings: Optional[ExecutionSettings] = None,
    ) -> PlacedPlan:
        """Apply a placement strategy to a plan (default: naive selection).

        ``plan`` is a :class:`~repro.scsql.plan.DeploymentPlan` or a bare
        :class:`~repro.coordinator.graph.QueryGraph`; either way the
        strategy works on a fresh instantiation, leaving the input pristine.
        """
        strategy = strategy or SelectorPlacement()
        effective = (
            settings
            if settings is not None
            else getattr(plan, "settings", None) or ExecutionSettings()
        )
        graph = plan.instantiate()
        graph.validate()
        strategy.prepare(graph, self.env, effective)
        return PlacedPlan(
            graph=graph,
            settings=effective,
            selector=strategy.selector,
            strategy_name=strategy.name,
        )

    def verify(
        self,
        plan: Any,
        strategy: Optional[PlacementStrategy] = None,
        settings: Optional[ExecutionSettings] = None,
        label: str = "query",
    ) -> "AnalysisReport":
        """Statically verify a plan against this environment's live state.

        Runs the :class:`~repro.analysis.verifier.PlanVerifier` pass
        pipeline over the plan (placed with ``strategy``, like
        :meth:`run` would) and a snapshot of the environment's *current*
        CNDB state — so nodes held by this deployer's live deployments
        surface as cross-plan conflicts (``SCSQ201``).  Pure: neither the
        plan nor the environment is touched.

        Returns the :class:`~repro.analysis.diagnostics.AnalysisReport`;
        call ``report.raise_if_failed()`` (or use the ``verify=`` mode of
        :meth:`deploy`/:meth:`run`) to enforce it.
        """
        from repro.analysis.snapshot import EnvironmentSnapshot
        from repro.analysis.verifier import PlanVerifier

        placed = plan if isinstance(plan, PlacedPlan) else self.place(plan, strategy, settings)
        snapshot = EnvironmentSnapshot.from_environment(self.env)
        return PlanVerifier(snapshot).verify(
            placed.graph, label=label, selector=placed.selector
        )

    def deploy(
        self, placed: PlacedPlan, rp_prefix: str = "", verify: Optional[str] = None
    ) -> Deployment:
        """Start and wire the running processes of a placed plan.

        ``verify`` enables static verification first: ``"warn"`` raises
        :class:`~repro.util.errors.PlanVerificationError` on verifier
        *errors* only, ``"strict"`` also on warnings.  ``None`` (default)
        deploys unchecked, matching the historical behaviour.
        """
        if verify is not None:
            if verify not in ("warn", "strict"):
                raise ValueError(f"verify mode must be 'warn' or 'strict', not {verify!r}")
            report = self.verify(placed, label=rp_prefix.rstrip("/") or "query")
            report.raise_if_failed(strict=verify == "strict")
        deployment = Deployment(
            self.env, self.coordinators, self.node, placed, rp_prefix=rp_prefix
        )
        self.deployments.append(deployment)
        return deployment

    def run(
        self,
        plan: Any,
        strategy: Optional[PlacementStrategy] = None,
        settings: Optional[ExecutionSettings] = None,
        stop_after: Optional[float] = None,
        verify: Optional[str] = None,
    ) -> ExecutionReport:
        """Place, deploy, and run one plan (the single-query fast path)."""
        placed = self.place(plan, strategy, settings)
        return self.deploy(placed, verify=verify).run(stop_after=stop_after)

    def teardown(self, deployment: Optional[Deployment] = None) -> None:
        """Tear down one deployment, or all of this deployer's (LIFO)."""
        if deployment is not None:
            deployment.teardown()
            return
        for live in reversed(self.deployments):
            live.teardown()

    # ------------------------------------------------------------------
    # Live migration
    # ------------------------------------------------------------------
    def _pinned_plan(
        self, plan: Any, settings: ExecutionSettings, assignment: Dict[str, int]
    ) -> PlacedPlan:
        """A fresh instantiation of ``plan`` with every SP pinned."""
        graph = plan.instantiate()
        graph.validate()
        for sp in graph.sps.values():
            sp.allocation = AllocationSequence(assignment[sp.sp_id])
        return PlacedPlan(
            graph=graph, settings=settings, selector=None,
            strategy_name="migration",
        )

    def migrate(
        self,
        deployment: Deployment,
        plan: Any,
        sp_id: str,
        target: int,
        rp_prefix: str,
        verify: Optional[str] = "warn",
    ) -> "tuple[Deployment, MigrationRecord]":
        """Move one stream process of a live deployment to another node.

        The migration lifecycle, end to end:

        1. **snapshot** — capture the live operator state of every RP
           (:meth:`Deployment.snapshot_state`), recorded for audit and
           warm-start.
        2. **quiesce** — :meth:`Deployment.teardown` terminates the old
           generation's RPs (closing their inboxes and aborting in-flight
           channels), returns their node slots, and rewinds the CNDB
           round-robin cursors.
        3. **re-verify** — the new placement (every SP pinned to its
           current node, the victim pinned to ``target``) passes through
           the static :class:`~repro.analysis.verifier.PlanVerifier`
           against the *live* environment before any RP starts, per
           ``verify`` (default ``"warn"``: errors raise).
        4. **redeploy** — the verified plan starts under ``rp_prefix``
           (a ``"<label>+gN/"`` generation suffix) and replays its streams
           from the sources, so a migrated query still produces the exact
           reference result.
        5. **rollback** — if verification rejects the move, the deployment
           is restored at its original placement (under the same new
           prefix, unverified: it is the placement that just ran).

        Verification cannot precede quiescence: the old generation's own
        node slots would surface as ``SCSQ201`` cross-plan conflicts
        against the new plan.  The rollback path is what bounds the cost
        of that ordering to one redeploy at the old placement.

        ``plan`` must be the deployment's source plan (anything with
        ``instantiate()``).  Returns ``(new_deployment, record)``; the
        caller starts the new deployment (:meth:`Deployment.start` /
        :meth:`Deployment.run`).

        Raises:
            QueryExecutionError: For an unknown/root ``sp_id``, a
                no-op ``target``, or a deployment already torn down.
        """
        if deployment.torn_down:
            raise QueryExecutionError("cannot migrate a torn-down deployment")
        if sp_id not in deployment.graph.sps:
            raise QueryExecutionError(
                f"unknown stream process {sp_id!r}; deployment has "
                f"{sorted(deployment.graph.sps)}"
            )
        current = {
            other_id: deployment.rps[other_id].node.index
            for other_id in deployment.graph.sps
        }
        source_node = deployment.rps[sp_id].node
        target_node = self.env.node(deployment.graph.sps[sp_id].cluster, target)
        if target == source_node.index:
            raise QueryExecutionError(
                f"migration of {sp_id!r} targets its current node "
                f"{source_node.node_id}"
            )
        snapshot = deployment.snapshot_state()
        now = self.env.sim.now
        moved = dict(current)
        moved[sp_id] = target
        deployment.teardown()
        try:
            replacement = self.deploy(
                self._pinned_plan(plan, deployment.settings, moved),
                rp_prefix=rp_prefix, verify=verify,
            )
        except PlanVerificationError as error:
            replacement = self.deploy(
                self._pinned_plan(plan, deployment.settings, current),
                rp_prefix=rp_prefix, verify=None,
            )
            record = MigrationRecord(
                sp_id=sp_id, source=source_node.node_id,
                target=target_node.node_id, rp_prefix=rp_prefix, time=now,
                ok=False, rolled_back=True,
                detail=str(error).splitlines()[0],
                snapshot=snapshot,
            )
            from repro.analysis import sanitize
            if sanitize.enabled():
                sanitize.audit_migrate(deployment, replacement, self.env)
            return replacement, record
        record = MigrationRecord(
            sp_id=sp_id, source=source_node.node_id,
            target=target_node.node_id, rp_prefix=rp_prefix, time=now,
            ok=True, detail=f"moved {sp_id} {source_node.node_id} -> "
            f"{target_node.node_id}",
            snapshot=snapshot,
        )
        from repro.analysis import sanitize
        if sanitize.enabled():
            sanitize.audit_migrate(deployment, replacement, self.env)
        return replacement, record
