"""Coordination layer: client manager, cluster coordinators, node selection.

Implements the control plane of the paper's Figure 2: the client manager on
the front-end cluster registers subqueries with the per-cluster
coordinators (feCC, beCC, bgCC), which select nodes from their CNDBs —
honouring user-supplied allocation sequences — and start running processes.
"""

from repro.coordinator.allocation import (
    AllocationDirective,
    AllocationSequence,
    AllocationSpec,
    ExplicitNodesSpec,
    InPsetSpec,
    KnowledgeBasedSelector,
    NaiveSelector,
    NodeSelector,
    PsetRoundRobinSpec,
    UrrSpec,
    constant_node_of,
    in_pset_sequence,
    pset_round_robin_sequence,
    urr_sequence,
)
from repro.coordinator.client_manager import ROOT_RP_ID, ClientManager, ExecutionReport
from repro.coordinator.coordinator import (
    BG_POLL_INTERVAL,
    ClusterCoordinator,
    CoordinatorRegistry,
)
from repro.coordinator.deployer import (
    CostBasedPlacement,
    Deployer,
    Deployment,
    PlacedPlan,
    PlacementStrategy,
    SelectorPlacement,
    resolve_allocations,
)
from repro.coordinator.graph import QueryGraph, SPDef

__all__ = [
    "AllocationDirective",
    "AllocationSequence",
    "AllocationSpec",
    "ExplicitNodesSpec",
    "UrrSpec",
    "InPsetSpec",
    "PsetRoundRobinSpec",
    "constant_node_of",
    "NodeSelector",
    "NaiveSelector",
    "KnowledgeBasedSelector",
    "urr_sequence",
    "in_pset_sequence",
    "pset_round_robin_sequence",
    "ClientManager",
    "ExecutionReport",
    "ROOT_RP_ID",
    "ClusterCoordinator",
    "CoordinatorRegistry",
    "BG_POLL_INTERVAL",
    "Deployer",
    "Deployment",
    "PlacedPlan",
    "PlacementStrategy",
    "SelectorPlacement",
    "CostBasedPlacement",
    "resolve_allocations",
    "QueryGraph",
    "SPDef",
]
