"""Allocation sequences and node-selection algorithms.

The paper's node placement (sections 2.2 and 2.4):

* Normally "a naive node selection algorithm is used, returning the next
  available node".
* "Optionally, the SCSQL user can constrain the allowed compute nodes ...
  by specifying a node allocation query ... This query returns a stream of
  allowable compute nodes in preferred allocation order, called the
  allocation sequence. ... The node selection algorithm will choose the
  first available node in the allocation sequence.  (In case the stream
  contains no available node, the query will fail.)"

An :class:`AllocationSequence` is consumed statefully: a ``spv()`` over n
subqueries hands the *same* sequence to n placements, so ``urr('be')``
lands successive RPs on successive cluster nodes while the constant
sequence ``1`` lands them all on node 1.

The module also provides the :class:`KnowledgeBasedSelector`, the improved
automatic policy the paper's conclusions call for (used by the ablation
benchmark): co-locate back-end senders, spread BlueGene receivers over
psets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Iterator, Optional, Tuple, Union

from repro.hardware.cndb import ComputeNodeDatabase
from repro.hardware.node import Node
from repro.util.errors import AllocationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (environment -> cndb)
    from repro.hardware.environment import Environment


class AllocationSequence:
    """A stateful stream of preferred node numbers for RP placement."""

    def __init__(self, source: Union[int, Iterable[int], Iterator[int]]):
        self._constant: Optional[int] = None
        self._iterator: Optional[Iterator[int]] = None
        if isinstance(source, bool):
            raise AllocationError(f"invalid allocation sequence {source!r}")
        if isinstance(source, int):
            self._constant = source
        else:
            self._iterator = iter(source)

    @property
    def is_constant(self) -> bool:
        return self._constant is not None

    @property
    def constant_node(self) -> Optional[int]:
        """The single node number of a constant sequence (None otherwise)."""
        return self._constant

    def select(self, cndb: ComputeNodeDatabase) -> Node:
        """The first available node of the sequence (consumes the stream).

        Raises:
            AllocationError: When the sequence contains no available node.
        """
        if self._constant is not None:
            node = self._lookup(cndb, self._constant)
            if not node.is_available:
                raise AllocationError(
                    f"explicitly selected node {self._constant} of cluster "
                    f"{cndb.cluster!r} is busy"
                )
            return node
        assert self._iterator is not None
        visited = set()
        while len(visited) < cndb.num_nodes():
            try:
                index = next(self._iterator)
            except StopIteration:
                break
            node = self._lookup(cndb, index)
            if node.is_available:
                return node
            visited.add(index)
        raise AllocationError(
            f"allocation sequence for cluster {cndb.cluster!r} contains no available node"
        )

    @staticmethod
    def _lookup(cndb: ComputeNodeDatabase, index: int) -> Node:
        try:
            return cndb.node(index)
        except Exception as exc:
            raise AllocationError(
                f"allocation sequence names node {index}, which does not exist "
                f"in cluster {cndb.cluster!r}"
            ) from exc


def urr_sequence(cndb: ComputeNodeDatabase) -> AllocationSequence:
    """``urr(cl)``: endless round-robin over the cluster's nodes."""

    def stream() -> Iterator[int]:
        while True:
            yield cndb.next_round_robin()

    return AllocationSequence(stream())


def in_pset_sequence(cndb: ComputeNodeDatabase, pset_id: int) -> AllocationSequence:
    """``inPset(k)``: the compute nodes of pset ``k``, in order."""
    return AllocationSequence(cndb.nodes_in_pset(pset_id))


def pset_round_robin_sequence(cndb: ComputeNodeDatabase) -> AllocationSequence:
    """``psetrr()``: successive nodes belong to successive psets."""
    return AllocationSequence(cndb.pset_round_robin())


# ----------------------------------------------------------------------
# Environment-independent allocation specs (the compiled form)
# ----------------------------------------------------------------------
class AllocationSpec:
    """Symbolic, picklable description of an allocation sequence.

    The SCSQL compiler reduces the third argument of ``sp()``/``spv()`` to
    a spec *without* consulting a live environment; a
    :class:`~repro.coordinator.deployer.Deployer` resolves the spec against
    the target environment's CNDBs at deploy time.  This is what makes a
    compiled :class:`~repro.scsql.plan.DeploymentPlan` environment-
    independent: the same plan deploys onto any compatible environment.

    Specs compiled from one ``sp()``/``spv()`` call site are a single
    shared instance; the deployer resolves each *instance* once per
    deployment, preserving the paper's semantics that an ``spv()`` over n
    subqueries consumes one shared stateful sequence.
    """

    def resolve(self, env: "Environment") -> AllocationSequence:
        """Materialize the stateful sequence against ``env``'s CNDBs."""
        raise NotImplementedError

    @property
    def constant_node(self) -> Optional[int]:
        """The single node number of a constant spec (None otherwise)."""
        return None


@dataclass(frozen=True)
class ExplicitNodesSpec(AllocationSpec):
    """A literal node number or bag of node numbers (e.g. ``'bg', 0``)."""

    nodes: Tuple[int, ...]

    def __post_init__(self):
        if not self.nodes:
            raise AllocationError("empty explicit allocation sequence")

    def resolve(self, env: "Environment") -> AllocationSequence:
        if len(self.nodes) == 1:
            return AllocationSequence(self.nodes[0])
        return AllocationSequence(list(self.nodes))

    @property
    def constant_node(self) -> Optional[int]:
        return self.nodes[0] if len(self.nodes) == 1 else None


@dataclass(frozen=True)
class UrrSpec(AllocationSpec):
    """``urr(cl)``: round-robin over the named cluster's nodes."""

    cluster: str

    def resolve(self, env: "Environment") -> AllocationSequence:
        return urr_sequence(env.cndb(self.cluster))


@dataclass(frozen=True)
class InPsetSpec(AllocationSpec):
    """``inPset(k)`` against the stream process's target cluster."""

    cluster: str
    pset_id: int

    def resolve(self, env: "Environment") -> AllocationSequence:
        return in_pset_sequence(env.cndb(self.cluster), self.pset_id)


@dataclass(frozen=True)
class PsetRoundRobinSpec(AllocationSpec):
    """``psetrr()`` against the stream process's target cluster."""

    cluster: str

    def resolve(self, env: "Environment") -> AllocationSequence:
        return pset_round_robin_sequence(env.cndb(self.cluster))


AllocationDirective = Union[AllocationSpec, AllocationSequence]
"""What :class:`~repro.coordinator.graph.SPDef.allocation` may hold: the
compiler emits symbolic specs; deployers (and tests building graphs by
hand) may also pin live sequences directly."""


def constant_node_of(allocation: Optional[AllocationDirective]) -> Optional[int]:
    """The pinned node number of a constant allocation, spec or sequence."""
    if allocation is None:
        return None
    return allocation.constant_node


class NodeSelector:
    """Strategy choosing a node when no allocation sequence constrains it."""

    name = "selector"

    def select(self, cndb: ComputeNodeDatabase) -> Node:
        raise NotImplementedError


class NaiveSelector(NodeSelector):
    """The paper's default: "returning the next available node"."""

    name = "naive"

    def select(self, cndb: ComputeNodeDatabase) -> Node:
        for _ in range(cndb.num_nodes()):
            node = cndb.node(cndb.next_round_robin())
            if node.is_available:
                return node
        raise AllocationError(f"no available node in cluster {cndb.cluster!r}")


class KnowledgeBasedSelector(NodeSelector):
    """Placement informed by the paper's measurement conclusions.

    * On Linux clusters, **co-locate**: "the node selection algorithm
      should attempt to co-locate back-end RPs to the same compute node
      until saturation" (observation 3) — pick the available node already
      running the most RPs.
    * On the BlueGene, **spread psets**: use many I/O nodes (observation 1)
      — pick an available node in the pset with the fewest placed RPs.
    """

    name = "knowledge"

    def select(self, cndb: ComputeNodeDatabase) -> Node:
        available = cndb.available_nodes()
        if not available:
            raise AllocationError(f"no available node in cluster {cndb.cluster!r}")
        if available[0].pset_id is None:
            # Linux cluster: co-locate until saturation.
            return max(available, key=lambda n: (n.running_processes, -n.index))
        # BlueGene: spread over psets (fewest busy RPs per pset first).
        load = {}
        for node in cndb.all_nodes():
            load[node.pset_id] = load.get(node.pset_id, 0) + node.running_processes
        return min(available, key=lambda n: (load[n.pset_id], n.index))
