"""The client manager: the one-shot facade over the deployment lifecycle.

"SCSQ users interact with the client manager, in which they specify CQs
using SCSQL ... When a user submits a CQ, it is optimized and started in
the client manager" (paper section 2.2).  :class:`ClientManager` keeps that
submit-and-run interface; the mechanics — allocation resolution, node
selection, RP wiring, the driver process — live in the explicit
:class:`~repro.coordinator.deployer.Deployment` lifecycle, which this
facade invokes as one compile-free place/deploy/run step.

:class:`~repro.coordinator.deployer.ExecutionReport` and ``ROOT_RP_ID``
are re-exported here for compatibility with their historical home.
"""

from __future__ import annotations

from typing import Optional

from repro.coordinator.coordinator import CoordinatorRegistry
from repro.coordinator.deployer import (
    ROOT_RP_ID,
    Deployment,
    ExecutionReport,
    PlacedPlan,
    resolve_allocations,
)
from repro.coordinator.graph import QueryGraph
from repro.engine.settings import ExecutionSettings
from repro.hardware.environment import FRONTEND, Environment

__all__ = ["ROOT_RP_ID", "ClientManager", "ExecutionReport"]


class ClientManager:
    """Deploys compiled query graphs onto an environment and runs them."""

    def __init__(self, env: Environment, coordinators: Optional[CoordinatorRegistry] = None):
        self.env = env
        self.coordinators = coordinators or CoordinatorRegistry(env)
        self.node = env.node(FRONTEND, 0)

    def execute(
        self,
        graph: QueryGraph,
        settings: Optional[ExecutionSettings] = None,
        stop_after: Optional[float] = None,
    ) -> ExecutionReport:
        """Run ``graph`` and report the results.

        Finite queries run until their streams end.  ``stop_after`` arms a
        user stop at that simulated time — the paper's "explicit user
        intervention" — terminating every RP; the report then carries the
        partial result with ``stopped=True``.  The environment's simulator
        must be quiescent; each execution drains the event queue.

        Unlike the explicit lifecycle, this facade works on ``graph``
        itself (symbolic allocations are resolved in place, so a graph
        executed twice keeps consuming the same stateful sequences) and
        performs no teardown — the CNDB cursors advance across executions,
        preserving the session-level round-robin behaviour.
        """
        settings = settings or ExecutionSettings()
        graph.validate()
        resolve_allocations(graph, self.env)
        placed = PlacedPlan(graph=graph, settings=settings)
        deployment = Deployment(self.env, self.coordinators, self.node, placed)
        return deployment.run(stop_after=stop_after)
