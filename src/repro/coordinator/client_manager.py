"""The client manager: deploys and drives continuous queries.

"SCSQ users interact with the client manager, in which they specify CQs
using SCSQL ... When a user submits a CQ, it is optimized and started in
the client manager" (paper section 2.2).  Here the client manager takes a
compiled :class:`~repro.coordinator.graph.QueryGraph`, asks each cluster
coordinator to start the stream processes, wires the subscription edges,
runs the simulation to completion, and collects the root result stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.coordinator.coordinator import CoordinatorRegistry
from repro.coordinator.graph import QueryGraph
from repro.engine.control import StopToken
from repro.engine.monitor import RPStatistics, snapshot
from repro.engine.objects import END_OF_STREAM
from repro.engine.rp import RunningProcess
from repro.engine.settings import ExecutionSettings
from repro.hardware.environment import FRONTEND, Environment
from repro.obs.metrics import MetricsSnapshot
from repro.util.errors import QueryExecutionError

#: Reserved id of the client manager's own collector RP.
ROOT_RP_ID = "__client_manager__"


@dataclass
class ExecutionReport:
    """Everything a measurement needs to know about one query run."""

    result: List[Any]
    """The objects the root select produced, in arrival order."""

    duration: float
    """Simulated seconds from query start to final result delivery."""

    rp_placements: Dict[str, str] = field(default_factory=dict)
    """Stream process id -> node id, for topology assertions."""

    bytes_sent: Dict[str, int] = field(default_factory=dict)
    """Stream process id -> payload bytes its senders pushed."""

    torus_bytes: int = 0
    """Total payload bytes carried by the BlueGene torus."""

    ingress_bytes: int = 0
    """Total payload bytes injected into the BlueGene over TCP."""

    source_switches: int = 0
    """Receiver co-processor source switches (merging overhead indicator)."""

    stopped: bool = False
    """True when the query was terminated by user intervention rather than
    by its streams ending (the result holds whatever arrived before the
    stop)."""

    rp_statistics: Dict[str, RPStatistics] = field(default_factory=dict)
    """Per-RP monitoring snapshots (paper Figure 3, responsibility v)."""

    metrics: Optional[MetricsSnapshot] = None
    """Frozen observability metrics of the run, when the environment was
    created with an :class:`~repro.obs.Instrumentation` (None otherwise)."""

    def describe(self) -> str:
        """Human-readable execution summary: result, time, per-RP activity."""
        lines = [
            f"result: {self.result!r}",
            f"duration: {self.duration * 1e3:.3f} ms simulated"
            + (" (stopped)" if self.stopped else ""),
        ]
        for rp_id in sorted(self.rp_statistics):
            lines.append(self.rp_statistics[rp_id].describe())
        return "\n".join(lines)

    @property
    def scalar_result(self) -> Any:
        """The single value of a one-element result stream.

        Raises:
            QueryExecutionError: If the result is not exactly one object.
        """
        if len(self.result) != 1:
            raise QueryExecutionError(
                f"expected a single result object, got {len(self.result)}"
            )
        return self.result[0]


class ClientManager:
    """Deploys compiled query graphs onto an environment and runs them."""

    def __init__(self, env: Environment, coordinators: Optional[CoordinatorRegistry] = None):
        self.env = env
        self.coordinators = coordinators or CoordinatorRegistry(env)
        self.node = env.node(FRONTEND, 0)

    def execute(
        self,
        graph: QueryGraph,
        settings: Optional[ExecutionSettings] = None,
        stop_after: Optional[float] = None,
    ) -> ExecutionReport:
        """Run ``graph`` and report the results.

        Finite queries run until their streams end.  ``stop_after`` arms a
        user stop at that simulated time — the paper's "explicit user
        intervention" — terminating every RP; the report then carries the
        partial result with ``stopped=True``.  The environment's simulator
        must be quiescent; each execution drains the event queue.
        """
        settings = settings or ExecutionSettings()
        graph.validate()
        rps: Dict[str, RunningProcess] = {}
        setup_latency = 0.0
        for sp in graph.sps.values():
            coordinator = self.coordinators[sp.cluster]
            rps[sp.sp_id] = coordinator.start_rp(
                sp.sp_id, sp.plan, settings, allocation=sp.allocation
            )
            setup_latency = max(setup_latency, coordinator.registration_latency)
        assert graph.root_plan is not None  # validate() checked
        root = RunningProcess(ROOT_RP_ID, self.env, self.node, graph.root_plan, settings)
        rps[ROOT_RP_ID] = root
        self._wire(rps)
        stop_token: Optional[StopToken] = None
        if stop_after is not None:
            stop_token = StopToken(self.env.sim)
            stop_token.attach(rps.values())
            stop_token.stop_at(stop_after)
        start_time = self.env.sim.now
        result, finished_at = self.env.sim.run_process(
            self._drive(rps, root, setup_latency, stop_token), name="client-manager"
        )
        rp_statistics = {rp_id: snapshot(rp) for rp_id, rp in rps.items()}
        if self.env.obs.enabled:
            # Unify RP-level monitoring with the obs registry: the metrics
            # snapshot then carries the per-RP operator/stream counters.
            for stats in rp_statistics.values():
                stats.publish(self.env.obs.metrics)
        report = ExecutionReport(
            result=result,
            duration=finished_at - start_time,
            rp_placements={rp_id: rp.node.node_id for rp_id, rp in rps.items()},
            bytes_sent={rp_id: rp.bytes_sent for rp_id, rp in rps.items()},
            torus_bytes=self.env.torus.bytes_on_wire,
            ingress_bytes=self.env.fabric.bytes_ingress,
            source_switches=self.env.torus.source_switches,
            stopped=stop_token.stopped if stop_token else False,
            rp_statistics=rp_statistics,
            metrics=self.env.obs.snapshot() if self.env.obs.enabled else None,
        )
        return report

    def _wire(self, rps: Dict[str, RunningProcess]) -> None:
        """Build every RP and connect subscription edges to producers."""
        for rp in rps.values():
            for port in rp.build():
                try:
                    producer = rps[port.producer_sp]
                except KeyError:
                    raise QueryExecutionError(
                        f"RP {rp.rp_id} subscribes to unknown producer "
                        f"{port.producer_sp!r}"
                    ) from None
                producer.add_subscriber(rp, port.inbox)

    def _drive(
        self,
        rps: Dict[str, RunningProcess],
        root: RunningProcess,
        setup_latency: float,
        stop_token: Optional[StopToken],
    ):
        """Main simulation process: start RPs, collect the root stream."""
        sim = self.env.sim
        if setup_latency:
            # bgCC polls the feCC for new subqueries before RPs exist there.
            yield sim.timeout(setup_latency)
        # Any RP process crash fails this event, aborting the query promptly
        # (otherwise a dead operator would leave its subscribers waiting on
        # a stream that never ends).
        failure = sim.event()
        for rp in rps.values():
            rp.start(failure=failure)
        collected: List[Any] = []
        collector = sim.process(self._collect(root, collected), name="cm-collector")
        waits = [collector, failure]
        if stop_token is not None:
            waits.append(stop_token.event)
        try:
            yield sim.any_of(waits)
        except BaseException:
            # An RP crashed: terminate the query and surface the error.
            for rp in rps.values():
                rp.terminate()
            if collector.is_alive:
                collector.interrupt("query failed")
                collector._add_callback(lambda event: setattr(event, "_defused", True))
            raise
        if stop_token is not None:
            if stop_token.stopped and collector.is_alive:
                collector.interrupt("query stopped")
                collector._add_callback(lambda event: setattr(event, "_defused", True))
            else:
                stop_token.cancel()  # completed normally; stand the watchdog down
        # The measured query time ends when the result stream completes at
        # the client manager (stray scheduler events — e.g. pending flush
        # timers — must not count).
        finished_at = sim.now
        for rp in rps.values():
            yield from rp.join()
        return collected, finished_at

    def _collect(self, root: RunningProcess, collected: List[Any]):
        """Drain the root result stream into ``collected`` until EOS."""
        assert root.result_store is not None
        while True:
            obj = yield root.result_store.get()
            if obj is END_OF_STREAM:
                return
            collected.append(obj)
