"""Process graphs: the compiled, placement-annotated form of a query.

The SCSQL compiler reduces a continuous query to a :class:`QueryGraph` —
the set of stream-process definitions (subquery plan + target cluster +
optional allocation sequence) plus the root plan the client manager itself
interprets.  The client manager turns the graph into running processes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.coordinator.allocation import AllocationDirective
from repro.engine.sqep import OpSpec
from repro.util.errors import QuerySemanticError
from repro.util.source import Span


@dataclass
class SPDef:
    """One stream process: a subquery to run somewhere in a cluster.

    Attributes:
        sp_id: Unique id of the stream process within its query.
        cluster: Target cluster name (``'bg'``, ``'be'``, ``'fe'``).
        plan: The subquery's execution plan.  The SCSQL compiler registers
            stream processes before compiling their subqueries (definitions
            may reference processes defined later), so the plan may be
            filled in after construction; it must be set before validation.
        allocation: Optional allocation constraint on placement: a symbolic
            :class:`~repro.coordinator.allocation.AllocationSpec` straight
            from the compiler, or a live
            :class:`~repro.coordinator.allocation.AllocationSequence` once
            a deployer has resolved it (or a placer pinned it).
        span: Source position of the ``sp()``/``spv()`` call that created
            this stream process, when compiled from SCSQL text; static
            analysis diagnostics point at it.
    """

    sp_id: str
    cluster: str
    plan: Optional[OpSpec] = None
    allocation: Optional[AllocationDirective] = None
    span: Optional[Span] = None


@dataclass
class QueryGraph:
    """A full continuous query ready for deployment."""

    sps: Dict[str, SPDef] = field(default_factory=dict)
    root_plan: Optional[OpSpec] = None

    def add(self, sp: SPDef) -> None:
        if sp.sp_id in self.sps:
            raise QuerySemanticError(f"duplicate stream process id {sp.sp_id!r}")
        self.sps[sp.sp_id] = sp

    def validate(self) -> None:
        """Check referential integrity: every subscription has a producer."""
        if self.root_plan is None:
            raise QuerySemanticError("query graph has no root plan")
        for sp in self.sps.values():
            if sp.plan is None:
                raise QuerySemanticError(
                    f"stream process {sp.sp_id!r} has no compiled subquery plan"
                )
        plans = [self.root_plan] + [sp.plan for sp in self.sps.values()]
        for plan in plans:
            for leaf in plan.input_leaves():
                if leaf.producer not in self.sps:
                    raise QuerySemanticError(
                        f"plan subscribes to unknown stream process {leaf.producer!r}"
                    )

    def producers_of(self, plan: OpSpec) -> List[str]:
        """The stream-process ids a plan subscribes to, in plan order."""
        return [leaf.producer for leaf in plan.input_leaves()]  # type: ignore[misc]

    def instantiate(self) -> "QueryGraph":
        """A deployable copy of this graph with fresh :class:`SPDef` objects.

        Deployment mutates ``SPDef.allocation`` (spec resolution, placer
        pinning); instantiating first keeps the source graph — typically
        owned by a reusable :class:`~repro.scsql.plan.DeploymentPlan` —
        pristine.  Plans and allocation directives are shared by reference:
        ``OpSpec`` is immutable, and sharing spec *instances* preserves the
        compiler's guarantee that the members of one ``spv()`` resolve to
        one common stateful sequence.
        """
        copy = QueryGraph(root_plan=self.root_plan)
        for sp in self.sps.values():
            copy.add(
                SPDef(
                    sp_id=sp.sp_id,
                    cluster=sp.cluster,
                    plan=sp.plan,
                    allocation=sp.allocation,
                    span=sp.span,
                )
            )
        return copy
