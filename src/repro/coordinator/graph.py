"""Process graphs: the compiled, placement-annotated form of a query.

The SCSQL compiler reduces a continuous query to a :class:`QueryGraph` —
the set of stream-process definitions (subquery plan + target cluster +
optional allocation sequence) plus the root plan the client manager itself
interprets.  The client manager turns the graph into running processes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.coordinator.allocation import AllocationSequence
from repro.engine.sqep import OpSpec
from repro.util.errors import QuerySemanticError


@dataclass
class SPDef:
    """One stream process: a subquery to run somewhere in a cluster.

    Attributes:
        sp_id: Unique id of the stream process within its query.
        cluster: Target cluster name (``'bg'``, ``'be'``, ``'fe'``).
        plan: The subquery's execution plan.  The SCSQL compiler registers
            stream processes before compiling their subqueries (definitions
            may reference processes defined later), so the plan may be
            filled in after construction; it must be set before validation.
        allocation: Optional allocation sequence constraining placement.
    """

    sp_id: str
    cluster: str
    plan: Optional[OpSpec] = None
    allocation: Optional[AllocationSequence] = None


@dataclass
class QueryGraph:
    """A full continuous query ready for deployment."""

    sps: Dict[str, SPDef] = field(default_factory=dict)
    root_plan: Optional[OpSpec] = None

    def add(self, sp: SPDef) -> None:
        if sp.sp_id in self.sps:
            raise QuerySemanticError(f"duplicate stream process id {sp.sp_id!r}")
        self.sps[sp.sp_id] = sp

    def validate(self) -> None:
        """Check referential integrity: every subscription has a producer."""
        if self.root_plan is None:
            raise QuerySemanticError("query graph has no root plan")
        for sp in self.sps.values():
            if sp.plan is None:
                raise QuerySemanticError(
                    f"stream process {sp.sp_id!r} has no compiled subquery plan"
                )
        plans = [self.root_plan] + [sp.plan for sp in self.sps.values()]
        for plan in plans:
            for leaf in plan.input_leaves():
                if leaf.producer not in self.sps:
                    raise QuerySemanticError(
                        f"plan subscribes to unknown stream process {leaf.producer!r}"
                    )

    def producers_of(self, plan: OpSpec) -> List[str]:
        """The stream-process ids a plan subscribes to, in plan order."""
        return [leaf.producer for leaf in plan.input_leaves()]  # type: ignore[misc]
