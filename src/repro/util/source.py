"""Source positions for SCSQL diagnostics.

A :class:`Span` is the 1-based (line, column) position of a token in SCSQL
source text.  The parser attaches spans to the AST nodes the static
analyzer reports on (``sp()``/``spv()`` call sites), the compiler threads
them onto the stream-process definitions they create, and
:mod:`repro.analysis` diagnostics carry them back to the user.

The class lives here — below both :mod:`repro.scsql` and
:mod:`repro.coordinator` — because the coordinator's process graphs store
spans without depending on the SCSQL front end.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Span:
    """A 1-based source position (line, column) in SCSQL query text."""

    line: int
    column: int

    def __str__(self) -> str:
        return f"{self.line}:{self.column}"
