"""Unit helpers for data sizes and rates.

The paper quotes rates in bits per second (1.4 Gbps torus links, 1 Gbit/s
I/O-node NICs, ~920 Mbps peak inbound) and sizes in bytes (3 MB arrays,
1000-byte buffers).  To avoid the classic bit/byte confusion, the library
keeps one convention internally:

* **sizes** are bytes (plain ``int``),
* **rates** are bytes per (simulated) second (plain ``float``),
* **time** is simulated seconds (plain ``float``).

This module provides the conversion helpers and pretty-printers used at the
API boundary, where figures are reported in Mbps to match the paper.
"""

from __future__ import annotations

KILO = 1_000
MEGA = 1_000_000
GIGA = 1_000_000_000


def bytes_to_bits(num_bytes: float) -> float:
    """Convert a byte count to bits."""
    return num_bytes * 8.0


def bits_to_bytes(num_bits: float) -> float:
    """Convert a bit count to bytes."""
    return num_bits / 8.0


def mbps(rate_megabits_per_s: float) -> float:
    """Convert a rate in megabits/s to internal bytes/s."""
    return rate_megabits_per_s * MEGA / 8.0


def gbps(rate_gigabits_per_s: float) -> float:
    """Convert a rate in gigabits/s to internal bytes/s."""
    return rate_gigabits_per_s * GIGA / 8.0


def rate_bps(bytes_per_second: float) -> float:
    """Convert an internal bytes/s rate to bits/s (for reporting)."""
    return bytes_per_second * 8.0


def rate_mbps(bytes_per_second: float) -> float:
    """Convert an internal bytes/s rate to megabits/s (for reporting)."""
    return bytes_per_second * 8.0 / MEGA


def format_bytes(num_bytes: float) -> str:
    """Render a byte count with a human-readable suffix (``3.0 MB``)."""
    value = float(num_bytes)
    for suffix, scale in (("GB", GIGA), ("MB", MEGA), ("KB", KILO)):
        if abs(value) >= scale:
            return f"{value / scale:.6g} {suffix}"
    return f"{value:.6g} B"


def format_rate(bytes_per_second: float) -> str:
    """Render an internal bytes/s rate in bits/s units (``920 Mbps``)."""
    bits = rate_bps(bytes_per_second)
    for suffix, scale in (("Gbps", GIGA), ("Mbps", MEGA), ("Kbps", KILO)):
        if abs(bits) >= scale:
            return f"{bits / scale:.6g} {suffix}"
    return f"{bits:.6g} bps"
