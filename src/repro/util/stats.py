"""Small statistics helpers for repeated measurements.

The paper performs every experiment five times "in order to achieve low
variance in the measurements" (section 3).  The measurement harness in
:mod:`repro.core.measurement` repeats runs with different random seeds and
summarizes them with these helpers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True)
class MeasurementStats:
    """Summary statistics of a repeated measurement.

    Attributes:
        samples: The raw sample values, in measurement order.
        mean: Arithmetic mean of the samples.
        std: Sample standard deviation (ddof=1; 0.0 for a single sample).
        minimum: Smallest sample.
        maximum: Largest sample.
    """

    samples: tuple
    mean: float
    std: float
    minimum: float
    maximum: float

    @property
    def relative_std(self) -> float:
        """Coefficient of variation (std/mean); 0.0 when the mean is 0."""
        if self.mean == 0.0:
            return 0.0
        return self.std / abs(self.mean)

    def __str__(self) -> str:
        return f"{self.mean:.6g} ± {self.std:.2g} (n={len(self.samples)})"


def percentile(samples: Sequence[float], q: float) -> float:
    """The ``q``-th percentile of ``samples`` with linear interpolation.

    Uses the "linear" (inclusive) method: the k-th order statistic sits at
    rank ``k / (n - 1)`` and percentiles between ranks interpolate linearly
    — the same convention as ``numpy.percentile``'s default, implemented
    here without the dependency.

    Args:
        samples: The observations (any order; not modified).
        q: Percentile in [0, 100].

    Raises:
        ValueError: If ``samples`` is empty or ``q`` is outside [0, 100].
    """
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {q!r}")
    values = sorted(float(s) for s in samples)
    if not values:
        raise ValueError("cannot take a percentile of an empty sample sequence")
    if len(values) == 1:
        return values[0]
    rank = (q / 100.0) * (len(values) - 1)
    lower = int(math.floor(rank))
    upper = int(math.ceil(rank))
    if lower == upper:
        return values[lower]
    fraction = rank - lower
    # One-multiplication form: exact when both order statistics coincide and
    # always bounded by [values[lower], values[upper]], unlike the two-product
    # convex combination which can drift below the minimum by one ulp.
    return values[lower] + fraction * (values[upper] - values[lower])


def p50(samples: Sequence[float]) -> float:
    """The median (50th percentile) of ``samples``."""
    return percentile(samples, 50.0)


def p95(samples: Sequence[float]) -> float:
    """The 95th percentile of ``samples``."""
    return percentile(samples, 95.0)


def p99(samples: Sequence[float]) -> float:
    """The 99th percentile of ``samples``."""
    return percentile(samples, 99.0)


def summarize(samples: Sequence[float]) -> MeasurementStats:
    """Summarize a non-empty sequence of samples.

    Raises:
        ValueError: If ``samples`` is empty.
    """
    values = tuple(float(s) for s in samples)
    if not values:
        raise ValueError("cannot summarize an empty sample sequence")
    mean = sum(values) / len(values)
    if len(values) > 1:
        variance = sum((v - mean) ** 2 for v in values) / (len(values) - 1)
        std = math.sqrt(variance)
    else:
        std = 0.0
    return MeasurementStats(
        samples=values,
        mean=mean,
        std=std,
        minimum=min(values),
        maximum=max(values),
    )
