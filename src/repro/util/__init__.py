"""Shared utilities: exception hierarchy, unit conversions, statistics.

These modules are intentionally dependency-free so every other subpackage can
import them without cycles.
"""

from repro.util.errors import (
    AllocationError,
    HardwareError,
    NetworkError,
    QueryError,
    QueryExecutionError,
    QueryParseError,
    QuerySemanticError,
    ReproError,
    SimulationError,
)
from repro.util.stats import MeasurementStats, summarize
from repro.util.units import (
    GIGA,
    KILO,
    MEGA,
    bits_to_bytes,
    bytes_to_bits,
    format_bytes,
    format_rate,
    gbps,
    mbps,
    rate_bps,
)

__all__ = [
    "AllocationError",
    "HardwareError",
    "NetworkError",
    "QueryError",
    "QueryExecutionError",
    "QueryParseError",
    "QuerySemanticError",
    "ReproError",
    "SimulationError",
    "MeasurementStats",
    "summarize",
    "GIGA",
    "KILO",
    "MEGA",
    "bits_to_bytes",
    "bytes_to_bits",
    "format_bytes",
    "format_rate",
    "gbps",
    "mbps",
    "rate_bps",
]
