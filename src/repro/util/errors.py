"""Exception hierarchy for the SCSQ reproduction.

Every error raised by the library derives from :class:`ReproError` so callers
can catch one base class.  Sub-hierarchies mirror the subsystems: simulation
kernel, network models, hardware environment, coordination/allocation, and
the SCSQL query pipeline (parse / semantic / execution).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the SCSQ reproduction library."""


class SimulationError(ReproError):
    """An invariant of the discrete-event simulation kernel was violated."""


class NetworkError(ReproError):
    """A network model was used incorrectly (bad route, closed channel...)."""


class HardwareError(ReproError):
    """The hardware environment was configured or queried incorrectly."""


class AllocationError(ReproError):
    """Node selection failed: no node in the allocation sequence is available.

    The paper (section 2.4) specifies this outcome explicitly: "In case the
    stream contains no available node, the query will fail."
    """


class MeasurementError(ReproError):
    """A bandwidth measurement produced an unusable sample (e.g. a run that
    finished in zero simulated time, making bandwidth undefined)."""


class QueryError(ReproError):
    """Base class for all SCSQL query-pipeline errors."""


class QueryParseError(QueryError):
    """The SCSQL text could not be tokenized or parsed.

    Attributes:
        line: 1-based line of the offending token, when known.
        column: 1-based column of the offending token, when known.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0):
        location = f" at line {line}, column {column}" if line else ""
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class QuerySemanticError(QueryError):
    """The query parsed but is not well formed (unknown function, unbound
    variable, cyclic process definitions, type mismatch...)."""


class QueryExecutionError(QueryError):
    """The query failed while executing on the simulated environment."""


class PlanVerificationError(QueryError):
    """A deployment plan failed static verification.

    Raised by the :mod:`repro.analysis` plan verifier (and by the deployer's
    pre-deployment checks) *before* any simulation runs, so a malformed plan
    — an over-subscribed node, an exhausted allocation sequence, an
    allocation naming a node absent from the CNDB — fails fast with
    structured diagnostics instead of a bare error deep inside allocation.

    Attributes:
        diagnostics: The :class:`repro.analysis.Diagnostic` objects behind
            the failure (empty when raised from a context that has no
            report, e.g. hand-rolled checks).
    """

    def __init__(self, message: str, diagnostics=()):
        super().__init__(message)
        self.diagnostics = list(diagnostics)


class SanitizationError(ReproError):
    """A dynamic sanitizer pass found defects (leaks, races, wedged waiters).

    Raised when a strict :func:`repro.analysis.sanitize.sanitizer` scope
    exits with findings, or by
    :func:`repro.analysis.sanitize.assert_quiescent` when an environment
    still holds leaked state after every deployment was torn down.

    Attributes:
        diagnostics: The ``SANxxx`` :class:`repro.analysis.Diagnostic`
            objects behind the failure.
    """

    def __init__(self, message: str, diagnostics=()):
        super().__init__(message)
        self.diagnostics = list(diagnostics)
