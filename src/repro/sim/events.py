"""Event primitives for the discrete-event simulation kernel.

The kernel follows the classic process-interaction style (as popularized by
SimPy): simulation *processes* are Python generators that ``yield`` events;
the scheduler resumes a process when the event it waits on is triggered.

Event life cycle::

    created --> triggered (scheduled, has value) --> processed (callbacks ran)

An event may be triggered exactly once, either successfully (:meth:`Event.succeed`)
or with an exception (:meth:`Event.fail`).  Failing events propagate their
exception into every waiting process, which may catch it with ``try/except``
around the ``yield``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Generator, List, Optional, Sequence

from repro.util.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.core import Simulator

# Sentinel distinguishing "no value yet" from a legitimate None value.
_PENDING = object()

# Queue-entry ranks; the scheduler (repro.sim.core) imports these.  Urgent
# events (process initialization, interrupts) run before normal events
# scheduled for the same instant.  The values double as bucket-list indices
# in repro.sim.scheduler.CalendarQueue, so they must stay 0 and 1.
_URGENT = 0
_NORMAL = 1


class Event:
    """A one-shot occurrence in simulated time that processes can wait on."""

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_defused")

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._ok: Optional[bool] = None
        # A failed event whose exception was delivered somewhere is "defused";
        # an undelivered failure crashes the simulation (errors never pass
        # silently).
        self._defused = False

    @property
    def triggered(self) -> bool:
        """True once the event has a value and is scheduled for processing."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once the event's callbacks have been executed."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event was triggered successfully.

        Raises:
            SimulationError: If the event has not been triggered yet.
        """
        if self._ok is None:
            raise SimulationError("event value not yet available")
        return self._ok

    @property
    def value(self) -> Any:
        """The event's payload (or exception if it failed).

        Raises:
            SimulationError: If the event has not been triggered yet.
        """
        if self._value is _PENDING:
            raise SimulationError("event value not yet available")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value`` as payload."""
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        # Inlined zero-delay normal-priority scheduling (the hottest path in
        # the kernel: every store handoff and resource grant goes through
        # here); equivalent to ``self.sim._schedule(self)``.
        sim = self.sim
        sim._push(sim._now, _NORMAL, self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception as payload.

        The exception is re-raised inside every process waiting on the event.
        """
        if not isinstance(exception, BaseException):
            raise SimulationError(f"fail() requires an exception, got {exception!r}")
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = False
        self._value = exception
        sim = self.sim
        sim._push(sim._now, _NORMAL, self)
        return self

    def _add_callback(self, callback: Callable[["Event"], None]) -> None:
        if self.callbacks is None:
            # Already processed: run immediately at the current time.
            callback(self)
        else:
            self.callbacks.append(callback)

    def __repr__(self) -> str:
        state = "processed" if self.processed else ("triggered" if self.triggered else "pending")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that triggers after a fixed simulated delay."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay!r}")
        # Field-by-field init (no super() chain) plus an inlined schedule:
        # timeouts model every wire/processing latency, so this constructor
        # runs once per modelled delay.
        self.sim = sim
        self.callbacks = []
        self._defused = False
        self.delay = delay
        self._ok = True
        self._value = value
        sim._push(sim._now + delay, _NORMAL, self)
        if sim.obs.enabled:
            sim.obs.on_timeout(self)

    def __repr__(self) -> str:
        return f"<Timeout delay={self.delay!r}>"


class Initialize(Event):
    """Internal event used to start a newly created process."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", process: "Process") -> None:
        super().__init__(sim)
        self._ok = True
        self._value = None
        self.callbacks.append(process._resume)
        sim._schedule(self, priority=True)


class Interrupt(Exception):
    """Raised inside a process when another process interrupts it.

    Attributes:
        cause: Arbitrary value describing why the interrupt happened.
    """

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


class Process(Event):
    """A running simulation process wrapping a generator.

    A process is itself an event that triggers when the generator finishes:
    successfully with the generator's return value, or with the exception
    that escaped it.  Waiting on a process (``yield other_process``) is the
    join operation.
    """

    __slots__ = ("name", "_generator", "_target")

    def __init__(self, sim: "Simulator", generator: Generator, name: str = "") -> None:
        super().__init__(sim)
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise SimulationError(f"process body must be a generator, got {generator!r}")
        self.name = name or getattr(generator, "__name__", "process")
        self._generator = generator
        self._target: Optional[Event] = Initialize(sim, self)
        if sim.obs.enabled:
            sim.obs.on_process_created(self)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting a finished process is an error; interrupting a process
        that is waiting on an event detaches it from that event.
        """
        if self.triggered:
            raise SimulationError(f"cannot interrupt finished process {self.name!r}")
        interrupt_event = Event(self.sim)
        interrupt_event._ok = False
        interrupt_event._value = Interrupt(cause)
        interrupt_event._defused = True  # failure is delivered, never unhandled
        interrupt_event.callbacks.append(self._resume)
        self.sim._schedule(interrupt_event, priority=True)
        if self.sim.obs.enabled:
            self.sim.obs.on_interrupt(self, cause)

    def _resume(self, event: Event) -> None:
        """Advance the generator with the value (or exception) of ``event``."""
        if self._value is not _PENDING:
            # Interrupted after completion of the same step; nothing to do.
            return
        # Detach from the event we were actually waiting on (relevant for
        # interrupts, which arrive while self._target is still pending).
        # Common case first: the triggering event IS our target.
        target = self._target
        if target is not event and target is not None:
            if target.callbacks is not None:
                try:
                    target.callbacks.remove(self._resume)
                except ValueError:
                    pass
        self._target = None
        sim = self.sim
        sim._active_process = self
        try:
            if event._ok:
                next_event = self._generator.send(event._value)
            else:
                # Mark the failure as handled: it is being delivered.
                event._defused = True
                next_event = self._generator.throw(event._value)
        except StopIteration as stop:
            sim._active_process = None
            self._ok = True
            self._value = stop.value
            sim._push(sim._now, _NORMAL, self)
            if sim.obs.enabled:
                sim.obs.on_process_finished(self, ok=True)
            return
        except BaseException as exc:  # noqa: BLE001 - process bodies may raise anything
            sim._active_process = None
            self._ok = False
            self._value = exc
            sim._push(sim._now, _NORMAL, self)
            if sim.obs.enabled:
                sim.obs.on_process_finished(self, ok=False)
            return
        sim._active_process = None
        if not isinstance(next_event, Event):
            raise SimulationError(
                f"process {self.name!r} yielded a non-event: {next_event!r}"
            )
        if next_event.sim is not sim:
            raise SimulationError(
                f"process {self.name!r} yielded an event from another simulator"
            )
        self._target = next_event
        callbacks = next_event.callbacks
        if callbacks is None:
            # Already processed: run immediately at the current time.
            self._resume(next_event)
        else:
            callbacks.append(self._resume)

    def __repr__(self) -> str:
        state = "finished" if self.triggered else "alive"
        return f"<Process {self.name!r} {state}>"


class Condition(Event):
    """Base for composite events over a fixed set of sub-events."""

    __slots__ = ("_events", "_pending")

    def __init__(self, sim: "Simulator", events: Sequence[Event]) -> None:
        super().__init__(sim)
        self._events = tuple(events)
        self._pending = len(self._events)
        for event in self._events:
            if event.sim is not sim:
                raise SimulationError("all condition sub-events must share one simulator")
        if not self._events:
            self.succeed(self._collect())
            return
        for event in self._events:
            event._add_callback(self._check)

    def _collect(self) -> dict:
        """Values of all *fired* sub-events, keyed by the event object.

        Filters on ``processed`` rather than ``triggered``: a Timeout is
        triggered (scheduled, value known) from construction, but has not
        occurred until the scheduler processes it.
        """
        return {e: e._value for e in self._events if e.processed and e._ok}

    def _check(self, event: Event) -> None:
        raise NotImplementedError

    def _fail_with(self, event: Event) -> None:
        if not self.triggered:
            event._defused = True
            self.fail(event._value)


class AllOf(Condition):
    """Triggers when every sub-event has triggered (fails fast on failure)."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            self._fail_with(event)
            return
        self._pending -= 1
        if self._pending == 0:
            self.succeed(self._collect())


class AnyOf(Condition):
    """Triggers as soon as one sub-event triggers (fails fast on failure)."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            self._fail_with(event)
            return
        self.succeed(self._collect())
