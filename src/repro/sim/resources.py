"""Shared-resource primitives for the simulation kernel.

Two primitives cover everything the network and engine models need:

* :class:`Resource` — a capacity-limited device (a torus link, an I/O node
  NIC, a communication co-processor).  Processes ``request()`` a slot, hold
  it for however long the modelled operation takes, then ``release()`` it.
  Waiters are served FIFO, which makes contention deterministic.

* :class:`Store` — a bounded FIFO queue of items (the double buffers of the
  MPI drivers, the inbox of a running process).  ``put()`` blocks when the
  store is full, ``get()`` blocks when it is empty, giving natural
  back-pressure / flow control between producer and consumer processes.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any, Deque, List

from repro.sim.events import _NORMAL, _PENDING, Event
from repro.util.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.core import Simulator


class Request(Event):
    """Pending acquisition of one :class:`Resource` slot.

    Usable as a context manager so the slot is always released::

        with resource.request() as req:
            yield req
            yield sim.timeout(cost)
    """

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource") -> None:
        # Field-by-field init (no super() chain): requests are created for
        # every link/co-processor acquisition on the transfer hot path.
        self.sim = resource.sim
        self.callbacks = []
        self._value = _PENDING
        self._ok = None
        self._defused = False
        self.resource = resource

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, exc_type: Any, exc_value: Any, traceback: Any) -> None:
        self.resource.release(self)

    def cancel(self) -> None:
        """Withdraw a request that has not been granted yet."""
        self.resource._withdraw(self)


class StorePut(Event):
    """Pending insertion into a :class:`Store`, carrying the item to add."""

    __slots__ = ("item",)

    def __init__(self, sim: "Simulator", item: Any) -> None:
        # Field-by-field init (no super() chain): Store.put is on the
        # per-buffer hot path of every driver transfer.
        self.sim = sim
        self.callbacks = []
        self._value = _PENDING
        self._ok = None
        self._defused = False
        self.item = item


class Resource:
    """A device with ``capacity`` identical slots and a FIFO wait queue."""

    __slots__ = ("sim", "capacity", "name", "_users", "_waiting")

    def __init__(self, sim: "Simulator", capacity: int = 1, name: str = "") -> None:
        if capacity < 1:
            raise SimulationError(f"resource capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._users: List[Request] = []
        self._waiting: Deque[Request] = deque()

    @property
    def count(self) -> int:
        """Number of slots currently held."""
        return len(self._users)

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a slot."""
        return len(self._waiting)

    def request(self) -> Request:
        """Ask for a slot; the returned event triggers when it is granted."""
        req = Request(self)
        if len(self._users) < self.capacity:
            self._users.append(req)
            # Inlined req.succeed(req): grant immediately at the current time.
            req._ok = True
            req._value = req
            sim = self.sim
            sim._push(sim._now, _NORMAL, req)
            if sim.obs.enabled:
                sim.obs.on_resource_acquire(self, req)
        else:
            self._waiting.append(req)
            if self.sim.obs.enabled:
                self.sim.obs.on_resource_wait(self)
        return req

    def release(self, request: Request) -> None:
        """Return a slot; grants it to the longest-waiting request, if any.

        Releasing a request that was never granted simply withdraws it, so
        the ``with resource.request()`` idiom is safe even when a process is
        interrupted while waiting.
        """
        try:
            self._users.remove(request)
        except ValueError:
            self._withdraw(request)
            return
        sim = self.sim
        if sim.obs.enabled:
            sim.obs.on_resource_release(self, request)
        while self._waiting and len(self._users) < self.capacity:
            nxt = self._waiting.popleft()
            self._users.append(nxt)
            # Inlined nxt.succeed(nxt): hand the slot to the longest waiter.
            nxt._ok = True
            nxt._value = nxt
            sim._push(sim._now, _NORMAL, nxt)
            if sim.obs.enabled:
                sim.obs.on_resource_acquire(self, nxt)

    def _withdraw(self, request: Request) -> None:
        try:
            self._waiting.remove(request)
        except ValueError:
            return
        if self.sim.obs.enabled:
            self.sim.obs.on_resource_withdraw(self)

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return (
            f"<Resource{label} {self.count}/{self.capacity} used,"
            f" {self.queue_length} waiting>"
        )


class Store:
    """A bounded FIFO buffer of items shared between processes."""

    __slots__ = ("sim", "capacity", "name", "_items", "_putters", "_getters")

    def __init__(self, sim: "Simulator", capacity: float = float("inf"), name: str = "") -> None:
        if capacity < 1:
            raise SimulationError(f"store capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._items: Deque[Any] = deque()
        self._putters: Deque[StorePut] = deque()  # events carrying the item to add
        self._getters: Deque[Event] = deque()

    @property
    def size(self) -> int:
        """Number of items currently buffered."""
        return len(self._items)

    @property
    def pending_gets(self) -> int:
        """Get requests currently waiting for an item."""
        return len(self._getters)

    def put(self, item: Any) -> Event:
        """Add ``item``; the returned event triggers once there is room."""
        sim = self.sim
        event = StorePut(sim, item)
        if len(self._items) < self.capacity and not self._putters:
            self._items.append(item)
            # Inlined event.succeed(): room is available right now.
            event._ok = True
            event._value = None
            sim._push(sim._now, _NORMAL, event)
            if self._getters:
                self._serve_getters()
            if sim.obs.enabled:
                sim.obs.on_store_level(self)
        else:
            self._putters.append(event)
        return event

    def get(self) -> Event:
        """Remove the oldest item; the event's value is the item."""
        sim = self.sim
        event = Event(sim)
        items = self._items
        if items:
            # Inlined event.succeed(item): an item is available right now.
            event._ok = True
            event._value = items.popleft()
            sim._push(sim._now, _NORMAL, event)
            if self._putters:
                self._serve_putters()
            if sim.obs.enabled:
                sim.obs.on_store_level(self)
        else:
            self._getters.append(event)
        return event

    def _serve_getters(self) -> None:
        served = False
        while self._getters and self._items:
            self._getters.popleft().succeed(self._items.popleft())
            served = True
        if served and self.sim.obs.enabled:
            self.sim.obs.on_store_level(self)

    def _serve_putters(self) -> None:
        served = False
        while self._putters and len(self._items) < self.capacity:
            putter = self._putters.popleft()
            self._items.append(putter.item)
            putter.succeed()
            self._serve_getters()
            served = True
        if served and self.sim.obs.enabled:
            self.sim.obs.on_store_level(self)

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return f"<Store{label} {self.size} items>"
