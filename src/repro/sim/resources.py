"""Shared-resource primitives for the simulation kernel.

Two primitives cover everything the network and engine models need:

* :class:`Resource` — a capacity-limited device (a torus link, an I/O node
  NIC, a communication co-processor).  Processes ``request()`` a slot, hold
  it for however long the modelled operation takes, then ``release()`` it.
  Waiters are served FIFO, which makes contention deterministic.

* :class:`Store` — a bounded FIFO queue of items (the double buffers of the
  MPI drivers, the inbox of a running process).  ``put()`` blocks when the
  store is full, ``get()`` blocks when it is empty, giving natural
  back-pressure / flow control between producer and consumer processes.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any, Deque, List

from repro.sim.events import Event
from repro.util.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.core import Simulator


class Request(Event):
    """Pending acquisition of one :class:`Resource` slot.

    Usable as a context manager so the slot is always released::

        with resource.request() as req:
            yield req
            yield sim.timeout(cost)
    """

    def __init__(self, resource: "Resource"):
        super().__init__(resource.sim)
        self.resource = resource

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.resource.release(self)

    def cancel(self) -> None:
        """Withdraw a request that has not been granted yet."""
        self.resource._withdraw(self)


class Resource:
    """A device with ``capacity`` identical slots and a FIFO wait queue."""

    def __init__(self, sim: "Simulator", capacity: int = 1, name: str = ""):
        if capacity < 1:
            raise SimulationError(f"resource capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._users: List[Request] = []
        self._waiting: Deque[Request] = deque()

    @property
    def count(self) -> int:
        """Number of slots currently held."""
        return len(self._users)

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a slot."""
        return len(self._waiting)

    def request(self) -> Request:
        """Ask for a slot; the returned event triggers when it is granted."""
        req = Request(self)
        if len(self._users) < self.capacity:
            self._users.append(req)
            req.succeed(req)
            if self.sim.obs.enabled:
                self.sim.obs.on_resource_acquire(self, req)
        else:
            self._waiting.append(req)
            if self.sim.obs.enabled:
                self.sim.obs.on_resource_wait(self)
        return req

    def release(self, request: Request) -> None:
        """Return a slot; grants it to the longest-waiting request, if any.

        Releasing a request that was never granted simply withdraws it, so
        the ``with resource.request()`` idiom is safe even when a process is
        interrupted while waiting.
        """
        try:
            self._users.remove(request)
        except ValueError:
            self._withdraw(request)
            return
        if self.sim.obs.enabled:
            self.sim.obs.on_resource_release(self, request)
        while self._waiting and len(self._users) < self.capacity:
            nxt = self._waiting.popleft()
            self._users.append(nxt)
            nxt.succeed(nxt)
            if self.sim.obs.enabled:
                self.sim.obs.on_resource_acquire(self, nxt)

    def _withdraw(self, request: Request) -> None:
        try:
            self._waiting.remove(request)
        except ValueError:
            return
        if self.sim.obs.enabled:
            self.sim.obs.on_resource_withdraw(self)

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return (
            f"<Resource{label} {self.count}/{self.capacity} used,"
            f" {self.queue_length} waiting>"
        )


class Store:
    """A bounded FIFO buffer of items shared between processes."""

    def __init__(self, sim: "Simulator", capacity: float = float("inf"), name: str = ""):
        if capacity < 1:
            raise SimulationError(f"store capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._items: Deque[Any] = deque()
        self._putters: Deque[Event] = deque()  # events carrying the item to add
        self._getters: Deque[Event] = deque()

    @property
    def size(self) -> int:
        """Number of items currently buffered."""
        return len(self._items)

    def put(self, item: Any) -> Event:
        """Add ``item``; the returned event triggers once there is room."""
        event = Event(self.sim)
        event.item = item
        if len(self._items) < self.capacity and not self._putters:
            self._items.append(item)
            event.succeed()
            self._serve_getters()
            if self.sim.obs.enabled:
                self.sim.obs.on_store_level(self)
        else:
            self._putters.append(event)
        return event

    def get(self) -> Event:
        """Remove the oldest item; the event's value is the item."""
        event = Event(self.sim)
        if self._items:
            event.succeed(self._items.popleft())
            self._serve_putters()
            if self.sim.obs.enabled:
                self.sim.obs.on_store_level(self)
        else:
            self._getters.append(event)
        return event

    def _serve_getters(self) -> None:
        served = False
        while self._getters and self._items:
            self._getters.popleft().succeed(self._items.popleft())
            served = True
        if served and self.sim.obs.enabled:
            self.sim.obs.on_store_level(self)

    def _serve_putters(self) -> None:
        served = False
        while self._putters and len(self._items) < self.capacity:
            putter = self._putters.popleft()
            self._items.append(putter.item)
            putter.succeed()
            self._serve_getters()
            served = True
        if served and self.sim.obs.enabled:
            self.sim.obs.on_store_level(self)

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return f"<Store{label} {self.size} items>"
