"""Waiter introspection over the simulation kernel's blocking primitives.

The liveness analyzer (``SAN301`` in :mod:`repro.analysis.sanitize`) needs
to answer, *after* the event queue has drained with work outstanding: which
processes are still alive, what is each one blocked on, and who could have
woken it?  The kernel itself keeps all of that state — ``Process._target``
is the awaited event, stores and resources hold their FIFO waiter queues —
but scattered across private attributes.  This module is the one sanctioned
reader of those attributes: it renders the blocked set as typed
:class:`WaitEdge` records without mutating anything.

Everything here is diagnostic-path code (it runs when a simulation is
already wedged), so clarity wins over cycle counts.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.sim.events import AllOf, AnyOf, Condition, Event, Process, Timeout
from repro.sim.resources import Request, Resource, Store, StorePut

__all__ = ["WaitEdge", "waiters_of", "describe_event", "wait_edges"]


class WaitEdge:
    """One blocked process and a classification of what it waits for.

    Attributes:
        process: The blocked (alive, untriggered) process.
        target: The event it yielded and is parked on (``None`` for a
            process that is alive but not parked — mid-resume, which cannot
            happen on a drained queue).
        kind: Coarse wait class — ``"store-get"``, ``"store-put"``,
            ``"resource"``, ``"join"``, ``"timeout"``, ``"condition"`` or
            ``"event"``.
        detail: Human-readable rendering of the target (store/resource
            names, joined process names) for diagnostics.
        blockers: Processes that could plausibly wake this one (the joined
            process for a join; co-waiters are *not* blockers).
    """

    __slots__ = ("process", "target", "kind", "detail", "blockers")

    def __init__(
        self,
        process: Process,
        target: Optional[Event],
        kind: str,
        detail: str,
        blockers: List[Process],
    ) -> None:
        self.process = process
        self.target = target
        self.kind = kind
        self.detail = detail
        self.blockers = blockers

    def __repr__(self) -> str:
        return (
            f"<WaitEdge {self.process.name!r} --{self.kind}--> {self.detail}>"
        )


def waiters_of(event: Event) -> List[Process]:
    """The processes parked on ``event`` (via their ``_resume`` callbacks)."""
    processes: List[Process] = []
    for callback in event.callbacks or ():
        owner = getattr(callback, "__self__", None)
        if isinstance(owner, Process):
            processes.append(owner)
    return processes


def describe_event(event: Event, stores: Iterable[Store] = ()) -> str:
    """A one-line human rendering of what waiting on ``event`` means."""
    if isinstance(event, Request):
        resource = event.resource
        name = resource.name or "resource"
        return (
            f"slot of {name!r} ({resource.count}/{resource.capacity} held, "
            f"{resource.queue_length} waiting)"
        )
    if isinstance(event, StorePut):
        for store in stores:
            if event in store._putters:
                name = store.name or "store"
                return f"room in {name!r} (full at {store.size} items)"
        return "room in a full store"
    if isinstance(event, Process):
        return f"join of process {event.name!r}"
    if isinstance(event, Timeout):
        return f"timeout of {event.delay!r}s"
    if isinstance(event, (AllOf, AnyOf, Condition)):
        pending = [
            sub for sub in event._events if not sub.processed
        ]
        return f"condition over {len(event._events)} events ({len(pending)} pending)"
    for store in stores:
        if event in store._getters:
            name = store.name or "store"
            return f"item from {name!r} (empty, {store.pending_gets} getters)"
    return "bare event (a rendezvous nobody signalled)"


def _classify(event: Event, stores: Iterable[Store]) -> str:
    if isinstance(event, Request):
        return "resource"
    if isinstance(event, StorePut):
        return "store-put"
    if isinstance(event, Process):
        return "join"
    if isinstance(event, Timeout):
        return "timeout"
    if isinstance(event, (AllOf, AnyOf, Condition)):
        return "condition"
    for store in stores:
        if event in store._getters:
            return "store-get"
    return "event"


def wait_edges(
    processes: Iterable[Process],
    stores: Iterable[Store] = (),
    resources: Iterable[Resource] = (),
) -> List[WaitEdge]:
    """The wait-for edges of every alive process in ``processes``.

    ``stores`` and ``resources`` widen the classification: a bare getter
    event is recognized as a ``store-get`` only when its store is listed.
    Join edges carry the joined process as a blocker, so a chain of joins
    renders as a path through the returned edges.
    """
    del resources  # named waits on resources classify via Request already
    store_list = list(stores)
    edges: List[WaitEdge] = []
    seen = set()
    for process in processes:
        if process.triggered or id(process) in seen:
            continue
        seen.add(id(process))
        target = process._target
        if target is None:
            edges.append(WaitEdge(process, None, "running", "not parked", []))
            continue
        kind = _classify(target, store_list)
        detail = describe_event(target, store_list)
        blockers: List[Process] = []
        if isinstance(target, Process) and not target.triggered:
            blockers.append(target)
        elif isinstance(target, (AllOf, AnyOf, Condition)):
            blockers.extend(
                sub for sub in target._events
                if isinstance(sub, Process) and not sub.triggered
            )
        edges.append(WaitEdge(process, target, kind, detail, blockers))
    return edges
