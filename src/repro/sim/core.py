"""The discrete-event simulator: event queue and scheduler.

:class:`Simulator` owns simulated time.  Time only advances when the event
queue is stepped; all network transfers, buffer marshaling, and co-processor
contention in the library are expressed as events on one simulator instance.

The pending-event set lives in a pluggable :mod:`repro.sim.scheduler`
backend.  The default :class:`~repro.sim.scheduler.CalendarQueue` exploits
the kernel's same-timestamp burst pattern; the reference
:class:`~repro.sim.scheduler.HeapScheduler` keeps the classic binary heap.
Both dispatch in the identical ``(when, rank, seq)`` total order, so
simulated results are bit-identical across backends.

Typical use::

    sim = Simulator()

    def producer(sim, store):
        for i in range(3):
            yield sim.timeout(1.0)
            yield store.put(i)

    store = Store(sim)
    sim.process(producer(sim, store))
    sim.run()
"""

from __future__ import annotations

from heapq import heappop
from typing import Any, Generator, Iterable, Optional, Union

from repro.obs.instrument import NULL_OBS, NullInstrumentation
from repro.sim.events import _NORMAL, _URGENT, AllOf, AnyOf, Event, Process, Timeout
from repro.sim.scheduler import EventScheduler, make_scheduler
from repro.util.errors import SimulationError

_INF = float("inf")


class Simulator:
    """A deterministic discrete-event simulation scheduler.

    Args:
        obs: Instrumentation hub; defaults to the shared disabled hub.
        scheduler: Event-queue backend — a name from
            :data:`repro.sim.scheduler.SCHEDULERS` (``"calendar"``,
            ``"heap"``), a ready :class:`~repro.sim.scheduler.EventScheduler`
            instance, or ``None`` for the default calendar queue.
    """

    __slots__ = (
        "_now",
        "_scheduler",
        "_push",
        "_active_process",
        "obs",
        "events_dispatched",
    )

    def __init__(
        self,
        obs: Optional[NullInstrumentation] = None,
        scheduler: Union[str, EventScheduler, None] = None,
    ) -> None:
        self._now: float = 0.0
        self._scheduler: EventScheduler = make_scheduler(scheduler)
        # Bound once: the inline scheduling sites in sim.events/sim.resources
        # (Event.succeed, Timeout.__init__, Resource grants, Store handoffs)
        # call ``sim._push(when, rank, event)`` directly, so the backend is
        # one attribute load away from the hot path.
        self._push = self._scheduler.push
        self._active_process: Optional[Process] = None
        #: Events dispatched over this simulator's lifetime.  Counted by the
        #: drain loops themselves (no obs hook needed), so throughput
        #: figures can report events/sec on uninstrumented runs.
        self.events_dispatched: int = 0
        # Observability hub; NULL_OBS.enabled is False, so every hook site
        # reduces to one attribute check when no instrumentation was asked
        # for (the null hub is shared by all uninstrumented simulators).
        self.obs: NullInstrumentation = obs if obs is not None else NULL_OBS
        if self.obs.enabled:
            self.obs.bind(self)

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_process

    @property
    def scheduler(self) -> EventScheduler:
        """The event-queue backend this simulator dispatches from."""
        return self._scheduler

    # ------------------------------------------------------------------
    # Event factories
    # ------------------------------------------------------------------
    def event(self) -> Event:
        """Create an untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that triggers ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: str = "") -> Process:
        """Start a new process running ``generator``."""
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event that triggers when all of ``events`` have triggered."""
        return AllOf(self, list(events))

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event that triggers when any of ``events`` has triggered."""
        return AnyOf(self, list(events))

    # ------------------------------------------------------------------
    # Scheduling and execution
    # ------------------------------------------------------------------
    def _schedule(self, event: Event, delay: float = 0.0, priority: bool = False) -> None:
        """Put a triggered event on the queue for processing."""
        self._push(self._now + delay, _URGENT if priority else _NORMAL, event)

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if the queue is empty."""
        return self._scheduler.next_time()

    def step(self) -> None:
        """Process exactly one event.

        Raises:
            SimulationError: If the queue is empty, or an event failed and no
                process handled (defused) its exception.
        """
        entry = self._scheduler.pop()
        if entry is None:
            raise SimulationError("cannot step an empty event queue")
        when, event = entry
        if when < self._now:
            raise SimulationError("event scheduled in the past (scheduler bug)")
        self._now = when
        self.events_dispatched += 1
        if self.obs.enabled:
            self.obs.on_step(event, when)
        callbacks = event.callbacks
        event.callbacks = None
        if len(callbacks) == 1:
            # Most events have exactly one waiter (the process that yielded
            # them); skip the loop machinery for that case.
            callbacks[0](event)
        else:
            for callback in callbacks:
                callback(event)
        if event._ok is False and not event._defused:
            exc = event._value
            raise SimulationError(
                f"unhandled failure in simulation: {exc!r}"
            ) from exc

    def run(self, until: Optional[float] = None) -> float:
        """Run until the queue drains or simulated time reaches ``until``.

        Returns:
            The simulated time when the run stopped.
        """
        if until is None:
            if self._scheduler.batched:
                return self._run_batched()
            return self._run_drain()
        if until < self._now:
            raise SimulationError(f"cannot run until {until!r}, already at {self._now!r}")
        scheduler = self._scheduler
        step = self.step
        while True:
            when = scheduler.next_time()
            if when == _INF:
                break
            if when > until:
                self._now = until
                return until
            step()
        # The queue drained before reaching ``until``: the clock still
        # advances to the requested horizon.
        if until > self._now:
            self._now = until
        return self._now

    def _run_batched(self) -> float:
        """Drain a batched (calendar-queue) scheduler bucket-at-a-time.

        One bucket holds every event of one distinct timestamp; the loop
        sets ``self._now`` once per bucket and dispatches the whole run
        without re-entering the scheduler.  The urgent list is re-checked
        before every dispatch and the list lengths are re-read live, so
        events scheduled *during* the drain — same-time handoffs, urgent
        interrupts — are picked up in exactly the ``(when, rank, seq)``
        order the heap backend would produce.  The body of the dispatch
        must stay semantically identical to step().
        """
        scheduler = self._scheduler
        obs = self.obs
        times = scheduler._times
        buckets = scheduler._buckets
        dispatched = 0
        try:
            while times:
                when = times[0]
                if when < self._now:
                    raise SimulationError("event scheduled in the past (scheduler bug)")
                self._now = when
                bucket = buckets[when]
                urgent = bucket[0]
                normal = bucket[1]
                # The cursors live in locals for the drain: callbacks only
                # ever *append* to the bucket's lists (via push), never touch
                # the cursors, so the write-back in the finally is the single
                # point of truth if a dispatch raises mid-bucket.
                ui = bucket[2]
                ni = bucket[3]
                try:
                    while True:
                        # Consumed slots are nulled out so event objects are
                        # freed as they dispatch; a long same-time bucket
                        # would otherwise pin every event of the burst live
                        # and stall the cyclic GC on the growing list.
                        if ui < len(urgent):
                            event = urgent[ui]
                            urgent[ui] = None
                            ui += 1
                        elif ni < len(normal):
                            event = normal[ni]
                            normal[ni] = None
                            ni += 1
                        else:
                            break
                        if obs.enabled:
                            obs.on_step(event, when)
                        callbacks = event.callbacks
                        event.callbacks = None
                        if len(callbacks) == 1:
                            callbacks[0](event)
                        else:
                            for callback in callbacks:
                                callback(event)
                        if event._ok is False and not event._defused:
                            exc = event._value
                            raise SimulationError(
                                f"unhandled failure in simulation: {exc!r}"
                            ) from exc
                finally:
                    dispatched += ui - bucket[2] + ni - bucket[3]
                    bucket[2] = ui
                    bucket[3] = ni
                del buckets[when]
                heappop(times)
        finally:
            self.events_dispatched += dispatched
        return self._now

    def _run_drain(self) -> float:
        """Drain a generic scheduler through its pop() interface."""
        pop = self._scheduler.pop
        obs = self.obs
        dispatched = 0
        try:
            while True:
                entry = pop()
                if entry is None:
                    break
                when, event = entry
                if when < self._now:
                    raise SimulationError("event scheduled in the past (scheduler bug)")
                self._now = when
                dispatched += 1
                if obs.enabled:
                    obs.on_step(event, when)
                callbacks = event.callbacks
                event.callbacks = None
                if len(callbacks) == 1:
                    callbacks[0](event)
                else:
                    for callback in callbacks:
                        callback(event)
                if event._ok is False and not event._defused:
                    exc = event._value
                    raise SimulationError(
                        f"unhandled failure in simulation: {exc!r}"
                    ) from exc
        finally:
            self.events_dispatched += dispatched
        return self._now

    def run_process(self, generator: Generator, name: str = "") -> Any:
        """Start ``generator`` as a process, run to completion, return its value.

        This is the main entry point used by the measurement harness: it runs
        the whole simulation until the queue drains and returns the root
        process's return value (re-raising its exception if it failed).
        """
        proc = self.process(generator, name=name)
        # The root process's failure is re-raised below, so its exception is
        # handled; mark it defused to keep step() from flagging it first.
        proc._add_callback(lambda event: setattr(event, "_defused", True))
        self.run()
        if not proc.triggered:
            raise SimulationError(
                f"simulation deadlocked: process {proc.name!r} never finished "
                f"(no more events at t={self._now})"
            )
        if not proc.ok:
            raise proc.value
        return proc.value
