"""The discrete-event simulator: event queue and scheduler.

:class:`Simulator` owns simulated time.  Time only advances when the event
queue is stepped; all network transfers, buffer marshaling, and co-processor
contention in the library are expressed as events on one simulator instance.

Typical use::

    sim = Simulator()

    def producer(sim, store):
        for i in range(3):
            yield sim.timeout(1.0)
            yield store.put(i)

    store = Store(sim)
    sim.process(producer(sim, store))
    sim.run()
"""

from __future__ import annotations

from heapq import heappop, heappush
from itertools import count
from typing import Any, Generator, List, Optional, Tuple

from repro.obs.instrument import NULL_OBS, NullInstrumentation
from repro.sim.events import _NORMAL, _URGENT, AllOf, AnyOf, Event, Process, Timeout
from repro.util.errors import SimulationError

# Queue entries: (time, priority, sequence, event).  ``priority`` orders
# same-time events (urgent events such as process initialization first) and
# ``sequence`` keeps insertion order for determinism.  The rank constants
# live in repro.sim.events so that Event.succeed/fail can inline the
# zero-delay schedule without importing this module.


class Simulator:
    """A deterministic discrete-event simulation scheduler."""

    def __init__(self, obs: Optional[NullInstrumentation] = None):
        self._now: float = 0.0
        self._queue: List[Tuple[float, int, int, Event]] = []
        self._sequence = count()
        self._active_process: Optional[Process] = None
        # Observability hub; NULL_OBS.enabled is False, so every hook site
        # reduces to one attribute check when no instrumentation was asked
        # for (the null hub is shared by all uninstrumented simulators).
        self.obs: NullInstrumentation = obs if obs is not None else NULL_OBS
        if self.obs.enabled:
            self.obs.bind(self)

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_process

    # ------------------------------------------------------------------
    # Event factories
    # ------------------------------------------------------------------
    def event(self) -> Event:
        """Create an untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that triggers ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: str = "") -> Process:
        """Start a new process running ``generator``."""
        return Process(self, generator, name=name)

    def all_of(self, events) -> AllOf:
        """Event that triggers when all of ``events`` have triggered."""
        return AllOf(self, list(events))

    def any_of(self, events) -> AnyOf:
        """Event that triggers when any of ``events`` has triggered."""
        return AnyOf(self, list(events))

    # ------------------------------------------------------------------
    # Scheduling and execution
    # ------------------------------------------------------------------
    def _schedule(self, event: Event, delay: float = 0.0, priority: bool = False) -> None:
        """Put a triggered event on the queue for processing."""
        rank = _URGENT if priority else _NORMAL
        heappush(self._queue, (self._now + delay, rank, next(self._sequence), event))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if the queue is empty."""
        if not self._queue:
            return float("inf")
        return self._queue[0][0]

    def step(self) -> None:
        """Process exactly one event.

        Raises:
            SimulationError: If the queue is empty, or an event failed and no
                process handled (defused) its exception.
        """
        if not self._queue:
            raise SimulationError("cannot step an empty event queue")
        when, _rank, _seq, event = heappop(self._queue)
        if when < self._now:
            raise SimulationError("event scheduled in the past (scheduler bug)")
        self._now = when
        if self.obs.enabled:
            self.obs.on_step(event, when)
        callbacks = event.callbacks
        event.callbacks = None
        if len(callbacks) == 1:
            # Most events have exactly one waiter (the process that yielded
            # them); skip the loop machinery for that case.
            callbacks[0](event)
        else:
            for callback in callbacks:
                callback(event)
        if event._ok is False and not event._defused:
            exc = event._value
            raise SimulationError(
                f"unhandled failure in simulation: {exc!r}"
            ) from exc

    def run(self, until: Optional[float] = None) -> float:
        """Run until the queue drains or simulated time reaches ``until``.

        Returns:
            The simulated time when the run stopped.
        """
        if until is None:
            # Inlined step() loop: the drain-the-queue run is the measurement
            # harness's main loop, and the per-event function-call overhead of
            # delegating to step() is measurable at millions of events.  The
            # body below must stay semantically identical to step().
            queue = self._queue
            obs = self.obs
            now = self._now
            while queue:
                when, _rank, _seq, event = heappop(queue)
                if when < now:
                    raise SimulationError("event scheduled in the past (scheduler bug)")
                now = self._now = when
                if obs.enabled:
                    obs.on_step(event, when)
                callbacks = event.callbacks
                event.callbacks = None
                if len(callbacks) == 1:
                    callbacks[0](event)
                else:
                    for callback in callbacks:
                        callback(event)
                if event._ok is False and not event._defused:
                    exc = event._value
                    raise SimulationError(
                        f"unhandled failure in simulation: {exc!r}"
                    ) from exc
                now = self._now
            return self._now
        if until < self._now:
            raise SimulationError(f"cannot run until {until!r}, already at {self._now!r}")
        queue = self._queue
        step = self.step
        while queue:
            if queue[0][0] > until:
                self._now = until
                return until
            step()
        # The queue drained before reaching ``until``: the clock still
        # advances to the requested horizon.
        if until > self._now:
            self._now = until
        return self._now

    def run_process(self, generator: Generator, name: str = "") -> Any:
        """Start ``generator`` as a process, run to completion, return its value.

        This is the main entry point used by the measurement harness: it runs
        the whole simulation until the queue drains and returns the root
        process's return value (re-raising its exception if it failed).
        """
        proc = self.process(generator, name=name)
        # The root process's failure is re-raised below, so its exception is
        # handled; mark it defused to keep step() from flagging it first.
        proc._add_callback(lambda event: setattr(event, "_defused", True))
        self.run()
        if not proc.triggered:
            raise SimulationError(
                f"simulation deadlocked: process {proc.name!r} never finished "
                f"(no more events at t={self._now})"
            )
        if not proc.ok:
            raise proc.value
        return proc.value
