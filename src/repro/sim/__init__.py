"""Discrete-event simulation kernel.

A small, self-contained process-interaction simulator in the style of SimPy:
:class:`Simulator` owns virtual time and the event queue; simulation
processes are Python generators yielding :class:`Event` objects; shared
devices are modelled with :class:`Resource` and bounded queues with
:class:`Store`.

Everything else in the library — the torus network, the MPI/TCP drivers, the
running processes of the stream engine — executes on this kernel, so a whole
SCSQ deployment runs deterministically inside one OS process.
"""

from repro.sim.core import Simulator
from repro.sim.events import AllOf, AnyOf, Event, Interrupt, Process, Timeout
from repro.sim.resources import Request, Resource, Store
from repro.sim.scheduler import (
    DEFAULT_SCHEDULER,
    SCHEDULERS,
    CalendarQueue,
    EventScheduler,
    HeapScheduler,
    ShuffleScheduler,
    make_scheduler,
    scheduler_override,
)

__all__ = [
    "Simulator",
    "Event",
    "Timeout",
    "Process",
    "Interrupt",
    "AllOf",
    "AnyOf",
    "Resource",
    "Request",
    "Store",
    "EventScheduler",
    "HeapScheduler",
    "CalendarQueue",
    "ShuffleScheduler",
    "SCHEDULERS",
    "DEFAULT_SCHEDULER",
    "make_scheduler",
    "scheduler_override",
]
