"""Pluggable event schedulers for the DES kernel.

The kernel's dispatch order is the total order ``(when, rank, seq)``: time
first, urgent before normal at the same instant, insertion order last.  A
scheduler is any object that preserves exactly that order; the simulator
only ever talks to it through four operations:

* ``push(when, rank, event)`` — enqueue a triggered event,
* ``pop()`` — dequeue the next ``(when, event)`` pair (``None`` if empty),
* ``next_time()`` — time of the next event (``inf`` if empty),
* ``len()`` / truthiness — pending-event count.

Two implementations are provided:

:class:`HeapScheduler`
    The classic binary heap of ``(when, rank, seq, event)`` tuples.  Cost is
    ``O(log n)`` per operation regardless of the schedule's shape.  Kept as
    the reference backend: the property suite in
    ``tests/sim/test_scheduler.py`` proves the calendar queue pops in
    exactly this order.

:class:`CalendarQueue`
    A bucket queue keyed by timestamp: a dict mapping each *distinct* time
    to a pair of FIFO lists (urgent, normal) plus a small heap of the
    distinct times themselves.  The kernel's workload is dominated by
    same-timestamp bursts — every store handoff, resource grant, and
    process completion schedules at ``sim.now`` — so the number of distinct
    times is orders of magnitude smaller than the number of events.  Push
    is ``O(1)`` amortized (dict hit + list append), pop is ``O(1)`` off the
    current bucket, and the heap is touched once per distinct timestamp
    instead of once per event.  ``rank`` doubles as the bucket list index
    (``_URGENT == 0``, ``_NORMAL == 1``), and no per-event sequence number
    is needed at all: list append order *is* insertion order.

The simulator's drain loop additionally special-cases schedulers with
``batched = True`` (see :meth:`repro.sim.core.Simulator.run`): it dispatches
a whole bucket without re-entering the scheduler, re-checking the urgent
list before every pop so urgent events scheduled mid-drain (interrupts,
process initialization) still overtake pending normal events exactly as the
heap order demands.
"""

from __future__ import annotations

import random
from contextlib import contextmanager
from heapq import heappop, heappush
from typing import TYPE_CHECKING, Callable, Dict, Iterator, List, Optional, Tuple, Union

from repro.util.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.events import Event

_INF = float("inf")


class EventScheduler:
    """Interface every kernel scheduler implements.

    ``batched`` marks schedulers whose internals the drain loop may walk
    bucket-at-a-time; the generic loop only uses the four methods below.
    """

    __slots__ = ()

    batched = False

    def push(self, when: float, rank: int, event: "Event") -> None:
        """Enqueue ``event`` at ``when`` with tie-break ``rank``."""
        raise NotImplementedError

    def pop(self) -> Optional[Tuple[float, "Event"]]:
        """Dequeue the next event in ``(when, rank, seq)`` order."""
        raise NotImplementedError

    def next_time(self) -> float:
        """Time of the next event, or ``inf`` when empty."""
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    def __bool__(self) -> bool:
        return self.next_time() != _INF


class HeapScheduler(EventScheduler):
    """Reference backend: binary heap of ``(when, rank, seq, event)``."""

    __slots__ = ("_heap", "_next_seq")

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, int, "Event"]] = []
        self._next_seq = 0

    def push(self, when: float, rank: int, event: "Event") -> None:
        seq = self._next_seq
        self._next_seq = seq + 1
        heappush(self._heap, (when, rank, seq, event))

    def pop(self) -> Optional[Tuple[float, "Event"]]:
        if not self._heap:
            return None
        when, _rank, _seq, event = heappop(self._heap)
        return when, event

    def next_time(self) -> float:
        return self._heap[0][0] if self._heap else _INF

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)


class CalendarQueue(EventScheduler):
    """Bucket queue over distinct timestamps, tuned for same-time bursts.

    Bucket layout: ``_buckets[when]`` is a 4-slot list
    ``[urgent_events, normal_events, urgent_cursor, normal_cursor]``.
    Events are never removed from a bucket's lists; the cursors advance
    over them and the whole bucket is dropped once both lists are
    exhausted.  Because ``_URGENT == 0`` and ``_NORMAL == 1``, the rank a
    caller passes to :meth:`push` indexes the bucket directly.
    """

    __slots__ = ("_buckets", "_times")

    batched = True

    def __init__(self) -> None:
        # when -> [urgent list, normal list, urgent cursor, normal cursor]
        self._buckets: Dict[float, list] = {}
        self._times: List[float] = []  # heap of distinct pending times

    def push(self, when: float, rank: int, event: "Event") -> None:
        # Hit path first: a burst shares one timestamp, so all but the first
        # push of a bucket is dict hit + list append.  The miss path pays an
        # exception but runs once per *distinct* time, not once per event.
        try:
            self._buckets[when][rank].append(event)
        except KeyError:
            bucket = [[], [], 0, 0]
            bucket[rank].append(event)
            self._buckets[when] = bucket
            heappush(self._times, when)

    def pop(self) -> Optional[Tuple[float, "Event"]]:
        times = self._times
        buckets = self._buckets
        while times:
            when = times[0]
            bucket = buckets[when]
            cursor = bucket[2]
            urgent = bucket[0]
            if cursor < len(urgent):
                event = urgent[cursor]
                urgent[cursor] = None  # free the slot as it dispatches
                bucket[2] = cursor + 1
                return when, event
            cursor = bucket[3]
            normal = bucket[1]
            if cursor < len(normal):
                event = normal[cursor]
                normal[cursor] = None
                bucket[3] = cursor + 1
                return when, event
            del buckets[when]
            heappop(times)
        return None

    def next_time(self) -> float:
        times = self._times
        buckets = self._buckets
        while times:
            when = times[0]
            bucket = buckets[when]
            if bucket[2] < len(bucket[0]) or bucket[3] < len(bucket[1]):
                return when
            del buckets[when]
            heappop(times)
        return _INF

    def __len__(self) -> int:
        return sum(
            len(b[0]) - b[2] + len(b[1]) - b[3] for b in self._buckets.values()
        )

    def __bool__(self) -> bool:
        return self.next_time() != _INF


class ShuffleScheduler(EventScheduler):
    """Chaos backend: a legal dispatch order that is *not* insertion order.

    The kernel's determinism contract pins the total order
    ``(when, rank, seq)``; the only degree of freedom a correct simulation
    may not depend on is the ``seq`` tie-break — the FIFO order of events
    sharing one ``(when, rank)`` slot.  This scheduler dispatches time- and
    rank-correct but permutes exactly that tie-break with a seeded
    generator, so replaying a harness under a few shuffle seeds and
    comparing results is a schedule-race detector (the ``SAN101`` check in
    :mod:`repro.analysis.sanitize`): any divergence means some component
    relied on same-instant insertion order.

    The permutation is swap-remove (pick a random live index, backfill with
    the last element), so push and pop stay ``O(1)`` amortized and the
    shuffle is a pure function of the seed and the push/pop interleaving.
    Never the default — selected explicitly (``scheduler="shuffle"`` or an
    instance with a chosen seed) or through :func:`scheduler_override`.
    """

    __slots__ = ("seed", "_rng", "_buckets", "_times", "_count")

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._rng = random.Random(seed)
        # when -> [urgent list, normal list]; lists are unordered (swap-
        # remove), which is the whole point.
        self._buckets: Dict[float, List[List["Event"]]] = {}
        self._times: List[float] = []  # heap of distinct pending times
        self._count = 0

    def push(self, when: float, rank: int, event: "Event") -> None:
        try:
            self._buckets[when][rank].append(event)
        except KeyError:
            bucket: List[List["Event"]] = [[], []]
            bucket[rank].append(event)
            self._buckets[when] = bucket
            heappush(self._times, when)
        self._count += 1

    def pop(self) -> Optional[Tuple[float, "Event"]]:
        times = self._times
        buckets = self._buckets
        while times:
            when = times[0]
            bucket = buckets[when]
            for group in bucket:
                size = len(group)
                if size:
                    index = self._rng.randrange(size) if size > 1 else 0
                    event = group[index]
                    group[index] = group[-1]
                    group.pop()
                    self._count -= 1
                    return when, event
            del buckets[when]
            heappop(times)
        return None

    def next_time(self) -> float:
        times = self._times
        buckets = self._buckets
        while times:
            when = times[0]
            bucket = buckets[when]
            if bucket[0] or bucket[1]:
                return when
            del buckets[when]
            heappop(times)
        return _INF

    def __len__(self) -> int:
        return self._count

    def __bool__(self) -> bool:
        return self._count > 0


#: Registry of scheduler backends selectable by name.
SCHEDULERS: Dict[str, Callable[[], EventScheduler]] = {
    "heap": HeapScheduler,
    "calendar": CalendarQueue,
    "shuffle": ShuffleScheduler,
}

#: Backend a bare ``Simulator()`` gets.
DEFAULT_SCHEDULER = "calendar"

#: When set, :func:`make_scheduler` resolves a ``None`` spec through this
#: factory instead of :data:`DEFAULT_SCHEDULER`.  Installed (scoped) by
#: :func:`scheduler_override`; the chaos harness uses it to put a seeded
#: :class:`ShuffleScheduler` under every simulator a replayed harness
#: builds, without the harness knowing.
_DEFAULT_OVERRIDE: Optional[Callable[[], EventScheduler]] = None


@contextmanager
def scheduler_override(
    factory: Callable[[], EventScheduler],
) -> Iterator[None]:
    """Scope within which default-configured simulators use ``factory``.

    Only ``scheduler=None`` construction is affected; explicit names and
    instances keep their meaning.  Overrides do not nest — re-entering
    replaces the outer factory for the inner scope and restores it after.
    """
    global _DEFAULT_OVERRIDE
    previous = _DEFAULT_OVERRIDE
    _DEFAULT_OVERRIDE = factory
    try:
        yield
    finally:
        _DEFAULT_OVERRIDE = previous


def make_scheduler(
    spec: Union[str, EventScheduler, None] = None,
) -> EventScheduler:
    """Resolve a scheduler spec: a name, a ready instance, or ``None``.

    ``None`` selects the :func:`scheduler_override` factory when one is
    installed, else :data:`DEFAULT_SCHEDULER`; an :class:`EventScheduler`
    instance is returned as-is (it must be empty and unshared).
    """
    if spec is None:
        if _DEFAULT_OVERRIDE is not None:
            return _DEFAULT_OVERRIDE()
        spec = DEFAULT_SCHEDULER
    if isinstance(spec, EventScheduler):
        return spec
    try:
        factory = SCHEDULERS[spec]
    except (KeyError, TypeError):
        raise SimulationError(
            f"unknown scheduler {spec!r} (expected one of "
            f"{sorted(SCHEDULERS)} or an EventScheduler instance)"
        ) from None
    return factory()
