"""Command-line interface: regenerate the paper's experiments.

Usage::

    python -m repro fig6 [--repeats N] [--quick] [--jobs N] [OBS FLAGS]
    python -m repro fig8 [--repeats N] [--quick] [--jobs N] [OBS FLAGS]
    python -m repro fig15 [--repeats N] [--quick] [--jobs N] [OBS FLAGS]
    python -m repro ablations [--repeats N] [--quick] [--jobs N] [OBS FLAGS]
    python -m repro scaling [--repeats N] [--quick] [--jobs N] [OBS FLAGS]
    python -m repro all [--repeats N] [--quick] [--jobs N]
    python -m repro query 'select ...;' [OBS FLAGS]
    python -m repro analyze 'select ...;' [--file F] [--example E.py]
                            [--sweeps] [--strict] [--json]
    python -m repro multiquery [--streams N] [--array-bytes B] [--count N]
                               [--live-out PATH] [--live-window SECS]
    python -m repro bench [--out B.json] [--baseline B.json]
                          [--tolerance PCT] [--warn-only] [--jobs N]
                          [--only FIGURE] [--scale-shape XxYxZ]
                          [--scale-floor EVENTS_PER_SEC]
                          [--live-out PATH] [--live-window SECS]
    python -m repro top [--point NAME] [--window SECS] [--once]
                        [--live-out PATH] [--prom PATH]

``--quick`` runs a reduced sweep (seconds instead of minutes).  ``--jobs N``
fans the independent (sweep-point, repeat) simulations over N worker
processes with bit-identical results (see ``docs/performance.md``); the
observability flags force in-process runs.  ``query`` executes one SCSQL
statement on a fresh default environment and prints the result and
placements.  ``multiquery`` compiles two continuous queries once, deploys
them concurrently on one shared environment (both receiving inside the
same BlueGene pset, so they contend for its I/O-node path), and reports
each query's bandwidth next to its solo baseline.

Observability flags (``OBS FLAGS``): ``--trace PATH`` records every
simulated run and writes a Chrome ``trace_event`` file with per-flow hop
lanes and flow arrows (open it at ``chrome://tracing`` or
https://ui.perfetto.dev); a path ending in ``.jsonl`` writes raw JSON-lines
records instead.  ``--metrics-out PATH`` writes plain-text utilization
summaries (``-`` prints to stdout).  ``--bottlenecks PATH`` runs the
critical-path profiler over the collected flows and writes the ranked
report (``.json`` for machine-readable, ``-`` for stdout).

``bench`` is the perf-regression gate: it records the fast figure-sweep
bandwidths and flow-latency percentiles (plus the 4096-node ``scale``
figure's kernel throughput) to a BENCH JSON file and/or compares them
against a committed baseline, exiting non-zero on a regression
(``--warn-only`` reports without failing).  ``--only`` restricts the run
to named figures, ``--scale-shape`` shrinks the scale torus, and
``--scale-floor`` enforces an absolute events/sec floor.  See
``docs/observability.md``.

``top`` is the live-telemetry viewer: it runs one bench sample point with
a :class:`~repro.obs.live.LiveSampler` attached and renders a per-window
utilization/latency table as the simulation produces it (``--once``
prints the finished table a single time, for CI).  ``--live-out`` writes
the windowed time-series as JSON-lines; ``--prom`` writes a
Prometheus-style text exposition snapshot.  The same ``--live-out`` /
``--live-window`` pair on ``bench`` (power/throughput modes) and
``multiquery`` embeds the final windowed p50/p95/p99 series in the BENCH
v2 JSON — the regression gate keeps reading only the scalar metrics.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional, Tuple

from repro.core.experiments import (
    run_buffer_choice_ablation,
    run_fig6,
    run_fig8,
    run_fig15,
    run_node_selection_ablation,
    run_scaling_study,
)
from repro.obs import Instrumentation, profile, utilization_summary
from repro.obs.export import write_chrome_trace, write_trace_jsonl
from repro.obs.flow import NULL_FLOWS
from repro.obs.tracer import NULL_TRACER
from repro.scsql.session import SCSQSession


def _wants_observation(args) -> bool:
    return bool(
        getattr(args, "trace", None)
        or getattr(args, "metrics_out", None)
        or getattr(args, "bottlenecks", None)
    )


def _wants_flows(args) -> bool:
    """Flow tracing is recorded for traces and bottleneck reports only."""
    return bool(getattr(args, "trace", None) or getattr(args, "bottlenecks", None))


def _obs_factory(args):
    """Instrumentation factory for observed runs (metrics-only without --trace)."""
    if not _wants_observation(args):
        return None
    tracing = bool(getattr(args, "trace", None))
    flows = None if _wants_flows(args) else NULL_FLOWS

    def factory(_repeat: int) -> Instrumentation:
        return Instrumentation(tracer=None if tracing else NULL_TRACER, flows=flows)

    return factory


def _export_observations(args, sections: List[Tuple[str, Instrumentation]]) -> None:
    """Write the collected instrumentations per the observability flags."""
    trace_path = getattr(args, "trace", None)
    if trace_path:
        if trace_path.endswith(".jsonl"):
            with open(trace_path, "w", encoding="utf-8") as fh:
                lines = 0
                for label, obs in sections:
                    fh.write('{"section": %s}\n' % _json_str(label))
                    lines += write_trace_jsonl(fh, obs.tracer)
            print(f"trace: {lines} records -> {trace_path} (JSON-lines)")
        else:
            document = write_chrome_trace(
                trace_path,
                [(label, obs.tracer) for label, obs in sections],
                [
                    (label, obs.flows)
                    for label, obs in sections
                    if obs.flows.enabled and obs.flows.completed
                ],
            )
            print(
                f"trace: {len(document['traceEvents'])} events -> {trace_path} "
                "(open at chrome://tracing or ui.perfetto.dev)"
            )
    metrics_path = getattr(args, "metrics_out", None)
    if metrics_path:
        text = "\n\n".join(
            f"== {label} ==\n{utilization_summary(obs)}" for label, obs in sections
        )
        if metrics_path == "-":
            print(text)
        else:
            with open(metrics_path, "w", encoding="utf-8") as fh:
                fh.write(text + "\n")
            print(f"metrics: {len(sections)} run summaries -> {metrics_path}")
    bottlenecks_path = getattr(args, "bottlenecks", None)
    if bottlenecks_path:
        report = profile([obs for _label, obs in sections])
        if bottlenecks_path == "-":
            print(report.format_text())
        elif bottlenecks_path.endswith(".json"):
            report.write_json(bottlenecks_path)
            print(f"bottlenecks: {report.flows} flows profiled -> {bottlenecks_path}")
        else:
            with open(bottlenecks_path, "w", encoding="utf-8") as fh:
                fh.write(report.format_text() + "\n")
            print(f"bottlenecks: {report.flows} flows profiled -> {bottlenecks_path}")


def _json_str(value: str) -> str:
    import json

    return json.dumps(value)


def _fig6(args) -> None:
    sizes = (200, 1000, 5000, 100_000) if args.quick else None
    result = run_fig6(
        **({} if sizes is None else {"buffer_sizes": sizes}),
        repeats=args.repeats,
        target_buffers=300 if args.quick else 1500,
        obs_factory=_obs_factory(args),
        jobs=args.jobs,
    )
    print(result.format_table())
    print(
        f"-> optimum: single={result.optimum(False).buffer_bytes} B, "
        f"double={result.optimum(True).buffer_bytes} B"
    )
    if _wants_observation(args):
        _export_observations(args, [
            (
                f"fig6 B={p.buffer_bytes} "
                f"{'double' if p.double_buffering else 'single'} r{i}",
                obs,
            )
            for p in result.points
            for i, obs in enumerate(p.result.observations)
        ])


def _fig8(args) -> None:
    sizes = (1000, 10_000, 200_000) if args.quick else None
    result = run_fig8(
        **({} if sizes is None else {"buffer_sizes": sizes}),
        repeats=args.repeats,
        target_buffers=250 if args.quick else 1200,
        obs_factory=_obs_factory(args),
        jobs=args.jobs,
    )
    print(result.format_table())
    print(f"-> balanced advantage: {result.balanced_advantage():.2f}x")
    if _wants_observation(args):
        _export_observations(args, [
            (
                f"fig8 B={p.buffer_bytes} "
                f"{'bal' if p.balanced else 'seq'}/"
                f"{'double' if p.double_buffering else 'single'} r{i}",
                obs,
            )
            for p in result.points
            for i, obs in enumerate(p.result.observations)
        ])


def _fig15(args) -> None:
    counts = (1, 2, 4, 5) if args.quick else (1, 2, 3, 4, 5, 6, 7, 8)
    result = run_fig15(
        stream_counts=counts,
        repeats=args.repeats,
        array_count=5 if args.quick else 10,
        obs_factory=_obs_factory(args),
        jobs=args.jobs,
    )
    print(result.format_table())
    peak = result.peak(5)
    print(f"-> Query 5 peak: {peak.mbps:.0f} Mbps")
    if _wants_observation(args):
        _export_observations(args, [
            (f"fig15 Q{p.query_number} n={p.n} r{i}", obs)
            for p in result.points
            for i, obs in enumerate(p.result.observations)
        ])


def _ablations(args) -> None:
    selection = run_node_selection_ablation(
        stream_counts=(4,) if args.quick else (2, 4, 6, 8),
        repeats=args.repeats,
        count=4 if args.quick else 10,
        obs_factory=_obs_factory(args),
        jobs=args.jobs,
    )
    print(selection.format_table())
    print()
    buffers = run_buffer_choice_ablation(
        buffer_sizes=(1000, 2000, 100_000)
        if args.quick
        else (500, 1000, 2000, 10_000, 100_000, 1_000_000),
        repeats=args.repeats,
        obs_factory=_obs_factory(args),
        jobs=args.jobs,
    )
    print(buffers.format_table())
    if _wants_observation(args):
        sections = [
            (f"ablation selector={r.selector_name} n={r.n} r{i}", obs)
            for r in selection.results
            for i, obs in enumerate(r.observations)
        ]
        sections.extend(
            (f"ablation buffers {pattern} B={size} r{i}", obs)
            for pattern, table in (("p2p", buffers.p2p), ("merge", buffers.merge))
            for size, result in sorted(table.items())
            for i, obs in enumerate(result.observations)
        )
        _export_observations(args, sections)


def _scaling(args) -> None:
    partitions = (((4, 4, 2), 4), ((4, 4, 4), 8)) if args.quick else None
    study = run_scaling_study(
        **({} if partitions is None else {"partitions": partitions}),
        repeats=args.repeats,
        array_count=3 if args.quick else 5,
        obs_factory=_obs_factory(args),
        jobs=args.jobs,
    )
    print(study.format_table())
    if _wants_observation(args):
        _export_observations(args, [
            (
                f"scaling Q{p.query_number} io={p.num_io_nodes} "
                f"uplink={p.uplink_gbps:g}G r{i}",
                obs,
            )
            for p in study.points
            for i, obs in enumerate(p.result.observations)
        ])


def _all(args) -> None:
    for name, runner in (
        ("fig6", _fig6),
        ("fig8", _fig8),
        ("fig15", _fig15),
        ("ablations", _ablations),
        ("scaling", _scaling),
    ):
        start = time.time()
        runner(args)
        print(f"[{name}: {time.time() - start:.1f}s]")
        print()


def _query(args) -> None:
    obs = None
    if _wants_observation(args):
        from repro.hardware.environment import Environment, EnvironmentConfig

        obs = Instrumentation(
            tracer=None if args.trace else NULL_TRACER,
            flows=None if _wants_flows(args) else NULL_FLOWS,
        )
        session = SCSQSession(Environment(EnvironmentConfig(), obs=obs))
    else:
        session = SCSQSession()
    report = session.execute(args.text, stop_after=args.stop_after)
    if report is None:
        print("function defined")
        return
    print("result:", report.result)
    print(f"simulated time: {report.duration * 1e3:.3f} ms"
          + (" (stopped)" if report.stopped else ""))
    print("placements:")
    for sp_id, node in sorted(report.rp_placements.items()):
        print(f"  {sp_id:>24} -> {node}")
    if obs is not None:
        _export_observations(args, [("query", obs)])


def _explain(args) -> None:
    print(SCSQSession().explain(args.text))


def _live_window_arg(args) -> Optional[float]:
    """The effective live window: --live-out implies the default window."""
    window = getattr(args, "live_window", None)
    if window is None and getattr(args, "live_out", None):
        from repro.obs.live import DEFAULT_WINDOW

        window = DEFAULT_WINDOW
    return window


def _multiquery(args) -> None:
    from repro.core.experiments.contention import SHARED_PSET, run_contention_demo

    result = run_contention_demo(
        n=args.streams,
        array_bytes=args.array_bytes,
        count=args.count,
        seed=args.seed,
        live_window=_live_window_arg(args),
    )
    print(result.format_table())
    worst = min(o.interference for o in result.outcomes)
    print(
        f"-> two concurrent CQs through pset {SHARED_PSET}'s I/O node: "
        f"worst query keeps {worst:.0%} of its solo bandwidth"
    )
    if result.live is not None:
        from repro.obs.export import live_table, write_timeseries_jsonl

        print()
        print(live_table(result.live))
        if args.live_out:
            lines = write_timeseries_jsonl(
                args.live_out, result.live, label="multiquery"
            )
            print(f"live: {lines} time-series records -> {args.live_out}")


def _parse_torus_shape(text: str) -> "tuple[int, int, int]":
    parts = text.lower().split("x")
    if len(parts) != 3 or not all(p.isdigit() and int(p) > 0 for p in parts):
        raise ValueError(
            f"torus shape must look like 16x16x16, got {text!r}"
        )
    x, y, z = (int(p) for p in parts)
    return (x, y, z)


def _bench(args) -> int:
    from repro.core.bench import (
        BENCH_FIGURES,
        compare_bench,
        figure_of_metric,
        format_comparison,
        load_bench,
        run_bench,
        write_bench,
    )

    live_window = _live_window_arg(args)
    if args.mode == "gate" and args.fault:
        print("bench: --fault needs --mode throughput", file=sys.stderr)
        return 2
    if args.mode == "gate" and live_window is not None:
        print("bench: --live-out/--live-window need --mode power or "
              "throughput", file=sys.stderr)
        return 2
    if args.mode != "gate" and (args.only or args.scale_shape or
                                args.scale_floor is not None):
        print("bench: --only/--scale-shape/--scale-floor need --mode gate",
              file=sys.stderr)
        return 2
    if not args.out and not args.baseline and args.mode == "gate" \
            and args.scale_floor is None:
        print("bench: nothing to do (pass --out, --baseline, and/or "
              "--scale-floor)", file=sys.stderr)
        return 2
    figures = None
    if args.only:
        figures = set(args.only)
        unknown = figures - set(BENCH_FIGURES)
        if unknown:
            print(f"bench: unknown --only figure(s) {sorted(unknown)}; "
                  f"expected a subset of {list(BENCH_FIGURES)}",
                  file=sys.stderr)
            return 2
    scale_shape = None
    if args.scale_shape:
        try:
            scale_shape = _parse_torus_shape(args.scale_shape)
        except ValueError as exc:
            print(f"bench: {exc}", file=sys.stderr)
            return 2
    series = None
    if args.mode == "gate":
        metrics = run_bench(
            repeats=args.repeats, progress=print, jobs=args.jobs,
            figures=figures, scale_shape=scale_shape,
        )
    else:
        from repro.bench import (
            DEFAULT_SCALE,
            SMOKE_SCALE,
            run_fault_benchmark,
            run_power_mode,
            run_throughput_mode,
        )

        scale = SMOKE_SCALE if args.smoke else DEFAULT_SCALE
        detector_kwargs = _detector_kwargs(args)
        if detector_kwargs and live_window is None:
            print("bench: --detect-* flags need --live-out/--live-window",
                  file=sys.stderr)
            return 2
        if args.mode == "power":
            if args.fault:
                print("bench: --fault needs --mode throughput", file=sys.stderr)
                return 2
            report = run_power_mode(
                scale=scale, seed=args.seed, live_window=live_window,
                detector_kwargs=detector_kwargs,
            )
        elif args.fault:
            if live_window is not None:
                print("bench: --live-out/--live-window are not wired "
                      "through --fault runs", file=sys.stderr)
                return 2
            report = run_fault_benchmark(
                args.fault,
                args.streams,
                scale=scale,
                seed=args.seed,
                repeats=args.repeats,
                jobs=args.jobs,
            )
        else:
            report = run_throughput_mode(
                args.streams,
                scale=scale,
                seed=args.seed,
                rounds=1 if args.smoke else None,
                live_window=live_window,
                detector_kwargs=detector_kwargs,
            )
        print(report.describe())
        metrics = report.metrics
        series = report.series
        if series and args.live_out:
            import json

            with open(args.live_out, "w", encoding="utf-8") as fh:
                for segment in sorted(series):
                    fh.write(json.dumps({"label": segment, **series[segment]}) + "\n")
            print(f"live: {len(series)} windowed series -> {args.live_out}")
    if args.out:
        write_bench(args.out, metrics, repeats=args.repeats, series=series)
        print(f"bench: {len(metrics)} metrics -> {args.out}"
              + (f" (+{len(series)} windowed series)" if series else ""))
    failed = False
    if args.baseline:
        baseline = load_bench(args.baseline)
        if figures is not None:
            # A partial run must not read figures it skipped as "missing".
            baseline = {
                name: value for name, value in baseline.items()
                if figure_of_metric(name) in figures
            }
        deltas, new_metrics = compare_bench(
            baseline, metrics, tolerance_pct=args.tolerance
        )
        print(format_comparison(deltas, new_metrics))
        if any(delta.regressed for delta in deltas):
            if args.warn_only:
                print("bench: regression detected (warn-only, not failing)")
            else:
                failed = True
    if args.scale_floor is not None:
        rates = [
            value for name, value in metrics.items()
            if figure_of_metric(name) == "scale"
            and name.endswith("/events_per_sec")
        ]
        if not rates:
            print("bench: --scale-floor set but no scale events_per_sec "
                  "metric was produced", file=sys.stderr)
            return 2
        if min(rates) < args.scale_floor:
            print(f"bench: scale throughput {min(rates):,.0f} events/sec "
                  f"below the floor of {args.scale_floor:,.0f}")
            failed = True
        else:
            print(f"bench: scale throughput {min(rates):,.0f} events/sec "
                  f"clears the floor of {args.scale_floor:,.0f}")
    return 1 if failed else 0


def _adaptive(args) -> int:
    from repro.core.experiments.adaptive import (
        ADAPTIVE_POINTS,
        run_adaptive_point,
        write_health_events,
    )
    from repro.obs.live import DEFAULT_WINDOW

    if args.point not in ADAPTIVE_POINTS:
        print(f"adaptive: unknown point {args.point!r} "
              f"(known: {', '.join(ADAPTIVE_POINTS)})", file=sys.stderr)
        return 2
    comparison = run_adaptive_point(
        args.point,
        seed=args.seed,
        smoke=args.smoke,
        window=args.window if args.window is not None else DEFAULT_WINDOW,
        detector_kwargs=_detector_kwargs(args),
    )
    print(comparison.format_table())
    if args.events_out:
        count = write_health_events(args.events_out, comparison.adaptive)
        print(f"health: {count} events -> {args.events_out}")
    return 0


#: Short aliases for the ``top`` sample points (full bench names work too).
_TOP_ALIASES = {
    "fig6": "fig6[B=100000,double]",
    "fig8": "fig8[B=100000,seq,double]",
    "fig15": "fig15[Q5,n=5]",
}


def _top(args) -> int:
    from repro.core.bench import bench_points
    from repro.coordinator.deployer import Deployer
    from repro.hardware.environment import (
        Environment,
        EnvironmentConfig,
        shared_template,
    )
    from repro.obs.export import (
        LIVE_HEADER,
        live_footer,
        live_row,
        live_table,
        prometheus_exposition,
        write_timeseries_jsonl,
    )
    from repro.obs.live import DEFAULT_WINDOW, LiveSampler
    from repro.scsql.plan import compile_plan
    from repro.util.units import MEGA

    points = {point.name: point for point in bench_points()}
    name = _TOP_ALIASES.get(args.point, args.point)
    point = points.get(name)
    if point is None:
        known = ", ".join(sorted(_TOP_ALIASES) + sorted(points))
        print(f"top: unknown sample point {args.point!r} (known: {known})",
              file=sys.stderr)
        return 2

    window = args.window if args.window is not None else DEFAULT_WINDOW
    streaming = not args.once
    if streaming:
        print(f"top: {point.name}, window {window * 1e3:g} ms "
              f"(simulated), seed {args.seed}")
        print(LIVE_HEADER)
        print("-" * len(LIVE_HEADER))
    detector_kwargs = _detector_kwargs(args)
    detector = None
    if detector_kwargs:
        from repro.obs.health import ContinuousBottleneckDetector

        detector = ContinuousBottleneckDetector(**detector_kwargs)
    sampler = LiveSampler(
        window=window,
        detector=detector,
        on_window=(lambda window: print(live_row(window))) if streaming else None,
    )
    config = EnvironmentConfig().with_seed(args.seed)
    obs = Instrumentation(tracer=NULL_TRACER, live=sampler)
    env = Environment(config, obs=obs, template=shared_template(config))
    plan = compile_plan(point.query, settings=point.settings)
    report = Deployer(env).run(plan, settings=point.settings)
    sampler.finalize(env.sim.now)
    if streaming:
        footer = live_footer(sampler)
        if footer:
            print(footer)
    else:
        print(f"top: {point.name}, window {window * 1e3:g} ms "
              f"(simulated), seed {args.seed}")
        print(live_table(sampler))
    mbps = point.payload_bytes * 8.0 / report.duration / MEGA
    print(f"run: {report.duration * 1e3:.3f} ms simulated, {mbps:.2f} Mbps, "
          f"{len(sampler.windows)} window(s)")
    if args.live_out:
        lines = write_timeseries_jsonl(args.live_out, sampler, label=point.name)
        print(f"live: {lines} time-series records -> {args.live_out}")
    if args.prom:
        exposition = prometheus_exposition(obs)
        if args.prom == "-":
            print(exposition, end="")
        else:
            with open(args.prom, "w", encoding="utf-8") as fh:
                fh.write(exposition)
            print(f"prom: exposition snapshot -> {args.prom}")
    return 0


def _add_detector_flags(parser: argparse.ArgumentParser) -> None:
    group = parser.add_argument_group(
        "detector hysteresis",
        "thresholds of the continuous bottleneck detector watching the "
        "live windows (defaults in repro.obs.health)",
    )
    group.add_argument(
        "--detect-high", type=float, default=None, metavar="FRAC",
        help="utilization fraction at or above which a resource counts "
             "as saturated (default 0.85)",
    )
    group.add_argument(
        "--detect-low", type=float, default=None, metavar="FRAC",
        help="utilization fraction at or below which a saturated resource "
             "counts as recovered (default 0.60)",
    )
    group.add_argument(
        "--detect-up-windows", type=int, default=None, metavar="N",
        help="consecutive hot windows before a saturation event fires "
             "(default 2)",
    )
    group.add_argument(
        "--detect-down-windows", type=int, default=None, metavar="N",
        help="consecutive cool windows before a recovery event fires "
             "(default 2)",
    )


def _detector_kwargs(args) -> Optional[dict]:
    """The detector overrides actually passed, or None for stock."""
    mapping = {
        "high": args.detect_high,
        "low": args.detect_low,
        "up_windows": args.detect_up_windows,
        "down_windows": args.detect_down_windows,
    }
    kwargs = {name: value for name, value in mapping.items() if value is not None}
    return kwargs or None


def _add_live_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--live-out", metavar="PATH", default=None,
        help="watch the run with the live telemetry sampler and write the "
             "windowed time-series as JSON-lines",
    )
    parser.add_argument(
        "--live-window", type=float, default=None, metavar="SECS",
        help="live sampling window in simulated seconds (implies the live "
             "sampler; --live-out alone uses the default window)",
    )


def _add_sanitize_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--sanitize", action="store_true",
        help="run under the dynamic sanitizer: audit every deployment "
             "teardown/migration for leaked processes, inboxes, carriers, "
             "node slots and listeners, and exit 1 on findings (in-process "
             "runs only — subprocess workers of --jobs N are not audited)",
    )
    parser.add_argument(
        "--chaos-seed", type=int, default=None, metavar="SEED",
        help="replay under the seeded shuffle scheduler: same-instant "
             "same-rank events dispatch in a seed-derived order, so any "
             "metric drift between seeds exposes a schedule race",
    )
    # Marks this subcommand for main()'s sanitizer wrapper.  `analyze`
    # also has a --sanitize flag but opens its own scope in cli.py, so
    # the wrapper must not double-wrap it (scopes do not nest).
    parser.set_defaults(_sanitize_wrap=True)


def _add_observability_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace", metavar="PATH", default=None,
        help="record every simulated run; writes a Chrome trace_event JSON "
             "file with flow arrows (.jsonl extension switches to raw "
             "JSON-lines records)",
    )
    parser.add_argument(
        "--metrics-out", metavar="PATH", default=None,
        help="write plain-text utilization summaries of every run "
             "('-' prints to stdout)",
    )
    parser.add_argument(
        "--bottlenecks", metavar="PATH", default=None,
        help="profile the critical path over all recorded flows and write "
             "the ranked bottleneck report (.json extension for JSON, "
             "'-' prints to stdout)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="SCSQ reproduction: regenerate the paper's experiments",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    for name, func, observable in (
        ("fig6", _fig6, True),
        ("fig8", _fig8, True),
        ("fig15", _fig15, True),
        ("ablations", _ablations, True),
        ("scaling", _scaling, True),
        ("all", _all, False),
    ):
        p = sub.add_parser(name, help=f"run the {name} experiment(s)")
        p.add_argument("--repeats", type=int, default=3, help="runs per point")
        p.add_argument("--quick", action="store_true", help="reduced sweep")
        p.add_argument(
            "--jobs", type=int, default=1, metavar="N",
            help="fan the independent (point, repeat) simulations over N "
                 "worker processes; results are bit-identical to --jobs 1 "
                 "(ignored when an observability flag forces in-process runs)",
        )
        if observable:
            _add_observability_flags(p)
        p.set_defaults(func=func)
    b = sub.add_parser(
        "bench",
        help="perf-regression gate: record/compare the BENCH baseline",
    )
    b.add_argument(
        "--out", metavar="PATH", default=None,
        help="write the measured metrics as a BENCH JSON file",
    )
    b.add_argument(
        "--baseline", metavar="PATH", default=None,
        help="compare against this BENCH JSON file; exit 1 on regression",
    )
    b.add_argument(
        "--tolerance", type=float, default=5.0, metavar="PCT",
        help="allowed drift in percent of the baseline value (default 5)",
    )
    b.add_argument(
        "--warn-only", action="store_true",
        help="report regressions without a failing exit code",
    )
    b.add_argument("--repeats", type=int, default=1, help="runs per bench point")
    b.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for the bench sweeps (wall-clock metrics "
             "then measure the parallel harness)",
    )
    b.add_argument(
        "--mode", choices=("gate", "power", "throughput"), default="gate",
        help="'gate' (default) runs the figure-sweep regression subset; "
             "'power' runs the numbered-stream deck serially and reports "
             "per-query latency; 'throughput' interleaves N streams and "
             "reports per-stream bandwidth (see docs/benchmarking.md)",
    )
    b.add_argument(
        "--streams", type=int, default=4, metavar="N",
        help="number of concurrent query streams in throughput mode",
    )
    b.add_argument(
        "--fault", metavar="SCENARIO", default=None,
        choices=("kill-node", "kill-io-node", "degrade-link", "degrade-uplink",
                 "correlated", "flapping"),
        help="inject a mid-run failure into the throughput run and report "
             "recovery time and bandwidth dip (kill-node, kill-io-node, "
             "degrade-link, degrade-uplink, or the composites: correlated "
             "= node death plus uplink degradation in one window, flapping "
             "= transient uplink degrade/restore cycles)",
    )
    b.add_argument(
        "--seed", type=int, default=0,
        help="base seed of the power/throughput/fault runs (repeat i uses "
             "seed+i); identical seeds reproduce identical numbers",
    )
    b.add_argument(
        "--smoke", action="store_true",
        help="CI smoke scale: small deck workloads, one throughput round",
    )
    b.add_argument(
        "--only", action="append", metavar="FIGURE", default=None,
        help="restrict a gate run to one figure subset (repeatable: "
             "fig6, fig8, fig15, scale, adaptive); a --baseline comparison "
             "is then subset to the same figures",
    )
    b.add_argument(
        "--scale-shape", metavar="XxYxZ", default=None,
        help="torus shape of the scale figure (default 16x16x16); CI "
             "smoke runs a reduced 8x8x8",
    )
    b.add_argument(
        "--scale-floor", type=float, default=None, metavar="EVENTS_PER_SEC",
        help="fail (exit 1) unless the scale figure's kernel throughput "
             "reaches this many events/sec — an absolute floor for runs "
             "whose reduced shape has no committed baseline metric",
    )
    _add_live_flags(b)
    _add_detector_flags(b)
    _add_sanitize_flags(b)
    b.set_defaults(func=_bench)
    a = sub.add_parser(
        "adaptive",
        help="adaptive runtime: compare a static placement against "
             "measurement-driven live migration on one regression point",
    )
    a.add_argument(
        "--point", default="fig15", metavar="NAME",
        help="regression point to run: fig15 (concurrent-CQ contention "
             "funnel, default) or fig8 (merge through a busy intermediate)",
    )
    a.add_argument("--seed", type=int, default=0, help="environment seed")
    a.add_argument(
        "--smoke", action="store_true",
        help="CI smoke scale: reduced payloads, same control loop",
    )
    a.add_argument(
        "--window", type=float, default=None, metavar="SECS",
        help="live sampling window in simulated seconds (default 0.002)",
    )
    a.add_argument(
        "--events-out", metavar="PATH", default=None,
        help="write the adaptive run's health events as JSON-lines "
             "(the CI smoke job uploads this artifact)",
    )
    _add_detector_flags(a)
    _add_sanitize_flags(a)
    a.set_defaults(func=_adaptive)
    t = sub.add_parser(
        "top",
        help="live telemetry viewer: stream per-window utilization and "
             "latency percentiles from one bench sample point",
    )
    t.add_argument(
        "--point", default="fig8", metavar="NAME",
        help="bench sample point to watch: fig6/fig8/fig15 aliases or a "
             "full bench point name (default fig8)",
    )
    t.add_argument(
        "--window", type=float, default=None, metavar="SECS",
        help="sampling window in simulated seconds (default 0.002)",
    )
    t.add_argument("--seed", type=int, default=0, help="environment seed")
    t.add_argument(
        "--once", action="store_true",
        help="print the finished table once instead of streaming rows "
             "(for CI)",
    )
    t.add_argument(
        "--live-out", metavar="PATH", default=None,
        help="also write the windowed time-series as JSON-lines",
    )
    t.add_argument(
        "--prom", metavar="PATH", default=None,
        help="write a Prometheus-style text exposition snapshot "
             "('-' prints to stdout)",
    )
    _add_detector_flags(t)
    t.set_defaults(func=_top)
    q = sub.add_parser("query", help="execute one SCSQL statement")
    q.add_argument("text", help="the SCSQL statement")
    q.add_argument(
        "--stop-after", type=float, default=None,
        help="terminate the query at this simulated time (seconds)",
    )
    _add_observability_flags(q)
    q.set_defaults(func=_query)
    e = sub.add_parser("explain", help="show a query's process graph and placement")
    e.add_argument("text", help="the SCSQL select query")
    e.set_defaults(func=_explain)
    m = sub.add_parser(
        "multiquery",
        help="run two concurrent CQs contending for one I/O-node path",
    )
    m.add_argument(
        "--streams", type=int, default=2, metavar="N",
        help="parallel back-end streams per query (default 2)",
    )
    m.add_argument(
        "--array-bytes", type=int, default=3_000_000, metavar="BYTES",
        help="array size each stream sends (default 3 MB, as in the paper)",
    )
    m.add_argument(
        "--count", type=int, default=5, metavar="N",
        help="arrays per stream (default 5)",
    )
    m.add_argument("--seed", type=int, default=0, help="environment seed")
    _add_live_flags(m)
    m.set_defaults(func=_multiquery)
    from repro.analysis.cli import add_analyze_parser

    add_analyze_parser(sub)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if getattr(args, "_sanitize_wrap", False) and (
        args.sanitize or args.chaos_seed is not None
    ):
        return _run_sanitized(args)
    code = args.func(args)
    return 0 if code is None else int(code)


def _run_sanitized(args) -> int:
    """Run one subcommand under the sanitizer and/or the chaos scheduler."""
    from contextlib import ExitStack

    from repro.analysis import sanitize

    scope = None
    with ExitStack() as stack:
        if getattr(args, "chaos_seed", None) is not None:
            stack.enter_context(sanitize.chaos(args.chaos_seed))
        if getattr(args, "sanitize", False):
            scope = stack.enter_context(
                sanitize.sanitizer(label=f"cli:{args.command}", strict=False)
            )
        code = args.func(args)
    if scope is not None and scope.report.diagnostics:
        print(scope.report.format_text(), file=sys.stderr)
        return 1
    return 0 if code is None else int(code)


if __name__ == "__main__":
    sys.exit(main())
