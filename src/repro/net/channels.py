"""Uniform channel abstraction over the concrete network models.

The stream engine's sender drivers talk to a :class:`Channel`; the concrete
subclass is chosen from the endpoints' clusters, mirroring the paper's
driver selection rule (section 2.3): "MPI is always used inside the
BlueGene as that is the only allowed protocol, while TCP is always used
when communicating between clusters."

* :class:`MpiChannel` — both endpoints on BlueGene compute nodes: the torus.
* :class:`TcpChannel` — back-end Linux host into a BlueGene compute node:
  the full Ethernet/I-O-node ingress path.
* :class:`LatencyChannel` — every other pairing (result trickles to the
  front-end, intra-Linux-cluster edges, registration traffic).  These paths
  carry negligible volume in all of the paper's experiments ("only one
  number is transmitted from b to the client manager"), so they are
  modelled as an uncontended latency + serialization delay.

Each channel delivers :class:`~repro.net.message.WireBuffer` objects into a
destination :class:`~repro.sim.resources.Store` owned by the receiving
driver; a bounded store gives back-pressure.
"""

from __future__ import annotations

from typing import Optional

from repro.hardware.node import Node, NodeKind
from repro.net.ethernet import EthernetFabric, TcpStreamConnection
from repro.net.jitter import Jitter
from repro.net.message import WireBuffer
from repro.net.params import NetworkParams
from repro.net.torus import TorusNetwork
from repro.sim import Simulator, Store
from repro.util.errors import NetworkError


class Channel:
    """One directed stream carrier between two nodes."""

    def __init__(self, sim: Simulator, source: Node, destination: Node, deliver: Store):
        self.sim = sim
        self.source = source
        self.destination = destination
        self.deliver = deliver

    def open(self):
        """Generator establishing the channel (may cost simulated time)."""
        return
        yield  # pragma: no cover - makes this a generator

    def send(self, buffer: WireBuffer):
        """Generator sending one buffer (returns at local completion)."""
        raise NotImplementedError

    def close(self):
        """Generator releasing connection state (may drain in-flight data)."""
        return
        yield  # pragma: no cover - makes this a generator

    def abort(self) -> None:
        """Release connection state immediately, without draining.

        The teardown path for killed queries: ``close`` is a generator that
        may block on in-flight traffic, but a terminated deployment has no
        process left to run it — so the carrier must drop its registry
        state (coordination penalties, stream bookkeeping) synchronously.
        """

    @property
    def preferred_buffer_bytes(self) -> Optional[int]:
        """Carrier-imposed send-buffer size, or None when configurable.

        TCP streams rely on "the buffering of the TCP stack" (paper section
        3.2), so their flush size is the TCP segment size rather than the
        query's MPI buffer-size setting.
        """
        return None


class MpiChannel(Channel):
    """Intra-BlueGene stream over the torus (the only allowed protocol)."""

    def __init__(
        self,
        sim: Simulator,
        source: Node,
        destination: Node,
        deliver: Store,
        torus: TorusNetwork,
    ):
        if source.kind is not NodeKind.BG_COMPUTE or destination.kind is not NodeKind.BG_COMPUTE:
            raise NetworkError("MpiChannel endpoints must be BlueGene compute nodes")
        super().__init__(sim, source, destination, deliver)
        self.torus = torus
        self._stream_id = f"mpi:{source.index}->{destination.index}:{id(self)}"
        self._open = False

    def open(self):
        self.torus.register_stream(self.destination.index, self._stream_id)
        self._open = True
        return
        yield  # pragma: no cover - makes this a generator

    def send(self, buffer: WireBuffer):
        yield from self.torus.send(buffer, self.source.index, self.destination.index, self.deliver)

    def close(self):
        """Release torus state (MPI local completion: buffers may still fly).

        Unlike the TCP carrier this does **not** drain in-flight buffers:
        the paper's MPI semantics complete at injection, so the receiver
        driver — not the channel — is the authority on when the stream's
        flow records are finished (it drops stragglers once it consumes the
        end-of-stream marker).
        """
        if self._open:
            self.torus.unregister_stream(self.destination.index, self._stream_id)
            self._open = False
        return
        yield  # pragma: no cover - makes this a generator

    def abort(self) -> None:
        if self._open:
            self.torus.unregister_stream(self.destination.index, self._stream_id)
            self._open = False


class TcpChannel(Channel):
    """Inbound TCP stream from a Linux host into a BlueGene compute node."""

    def __init__(
        self,
        sim: Simulator,
        source: Node,
        destination: Node,
        deliver: Store,
        fabric: EthernetFabric,
        stream_id: str,
    ):
        if source.kind is not NodeKind.LINUX or destination.kind is not NodeKind.BG_COMPUTE:
            raise NetworkError(
                "TcpChannel carries Linux-host -> BlueGene-compute streams; "
                f"got {source.node_id} -> {destination.node_id}"
            )
        super().__init__(sim, source, destination, deliver)
        self._connection = TcpStreamConnection(
            fabric, source, destination.index, deliver, stream_id
        )
        self._params = fabric.params

    def open(self):
        yield from self._connection.open()

    def send(self, buffer: WireBuffer):
        yield from self._connection.send(buffer)

    def close(self):
        yield from self._connection.close()

    def abort(self) -> None:
        self._connection.abort()

    @property
    def preferred_buffer_bytes(self) -> Optional[int]:
        return self._params.tcp.segment_bytes


class LatencyChannel(Channel):
    """Uncontended low-volume path (results, registrations, intra-cluster)."""

    def __init__(
        self,
        sim: Simulator,
        source: Node,
        destination: Node,
        deliver: Store,
        params: NetworkParams,
        jitter: Optional[Jitter] = None,
    ):
        super().__init__(sim, source, destination, deliver)
        self.params = params
        self.jitter = jitter or Jitter()

    def send(self, buffer: WireBuffer):
        latency = self.params.ethernet.switch_latency
        serialization = buffer.nbytes / self.params.ethernet.nic_rate
        cost = self.jitter.apply(latency + serialization)
        yield self.sim.timeout(cost)
        flows = self.sim.obs.flows
        if flows.enabled:
            flows.hop(
                buffer, "latency.wire", self.sim.now,
                resource=f"wire[{self.source.node_id}->{self.destination.node_id}]",
                wire=cost,
            )
        yield self.deliver.put(buffer)
        if flows.enabled:
            flows.hop(buffer, "latency.deliver", self.sim.now)
