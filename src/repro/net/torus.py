"""The BlueGene 3D-torus interconnect and its MPI stream carrier.

This is the substrate behind Figures 6 and 8.  The model captures the three
mechanisms the paper identifies:

1. **Packet quantisation** — "1K is the smallest message size that can be
   exchanged in the BlueGene 3D torus"; buffers are padded to whole packets,
   so sub-1 KB send buffers waste wire time.
2. **Routing through intermediate co-processors** — "when messages are sent
   between non-adjacent nodes in BlueGene, they must be routed through the
   communication co-processors of the nodes in between.  Communication will
   be slower if these co-processors are busy."  Every node's co-processor is
   a capacity-1 :class:`~repro.sim.resources.Resource`; forwarded traffic
   and the node's own sends contend on it.
3. **Source switching at the receiver** — the "single-threaded communication
   co-processor of c must handle data streams from both a and b ... it
   switches between receiving messages from a and b.  Less frequent
   switching improves communication."  A switch penalty is charged whenever
   consecutive buffers received by a node come from different senders.

Routing is dimension-ordered (X, then Y, then Z) with wrap-around links,
which is how BlueGene/L's torus actually routes and is what makes the
paper's "sequential" node selection (nodes 0,1,2 in a line) route b->c
traffic through a's co-processor.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.hardware.bluegene import BlueGene
from repro.net.jitter import Jitter
from repro.net.message import WireBuffer
from repro.net.params import TorusParams
from repro.sim import Resource, Simulator, Store
from repro.util.errors import NetworkError


def _axis_steps(src: int, dst: int, size: int) -> List[int]:
    """Signed unit steps along one torus axis, taking the shorter way around.

    Ties (exactly half way around an even-sized axis) go in the negative
    direction, matching the paper's Figure 7A set-up where traffic from
    node 2 to node 0 is routed through node 1 (2 -> 1 -> 0, not 2 -> 3 -> 0
    around the wrap link).
    """
    if size == 1 or src == dst:
        return []
    forward = (dst - src) % size
    backward = (src - dst) % size
    if forward < backward:
        return [+1] * forward
    return [-1] * backward


#: Default cap on memoized routes.  16384 entries hold every pair a large
#: multi-query session touches while bounding a 16x16x16 torus (whose
#: all-pairs table would be 4096^2 = 16.7M entries) to a few megabytes.
DEFAULT_ROUTE_MEMO_ENTRIES = 16_384


class RouteTable:
    """Bounded memo table of XYZ dimension-ordered routes over one torus.

    Routes are pure functions of the torus shape, so one table can be shared
    by every :class:`TorusNetwork` over the same :class:`BlueGene` topology —
    including across repeats of a measurement sweep, where the environment
    template cache hands the same table to each fresh network instance.

    The memo is bounded at ``max_entries`` pairs: once full, the oldest
    *inserted* entry is evicted (FIFO).  Insertion order is deterministic
    given a deterministic access sequence, and the memo is a pure cache —
    an evicted pair is simply recomputed on the next request — so eviction
    can never change simulated results, only recomputation counts.
    FIFO (rather than LRU) keeps the hit path to a single dict lookup with
    no reordering bookkeeping; route working sets are dominated by a stable
    set of active streams, where the two policies behave alike.

    The cached path lists are returned by reference and must be treated as
    read-only by callers.
    """

    def __init__(self, bluegene: BlueGene,
                 max_entries: int = DEFAULT_ROUTE_MEMO_ENTRIES):
        if max_entries < 1:
            raise NetworkError(
                f"route memo must hold at least one entry, got {max_entries}"
            )
        self.bluegene = bluegene
        self.max_entries = max_entries
        self._routes: Dict[Tuple[int, int], List[int]] = {}

    def route(self, src: int, dst: int) -> List[int]:
        """Compute-node path from ``src`` to ``dst`` (inclusive), memoized."""
        key = (src, dst)
        path = self._routes.get(key)
        if path is None:
            routes = self._routes
            if len(routes) >= self.max_entries:
                # FIFO eviction: dicts iterate in insertion order, so the
                # first key is the oldest entry.
                del routes[next(iter(routes))]
            path = routes[key] = self.compute(src, dst)
        return path

    def compute(self, src: int, dst: int) -> List[int]:
        """Freshly compute the XYZ dimension-ordered path (no memoization)."""
        bluegene = self.bluegene
        shape = bluegene.config.torus_shape
        if src == dst:
            return [src]
        path = [src]
        coord = list(bluegene.coord_of(src))
        target = bluegene.coord_of(dst)
        for axis in range(3):
            for step in _axis_steps(coord[axis], target[axis], shape[axis]):
                coord[axis] = (coord[axis] + step) % shape[axis]
                path.append(bluegene.index_of(tuple(coord)))
        return path

    def __len__(self) -> int:
        return len(self._routes)

    def approx_bytes(self) -> int:
        """Approximate resident size of the memo in bytes.

        Shallow-sums the dict, its key tuples, and the path lists (node
        indices are small shared ints).  The scale benchmark asserts this
        stays bounded on a 16x16x16 torus.
        """
        from sys import getsizeof

        total = getsizeof(self._routes)
        for key, path in self._routes.items():
            total += getsizeof(key) + getsizeof(path)
        return total


class TorusNetwork:
    """Contention-aware 3D torus carrying MPI stream buffers."""

    def __init__(
        self,
        sim: Simulator,
        bluegene: BlueGene,
        params: TorusParams = TorusParams(),
        jitter: Optional[Jitter] = None,
        routes: Optional[RouteTable] = None,
    ):
        self.sim = sim
        self.bluegene = bluegene
        self.params = params
        self.jitter = jitter or Jitter()
        self.routes = routes if routes is not None else RouteTable(bluegene)
        self._links: Dict[Tuple[int, int], Resource] = {}
        self._link_slowdown: Dict[Tuple[int, int], float] = {}
        self._coprocessors: Dict[int, Resource] = {}
        self._last_source: Dict[int, Optional[str]] = {}
        self._stream_windows: Dict[str, Store] = {}
        self._active_streams: Dict[int, set] = {}
        # Statistics for experiment reports.
        self.bytes_on_wire = 0
        self.buffers_delivered = 0
        self.source_switches = 0

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    def route(self, src: int, dst: int) -> List[int]:
        """Compute-node path from ``src`` to ``dst`` (inclusive), XYZ-ordered.

        Delegates to the (possibly shared) :class:`RouteTable`; route lookup
        is per-buffer on the transfer hot path, so this is memoized.
        """
        return self.routes.route(src, dst)

    def hop_count(self, src: int, dst: int) -> int:
        """Number of torus links on the route from ``src`` to ``dst``."""
        return len(self.route(src, dst)) - 1

    def coprocessor(self, node_index: int) -> Resource:
        """The (lazily created) communication co-processor of a compute node."""
        if node_index not in self._coprocessors:
            self.bluegene.node(node_index)  # validate index
            self._coprocessors[node_index] = Resource(
                self.sim, capacity=1, name=f"coproc[{node_index}]"
            )
        return self._coprocessors[node_index]

    def link(self, a: int, b: int) -> Resource:
        """The directional link resource from node ``a`` to node ``b``."""
        key = (a, b)
        if key not in self._links:
            self._links[key] = Resource(self.sim, capacity=1, name=f"link[{a}->{b}]")
        return self._links[key]

    def degrade_link(self, a: int, b: int, factor: float) -> None:
        """Slow every transfer over the ``a``/``b`` link by ``factor``.

        The fault-injection model of a flaky torus cable: the per-buffer
        occupancy of both directions of the link is multiplied by
        ``factor`` (>= 1) from now on.  The healthy path stays free: the
        hot loops only consult the slowdown table when it is non-empty.
        """
        if factor < 1.0:
            raise NetworkError(f"link slowdown factor must be >= 1, got {factor}")
        self.bluegene.node(a)  # validate indexes
        self.bluegene.node(b)
        self._link_slowdown[(a, b)] = float(factor)
        self._link_slowdown[(b, a)] = float(factor)

    def restore_link(self, a: int, b: int) -> None:
        """Heal a previously degraded ``a``/``b`` link (both directions).

        Restoring a link that was never degraded is a no-op; once the
        slowdown table is empty again the hot loops skip it entirely, so a
        healed torus is exactly as cheap as one that never flapped.
        """
        self.bluegene.node(a)  # validate indexes
        self.bluegene.node(b)
        self._link_slowdown.pop((a, b), None)
        self._link_slowdown.pop((b, a), None)

    def link_slowdown(self, a: int, b: int) -> float:
        """Current degradation factor of the ``a -> b`` link (1.0 = healthy)."""
        return self._link_slowdown.get((a, b), 1.0)

    # ------------------------------------------------------------------
    # Stream registry (drives the receive switching cost)
    # ------------------------------------------------------------------
    def register_stream(self, node: int, stream_id: str) -> None:
        """Record that a stream now terminates at compute node ``node``."""
        self._active_streams.setdefault(node, set()).add(stream_id)

    def unregister_stream(self, node: int, stream_id: str) -> None:
        """Record the end of a stream terminating at ``node``."""
        streams = self._active_streams.get(node)
        if streams is not None:
            streams.discard(stream_id)

    def active_stream_census(self) -> List[Tuple[int, str]]:
        """Every still-registered ``(node, stream_id)``, sorted.

        A quiescent torus has none: carriers unregister on close/abort, so
        anything left is a leaked registration (it would tax the receive
        switching cost of every later deployment on that node).  Read by
        the leak sanitizer (``SAN204``).
        """
        return sorted(
            (node, stream_id)
            for node, streams in self._active_streams.items()
            for stream_id in sorted(streams)
        )

    def incoming_stream_count(self, node: int) -> int:
        """Streams currently terminating at ``node`` (min 1 for costing)."""
        return max(1, len(self._active_streams.get(node, ())))

    def _switch_cost(self, node: int) -> float:
        """Per-buffer source-switching cost at ``node``.

        ``penalty * (k-1)``: zero for a single incoming stream (point-to-
        point pays no switching), the full penalty per buffer when two
        streams alternate, escalating as more streams contend.
        """
        k = self.incoming_stream_count(node)
        return self.params.source_switch_penalty * (k - 1)

    def _stream_window(self, stream_id: str) -> Store:
        """Token pool bounding in-flight buffers of one stream."""
        if stream_id not in self._stream_windows:
            window = Store(
                self.sim,
                capacity=self.params.stream_window,
                name=f"torus-window[{stream_id}]",
            )
            for _ in range(self.params.stream_window):
                window.put(None)
            self._stream_windows[stream_id] = window
        return self._stream_windows[stream_id]

    # ------------------------------------------------------------------
    # Transfer
    # ------------------------------------------------------------------
    def send(self, buffer: WireBuffer, src: int, dst: int, deliver: Store):
        """Inject ``buffer`` at ``src`` bound for ``dst`` (generator).

        Mirrors MPI local-completion semantics: the generator returns once
        the sending co-processor has finished injecting the buffer; the rest
        of the journey (forwarding hops, receive processing, delivery into
        ``deliver``) continues as an independent simulation process.
        """
        if src == dst:
            raise NetworkError(f"torus send with src == dst == {src}")
        path = self.route(src, dst)
        flows = self.sim.obs.flows
        # Shallow-FIFO back-pressure: stall if too many of this stream's
        # buffers are still travelling or waiting at a busy co-processor.
        yield self._stream_window(buffer.stream_id).get()
        if flows.enabled:
            flows.hop(buffer, "torus.window", self.sim.now)
        wire = self.params.handling_time(buffer.nbytes) if not buffer.eos else 0.0
        # Injection: sending co-processor streams the packets onto the first
        # link; both are occupied for the buffer's handling time.
        with self.coprocessor(src).request() as coproc_req:
            yield coproc_req
            with self.link(path[0], path[1]).request() as link_req:
                yield link_req
                occupancy = self.params.injection_overhead + wire
                if self._link_slowdown:
                    occupancy *= self._link_slowdown.get((path[0], path[1]), 1.0)
                cost = self.jitter.apply(occupancy)
                yield self.sim.timeout(cost)
        if flows.enabled:
            # Wait for the source co-processor + first link is queue_wait;
            # the injection itself is wire time.
            flows.hop(
                buffer, "torus.inject", self.sim.now,
                resource=f"coproc[{src}]", wire=cost,
            )
        self.bytes_on_wire += buffer.nbytes
        obs = self.sim.obs
        if obs.enabled:
            # Wire bytes include padding to whole torus packets — the
            # mechanism behind the Figure 6 sub-1KB bandwidth collapse.
            padded = (
                0 if buffer.eos
                else self.params.packet_count(buffer.nbytes) * self.params.packet_bytes
            )
            obs.add("torus.payload_bytes", buffer.nbytes)
            obs.add("torus.wire_bytes", padded)
            obs.add("torus.buffers_sent")
            obs.add(f"stream.torus_bytes[{buffer.stream_id}]", buffer.nbytes)
        # The remaining hops proceed asynchronously (cut-through across
        # buffers: the sender may inject buffer k+1 while k is forwarded).
        self.sim.process(
            self._forward(buffer, path, wire, deliver),
            name=f"torus-forward[{buffer.stream_id}#{buffer.buffer_id}]",
        )

    def _forward(self, buffer: WireBuffer, path: List[int], wire: float, deliver: Store):
        """Forward ``buffer`` hop by hop and deliver it at the destination."""
        flows = self.sim.obs.flows
        latency = self.params.hop_latency * (len(path) - 1)
        yield self.sim.timeout(latency)
        if flows.enabled:
            flows.hop(buffer, "torus.hops", self.sim.now, wire=latency)
        for position in range(1, len(path) - 1):
            node = path[position]
            with self.coprocessor(node).request() as coproc_req:
                yield coproc_req
                with self.link(path[position], path[position + 1]).request() as link_req:
                    yield link_req
                    occupancy = self.params.forward_overhead + wire
                    if self._link_slowdown:
                        occupancy *= self._link_slowdown.get(
                            (path[position], path[position + 1]), 1.0
                        )
                    cost = self.jitter.apply(occupancy)
                    yield self.sim.timeout(cost)
            if flows.enabled:
                # One hop per intermediate node: the wait for its (possibly
                # busy) co-processor is exactly the Figure 7A/8 contention.
                flows.hop(
                    buffer, f"torus.forward[{node}]", self.sim.now,
                    resource=f"coproc[{node}]", wire=cost,
                )
        receive_work = self.params.receive_time(buffer.nbytes) if not buffer.eos else 0.0
        yield from self._receive(buffer, path[-1], receive_work, deliver)
        # Delivery complete: free one in-flight slot of this stream.
        yield self._stream_window(buffer.stream_id).put(None)

    def receive_at(self, buffer: WireBuffer, node: int, receive_work: float, deliver: Store):
        """Receive processing for a buffer arriving from *outside* the torus.

        Inbound TCP traffic forwarded by an I/O node over the tree network
        ends at the same single-threaded co-processor as torus traffic and
        pays the same source-switch penalty; the Ethernet fabric delegates
        its final hop here so the mechanism is shared.  ``receive_work`` is
        the co-processor occupancy, computed by the caller for its medium.
        """
        yield from self._receive(buffer, node, receive_work, deliver)

    def _receive(self, buffer: WireBuffer, node: int, receive_work: float, deliver: Store):
        """Receive processing at the destination co-processor."""
        flows = self.sim.obs.flows
        with self.coprocessor(node).request() as coproc_req:
            yield coproc_req
            cost = self.params.receive_overhead + receive_work
            if not buffer.eos:
                cost += self._switch_cost(node)
            previous = self._last_source.get(node)
            if previous is not None and previous != buffer.source:
                self.source_switches += 1  # diagnostic only; cost is rate-based
                if self.sim.obs.enabled:
                    self.sim.obs.add("torus.source_switches")
                    self.sim.obs.add(f"torus.source_switches[node={node}]")
            self._last_source[node] = buffer.source
            cost = self.jitter.apply(cost)
            yield self.sim.timeout(cost)
            if flows.enabled:
                flows.hop(
                    buffer, "torus.receive", self.sim.now,
                    resource=f"coproc[{node}]", processing=cost,
                )
            # Depositing into a full receive buffer blocks the co-processor:
            # this is the back-pressure that stalls upstream senders.
            yield deliver.put(buffer)
            if flows.enabled:
                flows.hop(buffer, "torus.deliver", self.sim.now)
        self.buffers_delivered += 1
