"""Switched Gigabit Ethernet, TCP stream carriers, and the BlueGene ingress.

This substrate is behind Figure 15 (Queries 1-6).  The inbound path of one
TCP stream buffer is::

    back-end host NIC --> switch uplink --> I/O-node proxy --> tree network
        --> receiving compute node's co-processor --> receive buffer

Mechanisms modelled, each tied to a paper observation (section 3.2):

* The **switch uplink** into the BlueGene I/O drawer is a single 1 Gbps
  port shared by all inbound streams; the measured peak of ~920 Mbps
  (observation 3) is this port minus protocol overhead.
* **Ingress coordination**: the I/O-node TCP proxies degrade when the
  ingress as a whole talks to many *distinct external hosts* — "this
  indicates coordination problems in the I/O node when communicating with
  many outside nodes" (observation 3; also observation 4, Query 1 vs 2).
  Efficiency = 1 / (1 + peer_coordination * (hosts - 1)) applied to proxy
  service times.
* **I/O-node sharing**: an I/O node forwarding several concurrent
  connections slows down (observation 5, the Query 5 dip at n=5 when only
  four I/O nodes exist): proxy rate divided by
  (1 + connection_sharing_penalty * (connections - 1)).
* The receiving compute node pays the same single-threaded co-processor
  source-switch penalty as intra-torus traffic when it merges several
  streams (shared with :mod:`repro.net.torus`).
"""

from __future__ import annotations

from typing import Dict, Optional, Set, Tuple

from repro.hardware.bluegene import BlueGene
from repro.hardware.node import Node, NodeKind
from repro.net.jitter import Jitter
from repro.net.message import WireBuffer
from repro.net.params import NetworkParams
from repro.net.torus import TorusNetwork
from repro.sim import Resource, Simulator, Store
from repro.util.errors import NetworkError


class EthernetFabric:
    """The switched GigE fabric between Linux clusters and the BlueGene."""

    def __init__(
        self,
        sim: Simulator,
        bluegene: BlueGene,
        torus: TorusNetwork,
        params: NetworkParams = NetworkParams(),
        jitter: Optional[Jitter] = None,
    ):
        self.sim = sim
        self.bluegene = bluegene
        self.torus = torus
        self.params = params
        self.jitter = jitter or Jitter()
        self._nics: Dict[str, Resource] = {}
        self._uplink = Resource(sim, capacity=1, name="switch-uplink[be->bg]")
        self._uplink_slowdown = 1.0
        self._io_proxies: Dict[int, Resource] = {}
        self._tree_links: Dict[int, Resource] = {}
        # Connection registry driving the coordination penalties.
        self._connections: Set[Tuple[str, int, str]] = set()  # (host, io, stream)
        self._hosts: Dict[str, int] = {}  # host -> open connection count
        self._io_connections: Dict[int, int] = {}  # io index -> connection count
        self._io_hosts: Dict[int, Dict[str, int]] = {}  # io index -> host -> count
        # Statistics for experiment reports.
        self.bytes_ingress = 0
        self.buffers_forwarded = 0

    # ------------------------------------------------------------------
    # Resources
    # ------------------------------------------------------------------
    def nic(self, host: Node) -> Resource:
        """The NIC resource of a Linux cluster host."""
        if host.kind is not NodeKind.LINUX:
            raise NetworkError(f"{host.node_id} is not a Linux cluster host")
        if host.node_id not in self._nics:
            self._nics[host.node_id] = Resource(
                self.sim, capacity=1, name=f"nic[{host.node_id}]"
            )
        return self._nics[host.node_id]

    def io_proxy(self, io_index: int) -> Resource:
        """The TCP proxy resource of I/O node ``io_index``."""
        if not 0 <= io_index < len(self.bluegene.io_nodes):
            raise NetworkError(f"no I/O node {io_index}")
        if io_index not in self._io_proxies:
            self._io_proxies[io_index] = Resource(
                self.sim, capacity=1, name=f"io-proxy[{io_index}]"
            )
        return self._io_proxies[io_index]

    def degrade_uplink(self, factor: float) -> None:
        """Degrade the shared be->bg switch uplink by ``factor``.

        The fault-injection model of a flapping ingress switch port: the
        uplink's effective rate is divided by ``factor`` (>= 1) for every
        buffer forwarded from now on.
        """
        if factor < 1.0:
            raise NetworkError(f"uplink slowdown factor must be >= 1, got {factor}")
        self._uplink_slowdown = float(factor)

    def restore_uplink(self) -> None:
        """Heal the shared uplink (reset the degradation factor to 1.0)."""
        self._uplink_slowdown = 1.0

    @property
    def uplink_slowdown(self) -> float:
        """Current uplink degradation factor (1.0 = healthy)."""
        return self._uplink_slowdown

    def tree_link(self, pset_id: int) -> Resource:
        """The tree-network link from I/O node into pset ``pset_id``."""
        if pset_id not in self._tree_links:
            self._tree_links[pset_id] = Resource(
                self.sim, capacity=1, name=f"tree[{pset_id}]"
            )
        return self._tree_links[pset_id]

    # ------------------------------------------------------------------
    # Coordination state
    # ------------------------------------------------------------------
    @property
    def distinct_external_hosts(self) -> int:
        """Number of distinct outside hosts currently feeding the ingress."""
        return len(self._hosts)

    def io_connection_count(self, io_index: int) -> int:
        """Open inbound connections currently forwarded by one I/O node."""
        return self._io_connections.get(io_index, 0)

    def io_host_count(self, io_index: int) -> int:
        """Distinct external hosts currently connected to one I/O node."""
        return len(self._io_hosts.get(io_index, {}))

    def _uplink_efficiency(self) -> float:
        """Shared-uplink goodput factor given the global distinct-host count."""
        hosts = self.distinct_external_hosts
        if hosts <= 1:
            return 1.0
        return 1.0 / (
            1.0 + self.params.io_node.uplink_host_coordination * (hosts - 1)
        )

    def _io_service_rate(self, io_index: int) -> float:
        """Effective proxy rate of one I/O node under sharing + host penalties."""
        connections = max(1, self.io_connection_count(io_index))
        sharing = 1.0 + self.params.io_node.connection_sharing_penalty * (connections - 1)
        hosts = max(1, self.io_host_count(io_index))
        coordination = 1.0 + self.params.io_node.peer_coordination * (hosts - 1)
        return self.params.io_node.proxy_rate / (sharing * coordination)

    # ------------------------------------------------------------------
    # Connections
    # ------------------------------------------------------------------
    def register_connection(self, host: Node, io_index: int, stream_id: str) -> None:
        """Record an open inbound TCP connection (host -> I/O node)."""
        key = (host.node_id, io_index, stream_id)
        if key in self._connections:
            raise NetworkError(f"connection {key} already registered")
        self._connections.add(key)
        self._hosts[host.node_id] = self._hosts.get(host.node_id, 0) + 1
        self._io_connections[io_index] = self._io_connections.get(io_index, 0) + 1
        per_io = self._io_hosts.setdefault(io_index, {})
        per_io[host.node_id] = per_io.get(host.node_id, 0) + 1
        if self.sim.obs.enabled:
            self._record_connection_gauges(io_index)

    def unregister_connection(self, host: Node, io_index: int, stream_id: str) -> None:
        """Record the close of an inbound TCP connection."""
        key = (host.node_id, io_index, stream_id)
        if key not in self._connections:
            raise NetworkError(f"connection {key} is not registered")
        self._connections.remove(key)
        self._hosts[host.node_id] -= 1
        if self._hosts[host.node_id] == 0:
            del self._hosts[host.node_id]
        self._io_connections[io_index] -= 1
        per_io = self._io_hosts[io_index]
        per_io[host.node_id] -= 1
        if per_io[host.node_id] == 0:
            del per_io[host.node_id]
        if self.sim.obs.enabled:
            self._record_connection_gauges(io_index)

    def _record_connection_gauges(self, io_index: int) -> None:
        """Gauge the ingress coordination state (peaks drive the Q5 dip).

        ``ethernet.io_connections[i]`` peaking above 1 is the paper's
        observation 5: compute nodes sharing one of the four I/O nodes.
        """
        obs = self.sim.obs
        obs.record_level(
            f"ethernet.io_connections[{io_index}]", self.io_connection_count(io_index)
        )
        obs.record_level(
            f"ethernet.io_hosts[{io_index}]", self.io_host_count(io_index)
        )
        obs.record_level("ethernet.ingress_hosts", self.distinct_external_hosts)


class TcpStreamConnection:
    """One inbound TCP stream: back-end host -> BlueGene compute node."""

    def __init__(
        self,
        fabric: EthernetFabric,
        source_host: Node,
        dst_compute_index: int,
        deliver: Store,
        stream_id: str,
    ):
        self.fabric = fabric
        self.source_host = source_host
        self.dst_compute_index = dst_compute_index
        self.deliver = deliver
        self.stream_id = stream_id
        self.io_index = fabric.bluegene.pset_of(dst_compute_index)
        self.pset_id = self.io_index
        self._open = False
        self._window = Store(
            fabric.sim,
            capacity=fabric.params.tcp.window_segments,
            name=f"tcp-window[{stream_id}]",
        )

    def open(self):
        """Establish the connection (generator; charges handshake cost)."""
        if self._open:
            raise NetworkError(f"connection {self.stream_id!r} already open")
        self.fabric.register_connection(self.source_host, self.io_index, self.stream_id)
        self.fabric.torus.register_stream(self.dst_compute_index, self.stream_id)
        self._open = True
        for _ in range(self.fabric.params.tcp.window_segments):
            self._window.put(None)
        yield self.fabric.sim.timeout(
            self.fabric.jitter.apply(self.fabric.params.tcp.connection_setup)
        )

    def close(self):
        """Tear the connection down once every in-flight buffer is delivered.

        Generator: blocks until the flow-control window refills, so the
        connection's coordination state persists exactly as long as its
        traffic occupies the ingress.
        """
        if not self._open:
            return
        for _ in range(self.fabric.params.tcp.window_segments):
            yield self._window.get()
        self.fabric.unregister_connection(self.source_host, self.io_index, self.stream_id)
        self.fabric.torus.unregister_stream(self.dst_compute_index, self.stream_id)
        self._open = False

    def abort(self) -> None:
        """Drop the connection's coordination state without draining.

        For terminated queries: the paired sender process is gone, so the
        window will never refill — but the connection must stop counting
        against the ingress host/proxy coordination penalties, or every
        later deployment pays for a stream that no longer exists.
        """
        if not self._open:
            return
        self.fabric.unregister_connection(self.source_host, self.io_index, self.stream_id)
        self.fabric.torus.unregister_stream(self.dst_compute_index, self.stream_id)
        self._open = False

    # ------------------------------------------------------------------
    def send(self, buffer: WireBuffer):
        """Send one buffer (generator; returns at sender local completion)."""
        if not self._open:
            raise NetworkError(f"send on closed connection {self.stream_id!r}")
        fabric = self.fabric
        params = fabric.params
        wire_bytes = buffer.nbytes * (1.0 + params.tcp.header_overhead)
        segments = max(1, -(-buffer.nbytes // params.tcp.segment_bytes))
        flows = fabric.sim.obs.flows
        # Flow control: wait for a window slot before occupying the NIC.
        yield self._window.get()
        if flows.enabled:
            flows.hop(buffer, "tcp.window", fabric.sim.now)
        # Sending host: socket/kernel cost plus NIC serialization.
        with fabric.nic(self.source_host).request() as nic_req:
            yield nic_req
            cost = (
                segments * params.tcp.per_segment_overhead
                + wire_bytes / params.ethernet.nic_rate
            )
            cost = fabric.jitter.apply(cost)
            yield fabric.sim.timeout(cost)
        if flows.enabled:
            flows.hop(
                buffer, "eth.nic", fabric.sim.now,
                resource=f"nic[{self.source_host.node_id}]", wire=cost,
            )
        fabric.bytes_ingress += buffer.nbytes
        if fabric.sim.obs.enabled:
            fabric.sim.obs.add("ethernet.ingress_bytes", buffer.nbytes)
            fabric.sim.obs.add("ethernet.wire_bytes", wire_bytes)
            fabric.sim.obs.add(f"stream.tcp_bytes[{self.stream_id}]", buffer.nbytes)
        fabric.sim.process(
            self._forward(buffer, wire_bytes),
            name=f"tcp-forward[{self.stream_id}#{buffer.buffer_id}]",
        )

    def _forward(self, buffer: WireBuffer, wire_bytes: float):
        """Continue the buffer's journey beyond the sending host."""
        fabric = self.fabric
        params = fabric.params
        flows = fabric.sim.obs.flows
        # Shared switch uplink into the BlueGene I/O drawer; goodput shrinks
        # with the number of distinct external hosts on the ingress.
        with fabric._uplink.request() as uplink_req:
            yield uplink_req
            rate = (
                params.ethernet.uplink_rate
                * fabric._uplink_efficiency()
                / fabric._uplink_slowdown
            )
            cost = fabric.jitter.apply(params.ethernet.switch_latency + wire_bytes / rate)
            yield fabric.sim.timeout(cost)
        if flows.enabled:
            flows.hop(
                buffer, "eth.uplink", fabric.sim.now,
                resource="switch-uplink[be->bg]", wire=cost,
            )
        # I/O-node TCP proxy: service rate shrinks with connection sharing
        # and with the distinct hosts connected to this I/O node.
        with fabric.io_proxy(self.io_index).request() as proxy_req:
            yield proxy_req
            rate = fabric._io_service_rate(self.io_index)
            cost = fabric.jitter.apply(params.io_node.per_buffer_overhead + wire_bytes / rate)
            yield fabric.sim.timeout(cost)
        if flows.enabled:
            flows.hop(
                buffer, "eth.ioproxy", fabric.sim.now,
                resource=f"io-proxy[{self.io_index}]", processing=cost,
            )
        # Tree network from the I/O node into its pset.
        with fabric.tree_link(self.pset_id).request() as tree_req:
            yield tree_req
            cost = fabric.jitter.apply(buffer.nbytes / params.io_node.tree_rate)
            yield fabric.sim.timeout(cost)
        if flows.enabled:
            flows.hop(
                buffer, "eth.tree", fabric.sim.now,
                resource=f"tree[{self.pset_id}]", wire=cost,
            )
        # Receive processing on the destination compute node's co-processor:
        # the CNK socket path is slow (compute_receive_rate) and pays the
        # same source-switch penalty as torus traffic when merging streams.
        receive_work = (
            buffer.nbytes / params.io_node.compute_receive_rate if not buffer.eos else 0.0
        )
        yield from fabric.torus.receive_at(
            buffer, self.dst_compute_index, receive_work, self.deliver
        )
        fabric.buffers_forwarded += 1
        # End-to-end delivery acknowledged: reopen one window slot.
        yield self._window.put(None)
