"""Calibration parameters for the simulated communication substrate.

Every constant that shapes the reproduced figures lives here, in frozen
dataclasses, so that (a) experiments can state exactly which cost model they
ran under, and (b) the ablation benchmarks can perturb one term at a time.

The parameters are calibrated against the published envelope:

* torus links carry 1.4 Gbps and the minimum torus message is 1 KB
  (paper section 2.1 / Figure 6 discussion);
* marshaling throughput collapses above a ~1 KB working set ("the drop-off
  above the 1000-byte buffer size is probably due to cache misses");
* the receiving communication co-processor is single threaded and pays a
  switching penalty when alternating between senders (Figure 8 discussion);
* I/O-node NICs and back-end NICs are 1 Gbit/s; peak measured inbound
  bandwidth is ~920 Mbps (Figure 15, observation 3);
* an I/O node suffers "coordination problems ... when communicating with
  many outside nodes" (observation 3) and degrades when several compute
  nodes share it (observation 5).

Absolute values are *model* values chosen to land the published shapes, not
testbed measurements; see EXPERIMENTS.md for the shape-by-shape comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.util.units import gbps


@dataclass(frozen=True)
class TorusParams:
    """BlueGene 3D-torus / MPI transport constants."""

    link_rate: float = gbps(1.4)
    """Raw capacity of one torus link, bytes/s."""

    packet_bytes: int = 1024
    """Minimum torus message size; smaller sends are padded to one packet."""

    hop_latency: float = 0.5e-6
    """Per-hop propagation + router latency, seconds."""

    injection_overhead: float = 1.5e-6
    """Per-send-buffer MPI software overhead at the sending co-processor."""

    receive_overhead: float = 1.5e-6
    """Per-buffer overhead at the receiving co-processor."""

    forward_overhead: float = 1.0e-6
    """Per-buffer overhead at each intermediate forwarding co-processor."""

    source_switch_penalty: float = 40e-6
    """Switching cost of the single-threaded receiving co-processor when it
    alternates between senders.  Charged per received buffer as
    ``penalty * (k-1)`` where k is the number of streams currently
    terminating at the node: zero for point-to-point, the full penalty when
    two streams interleave (they alternate buffer-for-buffer), escalating
    as more streams contend for the reception FIFOs.  (Charging on *actual*
    source changes would make the measured bandwidth depend on accidental
    arrival phase — a run that luckily locks into paired arrivals halves
    its switching and the five repeats become bimodal — so the model uses
    the deterministic per-stream rate.)"""

    cache_knee_bytes: int = 1000
    """Buffer size above which the co-processor's buffer handling starts
    missing the cache.  Figure 6: "the drop-off above the 1000-byte buffer
    size is probably due to cache misses"."""

    cache_penalty: float = 4.0
    """Asymptotic slowdown of co-processor buffer handling for very large
    buffers: handling_time(B) -> wire_time(B) * (1 + cache_penalty)."""

    stream_window: int = 2
    """Maximum in-flight (injected but not yet received) buffers per MPI
    stream.  The torus has shallow hardware FIFOs: a sender whose buffers
    pile up at a busy intermediate co-processor stalls rather than queueing
    unboundedly.  Without this bound, a contended stream arrives in long
    switch-free bursts, which unrealistically *helps* the sequential node
    selection at small buffer sizes."""

    receive_fraction: float = 0.62
    """Receive DMA (network FIFO -> memory) costs this fraction of the
    corresponding inject/forward work on the co-processor.  The asymmetry
    is what makes the busy *intermediate* co-processor of the sequential
    node selection the bottleneck — balanced merging is ~1/receive_fraction
    (≈60%) faster, matching the paper's section 5 summary."""

    def packet_count(self, nbytes: int) -> int:
        """Number of torus packets needed for an ``nbytes`` buffer."""
        if nbytes <= 0:
            return 1
        return -(-nbytes // self.packet_bytes)  # ceil division

    def packet_time(self) -> float:
        """Wire time of one full torus packet, seconds."""
        return self.packet_bytes / self.link_rate

    def wire_time(self, nbytes: int) -> float:
        """Wire time of an ``nbytes`` buffer including padding to packets."""
        return self.packet_count(nbytes) * self.packet_time()

    def cache_factor(self, nbytes: int) -> float:
        """Slowdown multiplier (>= 1) of buffer handling at size ``nbytes``.

        1.0 up to the knee, then a sharp rise towards ``1 + cache_penalty``
        (square-root approach, so the drop-off right above the knee is
        visible, as in Figure 6).
        """
        if nbytes <= self.cache_knee_bytes:
            return 1.0
        return 1.0 + self.cache_penalty * (1.0 - self.cache_knee_bytes / nbytes) ** 0.5

    def handling_time(self, nbytes: int) -> float:
        """Co-processor time to inject or forward an ``nbytes`` buffer."""
        return self.wire_time(nbytes) * self.cache_factor(nbytes)

    def receive_time(self, nbytes: int) -> float:
        """Co-processor time to receive (DMA to memory) an ``nbytes`` buffer."""
        return self.handling_time(nbytes) * self.receive_fraction


@dataclass(frozen=True)
class CpuCostParams:
    """Compute-CPU costs of the stream engine (marshal/de-marshal/operators)."""

    marshal_rate: float = 175e6
    """Marshal throughput of the 700 MHz baseline CPU, bytes/s."""

    demarshal_rate: float = 175e6
    """De-marshal throughput of the 700 MHz baseline CPU, bytes/s."""

    generate_rate: float = 1.4e9
    """Throughput of filling freshly generated arrays in memory, bytes/s.
    Fast enough that gen_array() sources are never the bottleneck in the
    paper's communication-bound experiments."""

    per_buffer_overhead: float = 4.0e-6
    """Fixed CPU cost per marshal/de-marshal buffer cycle."""

    per_object_overhead: float = 1.0e-6
    """Fixed CPU cost per stream object handled by an operator."""

    double_buffer_sync_overhead: float = 7.5e-6
    """Extra per-buffer synchronization cost when double buffering.  Makes
    double buffering roughly break even for small buffers and pay off for
    large ones, as Figure 6 reports."""

    def marshal_time(self, nbytes: int) -> float:
        """CPU time to marshal an ``nbytes`` buffer."""
        return self.per_buffer_overhead + nbytes / self.marshal_rate

    def demarshal_time(self, nbytes: int) -> float:
        """CPU time to de-marshal an ``nbytes`` buffer."""
        return self.per_buffer_overhead + nbytes / self.demarshal_rate


@dataclass(frozen=True)
class EthernetParams:
    """Switched Gigabit Ethernet between the Linux clusters and BlueGene."""

    nic_rate: float = gbps(1.0)
    """Back-end / front-end node NIC capacity, bytes/s."""

    uplink_rate: float = gbps(1.0)
    """Capacity of the switch port facing the BlueGene I/O drawer, bytes/s.
    All inbound streams share this port, which is why the measured peak
    (~920 Mbps) does not scale past one NIC's worth of traffic."""

    switch_latency: float = 20e-6
    """Store-and-forward latency of the switch, seconds."""


@dataclass(frozen=True)
class TcpParams:
    """TCP stream-carrier costs (paper section 2.3: TCP between clusters)."""

    header_overhead: float = 0.05
    """Fraction of extra wire bytes per payload byte (headers, acks)."""

    segment_bytes: int = 64 * 1024
    """Effective send-buffer flush size; the paper relies on "the buffering
    of the TCP stack", so inbound experiments do not sweep this."""

    per_segment_overhead: float = 8.0e-6
    """Kernel/socket cost per segment on the sending host."""

    connection_setup: float = 500e-6
    """One-time handshake cost per connection."""

    window_segments: int = 4
    """End-to-end flow-control window, in segments: at most this many
    buffers of one connection may be in flight between the sending host
    and the receiving compute node.  Models the TCP window; without it the
    fast back-end NIC would build unbounded queues inside the ingress."""


@dataclass(frozen=True)
class IONodeParams:
    """BlueGene I/O-node forwarding behaviour (TCP proxy -> tree network)."""

    nic_rate: float = gbps(1.0)
    """External NIC of each I/O node, bytes/s."""

    proxy_rate: float = 850e6 / 8.0
    """Sustainable proxy (ciod) forwarding throughput with a single external
    peer and a single connection, bytes/s."""

    per_buffer_overhead: float = 12e-6
    """Per-forwarded-segment software overhead on the I/O node."""

    peer_coordination: float = 0.35
    """Coordination slowdown of one I/O node's proxy per additional
    *distinct external host* connected to it:
    rate *= 1 / (1 + peer_coordination*(H_io - 1)).  Models observation
    (4): Query 1 (one back-end host) beats Query 2 (n hosts) through the
    same I/O node."""

    connection_sharing_penalty: float = 1.8
    """Slowdown of an I/O node's proxy per additional concurrent connection:
    rate = proxy_rate / (1 + connection_sharing_penalty*(C-1)).  Models
    observation (5): for n>4, compute nodes share I/O nodes and the
    bandwidth decreases (the Query 5 dip at n=5), and the generally low
    bandwidth of Queries 1-4, which funnel n connections through one I/O
    node."""

    uplink_host_coordination: float = 0.08
    """Slowdown of the shared switch uplink per additional distinct external
    host feeding the whole ingress.  Models observation (3): injecting over
    four I/O nodes from one back-end node (Query 5) beats four separate
    back-end nodes (Query 6) — "coordination problems in the I/O node when
    communicating with many outside nodes"."""

    compute_receive_rate: float = 32e6
    """Sustainable TCP-over-tree receive processing rate of one BlueGene
    compute node, bytes/s.  The CNK socket path is software-heavy; this is
    what makes two receiving compute nodes better than one (observation 2)
    and puts all queries at the same ~280 Mbps point for n=1."""

    tree_rate: float = gbps(2.8)
    """Tree network capacity from the I/O node into its pset, bytes/s."""


@dataclass(frozen=True)
class NetworkParams:
    """Complete parameter set for one simulated environment."""

    torus: TorusParams = TorusParams()
    cpu: CpuCostParams = CpuCostParams()
    ethernet: EthernetParams = EthernetParams()
    tcp: TcpParams = TcpParams()
    io_node: IONodeParams = IONodeParams()

    jitter: float = 0.01
    """Relative magnitude of the per-run random cost jitter.  The paper ran
    every experiment five times "to achieve low variance"; jitter gives the
    repeated simulated runs a comparable (small) spread."""

    def with_overrides(self, **sections) -> "NetworkParams":
        """Copy of this parameter set with whole sections replaced.

        Example::

            params.with_overrides(torus=replace(params.torus, link_rate=gbps(2.8)))
        """
        return replace(self, **sections)


DEFAULT_PARAMS = NetworkParams()
