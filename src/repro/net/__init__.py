"""Network substrate: the simulated communication hardware of the testbed.

This package models the three communication subsystems the paper measures:

* the BlueGene 3D torus carrying MPI streams (:mod:`repro.net.torus`),
* switched Gigabit Ethernet + I/O-node TCP ingress (:mod:`repro.net.ethernet`),
* the channel abstraction the engine's drivers use (:mod:`repro.net.channels`).

All tunable cost constants live in :mod:`repro.net.params`.
"""

from repro.net.channels import Channel, LatencyChannel, MpiChannel, TcpChannel
from repro.net.ethernet import EthernetFabric, TcpStreamConnection
from repro.net.jitter import Jitter
from repro.net.message import ControlKind, ControlMessage, Fragment, WireBuffer
from repro.net.params import (
    DEFAULT_PARAMS,
    CpuCostParams,
    EthernetParams,
    IONodeParams,
    NetworkParams,
    TcpParams,
    TorusParams,
)
from repro.net.torus import TorusNetwork

__all__ = [
    "Channel",
    "MpiChannel",
    "TcpChannel",
    "LatencyChannel",
    "EthernetFabric",
    "TcpStreamConnection",
    "TorusNetwork",
    "Jitter",
    "WireBuffer",
    "Fragment",
    "ControlMessage",
    "ControlKind",
    "NetworkParams",
    "TorusParams",
    "CpuCostParams",
    "EthernetParams",
    "TcpParams",
    "IONodeParams",
    "DEFAULT_PARAMS",
]
