"""Deterministic cost jitter for repeated measurement runs.

The paper repeats each experiment five times "in order to achieve low
variance in the measurements" — the testbed has real noise.  The simulation
is deterministic, so repeated runs would be identical; :class:`Jitter`
injects a small seeded multiplicative noise on every modelled cost so the
five-repeat statistics are meaningful while staying reproducible.
"""

from __future__ import annotations

import random

from repro.util.errors import SimulationError


class Jitter:
    """Seeded multiplicative noise: ``scale()`` ~ Uniform(1-m, 1+m)."""

    def __init__(self, magnitude: float = 0.0, seed: int = 0):
        if magnitude < 0 or magnitude >= 1:
            raise SimulationError(f"jitter magnitude must be in [0, 1), got {magnitude}")
        self.magnitude = magnitude
        self.seed = seed
        self._rng = random.Random(seed)

    def scale(self) -> float:
        """One noise factor; exactly 1.0 when the magnitude is zero."""
        if self.magnitude == 0.0:
            return 1.0
        return 1.0 + self._rng.uniform(-self.magnitude, self.magnitude)

    def apply(self, cost: float) -> float:
        """``cost`` scaled by one noise factor (never negative)."""
        return cost * self.scale()
