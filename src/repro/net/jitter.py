"""Deterministic cost jitter for repeated measurement runs.

The paper repeats each experiment five times "in order to achieve low
variance in the measurements" — the testbed has real noise.  The simulation
is deterministic, so repeated runs would be identical; :class:`Jitter`
injects a small seeded multiplicative noise on every modelled cost so the
five-repeat statistics are meaningful while staying reproducible.
"""

from __future__ import annotations

import random
from contextlib import contextmanager
from typing import Callable, Iterator, Optional

from repro.util.errors import SimulationError


class Jitter:
    """Seeded multiplicative noise: ``scale()`` ~ Uniform(1-m, 1+m)."""

    def __init__(self, magnitude: float = 0.0, seed: int = 0):
        if magnitude < 0 or magnitude >= 1:
            raise SimulationError(f"jitter magnitude must be in [0, 1), got {magnitude}")
        self.magnitude = magnitude
        self.seed = seed
        self._rng = random.Random(seed)

    def scale(self) -> float:
        """One noise factor; exactly 1.0 when the magnitude is zero."""
        if self.magnitude == 0.0:
            return 1.0
        return 1.0 + self._rng.uniform(-self.magnitude, self.magnitude)

    def apply(self, cost: float) -> float:
        """``cost`` scaled by one noise factor (never negative)."""
        return cost * self.scale()


class KeyedJitter(Jitter):
    """Schedule-order-independent jitter: the factor is keyed by the cost.

    The stock :class:`Jitter` draws from one sequential generator, so the
    factor a transfer gets depends on *how many draws happened before it* —
    i.e. on the exact event dispatch order.  That coupling is fine for
    normal runs (the order is deterministic) but poisons the schedule-race
    detector: replaying a harness under a permuted same-instant order
    permutes the draw sequence and every result diverges for a reason that
    has nothing to do with the code under test.

    This variant derives each factor as a pure function of ``(seed, cost)``
    — equal modelled costs get equal noise, and no draw observes any other
    draw — so results become invariant under any legal dispatch order while
    the noise stays seeded and reproducible.  It is installed only by the
    chaos harness (:func:`jitter_override` via
    :func:`repro.analysis.sanitize.chaos`); golden baselines are produced
    with the sequential generator and are untouched.
    """

    def apply(self, cost: float) -> float:
        if self.magnitude == 0.0:
            return cost
        # Numeric-only tuple hash: stable across processes and supported
        # Python versions (no string hash randomization involved).
        noise = random.Random(hash((self.seed, cost))).uniform(
            -self.magnitude, self.magnitude
        )
        return cost * (1.0 + noise)

    def scale(self) -> float:
        """Context-free draws cannot be keyed; pin them to the midpoint."""
        return 1.0


#: When set, :func:`make_jitter` builds through this factory instead of the
#: stock :class:`Jitter`.  Installed (scoped) by :func:`jitter_override`.
_FACTORY_OVERRIDE: Optional[Callable[[float, int], Jitter]] = None


@contextmanager
def jitter_override(factory: Callable[[float, int], Jitter]) -> Iterator[None]:
    """Scope within which environments draw jitter from ``factory``.

    ``factory`` is called as ``factory(magnitude, seed)`` by every
    :func:`make_jitter` in the scope (i.e. every environment built inside
    it).  Overrides do not nest — an inner scope replaces the outer factory
    and restores it on exit.
    """
    global _FACTORY_OVERRIDE
    previous = _FACTORY_OVERRIDE
    _FACTORY_OVERRIDE = factory
    try:
        yield
    finally:
        _FACTORY_OVERRIDE = previous


def make_jitter(magnitude: float = 0.0, seed: int = 0) -> Jitter:
    """The jitter source an environment should use (override-aware)."""
    if _FACTORY_OVERRIDE is not None:
        return _FACTORY_OVERRIDE(magnitude, seed)
    return Jitter(magnitude, seed)
