"""Wire-level message types exchanged by the stream-carrier drivers.

A :class:`WireBuffer` is the unit the sender driver flushes: the marshaled
bytes of one send buffer, possibly containing several small objects or one
*fragment* of a large object (a 3 MB array sent with 1 KB buffers travels as
3000 fragments).  The receiving driver reassembles fragments back into
objects with :mod:`repro.engine.marshal`.

Control messages (:class:`ControlMessage`) flow alongside data: the paper's
RPs "regularly exchange control messages, which are used to regulate the
stream flow between them and to terminate execution upon a stop condition"
(section 2.2).  Flow regulation in this implementation is carried by the
bounded buffers themselves (back-pressure); explicit control messages carry
end-of-stream and stop requests.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Optional, Tuple

_buffer_ids = itertools.count()


@dataclass(frozen=True)
class Fragment:
    """A slice of one marshaled object.

    Attributes:
        object_id: Identifier of the object being fragmented, unique per
            sending channel.
        index: 0-based fragment number within the object.
        total: Total number of fragments of the object.
        nbytes: Payload bytes carried by this fragment.
        payload: The materialized object, attached to the final fragment
            only (the simulation ships metadata, not copies of the bytes).
    """

    object_id: int
    index: int
    total: int
    nbytes: int
    payload: Any = None

    @property
    def is_last(self) -> bool:
        return self.index == self.total - 1


@dataclass(frozen=True)
class WireBuffer:
    """One flushed send buffer travelling through a network model.

    Attributes:
        buffer_id: Globally unique id (diagnostics / determinism checks).
        stream_id: Identifier of the logical stream (sender RP output).
        source: Node id of the sending node.
        nbytes: Marshaled payload size of this buffer, in bytes.
        fragments: The object fragments packed into the buffer.
        eos: True for the final, empty buffer announcing end-of-stream.
    """

    buffer_id: int
    stream_id: str
    source: str
    nbytes: int
    fragments: Tuple[Fragment, ...] = ()
    eos: bool = False

    @staticmethod
    def data(stream_id: str, source: str, nbytes: int, fragments) -> "WireBuffer":
        """Build a data buffer."""
        return WireBuffer(
            buffer_id=next(_buffer_ids),
            stream_id=stream_id,
            source=source,
            nbytes=nbytes,
            fragments=tuple(fragments),
        )

    @staticmethod
    def end_of_stream(stream_id: str, source: str) -> "WireBuffer":
        """Build the end-of-stream marker buffer."""
        return WireBuffer(
            buffer_id=next(_buffer_ids),
            stream_id=stream_id,
            source=source,
            nbytes=0,
            eos=True,
        )


class ControlKind(enum.Enum):
    """Kinds of control messages exchanged between running processes."""

    STOP = "stop"          # user or stop-condition initiated termination
    HEARTBEAT = "heartbeat"  # liveness/monitoring


@dataclass(frozen=True)
class ControlMessage:
    """A small out-of-band message between running processes."""

    kind: ControlKind
    sender: str
    info: Optional[Any] = field(default=None)
