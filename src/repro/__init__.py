"""SCSQ reproduction: stream queries measuring communication performance.

A from-scratch Python reproduction of Zeitler & Risch, "Using stream
queries to measure communication performance of a parallel computing
environment" (ICDCS 2007): the SCSQ data stream management system, its
query language SCSQL with streams and stream processes as first-class
objects, and a discrete-event simulation of the LOFAR hardware environment
(BlueGene torus + I/O nodes, Linux clusters, GigE/TCP) that the paper's
bandwidth experiments run on.

Quick start::

    from repro import SCSQSession

    session = SCSQSession()
    report = session.execute('''
        select extract(b)
        from sp a, sp b
        where b=sp(streamof(count(extract(a))), 'bg', 0)
        and a=sp(gen_array(3000000,100), 'bg', 1);
    ''')
    print(report.result, report.duration)

See :mod:`repro.core.experiments` for the figure reproductions.
"""

from repro.coordinator import ClientManager, ExecutionReport, QueryGraph, SPDef
from repro.core import BandwidthResult, measure_query_bandwidth
from repro.engine import ExecutionSettings
from repro.hardware import (
    BlueGene,
    BlueGeneConfig,
    Environment,
    EnvironmentConfig,
)
from repro.net import NetworkParams
from repro.obs import Instrumentation
from repro.optimizer import CostBasedPlacer
from repro.scsql import SCSQSession

__version__ = "1.0.0"

__all__ = [
    "SCSQSession",
    "Environment",
    "EnvironmentConfig",
    "BlueGene",
    "BlueGeneConfig",
    "ExecutionSettings",
    "NetworkParams",
    "ClientManager",
    "ExecutionReport",
    "QueryGraph",
    "SPDef",
    "measure_query_bandwidth",
    "BandwidthResult",
    "CostBasedPlacer",
    "Instrumentation",
    "__version__",
]
