"""Analytic performance predictions from the calibrated cost model.

The paper (section 1): "Properties of the different CPUs, communication
mechanisms, and operating systems substantially influence query execution
performance.  These properties are stored in a database, which is used by
the query optimizer when assigning an SP to a CPU."

These functions are that database's *model* side: closed-form steady-state
bandwidth predictions derived from the same
:class:`~repro.net.params.NetworkParams` the simulator charges.  They are
what a cost-based placer reasons with (no simulation in the loop), and the
test suite validates them against the simulator — the predictions must
agree with the measured figures to within a tolerance, or the optimizer
would be reasoning about a different machine.

All results are payload bytes/second.
"""

from __future__ import annotations

from dataclasses import dataclass
from repro.net.params import NetworkParams


def _marshal_cycle(params: NetworkParams, buffer_bytes: int, double_buffering: bool) -> float:
    cost = params.cpu.marshal_time(buffer_bytes)
    if double_buffering:
        cost += params.cpu.double_buffer_sync_overhead
    return cost


def _demarshal_cycle(params: NetworkParams, buffer_bytes: int, double_buffering: bool) -> float:
    cost = params.cpu.demarshal_time(buffer_bytes)
    if double_buffering:
        cost += params.cpu.double_buffer_sync_overhead
    return cost


def _inject_cycle(params: NetworkParams, buffer_bytes: int) -> float:
    return params.torus.injection_overhead + params.torus.handling_time(buffer_bytes)


def _receive_cycle(params: NetworkParams, buffer_bytes: int, streams: int = 1) -> float:
    switch = params.torus.source_switch_penalty * max(0, streams - 1)
    return params.torus.receive_overhead + params.torus.receive_time(buffer_bytes) + switch


def _round_trip(params: NetworkParams, buffer_bytes: int, hops: int, streams: int = 1) -> float:
    """Injection-to-delivery time of one buffer over ``hops`` torus links."""
    forwarding = (hops - 1) * (
        params.torus.forward_overhead + params.torus.handling_time(buffer_bytes)
    )
    return (
        _inject_cycle(params, buffer_bytes)
        + params.torus.hop_latency * hops
        + forwarding
        + _receive_cycle(params, buffer_bytes, streams=streams)
    )


def _window_cap(params: NetworkParams, buffer_bytes: int, hops: int, streams: int = 1) -> float:
    """Per-stream throughput ceiling from the shallow-FIFO in-flight window."""
    rtt = _round_trip(params, buffer_bytes, hops, streams=streams)
    return params.torus.stream_window * buffer_bytes / rtt


def predict_p2p_bandwidth(
    params: NetworkParams, buffer_bytes: int, double_buffering: bool, hops: int = 1
) -> float:
    """Steady-state intra-BG point-to-point bandwidth (the Figure 6 model).

    Single buffering serializes marshal+inject on the sender and
    receive+de-marshal on the receiver; double buffering pipelines the four
    stages, so the slowest single stage binds.  Multi-hop routes are
    additionally capped by the in-flight window over the route's round trip.
    """
    marshal = _marshal_cycle(params, buffer_bytes, double_buffering)
    inject = _inject_cycle(params, buffer_bytes)
    receive = _receive_cycle(params, buffer_bytes)
    demarshal = _demarshal_cycle(params, buffer_bytes, double_buffering)
    if double_buffering:
        cycle = max(marshal, inject, receive, demarshal)
    else:
        cycle = max(marshal + inject, receive + demarshal)
    return min(buffer_bytes / cycle, _window_cap(params, buffer_bytes, hops))


def predict_merge_bandwidth(
    params: NetworkParams,
    buffer_bytes: int,
    double_buffering: bool,
    streams: int = 2,
    through_busy_intermediate: bool = False,
    max_hops: int = 1,
) -> float:
    """Total input bandwidth at a merging node (the Figure 8 model).

    The receiving co-processor serializes all ``streams`` with a
    per-buffer switching cost; the receiving CPU de-marshals everything.
    With the *sequential* node selection the busy intermediate
    co-processor performs full-cost injection of its own stream plus
    forwarding of the routed one, halving the through rate.  ``max_hops``
    is the longest producer route; it bounds each stream through the
    in-flight window.
    """
    receive = _receive_cycle(params, buffer_bytes, streams=streams)
    demarshal = _demarshal_cycle(params, buffer_bytes, double_buffering)
    bounds = [
        buffer_bytes / receive,        # receiving co-processor
        buffer_bytes / demarshal,      # receiving CPU
        streams * _window_cap(params, buffer_bytes, max_hops, streams=streams),
    ]
    if through_busy_intermediate:
        # The intermediate node's co-processor injects its own stream and
        # forwards the other: two full handling costs per pair of buffers.
        handling = params.torus.forward_overhead + params.torus.handling_time(buffer_bytes)
        own = _inject_cycle(params, buffer_bytes)
        bounds.append(2 * buffer_bytes / (handling + own))
    return min(bounds)


@dataclass(frozen=True)
class InboundShape:
    """Topology summary of an inbound (be -> BG) streaming configuration."""

    streams: int
    hosts: int
    io_nodes: int
    receivers: int

    def __post_init__(self):
        if not 1 <= self.hosts <= self.streams:
            raise ValueError(f"hosts must be in [1, streams], got {self}")
        if self.io_nodes < 1 or self.receivers < 1:
            raise ValueError(f"need at least one I/O node and receiver: {self}")


def predict_inbound_bandwidth(params: NetworkParams, shape: InboundShape) -> float:
    """Aggregate BG-inbound bandwidth of a topology (the Figure 15 model).

    The minimum of four capacities:

    * back-end NICs (wire overhead + per-segment cost, per host),
    * the shared switch uplink (degraded by distinct-host coordination),
    * the I/O-node proxies (degraded by connection sharing and per-I/O
      distinct hosts),
    * the receiving compute nodes' CNK socket path (with source-switching
      when several streams merge at one node).
    """
    tcp = params.tcp
    io = params.io_node
    segment = tcp.segment_bytes
    wire_factor = 1.0 + tcp.header_overhead

    # Back-end side: each host serializes its streams' segments.
    nic_time = segment * wire_factor / params.ethernet.nic_rate + tcp.per_segment_overhead
    nic_rate_per_host = segment / nic_time
    be_bound = shape.hosts * nic_rate_per_host

    # Shared uplink with global host coordination.
    uplink_eff = 1.0 / (1.0 + io.uplink_host_coordination * (shape.hosts - 1))
    uplink_bound = params.ethernet.uplink_rate * uplink_eff / wire_factor

    # I/O-node proxies: distribute streams (and hosts) evenly over I/O nodes.
    conns_per_io = max(1, -(-shape.streams // shape.io_nodes))
    hosts_per_io = max(1, min(shape.hosts, conns_per_io))
    sharing = 1.0 + io.connection_sharing_penalty * (conns_per_io - 1)
    coordination = 1.0 + io.peer_coordination * (hosts_per_io - 1)
    proxy_rate = io.proxy_rate / (sharing * coordination)
    proxy_time = segment * wire_factor / proxy_rate + io.per_buffer_overhead
    io_bound = shape.io_nodes * segment / proxy_time

    # Receiving compute nodes: CNK socket path + switching between streams.
    streams_per_receiver = max(1, -(-shape.streams // shape.receivers))
    receive_time = (
        segment / io.compute_receive_rate
        + params.torus.receive_overhead
        + params.torus.source_switch_penalty * (streams_per_receiver - 1)
    )
    receiver_bound = shape.receivers * segment / receive_time

    return min(be_bound, uplink_bound, io_bound, receiver_bound)
