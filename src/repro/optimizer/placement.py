"""Cost-based automatic placement of stream processes.

This is the "query optimizer ... assigning an SP to a CPU" of the paper's
section 1, built on the measured knowledge the paper set out to collect:
instead of hard-coding rules (co-locate senders, spread psets), the placer
*searches* placements and scores each candidate with the analytic
predictors of :mod:`repro.optimizer.predict` — the same cost model the
simulator charges.  On the paper's workloads it rediscovers the hand-
derived topologies: the balanced node selection of Figure 7B for merging,
and Query 5's co-located-senders/spread-psets shape for inbound streaming.

Algorithm: greedy placement in topological order (producers first) with
one refinement pass (each SP re-placed with every other fixed), choosing
at each step the candidate node that maximizes the predicted bottleneck
bandwidth of the whole graph.  Candidates are deduplicated by state
signature so large clusters do not blow up the search.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Set, Tuple

from repro.coordinator.allocation import AllocationSequence, constant_node_of
from repro.coordinator.graph import QueryGraph, SPDef
from repro.engine.settings import ExecutionSettings
from repro.hardware.environment import BACKEND, BLUEGENE, Environment
from repro.hardware.node import Node
from repro.optimizer.predict import (
    InboundShape,
    predict_inbound_bandwidth,
    predict_merge_bandwidth,
    predict_p2p_bandwidth,
)
from repro.util.errors import AllocationError


class CostBasedPlacer:
    """Places unallocated stream processes by predicted bandwidth."""

    def __init__(self, env: Environment, settings: Optional[ExecutionSettings] = None):
        self.env = env
        self.settings = settings or ExecutionSettings()

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def place(self, graph: QueryGraph) -> Dict[str, int]:
        """Choose nodes for every SP without an allocation sequence.

        Returns the chosen ``sp_id -> node index`` mapping and pins each
        placed SP with a constant allocation sequence, so the coordinators
        deploy exactly the optimized placement.  SPs that already carry an
        allocation sequence are respected (the user's explicit topology
        wins, as in the paper).
        """
        order = self._topological_order(graph)
        placeable = [sp for sp in order if sp.allocation is None]
        assignment: Dict[str, int] = {}
        # Pass 1: greedy in topological order.
        for sp in placeable:
            assignment[sp.sp_id] = self._best_node(graph, sp, assignment)
        # Pass 2: refine each choice with the rest fixed.
        for sp in placeable:
            del assignment[sp.sp_id]
            assignment[sp.sp_id] = self._best_node(graph, sp, assignment)
        for sp in placeable:
            sp.allocation = AllocationSequence(assignment[sp.sp_id])
        return assignment

    def predicted_bandwidth(
        self,
        graph: QueryGraph,
        assignment: Dict[str, int],
        measured_costs: Optional[Mapping[str, float]] = None,
    ) -> float:
        """The objective: predicted bottleneck bandwidth (bytes/s).

        ``measured_costs`` optionally calibrates the analytic bounds with
        live measurements (see :meth:`replace_one`).
        """
        return self._objective(graph, assignment, measured_costs)

    def replace_one(
        self,
        graph: QueryGraph,
        sp_id: str,
        fixed_assignment: Mapping[str, int],
        measured_costs: Optional[Mapping[str, float]] = None,
    ) -> Tuple[int, float]:
        """Score re-placing one SP with every other placement held fixed.

        This is the incremental query the adaptive runtime asks while a
        deployment is live: *if I could move only ``sp_id``, where would it
        go and how good would the plan be?*  ``fixed_assignment`` maps every
        other SP (and optionally ``sp_id`` itself — its entry is ignored) to
        its current node index; candidates come from the **live** CNDB, so
        nodes occupied by running RPs — including the victim's own node —
        are naturally excluded and the answer is always a genuine move.

        ``measured_costs`` maps a bound family (``"inbound"`` for the
        be->bg funnel, ``"torus"`` for intra-BlueGene transfers) to a
        measured/predicted calibration factor; each analytic bound is
        multiplied by its family's factor before the min is taken, so live
        throughput measurements correct the cost model where the simulation
        (or reality) disagrees with it.

        Returns ``(best_node_index, calibrated_predicted_bandwidth)``;
        raises :class:`~repro.util.errors.AllocationError` when the victim
        is unknown or no candidate node exists.
        """
        sp = graph.sps.get(sp_id)
        if sp is None:
            raise AllocationError(f"unknown stream process {sp_id!r}")
        assignment: Dict[str, int] = dict(fixed_assignment)
        assignment.pop(sp_id, None)
        best_index: Optional[int] = None
        best_score = -1.0
        for candidate in self._candidates(sp.cluster, sp_id, graph, assignment):
            assignment[sp_id] = candidate
            score = self._objective(graph, assignment, measured_costs)
            del assignment[sp_id]
            if score > best_score:
                best_score = score
                best_index = candidate
        if best_index is None:
            raise AllocationError(
                f"no candidate node in cluster {sp.cluster!r} for {sp_id!r}"
            )
        return best_index, best_score

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------
    def _best_node(self, graph: QueryGraph, sp: SPDef, assignment: Dict[str, int]) -> int:
        best_index: Optional[int] = None
        best_score = -1.0
        for candidate in self._candidates(sp.cluster, sp.sp_id, graph, assignment):
            assignment[sp.sp_id] = candidate
            score = self._objective(graph, assignment)
            del assignment[sp.sp_id]
            if score > best_score:
                best_score = score
                best_index = candidate
        if best_index is None:
            raise AllocationError(
                f"no candidate node in cluster {sp.cluster!r} for {sp.sp_id!r}"
            )
        return best_index

    def _candidates(
        self, cluster: str, sp_id: str, graph: QueryGraph, assignment: Dict[str, int]
    ) -> List[int]:
        """Available nodes, deduplicated by placement-relevant signature.

        Two free nodes are interchangeable when they sit in the same pset,
        carry the same load, and — on the BlueGene, where the torus
        position matters — have the same hop-distance profile to every
        already-placed BlueGene RP.
        """
        cndb = self.env.cndb(cluster)
        used: Dict[int, int] = {}
        placed_bg: List[int] = []
        for other_id, index in assignment.items():
            if graph.sps[other_id].cluster == cluster:
                used[index] = used.get(index, 0) + 1
            if graph.sps[other_id].cluster == BLUEGENE:
                placed_bg.append(index)
        seen: Set[Tuple] = set()
        candidates: List[int] = []
        for node in cndb.all_nodes():
            occupancy = used.get(node.index, 0) + node.running_processes
            limit = node.capabilities.max_processes
            if node.failed or not node.capabilities.can_compute:
                continue
            if limit is not None and occupancy >= limit:
                continue
            if cluster == BLUEGENE:
                distances = tuple(
                    self.env.torus.hop_count(node.index, other) for other in placed_bg
                )
            else:
                distances = ()
            signature = (node.pset_id, occupancy, distances)
            if signature in seen:
                continue
            seen.add(signature)
            candidates.append(node.index)
        return candidates

    @staticmethod
    def _topological_order(graph: QueryGraph) -> List[SPDef]:
        """Producers before consumers (subscription edges form a DAG)."""
        order: List[SPDef] = []
        visited: Set[str] = set()

        def visit(sp_id: str) -> None:
            if sp_id in visited:
                return
            visited.add(sp_id)
            sp = graph.sps[sp_id]
            if sp.plan is not None:
                for leaf in sp.plan.input_leaves():
                    if leaf.producer in graph.sps:
                        visit(leaf.producer)  # type: ignore[arg-type]
            order.append(sp)

        for sp_id in graph.sps:
            visit(sp_id)
        return order

    # ------------------------------------------------------------------
    # Objective
    # ------------------------------------------------------------------
    #: Plan roots whose output is a single object (or a trickle): their
    #: outgoing edges carry negligible volume and do not constrain
    #: placement.  This is the optimizer's cardinality estimate.
    _LOW_VOLUME_ROOTS = frozenset(["count", "sum", "avg", "maxagg", "minagg", "constant"])

    def _is_bulk_producer(self, graph: QueryGraph, sp_id: str) -> bool:
        sp = graph.sps.get(sp_id)
        if sp is None or sp.plan is None:
            return True  # unknown: be conservative
        return sp.plan.name not in self._LOW_VOLUME_ROOTS

    def _node_of(self, graph: QueryGraph, sp_id: str, assignment: Dict[str, int]) -> Optional[Node]:
        sp = graph.sps.get(sp_id)
        if sp is None:
            return None
        if sp_id in assignment:
            return self.env.node(sp.cluster, assignment[sp_id])
        pinned = constant_node_of(sp.allocation)
        if pinned is not None:
            return self.env.node(sp.cluster, pinned)
        return None

    @staticmethod
    def _calibrated(
        family: str, value: float, measured_costs: Optional[Mapping[str, float]]
    ) -> float:
        """Apply a bound family's measured/predicted correction factor."""
        if not measured_costs:
            return value
        return value * float(measured_costs.get(family, 1.0))

    def predicted_bounds(
        self, graph: QueryGraph, assignment: Dict[str, int]
    ) -> Dict[str, float]:
        """Uncalibrated analytic bounds, keyed by bound family.

        The tightest bound per family (``"inbound"``, ``"torus"``), in
        bytes/s — what the adaptive runtime divides live measurements by to
        learn its measured/predicted calibration factors.  Families without
        a constraining edge in this placement are absent.
        """
        out: Dict[str, float] = {}
        for family, value in self._labeled_bounds(graph, assignment):
            if value < out.get(family, float("inf")):
                out[family] = value
        return out

    def _objective(
        self,
        graph: QueryGraph,
        assignment: Dict[str, int],
        measured_costs: Optional[Mapping[str, float]] = None,
    ) -> float:
        """Predicted bottleneck bandwidth over all placed stream edges."""
        bounds = [
            self._calibrated(family, value, measured_costs)
            for family, value in self._labeled_bounds(graph, assignment)
        ]
        if not bounds:
            return float("inf")
        return min(bounds)

    def _labeled_bounds(
        self, graph: QueryGraph, assignment: Dict[str, int]
    ) -> List[Tuple[str, float]]:
        """Every analytic bound with its family label, in graph order."""
        params = self.env.params
        bounds: List[Tuple[str, float]] = []
        # Inbound (be -> bg) edges are pooled into one global shape.
        inbound_streams = 0
        inbound_hosts: Set[int] = set()
        inbound_ios: Set[int] = set()
        inbound_receivers: Set[int] = set()
        for sp in graph.sps.values():
            consumer = self._node_of(graph, sp.sp_id, assignment)
            if consumer is None or sp.plan is None:
                continue
            producers: List[Node] = []
            for leaf in sp.plan.input_leaves():
                if not self._is_bulk_producer(graph, leaf.producer):  # type: ignore[arg-type]
                    continue  # an aggregate's output is one object, not a stream
                producer = self._node_of(graph, leaf.producer, assignment)  # type: ignore[arg-type]
                if producer is not None:
                    producers.append(producer)
            if not producers:
                continue
            if consumer.cluster == BLUEGENE:
                be_producers = [p for p in producers if p.cluster == BACKEND]
                bg_producers = [p for p in producers if p.cluster == BLUEGENE]
                if be_producers:
                    inbound_streams += len(be_producers)
                    inbound_hosts.update(p.index for p in be_producers)
                    inbound_ios.add(self.env.bluegene.pset_of(consumer.index))
                    inbound_receivers.add(consumer.index)
                if bg_producers:
                    bounds.append((
                        "torus",
                        self._intra_bg_bound(consumer, bg_producers, assignment, graph),
                    ))
        if inbound_streams:
            shape = InboundShape(
                streams=inbound_streams,
                hosts=len(inbound_hosts),
                io_nodes=len(inbound_ios),
                receivers=len(inbound_receivers),
            )
            bounds.append(("inbound", predict_inbound_bandwidth(params, shape)))
        return bounds

    def _intra_bg_bound(
        self,
        consumer: Node,
        producers: List[Node],
        assignment: Dict[str, int],
        graph: QueryGraph,
    ) -> float:
        """Predicted bandwidth into one BlueGene consumer."""
        params = self.env.params
        buffer_bytes = self.settings.mpi_buffer_bytes
        busy = False
        max_hops = 1
        for producer in producers:
            if producer.index == consumer.index:
                continue
            route = self.env.torus.route(producer.index, consumer.index)
            max_hops = max(max_hops, len(route) - 1)
            if self._route_is_busy(
                route, assignment, graph, exclude=(producer.index, consumer.index)
            ):
                busy = True
        if len(producers) == 1:
            if busy:
                return predict_merge_bandwidth(
                    params, buffer_bytes, self.settings.double_buffering,
                    streams=1, through_busy_intermediate=True, max_hops=max_hops,
                )
            return predict_p2p_bandwidth(
                params, buffer_bytes, self.settings.double_buffering, hops=max_hops
            )
        return predict_merge_bandwidth(
            params,
            buffer_bytes,
            self.settings.double_buffering,
            streams=len(producers),
            through_busy_intermediate=busy,
            max_hops=max_hops,
        )

    def _route_is_busy(
        self,
        route: List[int],
        assignment: Dict[str, int],
        graph: QueryGraph,
        exclude: Tuple[int, int],
    ) -> bool:
        """True if an intermediate hop hosts another placed BlueGene RP."""
        occupied = {
            index
            for sp_id, index in assignment.items()
            if graph.sps[sp_id].cluster == BLUEGENE
        }
        for sp in graph.sps.values():
            if sp.cluster == BLUEGENE:
                pinned = constant_node_of(sp.allocation)
                if pinned is not None:
                    occupied.add(pinned)
        return any(
            hop in occupied and hop not in exclude for hop in route[1:-1]
        )
