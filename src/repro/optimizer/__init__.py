"""The query optimizer: cost-model predictions and automatic placement.

The paper collects its measurements "to provide a basis for automatic CPU
allocation strategies"; this package is that basis made executable — an
analytic model of the calibrated communication substrate
(:mod:`repro.optimizer.predict`, validated against the simulator by the
test suite) and a placement search that uses it
(:mod:`repro.optimizer.placement`).
"""

from repro.optimizer.placement import CostBasedPlacer
from repro.optimizer.predict import (
    InboundShape,
    predict_inbound_bandwidth,
    predict_merge_bandwidth,
    predict_p2p_bandwidth,
)

__all__ = [
    "CostBasedPlacer",
    "InboundShape",
    "predict_p2p_bandwidth",
    "predict_merge_bandwidth",
    "predict_inbound_bandwidth",
]
