"""The critical-path profiler: from per-flow hop logs to "what was slow".

The flow recorder (:mod:`repro.obs.flow`) leaves behind a complete causal
history of every delivered wire buffer.  This module walks those records
and answers the question the paper answers by inspection of its figures:
*which resource was the bottleneck of this query?*

Two aggregations are computed over all completed data flows:

* **per resource** — every hop that names a contended resource
  (``coproc[1]``, ``io-proxy[2]``, ``nic[be0]``, ``tree[0]``…) contributes
  its service time (serialize + wire + processing) and its queue wait to
  that resource.  Ranking resources by total *service* time mirrors the
  resource-busy-time semantics of the metrics registry: the resource that
  worked the longest on the stream's behalf is the pipeline stage that
  bounds throughput.  For the paper's Figure 8 sequential placement this
  names the intermediate co-processor that both forwards b->c traffic and
  receives a->b traffic; for Figure 15's Query 5 at n=5 it names the I/O
  node proxy shared by two compute nodes (observation 5).
* **per stage** — hops grouped by stage label (``torus.window``,
  ``receiver.inbox``…), which captures the waits that belong to no single
  resource: back-pressure windows, inbox dwell, send-token starvation.

A :class:`BottleneckReport` renders both as ranked text and JSON, and also
tallies **critical votes**: for each flow, the resource serving its single
longest hop gets one vote — a per-flow critical-path view that usually
agrees with the service ranking and flags skew when it does not.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.obs.flow import FlowRecord, FlowRecorder, NullFlowRecorder
from repro.obs.instrument import NullInstrumentation
from repro.util.stats import percentile


@dataclass(frozen=True)
class ResourceCost:
    """Aggregated latency attribution of one contended resource."""

    resource: str
    service: float
    queue_wait: float
    hops: int
    critical_votes: int
    stages: Tuple[str, ...]
    streams: Tuple[str, ...]

    @property
    def total(self) -> float:
        """Service plus queueing: all flow time spent at this resource."""
        return self.service + self.queue_wait


@dataclass(frozen=True)
class StageCost:
    """Aggregated latency attribution of one hop stage (by label)."""

    stage: str
    service: float
    queue_wait: float
    hops: int

    @property
    def total(self) -> float:
        return self.service + self.queue_wait


@dataclass(frozen=True)
class StreamLatency:
    """End-to-end latency summary of one stream edge."""

    stream_id: str
    flows: int
    mean: float
    p50: float
    p95: float
    p99: float


@dataclass
class BottleneckReport:
    """Ranked bottleneck attribution over a set of completed flows."""

    flows: int
    dropped: int
    resources: List[ResourceCost] = field(default_factory=list)
    stages: List[StageCost] = field(default_factory=list)
    streams: List[StreamLatency] = field(default_factory=list)

    def top(self, n: int = 1) -> List[ResourceCost]:
        """The ``n`` highest-service resources (the bottleneck candidates)."""
        return self.resources[:n]

    @property
    def bottleneck(self) -> Optional[ResourceCost]:
        """The single top-ranked resource, or None with no attributed hops."""
        return self.resources[0] if self.resources else None

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def format_text(self, limit: int = 10) -> str:
        """Human-readable ranked report (the ``--bottlenecks`` output)."""
        lines = [f"critical-path profile: {self.flows} flows"
                 + (f" ({self.dropped} dropped in flight)" if self.dropped else "")]
        lines.append("")
        lines.append("ranked resources (by service time):")
        if not self.resources:
            lines.append("  (no resource-attributed hops recorded)")
        header = (
            f"  {'#':>2} {'resource':<24} {'service_s':>10} "
            f"{'queue_s':>10} {'hops':>6} {'votes':>6}"
        )
        if self.resources:
            lines.append(header)
        for rank, cost in enumerate(self.resources[:limit], start=1):
            lines.append(
                f"  {rank:>2} {cost.resource:<24} {cost.service:>10.6f} "
                f"{cost.queue_wait:>10.6f} {cost.hops:>6d} {cost.critical_votes:>6d}"
            )
        lines.append("")
        lines.append("stages (waits without a single owning resource included):")
        for cost in self.stages[:limit]:
            lines.append(
                f"     {cost.stage:<24} service {cost.service:>10.6f}  "
                f"queue {cost.queue_wait:>10.6f}  hops {cost.hops}"
            )
        if self.streams:
            lines.append("")
            lines.append("per-stream end-to-end latency (seconds):")
            for stream in self.streams:
                lines.append(
                    f"     {stream.stream_id:<28} n={stream.flows:<4d} "
                    f"mean {stream.mean:.6f}  p50 {stream.p50:.6f}  "
                    f"p95 {stream.p95:.6f}  p99 {stream.p99:.6f}"
                )
        return "\n".join(lines)

    def to_json(self) -> Dict[str, object]:
        """JSON-serializable form of the full report."""
        return {
            "flows": self.flows,
            "dropped": self.dropped,
            "resources": [
                {
                    "resource": c.resource,
                    "service_s": c.service,
                    "queue_wait_s": c.queue_wait,
                    "total_s": c.total,
                    "hops": c.hops,
                    "critical_votes": c.critical_votes,
                    "stages": list(c.stages),
                    "streams": list(c.streams),
                }
                for c in self.resources
            ],
            "stages": [
                {
                    "stage": c.stage,
                    "service_s": c.service,
                    "queue_wait_s": c.queue_wait,
                    "hops": c.hops,
                }
                for c in self.stages
            ],
            "streams": [
                {
                    "stream_id": s.stream_id,
                    "flows": s.flows,
                    "latency_mean_s": s.mean,
                    "latency_p50_s": s.p50,
                    "latency_p95_s": s.p95,
                    "latency_p99_s": s.p99,
                }
                for s in self.streams
            ],
        }

    def write_json(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_json(), handle, indent=2, sort_keys=True)
            handle.write("\n")


#: Anything a profile can be computed from.
Profilable = Union[NullInstrumentation, NullFlowRecorder, FlowRecorder]


def _recorders(sources: Union[Profilable, Iterable[Profilable]]) -> List[NullFlowRecorder]:
    if isinstance(sources, (NullInstrumentation, NullFlowRecorder)):
        sources = [sources]
    recorders: List[NullFlowRecorder] = []
    for source in sources:
        recorder = source.flows if isinstance(source, NullInstrumentation) else source
        recorders.append(recorder)
    return recorders


def profile_flows(records: Sequence[FlowRecord], dropped: int = 0) -> BottleneckReport:
    """Build a bottleneck report from completed flow records.

    End-of-stream marker flows are skipped (they carry no payload and their
    hop costs are pure overheads); incomplete records cannot appear here
    because only completed flows are handed in by :func:`profile`.
    """
    per_resource: Dict[str, Dict[str, object]] = {}
    per_stage: Dict[str, Dict[str, float]] = {}
    per_stream: Dict[str, List[float]] = {}
    flows = 0
    for record in records:
        if record.eos:
            continue
        flows += 1
        per_stream.setdefault(record.stream_id, []).append(record.latency)
        critical: Optional[str] = None
        critical_duration = -1.0
        for hop in record.hops:
            stage = per_stage.setdefault(
                hop.stage, {"service": 0.0, "queue_wait": 0.0, "hops": 0.0}
            )
            stage["service"] += hop.service
            stage["queue_wait"] += hop.queue_wait
            stage["hops"] += 1
            if hop.resource is None:
                continue
            entry = per_resource.setdefault(
                hop.resource,
                {"service": 0.0, "queue_wait": 0.0, "hops": 0,
                 "votes": 0, "stages": set(), "streams": set()},
            )
            entry["service"] += hop.service
            entry["queue_wait"] += hop.queue_wait
            entry["hops"] += 1
            entry["stages"].add(hop.stage)
            entry["streams"].add(record.stream_id)
            if hop.duration > critical_duration:
                critical_duration = hop.duration
                critical = hop.resource
        if critical is not None:
            per_resource[critical]["votes"] += 1
    resources = sorted(
        (
            ResourceCost(
                resource=name,
                service=entry["service"],
                queue_wait=entry["queue_wait"],
                hops=entry["hops"],
                critical_votes=entry["votes"],
                stages=tuple(sorted(entry["stages"])),
                streams=tuple(sorted(entry["streams"])),
            )
            for name, entry in per_resource.items()
        ),
        key=lambda c: (c.service, c.queue_wait),
        reverse=True,
    )
    stages = sorted(
        (
            StageCost(
                stage=name,
                service=entry["service"],
                queue_wait=entry["queue_wait"],
                hops=int(entry["hops"]),
            )
            for name, entry in per_stage.items()
        ),
        key=lambda c: c.total,
        reverse=True,
    )
    streams = [
        StreamLatency(
            stream_id=stream_id,
            flows=len(latencies),
            mean=sum(latencies) / len(latencies),
            p50=percentile(latencies, 50.0),
            p95=percentile(latencies, 95.0),
            p99=percentile(latencies, 99.0),
        )
        for stream_id, latencies in sorted(per_stream.items())
    ]
    return BottleneckReport(
        flows=flows, dropped=dropped, resources=resources,
        stages=stages, streams=streams,
    )


def profile(sources: Union[Profilable, Iterable[Profilable]]) -> BottleneckReport:
    """Profile one or many observed runs (merging repeats).

    Args:
        sources: An :class:`~repro.obs.Instrumentation`, a
            :class:`~repro.obs.flow.FlowRecorder`, or an iterable of either
            (e.g. ``BandwidthResult.observations`` — one instrumentation
            per measurement repeat; their flows are pooled so the ranking
            reflects the whole experiment).

    Disabled recorders contribute nothing, so profiling an un-instrumented
    run yields an empty (but well-formed) report.
    """
    records: List[FlowRecord] = []
    dropped = 0
    for recorder in _recorders(sources):
        records.extend(recorder.completed)
        dropped += getattr(recorder, "dropped", 0)
    return profile_flows(records, dropped=dropped)
