"""Continuous bottleneck detection: typed health events over live windows.

The post-hoc :class:`~repro.obs.profile.BottleneckReport` answers "what
was slow" after a run completes; this module answers it **while the run
is still going**, which is what a future adaptive runtime needs to
migrate a stream processor off a saturated I/O proxy without restarting
the CQ.  A :class:`ContinuousBottleneckDetector` consumes the windowed
utilization/delivery samples the :class:`~repro.obs.live.LiveSampler`
produces and emits :class:`HealthEvent` records of three kinds:

* ``saturated`` — a resource's windowed utilization stayed at or above
  the high-water threshold for enough consecutive windows;
* ``recovered`` — a saturated resource dropped back below the low-water
  threshold (or a degraded stream delivered again);
* ``degraded`` — a hardware element was reported failed/damaged (the
  fault-injection harness calls :meth:`on_failure` the moment it kills a
  node or degrades a link), or a previously-delivering stream stalled:
  ``stall_windows`` consecutive windows passed with bytes in flight but
  none delivered.

Hysteresis is built in twice over: saturation and recovery use separate
thresholds (``high`` / ``low``) *and* separate consecutive-window counts
(``up_windows`` / ``down_windows``), so a resource oscillating around a
threshold does not flap; the ranked **culprit** is the resource that led
the utilization ranking in the most saturated windows, so a brief spike
elsewhere (or an idle run-out tail) cannot steal the verdict.

Everything is a pure function of the window stream — no wall clock, no
randomness — so for a fixed seed the emitted event sequence is
deterministic, which the mid-run regression tests rely on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Tuple

__all__ = [
    "HealthEvent",
    "ContinuousBottleneckDetector",
    "resource_scope",
    "base_stream",
]

#: Event kinds a detector can emit.
KINDS: Tuple[str, ...] = ("saturated", "degraded", "recovered")


def resource_scope(resource: str) -> str:
    """Classify a metrics resource key into the paper's hardware scopes.

    ``cpu[...]``/``coproc[...]``/``nic[...]`` belong to one node;
    ``io-proxy[...]``/``tree[...]`` to one pset (its I/O path);
    ``switch-uplink...``/``tcp-window...`` to a link.  Anything else is
    reported with the generic ``resource`` scope.
    """
    family = resource.split("[", 1)[0]
    if family in ("cpu", "coproc", "nic"):
        return "node"
    if family in ("io-proxy", "tree"):
        return "pset"
    if family in ("switch-uplink", "tcp-window", "tcp-forward"):
        return "link"
    return "resource"


def base_stream(stream_id: str) -> str:
    """The stable identity of a stream across replans and migrations.

    Deployment prefixes name streams ``"<label>/<edge>"``; replacement
    deployments suffix the label — ``"<label>+r<N>/<edge>"`` for fault
    replans (:func:`repro.bench.faults.run_faulted_session`) and
    ``"<label>+g<N>/<edge>"`` for migration generations
    (:meth:`repro.coordinator.deployer.Deployer.migrate`).  All map to
    ``<label>``.  Unprefixed stream edges map to themselves.
    """
    prefix = stream_id.split("/", 1)[0]
    return prefix.split("+", 1)[0]


@dataclass(frozen=True, slots=True)
class HealthEvent:
    """One typed state transition of a monitored subject.

    Attributes:
        time: Simulated second the transition was detected.
        window: Index of the live window that detected it (-1 for
            transitions reported between windows, e.g. a fault hook).
        kind: ``saturated`` / ``degraded`` / ``recovered``.
        scope: ``node`` / ``pset`` / ``link`` / ``stream`` / ``resource``.
        subject: The monitored entity (``io-proxy[1]``, ``node:bg/cn17``,
            ``stream:s0``).
        value: The measurement that triggered the transition (windowed
            utilization for saturation, delivered bytes for streams).
        detail: Free-form context for humans.
    """

    time: float
    window: int
    kind: str
    scope: str
    subject: str
    value: float = 0.0
    detail: str = ""

    def to_dict(self) -> Dict[str, object]:
        return {
            "time": self.time,
            "window": self.window,
            "kind": self.kind,
            "scope": self.scope,
            "subject": self.subject,
            "value": self.value,
            "detail": self.detail,
        }

    def __str__(self) -> str:
        return (
            f"[t={self.time:.6f} w={self.window}] {self.kind:<9} "
            f"{self.scope}:{self.subject}"
            + (f" ({self.detail})" if self.detail else "")
        )


#: Per-resource saturation state machine states.
_HEALTHY = "healthy"
_SATURATED = "saturated"


class ContinuousBottleneckDetector:
    """Re-ranks saturated resources each window, with hysteresis.

    Args:
        high: Windowed utilization at or above which a resource counts
            toward saturation (fraction of its capacity).
        low: Utilization at or below which a saturated resource counts
            toward recovery; must not exceed ``high`` (the gap is the
            hysteresis band).
        up_windows: Consecutive qualifying windows before ``saturated``
            is emitted.
        down_windows: Consecutive qualifying windows before
            ``recovered`` is emitted.
        stall_windows: Consecutive zero-delivery windows (with buffers
            still in flight) before a stream counts as stalled.  Healthy
            streams deliver in bursts — a flow often spans several
            windows — so this must exceed the longest burst gap or quiet
            runs flood with degraded/recovered pairs.
    """

    __slots__ = (
        "high", "low", "up_windows", "down_windows", "stall_windows",
        "events", "_state", "_above", "_below", "_lead", "_lead_streak",
        "_lead_counts", "_stream_seen", "_stream_degraded", "_stall_streak",
        "_recovered_prefixes", "_listeners", "_listener_owners",
    )

    def __init__(self, high: float = 0.85, low: float = 0.60,
                 up_windows: int = 2, down_windows: int = 2,
                 stall_windows: int = 3):
        if not 0.0 < high <= 1.5:
            raise ValueError(f"high threshold must be in (0, 1.5], got {high!r}")
        if low > high:
            raise ValueError(f"low {low!r} must not exceed high {high!r}")
        if up_windows < 1 or down_windows < 1 or stall_windows < 1:
            raise ValueError("window counts must be >= 1")
        self.high = high
        self.low = low
        self.up_windows = up_windows
        self.down_windows = down_windows
        self.stall_windows = stall_windows
        self.events: List[HealthEvent] = []
        self._state: Dict[str, str] = {}
        self._above: Dict[str, int] = {}
        self._below: Dict[str, int] = {}
        self._lead: Optional[str] = None
        self._lead_streak = 0
        self._lead_counts: Dict[str, int] = {}   # saturated-window leads
        self._stream_seen: Dict[str, bool] = {}   # base -> delivered before
        self._stream_degraded: Dict[str, bool] = {}
        self._stall_streak: Dict[str, int] = {}
        self._recovered_prefixes: Dict[str, bool] = {}
        self._listeners: List[Callable[[HealthEvent], None]] = []
        self._listener_owners: List[str] = []

    # ------------------------------------------------------------------
    # The control feed: subscribable health-event emission
    # ------------------------------------------------------------------
    def add_listener(
        self, listener: Callable[[HealthEvent], None], owner: str = ""
    ) -> None:
        """Subscribe to health events the moment they are emitted.

        This is the push feed an adaptive controller rides (mirroring
        :meth:`repro.obs.flow.FlowRecorder.add_listener`): every event
        appended to :attr:`events` — window transitions, fault hooks,
        replacement deliveries — is also delivered to each listener, in
        subscription order, synchronously at emission time.  ``owner``
        tags the subscription for the leak sanitizer's listener census.
        """
        self._listeners.append(listener)
        self._listener_owners.append(owner)

    def remove_listener(self, listener: Callable[[HealthEvent], None]) -> None:
        """Detach a listener; unknown listeners are ignored (idempotent)."""
        try:
            index = self._listeners.index(listener)
        except ValueError:
            return
        del self._listeners[index]
        del self._listener_owners[index]

    def listener_owners(self) -> List[str]:
        """Owner tags of the live subscriptions (census for the sanitizer)."""
        return list(self._listener_owners)

    @property
    def listener_count(self) -> int:
        """Number of live health subscriptions."""
        return len(self._listeners)

    def _emit(self, events: List[HealthEvent]) -> None:
        self.events.extend(events)
        if self._listeners:
            for event in events:
                for listener in self._listeners:
                    listener(event)

    # ------------------------------------------------------------------
    # Reading back
    # ------------------------------------------------------------------
    @property
    def saturated(self) -> List[str]:
        """Resources currently in the saturated state, name order."""
        return sorted(
            name for name, state in self._state.items() if state == _SATURATED
        )

    @property
    def culprit(self) -> Optional[str]:
        """The run's dominant bottleneck so far.

        The resource that led the utilization ranking in the most
        windows while saturated (ties broken by name), so an idle tail
        or a brief spike elsewhere cannot steal the verdict from the
        resource that actually gated the run.  Before any window
        saturates, falls back to the current utilization leader.
        """
        if self._lead_counts:
            return max(sorted(self._lead_counts),
                       key=lambda name: self._lead_counts[name])
        return self._lead

    def events_of(self, kind: str) -> List[HealthEvent]:
        return [event for event in self.events if event.kind == kind]

    # ------------------------------------------------------------------
    # Window feed (called by the LiveSampler at each boundary)
    # ------------------------------------------------------------------
    def observe_window(
        self,
        index: int,
        start: float,
        end: float,
        utilization: Mapping[str, float],
        stream_bytes: Mapping[str, float],
        stream_in_flight: Mapping[str, int],
    ) -> List[HealthEvent]:
        """Absorb one closed window; returns the events it triggered."""
        emitted: List[HealthEvent] = []
        for name in sorted(utilization):
            value = utilization[name]
            state = self._state.get(name, _HEALTHY)
            if value >= self.high:
                self._above[name] = self._above.get(name, 0) + 1
                self._below[name] = 0
                if state == _HEALTHY and self._above[name] >= self.up_windows:
                    self._state[name] = _SATURATED
                    emitted.append(HealthEvent(
                        time=end, window=index, kind="saturated",
                        scope=resource_scope(name), subject=name, value=value,
                        detail=f"util >= {self.high:g} for "
                               f"{self._above[name]} window(s)",
                    ))
            elif value <= self.low:
                self._below[name] = self._below.get(name, 0) + 1
                self._above[name] = 0
                if state == _SATURATED and self._below[name] >= self.down_windows:
                    self._state[name] = _HEALTHY
                    emitted.append(HealthEvent(
                        time=end, window=index, kind="recovered",
                        scope=resource_scope(name), subject=name, value=value,
                        detail=f"util <= {self.low:g} for "
                               f"{self._below[name]} window(s)",
                    ))
            else:
                # Inside the hysteresis band: both streaks reset, state holds.
                self._above[name] = 0
                self._below[name] = 0

        self._rerank(utilization)
        emitted.extend(self._observe_streams(
            index, end, stream_bytes, stream_in_flight
        ))
        self._emit(emitted)
        return emitted

    def _rerank(self, utilization: Mapping[str, float]) -> None:
        """Track the utilization leader and its saturated-lead tally."""
        leader: Optional[str] = None
        best = 0.0
        for name in sorted(utilization):
            value = utilization[name]
            if value > best:
                best = value
                leader = name
        if leader is None:
            return
        if leader == self._lead:
            self._lead_streak += 1
        else:
            self._lead = leader
            self._lead_streak = 1
        if best >= self.high:
            self._lead_counts[leader] = self._lead_counts.get(leader, 0) + 1

    def _observe_streams(
        self,
        index: int,
        end: float,
        stream_bytes: Mapping[str, float],
        stream_in_flight: Mapping[str, int],
    ) -> List[HealthEvent]:
        emitted: List[HealthEvent] = []
        actives = sorted(set(stream_bytes) | set(stream_in_flight))  # lint: disable=DET003
        for base in actives:
            delivered = stream_bytes.get(base, 0.0)
            in_flight = stream_in_flight.get(base, 0)
            if delivered > 0.0:
                self._stall_streak[base] = 0
                if self._stream_degraded.get(base):
                    self._stream_degraded[base] = False
                    emitted.append(HealthEvent(
                        time=end, window=index, kind="recovered",
                        scope="stream", subject=f"stream:{base}",
                        value=delivered, detail="delivery resumed",
                    ))
                self._stream_seen[base] = True
            elif self._stream_seen.get(base) and in_flight > 0:
                streak = self._stall_streak.get(base, 0) + 1
                self._stall_streak[base] = streak
                if (streak >= self.stall_windows
                        and not self._stream_degraded.get(base)):
                    self._stream_degraded[base] = True
                    emitted.append(HealthEvent(
                        time=end, window=index, kind="degraded",
                        scope="stream", subject=f"stream:{base}",
                        value=float(in_flight),
                        detail=f"no delivery for {streak} window(s) "
                               "with buffers in flight",
                    ))
        return emitted

    # ------------------------------------------------------------------
    # Out-of-band transitions (fault hooks, replacement deliveries)
    # ------------------------------------------------------------------
    def on_failure(self, now: float, subject: str, scope: str,
                   window: int = -1, detail: str = "") -> HealthEvent:
        """Record a reported hardware failure as an immediate ``degraded``."""
        event = HealthEvent(
            time=now, window=window, kind="degraded", scope=scope,
            subject=subject, detail=detail or "reported failed",
        )
        self._emit([event])
        return event

    def on_delivery(self, now: float, stream_id: str,
                    window: int = -1) -> Optional[HealthEvent]:
        """Note a flow delivery; first delivery of a replacement deployment
        (``<label>+rN/...`` replan or ``<label>+gN/...`` migration prefix)
        emits ``recovered`` for the stream."""
        prefix = stream_id.split("/", 1)[0]
        if "+" not in prefix or self._recovered_prefixes.get(prefix):
            return None
        self._recovered_prefixes[prefix] = True
        base = base_stream(stream_id)
        if self._stream_degraded.get(base):
            self._stream_degraded[base] = False
        event = HealthEvent(
            time=now, window=window, kind="recovered", scope="stream",
            subject=f"stream:{base}",
            detail=f"replacement {prefix}/ delivered",
        )
        self._emit([event])
        return event
