"""Structured event tracing over virtual (simulated) time.

A :class:`Tracer` records what the discrete-event kernel and the models
built on top of it are doing, with *simulated* timestamps, so a whole run
can be replayed on a timeline afterwards.  Records are small tuples kept in
one append-only list; everything presentation-related (Chrome ``trace_event``
JSON, JSON-lines) lives in :mod:`repro.obs.export`.

The default tracer on every simulator is :data:`NULL_TRACER`, whose methods
are all no-ops and whose ``enabled`` flag lets hot paths skip even building
the record — tracing costs nothing unless it was asked for.

Record kinds (the ``kind`` field of :class:`TraceRecord`):

``span_begin`` / ``span_end``
    An interval on a named *track* (a resource, a process group).  Matched
    by ``ident``; intervals on one track may overlap (capacity > 1
    resources, concurrent processes of the same name).
``instant``
    A point occurrence (an interrupt, an end-of-stream marker).
``counter``
    A sampled numeric level (store size, queue depth) on a track.
"""

from __future__ import annotations

from typing import Any, Iterator, List, NamedTuple, Optional


class TraceRecord(NamedTuple):
    """One recorded occurrence at a virtual timestamp."""

    ts: float
    """Simulated time of the occurrence, seconds."""

    kind: str
    """``span_begin`` | ``span_end`` | ``instant`` | ``counter``."""

    track: str
    """The timeline row the record belongs to (resource/process/store name)."""

    name: str
    """Label of the span/instant, or the counter series name."""

    ident: Optional[int]
    """Correlates span_begin/span_end pairs (None for instants/counters)."""

    args: Any
    """Extra payload: a dict for spans/instants, a number for counters."""


class NullTracer:
    """The disabled tracer: every hook is a no-op.

    Kernel hot paths check :attr:`enabled` before assembling any record, so
    a simulation with the null tracer does no tracing work at all.
    """

    enabled = False

    def span_begin(self, ts: float, track: str, name: str, ident: Optional[int] = None,
                   args: Any = None) -> None:
        pass

    def span_end(self, ts: float, track: str, name: str, ident: Optional[int] = None,
                 args: Any = None) -> None:
        pass

    def instant(self, ts: float, track: str, name: str, args: Any = None) -> None:
        pass

    def counter(self, ts: float, track: str, name: str, value: float) -> None:
        pass

    def __len__(self) -> int:
        return 0

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(())


#: Shared no-op tracer used when tracing is disabled.
NULL_TRACER = NullTracer()


class Tracer(NullTracer):
    """An enabled tracer accumulating :class:`TraceRecord` tuples."""

    enabled = True

    def __init__(self) -> None:
        self.records: List[TraceRecord] = []

    def span_begin(self, ts: float, track: str, name: str, ident: Optional[int] = None,
                   args: Any = None) -> None:
        self.records.append(TraceRecord(ts, "span_begin", track, name, ident, args))

    def span_end(self, ts: float, track: str, name: str, ident: Optional[int] = None,
                 args: Any = None) -> None:
        self.records.append(TraceRecord(ts, "span_end", track, name, ident, args))

    def instant(self, ts: float, track: str, name: str, args: Any = None) -> None:
        self.records.append(TraceRecord(ts, "instant", track, name, None, args))

    def counter(self, ts: float, track: str, name: str, value: float) -> None:
        self.records.append(TraceRecord(ts, "counter", track, name, None, value))

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)
