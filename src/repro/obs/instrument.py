"""The instrumentation hub: translates kernel hooks into traces + metrics.

One :class:`Instrumentation` is attached to one
:class:`~repro.sim.core.Simulator` (``sim.obs``).  The kernel, the resource
primitives, and the network/engine models call its ``on_*`` hooks — always
behind an ``if sim.obs.enabled:`` guard, so a simulator carrying
:data:`NULL_OBS` (the default) pays one attribute check per hook site and
nothing else.

The hub fans each observation out to

* a :class:`~repro.obs.tracer.Tracer` (timeline records: who held which
  resource when, process lifetimes, store levels), and
* a :class:`~repro.obs.metrics.MetricsRegistry` (counters and time-weighted
  utilization/queue-depth statistics),

either of which may be the null implementation independently.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Optional, Tuple

from repro.obs.flow import NULL_FLOWS, FlowRecorder, NullFlowRecorder
from repro.obs.live import NULL_LIVE, NullLiveSampler
from repro.obs.metrics import MetricsRegistry, MetricsSnapshot
from repro.obs.tracer import NULL_TRACER, NullTracer, Tracer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.core import Simulator
    from repro.sim.events import Event, Process, Timeout
    from repro.sim.resources import Request, Resource, Store


class NullInstrumentation:
    """The disabled hub installed on every simulator by default."""

    enabled = False
    tracer: NullTracer = NULL_TRACER
    metrics: Optional[MetricsRegistry] = None
    flows: NullFlowRecorder = NULL_FLOWS
    live: NullLiveSampler = NULL_LIVE

    def bind(self, sim: "Simulator") -> None:  # pragma: no cover - never bound
        pass


#: Shared disabled instrumentation (one instance serves every simulator).
NULL_OBS = NullInstrumentation()


class Instrumentation(NullInstrumentation):
    """An enabled tracer/metrics bundle bound to one simulator.

    Args:
        tracer: Timeline recorder; defaults to a fresh :class:`Tracer`.
            Pass :data:`~repro.obs.tracer.NULL_TRACER` for metrics-only
            instrumentation (much lighter on memory for long runs).
        metrics: Metric registry; defaults to a fresh registry.
        flows: Flow-level causal recorder; defaults to a fresh
            :class:`~repro.obs.flow.FlowRecorder`.  Pass
            :data:`~repro.obs.flow.NULL_FLOWS` to skip per-buffer hop
            logging (lighter for long bandwidth sweeps where only the
            aggregate counters matter).
        live: Windowed live telemetry sampler; defaults to
            :data:`~repro.obs.live.NULL_LIVE` (disabled).  Pass a
            :class:`~repro.obs.live.LiveSampler` to stream per-window
            utilization/latency while the simulation runs.
    """

    enabled = True

    def __init__(self, tracer: Optional[NullTracer] = None,
                 metrics: Optional[MetricsRegistry] = None,
                 flows: Optional[NullFlowRecorder] = None,
                 live: Optional[NullLiveSampler] = None):
        self.tracer: NullTracer = Tracer() if tracer is None else tracer
        self.metrics: MetricsRegistry = metrics if metrics is not None else MetricsRegistry()
        self.flows: NullFlowRecorder = FlowRecorder() if flows is None else flows
        self.live: NullLiveSampler = NULL_LIVE if live is None else live
        self.sim: Optional["Simulator"] = None
        if self.live.enabled:
            self.live.bind(self)

    def bind(self, sim: "Simulator") -> None:
        """Attach to the simulator whose hooks will feed this hub."""
        self.sim = sim

    # ------------------------------------------------------------------
    # Kernel hooks (sim.core / sim.events)
    # ------------------------------------------------------------------
    def on_step(self, event: "Event", now: float) -> None:
        # Close live windows before the event executes or is counted, so
        # a window holds exactly the activity before its end boundary.
        if self.live.enabled:
            self.live.on_step(now)
        self.metrics.add("sim.events_processed")

    def on_timeout(self, timeout: "Timeout") -> None:
        self.metrics.add("sim.timeouts_created")

    def on_process_created(self, process: "Process") -> None:
        self.metrics.add("sim.processes_started")
        if self.tracer.enabled:
            self.tracer.span_begin(
                process.sim.now, f"process:{process.name}", process.name,
                ident=id(process),
            )

    def on_process_finished(self, process: "Process", ok: bool) -> None:
        self.metrics.add("sim.processes_finished")
        if not ok:
            self.metrics.add("sim.processes_failed")
        if self.tracer.enabled:
            self.tracer.span_end(
                process.sim.now, f"process:{process.name}", process.name,
                ident=id(process), args=None if ok else {"failed": True},
            )

    def on_interrupt(self, process: "Process", cause: Any) -> None:
        self.metrics.add("sim.interrupts")
        if self.tracer.enabled:
            self.tracer.instant(
                process.sim.now, f"process:{process.name}", "interrupt",
                args={"cause": repr(cause)},
            )

    # ------------------------------------------------------------------
    # Resource hooks (sim.resources)
    # ------------------------------------------------------------------
    @staticmethod
    def _resource_key(resource: "Resource") -> str:
        return resource.name or f"resource@{id(resource):#x}"

    def on_resource_wait(self, resource: "Resource") -> None:
        key = self._resource_key(resource)
        now = resource.sim.now
        self.metrics.add(f"resource.waits[{key}]")
        self.metrics.update_series(f"resource.queue[{key}]", now, resource.queue_length)

    def on_resource_acquire(self, resource: "Resource", request: "Request") -> None:
        key = self._resource_key(resource)
        now = resource.sim.now
        if self.live.enabled:
            self.live.note_capacity(key, resource.capacity)
        self.metrics.add(f"resource.acquires[{key}]")
        self.metrics.update_series(f"resource.busy[{key}]", now, resource.count)
        self.metrics.update_series(f"resource.queue[{key}]", now, resource.queue_length)
        if self.tracer.enabled:
            self.tracer.span_begin(now, f"resource:{key}", "hold", ident=id(request))

    def on_resource_release(self, resource: "Resource", request: "Request") -> None:
        key = self._resource_key(resource)
        now = resource.sim.now
        self.metrics.update_series(f"resource.busy[{key}]", now, resource.count)
        if self.tracer.enabled:
            self.tracer.span_end(now, f"resource:{key}", "hold", ident=id(request))

    def on_resource_withdraw(self, resource: "Resource") -> None:
        key = self._resource_key(resource)
        self.metrics.add(f"resource.withdrawals[{key}]")
        self.metrics.update_series(
            f"resource.queue[{key}]", resource.sim.now, resource.queue_length
        )

    # ------------------------------------------------------------------
    # Store hooks (sim.resources)
    # ------------------------------------------------------------------
    def on_store_level(self, store: "Store") -> None:
        key = store.name or f"store@{id(store):#x}"
        now = store.sim.now
        self.metrics.update_series(f"store.level[{key}]", now, store.size)
        if self.tracer.enabled:
            self.tracer.counter(now, f"store:{key}", "size", store.size)

    # ------------------------------------------------------------------
    # Direct instruments for the models (torus / ethernet / drivers)
    # ------------------------------------------------------------------
    def add(self, name: str, amount: float = 1.0) -> None:
        """Increment counter ``name`` by ``amount``."""
        self.metrics.add(name, amount)

    def record_level(self, name: str, value: float) -> None:
        """Set gauge ``name`` to ``value`` (its peak is retained)."""
        self.metrics.set_gauge(name, value)

    def instant(self, track: str, name: str, args: Any = None) -> None:
        """Emit a point trace record at the current simulated time."""
        if self.tracer.enabled and self.sim is not None:
            self.tracer.instant(self.sim.now, track, name, args)

    # ------------------------------------------------------------------
    # Reading back
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        return self.sim.now if self.sim is not None else 0.0

    def snapshot(self) -> MetricsSnapshot:
        """Freeze the metrics at the current simulated time.

        Flow-level latency aggregates (p50/p95/p99 per stream edge) are
        published into the registry first, so a snapshot of an observed
        run always carries the latency decomposition alongside the
        counters.
        """
        self.flows.publish(self.metrics)
        return self.metrics.snapshot(self.now)

    def resource_busy_time(self, name: str) -> float:
        """Total simulated seconds resource ``name`` had >= 1 slot held."""
        series = self.metrics.series.get(f"resource.busy[{name}]")
        if series is None:
            return 0.0
        series.finalize(self.now)
        return series.time_at_or_above(1)

    def resource_occupancy(self, name: str) -> float:
        """Slot-seconds integral of resource ``name`` (busy count over time)."""
        series = self.metrics.series.get(f"resource.busy[{name}]")
        if series is None:
            return 0.0
        series.finalize(self.now)
        return series.integral

    def busiest_resource(self, prefix: str = "") -> Tuple[Optional[str], float]:
        """(name, busy seconds) of the busiest resource matching ``prefix``.

        ``prefix`` filters on the resource name (``"coproc"`` selects the
        communication co-processors).  Returns ``(None, 0.0)`` when nothing
        matched.
        """
        best: Tuple[Optional[str], float] = (None, 0.0)
        for series_name in self.metrics.series:
            if not series_name.startswith("resource.busy["):
                continue
            resource_name = series_name[len("resource.busy["):-1]
            if not resource_name.startswith(prefix):
                continue
            busy = self.resource_busy_time(resource_name)
            if busy > best[1]:
                best = (resource_name, busy)
        return best
