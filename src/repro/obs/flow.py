"""Flow-level causal tracing: the journey of every wire buffer, hop by hop.

The tracer/metrics hub (PR 1) can say *that* a co-processor was busy; this
layer says *why a byte was late*.  Each :class:`~repro.net.message.WireBuffer`
a sender driver emits becomes one **flow**: a record carrying the flow id,
the birth timestamp, and a hop log appended by every stage the buffer
passes — sender marshal, torus injection, each intermediate forwarding
co-processor, the Ethernet ingress (NIC, switch uplink, I/O-node proxy,
tree link), receive processing, the receiver inbox, and de-marshaling.

Hops are **delta-based and contiguous**: every hook closes the interval
since the record's previous hook, splitting it into declared service
components (``serialize`` / ``wire`` / ``processing``) and an implied
``queue_wait`` remainder.  By construction the hop components of a
completed flow sum exactly to its end-to-end latency, which is what makes
latency attribution trustworthy: nothing can be double counted or lost.

Like every other observability facility the recorder is **opt-in and free
when off**: the network models and drivers guard each hook with
``obs.flows.enabled``, and :data:`NULL_FLOWS` (the default, also installed
on :data:`~repro.obs.instrument.NULL_OBS`) short-circuits all of them.

Per-stream-edge end-to-end latencies are aggregated into p50/p95/p99
gauges in the metrics registry by :meth:`FlowRecorder.publish` (called from
``Instrumentation.snapshot()``), and the raw records feed the critical-path
profiler in :mod:`repro.obs.profile`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, NamedTuple, Optional

from repro.util.stats import percentile

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.net.message import WireBuffer
    from repro.obs.metrics import MetricsRegistry


class Hop(NamedTuple):
    """One closed interval of a flow's journey.

    ``start``/``end`` bracket the interval in simulated seconds; the four
    duration components partition it: ``queue_wait`` is the part not
    accounted for by the declared service components (waiting for tokens,
    resource acquisition, back-pressure, sitting in a buffer).
    """

    stage: str
    """What happened: ``sender.marshal``, ``torus.inject``, ``eth.uplink``…"""

    resource: Optional[str]
    """The contended resource serving this hop (``coproc[1]``,
    ``io-proxy[2]``, ``nic[be0]``…), or None for waits that belong to no
    single resource (back-pressure windows, inbox dwell)."""

    start: float
    end: float
    serialize: float
    queue_wait: float
    wire: float
    processing: float

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def service(self) -> float:
        """Time this hop actively occupied its resource (no queueing)."""
        return self.serialize + self.wire + self.processing


@dataclass
class FlowRecord:
    """The causal history of one wire buffer over virtual time."""

    flow_id: int
    buffer_id: int
    stream_id: str
    source: str
    nbytes: int
    birth: float
    eos: bool = False
    delivered: Optional[float] = None
    hops: List[Hop] = field(default_factory=list)
    _last_ts: float = 0.0

    @property
    def completed(self) -> bool:
        return self.delivered is not None

    @property
    def latency(self) -> float:
        """End-to-end latency (birth to de-marshal), seconds."""
        if self.delivered is None:
            raise ValueError(f"flow {self.flow_id} has not completed")
        return self.delivered - self.birth

    def component_totals(self) -> Dict[str, float]:
        """Summed duration per component over all hops."""
        totals = {"serialize": 0.0, "queue_wait": 0.0, "wire": 0.0,
                  "processing": 0.0}
        for hop in self.hops:
            totals["serialize"] += hop.serialize
            totals["queue_wait"] += hop.queue_wait
            totals["wire"] += hop.wire
            totals["processing"] += hop.processing
        return totals


class NullFlowRecorder:
    """The disabled recorder: every hook is a no-op behind ``enabled``."""

    enabled = False

    def begin(self, buffer: "WireBuffer", now: float) -> None:
        pass

    def hop(self, buffer: "WireBuffer", stage: str, now: float,
            resource: Optional[str] = None, serialize: float = 0.0,
            wire: float = 0.0, processing: float = 0.0) -> None:
        pass

    def complete(self, buffer: "WireBuffer", now: float) -> None:
        pass

    def drop_stream(self, stream_id: str) -> int:
        return 0

    @property
    def completed(self) -> List[FlowRecord]:
        return []

    @property
    def in_flight_count(self) -> int:
        return 0

    def in_flight_streams(self) -> Dict[str, int]:
        return {}

    def add_listener(
        self, listener: Callable[[FlowRecord], None], owner: str = ""
    ) -> None:
        raise RuntimeError(
            "the disabled flow recorder never completes a flow; enable "
            "flows on the Instrumentation to subscribe"
        )

    def remove_listener(self, listener: Callable[[FlowRecord], None]) -> None:
        pass

    def listener_owners(self) -> List[str]:
        return []

    @property
    def listener_count(self) -> int:
        return 0

    def publish(self, metrics: "MetricsRegistry") -> None:
        pass


#: Shared disabled recorder (one instance serves every simulator).
NULL_FLOWS = NullFlowRecorder()


class FlowRecorder(NullFlowRecorder):
    """An enabled per-buffer flow registry.

    The recorder is a side table keyed by ``buffer_id`` — the frozen
    :class:`~repro.net.message.WireBuffer` itself stays immutable and the
    context travels with it because the *same object* traverses every
    model.  Hooks on buffers that were never begun (e.g. instrumentation
    enabled mid-stream) are silently ignored.
    """

    enabled = True

    def __init__(self) -> None:
        self._flow_ids = itertools.count()
        self._in_flight: Dict[int, FlowRecord] = {}
        self._completed: List[FlowRecord] = []
        self._listeners: List[Callable[[FlowRecord], None]] = []
        #: Owner tag of each listener, parallel to ``_listeners``.  The
        #: leak sanitizer's census (``SAN206``) names leaked subscriptions
        #: by owner, so lifecycle code must pass one.
        self._listener_owners: List[str] = []
        self.dropped = 0

    def add_listener(
        self, listener: Callable[[FlowRecord], None], owner: str = ""
    ) -> None:
        """Subscribe to flow completions (called with each sealed record).

        This is the push feed the live sampler rides: latency sketches
        update at completion time instead of scanning ``completed`` at
        every window boundary.  ``owner`` tags the subscription for the
        leak sanitizer's listener census — pass the label of the component
        responsible for detaching it.
        """
        self._listeners.append(listener)
        self._listener_owners.append(owner)

    def remove_listener(self, listener: Callable[[FlowRecord], None]) -> None:
        """Unsubscribe a completion listener (unknown listeners are ignored).

        A detached listener never fires again — the adaptive runtime uses
        this to drop its subscription when its migration budget is spent.
        """
        try:
            index = self._listeners.index(listener)
        except ValueError:
            return
        del self._listeners[index]
        del self._listener_owners[index]

    def listener_owners(self) -> List[str]:
        """Owner tags of the live subscriptions (census for the sanitizer)."""
        return list(self._listener_owners)

    @property
    def listener_count(self) -> int:
        """Number of live completion subscriptions."""
        return len(self._listeners)

    # ------------------------------------------------------------------
    # Hooks (called by drivers and network models, behind `enabled`)
    # ------------------------------------------------------------------
    def begin(self, buffer: "WireBuffer", now: float) -> None:
        """Open a flow for ``buffer`` at its birth (sender-side emit)."""
        if buffer.buffer_id in self._in_flight:
            return  # already begun (defensive: re-sent buffer)
        self._in_flight[buffer.buffer_id] = FlowRecord(
            flow_id=next(self._flow_ids),
            buffer_id=buffer.buffer_id,
            stream_id=buffer.stream_id,
            source=buffer.source,
            nbytes=buffer.nbytes,
            birth=now,
            eos=buffer.eos,
            _last_ts=now,
        )

    def hop(self, buffer: "WireBuffer", stage: str, now: float,
            resource: Optional[str] = None, serialize: float = 0.0,
            wire: float = 0.0, processing: float = 0.0) -> None:
        """Close the interval since the previous hook as one hop.

        The declared service components are clipped into the interval; the
        remainder is recorded as ``queue_wait``, so hops stay an exact
        partition of the flow's lifetime even if a caller over-declares
        (e.g. passes a jittered baseline cost).
        """
        record = self._in_flight.get(buffer.buffer_id)
        if record is None:
            return
        start = record._last_ts
        interval = now - start
        service = serialize + wire + processing
        queue_wait = interval - service
        if queue_wait < 0.0:
            # Over-declared service (rounding/jitter): scale it into the
            # interval rather than inventing negative waiting.
            scale = interval / service if service > 0.0 else 0.0
            serialize *= scale
            wire *= scale
            processing *= scale
            queue_wait = 0.0
        record.hops.append(Hop(
            stage=stage, resource=resource, start=start, end=now,
            serialize=serialize, queue_wait=queue_wait, wire=wire,
            processing=processing,
        ))
        record._last_ts = now

    def complete(self, buffer: "WireBuffer", now: float) -> None:
        """Seal the flow: the receiver driver finished de-marshaling."""
        record = self._in_flight.pop(buffer.buffer_id, None)
        if record is None:
            return
        if now > record._last_ts:
            # Close any trailing gap so hops always sum to the latency.
            record.hops.append(Hop(
                stage="deliver.tail", resource=None, start=record._last_ts,
                end=now, serialize=0.0, queue_wait=now - record._last_ts,
                wire=0.0, processing=0.0,
            ))
            record._last_ts = now
        record.delivered = now
        self._completed.append(record)
        for listener in self._listeners:
            listener(record)

    def drop_stream(self, stream_id: str) -> int:
        """Discard in-flight records of a closed channel's stream.

        A channel torn down mid-flight (stop condition, query termination)
        strands its travelling buffers; their records are removed so the
        in-flight table cannot leak across a run.  Returns the number of
        records dropped.
        """
        stale = [
            buffer_id
            for buffer_id, record in self._in_flight.items()
            if record.stream_id == stream_id
        ]
        for buffer_id in stale:
            del self._in_flight[buffer_id]
        self.dropped += len(stale)
        return len(stale)

    # ------------------------------------------------------------------
    # Reading back
    # ------------------------------------------------------------------
    @property
    def completed(self) -> List[FlowRecord]:
        """Completed flows, in completion order."""
        return self._completed

    @property
    def in_flight_count(self) -> int:
        return len(self._in_flight)

    def in_flight_streams(self) -> Dict[str, int]:
        """In-flight record counts keyed by stream edge, discovery order."""
        counts: Dict[str, int] = {}
        for record in self._in_flight.values():
            counts[record.stream_id] = counts.get(record.stream_id, 0) + 1
        return counts

    def in_flight_of(self, stream_id: str) -> List[FlowRecord]:
        """In-flight records of one stream edge (diagnostics/tests)."""
        return [
            record for record in self._in_flight.values()
            if record.stream_id == stream_id
        ]

    def latencies(self, stream_id: Optional[str] = None,
                  include_eos: bool = False) -> List[float]:
        """End-to-end latencies of completed data flows, seconds.

        Args:
            stream_id: Restrict to one stream edge (None = all).
            include_eos: Count the empty end-of-stream marker buffers too
                (excluded by default; they carry no payload).
        """
        return [
            record.latency
            for record in self._completed
            if (include_eos or not record.eos)
            and (stream_id is None or record.stream_id == stream_id)
        ]

    def stream_ids(self) -> List[str]:
        """Distinct stream edges with at least one completed flow."""
        seen: Dict[str, None] = {}
        for record in self._completed:
            seen.setdefault(record.stream_id, None)
        return list(seen)

    # ------------------------------------------------------------------
    # Aggregation into the metrics registry
    # ------------------------------------------------------------------
    def publish(self, metrics: "MetricsRegistry") -> None:
        """Publish per-stream-edge latency aggregates as gauges/counters.

        For every stream edge with completed data flows:

        * ``flow.completed[<stream>]`` — gauge, completed data buffers;
        * ``flow.latency.p50/p95/p99[<stream>]`` — gauges, seconds;
        * ``flow.latency.mean[<stream>]`` — gauge, seconds;
        * ``flow.time.serialize/queue_wait/wire/processing[<stream>]`` —
          gauges, summed seconds per component over all hops.

        Gauges (not counters) so repeated publishes are idempotent.
        """
        per_stream: Dict[str, List[FlowRecord]] = {}
        for record in self._completed:
            if record.eos:
                continue
            per_stream.setdefault(record.stream_id, []).append(record)
        for stream_id, records in per_stream.items():
            latencies = [r.latency for r in records]
            metrics.set_gauge(f"flow.completed[{stream_id}]", len(records))
            metrics.set_gauge(
                f"flow.latency.mean[{stream_id}]",
                sum(latencies) / len(latencies),
            )
            for q, tag in ((50.0, "p50"), (95.0, "p95"), (99.0, "p99")):
                metrics.set_gauge(
                    f"flow.latency.{tag}[{stream_id}]",
                    percentile(latencies, q),
                )
            totals = {"serialize": 0.0, "queue_wait": 0.0, "wire": 0.0,
                      "processing": 0.0}
            for record in records:
                for component, value in record.component_totals().items():
                    totals[component] += value
            for component, value in totals.items():
                metrics.set_gauge(f"flow.time.{component}[{stream_id}]", value)
