"""Metric primitives over virtual time: counters, gauges, time-weighted stats.

A :class:`MetricsRegistry` holds named metric instruments.  The interesting
one for a discrete-event simulation is :class:`TimeWeightedStat`: it
integrates a piecewise-constant level (a resource's busy slot count, a
store's queue depth) over *simulated* time, so "utilization" and "mean
queue depth" mean what they do in queueing theory, not "mean over samples".

Names are flat strings; per-entity series use the ``group[key]`` convention
(``resource.busy[coproc[1]]``), which keeps the registry a plain dictionary
and makes summaries greppable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional


class Counter:
    """A monotonically accumulating value (bytes sent, events processed)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0.0

    def add(self, amount: float = 1.0) -> None:
        self.value += amount


class Gauge:
    """A last-write-wins level, with the historical peak retained."""

    __slots__ = ("value", "peak")

    def __init__(self) -> None:
        self.value: float = 0.0
        self.peak: float = 0.0

    def set(self, value: float) -> None:
        self.value = value
        if value > self.peak:
            self.peak = value


class TimeWeightedStat:
    """A piecewise-constant level integrated over virtual time.

    ``update(now, value)`` closes the interval the previous level was held
    for and starts a new one.  The dwell histogram maps each observed level
    to the total simulated time spent at that level, which is the
    time-weighted distribution of queue depths / busy counts.
    """

    __slots__ = ("current", "integral", "maximum", "_last_ts", "_start_ts", "dwell")

    def __init__(self, start_ts: float = 0.0, value: float = 0.0) -> None:
        self.current = value
        self.integral = 0.0
        self.maximum = value
        self._last_ts = start_ts
        self._start_ts = start_ts
        self.dwell: Dict[float, float] = {}

    def update(self, now: float, value: float) -> None:
        """Record that the level changed to ``value`` at time ``now``."""
        dt = now - self._last_ts
        if dt > 0.0:
            self.integral += self.current * dt
            self.dwell[self.current] = self.dwell.get(self.current, 0.0) + dt
        self._last_ts = now
        self.current = value
        if value > self.maximum:
            self.maximum = value

    def finalize(self, now: float) -> None:
        """Close the open interval at ``now`` (idempotent for a fixed now)."""
        self.update(now, self.current)

    def integral_at(self, now: float) -> float:
        """The level integral evaluated at ``now`` without mutating state.

        Extends the closed integral by the current level held since the
        last update, so window boundaries that carry no event of their
        own can still be evaluated exactly (the live sampler's windows
        depend on this).  ``now`` before the last update returns the
        closed integral unchanged.
        """
        integral = self.integral
        if now > self._last_ts:
            integral += self.current * (now - self._last_ts)
        return integral

    def elapsed(self, now: Optional[float] = None) -> float:
        """Observed virtual time span of this series."""
        end = self._last_ts if now is None else max(now, self._last_ts)
        return end - self._start_ts

    def mean(self, now: Optional[float] = None) -> float:
        """Time-weighted mean level over the observed span (0 if empty)."""
        span = self.elapsed(now)
        if span <= 0.0:
            return self.current
        integral = self.integral
        if now is not None and now > self._last_ts:
            integral += self.current * (now - self._last_ts)
        return integral / span

    def time_at_or_above(self, level: float) -> float:
        """Total closed-interval time the level was >= ``level``."""
        return sum(t for v, t in self.dwell.items() if v >= level)


@dataclass(frozen=True)
class MetricsSnapshot:
    """A plain-data summary of a registry at one point in virtual time."""

    now: float
    counters: Dict[str, float] = field(default_factory=dict)
    gauges: Dict[str, float] = field(default_factory=dict)
    peaks: Dict[str, float] = field(default_factory=dict)
    time_weighted: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def counter(self, name: str) -> float:
        return self.counters.get(name, 0.0)

    def peak(self, name: str) -> float:
        return self.peaks.get(name, 0.0)


class MetricsRegistry:
    """A flat namespace of counters, gauges, and time-weighted stats."""

    def __init__(self) -> None:
        self.counters: Dict[str, Counter] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.series: Dict[str, TimeWeightedStat] = {}

    # ------------------------------------------------------------------
    # Instrument accessors (create on first use)
    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        try:
            return self.counters[name]
        except KeyError:
            instrument = self.counters[name] = Counter()
            return instrument

    def gauge(self, name: str) -> Gauge:
        try:
            return self.gauges[name]
        except KeyError:
            instrument = self.gauges[name] = Gauge()
            return instrument

    def time_weighted(self, name: str, start_ts: float = 0.0,
                      value: float = 0.0) -> TimeWeightedStat:
        try:
            return self.series[name]
        except KeyError:
            instrument = self.series[name] = TimeWeightedStat(start_ts, value)
            return instrument

    # ------------------------------------------------------------------
    # Convenience mutators
    # ------------------------------------------------------------------
    def add(self, name: str, amount: float = 1.0) -> None:
        self.counter(name).add(amount)

    def set_gauge(self, name: str, value: float) -> None:
        self.gauge(name).set(value)

    def update_series(self, name: str, now: float, value: float) -> None:
        self.time_weighted(name, start_ts=now).update(now, value)

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def snapshot(self, now: float) -> MetricsSnapshot:
        """Freeze the registry into plain data, closing open intervals."""
        for series in self.series.values():
            series.finalize(now)
        return MetricsSnapshot(
            now=now,
            counters={name: c.value for name, c in self.counters.items()},
            gauges={name: g.value for name, g in self.gauges.items()},
            peaks={name: g.peak for name, g in self.gauges.items()},
            time_weighted={
                name: {
                    "mean": s.mean(now),
                    "max": s.maximum,
                    "integral": s.integral,
                    "current": s.current,
                }
                for name, s in self.series.items()
            },
        )
