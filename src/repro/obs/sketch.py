"""Online percentile sketches: the P² estimator over streaming samples.

The live telemetry plane (:mod:`repro.obs.live`) publishes p50/p95/p99
flow latencies *while* a simulation runs.  Retaining every
:class:`~repro.obs.flow.FlowRecord` just to sort its latencies at each
window boundary would make the sampler's memory grow with the run; the
P² algorithm (Jain & Chlamtac, CACM 1985) instead maintains five markers
per tracked quantile and updates them in O(1) per observation, so a
sketch of a million-flow run costs the same few floats as a sketch of a
hundred-flow run.

Accuracy contract (pinned by ``tests/obs/test_sketch.py`` against the
exact :func:`repro.util.stats.percentile`):

* **exact below the retention limit** — a sketch keeps the raw samples
  until :attr:`LatencySketch.exact_limit` observations and answers from
  them, so small windows (the common case: tens of flows per window)
  are not approximated at all;
* **approximate beyond it** — once the raw buffer is dropped, quantile
  queries come from the P² markers, whose error on smooth distributions
  is well under a percent and remains bounded on adversarial (bimodal,
  heavy-tailed, sorted) inputs.

Everything here is pure arithmetic over the observed values: no wall
clock, no randomness, no iteration over unordered containers — the
sketch state after n observations is a deterministic function of the
observation sequence, which the determinism suite relies on.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.util.stats import percentile

__all__ = ["P2Quantile", "LatencySketch", "DEFAULT_QUANTILES"]

#: The quantiles a :class:`LatencySketch` tracks by default.
DEFAULT_QUANTILES: Tuple[float, ...] = (0.5, 0.95, 0.99)


class P2Quantile:
    """One quantile tracked with the piecewise-parabolic (P²) estimator.

    Maintains five markers: the minimum, the maximum, the target
    quantile ``q``, and the midpoints ``q/2`` and ``(1+q)/2``.  Marker
    heights move by parabolic (falling back to linear) interpolation as
    observations arrive, so :attr:`value` tracks the running quantile
    without storing the samples.

    For fewer than five observations the estimate is the exact
    percentile of the values seen so far.
    """

    __slots__ = ("q", "_count", "_heights", "_positions", "_desired", "_rates")

    def __init__(self, q: float):
        if not 0.0 < q < 1.0:
            raise ValueError(f"quantile must be in (0, 1), got {q!r}")
        self.q = q
        self._count = 0
        self._heights: List[float] = []
        self._positions: List[float] = []
        self._desired: List[float] = []
        self._rates: Tuple[float, ...] = ()

    @property
    def count(self) -> int:
        """Number of observations absorbed."""
        return self._count

    def add(self, value: float) -> None:
        """Absorb one observation."""
        value = float(value)
        self._count += 1
        if self._count <= 5:
            self._heights.append(value)
            self._heights.sort()
            if self._count == 5:
                q = self.q
                self._positions = [1.0, 2.0, 3.0, 4.0, 5.0]
                self._desired = [
                    1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0,
                ]
                self._rates = (0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0)
            return
        heights = self._heights
        positions = self._positions
        # Locate the cell the new value falls into, stretching the
        # extreme markers when it lands outside the observed range.
        if value < heights[0]:
            heights[0] = value
            cell = 0
        elif value >= heights[4]:
            heights[4] = value
            cell = 3
        else:
            cell = 0
            while cell < 3 and value >= heights[cell + 1]:
                cell += 1
        for index in range(cell + 1, 5):
            positions[index] += 1.0
        desired = self._desired
        for index, rate in enumerate(self._rates):
            desired[index] += rate
        # Nudge the three interior markers toward their desired ranks.
        for index in (1, 2, 3):
            drift = desired[index] - positions[index]
            above = positions[index + 1] - positions[index]
            below = positions[index - 1] - positions[index]
            if (drift >= 1.0 and above > 1.0) or (drift <= -1.0 and below < -1.0):
                step = 1.0 if drift > 0.0 else -1.0
                candidate = self._parabolic(index, step)
                if heights[index - 1] < candidate < heights[index + 1]:
                    heights[index] = candidate
                else:
                    heights[index] = self._linear(index, step)
                positions[index] += step
            # Parabolic prediction of the marker's height at its new rank.

    def _parabolic(self, index: int, step: float) -> float:
        heights = self._heights
        positions = self._positions
        p_prev, p_here, p_next = (
            positions[index - 1], positions[index], positions[index + 1]
        )
        h_prev, h_here, h_next = (
            heights[index - 1], heights[index], heights[index + 1]
        )
        return h_here + step / (p_next - p_prev) * (
            (p_here - p_prev + step) * (h_next - h_here) / (p_next - p_here)
            + (p_next - p_here - step) * (h_here - h_prev) / (p_here - p_prev)
        )

    def _linear(self, index: int, step: float) -> float:
        heights = self._heights
        positions = self._positions
        neighbour = index + int(step)
        return self._heights[index] + step * (
            (heights[neighbour] - heights[index])
            / (positions[neighbour] - positions[index])
        )

    @property
    def value(self) -> float:
        """The current quantile estimate.

        Raises:
            ValueError: If no observation has been absorbed yet.
        """
        if self._count == 0:
            raise ValueError("quantile of an empty sketch is undefined")
        if self._count < 5:
            return percentile(self._heights, self.q * 100.0)
        return self._heights[2]


class LatencySketch:
    """Count/sum/extremes plus a bank of P² quantile estimators.

    Answers are **exact** while at most :attr:`exact_limit` samples have
    been absorbed (the raw values are retained and fed through
    :func:`repro.util.stats.percentile`); past the limit the raw buffer
    is discarded and the P² markers answer, so memory stays O(1) no
    matter how many flows a window or a run carries.
    """

    __slots__ = ("quantiles", "exact_limit", "count", "total",
                 "minimum", "maximum", "_exact", "_estimators")

    def __init__(self, quantiles: Sequence[float] = DEFAULT_QUANTILES,
                 exact_limit: int = 64):
        if exact_limit < 0:
            raise ValueError(f"exact_limit must be >= 0, got {exact_limit}")
        self.quantiles: Tuple[float, ...] = tuple(quantiles)
        self.exact_limit = exact_limit
        self.count = 0
        self.total = 0.0
        self.minimum = float("inf")
        self.maximum = float("-inf")
        self._exact: Optional[List[float]] = []
        self._estimators: Dict[float, P2Quantile] = {
            q: P2Quantile(q) for q in self.quantiles
        }

    def add(self, value: float) -> None:
        """Absorb one observation into every tracked quantile."""
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value
        for estimator in self._estimators.values():
            estimator.add(value)
        if self._exact is not None:
            self._exact.append(value)
            if self.count > self.exact_limit:
                self._exact = None  # hand over to the P2 markers

    @property
    def exact(self) -> bool:
        """Whether quantile queries still answer from retained samples."""
        return self._exact is not None and self.count > 0

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """The running ``q``-quantile (``q`` in (0, 1)).

        Raises:
            ValueError: If the sketch is empty, or ``q`` is not tracked
                and the exact buffer has already been dropped.
        """
        if self.count == 0:
            raise ValueError("quantile of an empty sketch is undefined")
        if self._exact is not None:
            return percentile(self._exact, q * 100.0)
        try:
            return self._estimators[q].value
        except KeyError:
            raise ValueError(
                f"quantile {q!r} is not tracked by this sketch "
                f"(tracked: {self.quantiles})"
            ) from None

    @property
    def p50(self) -> float:
        return self.quantile(0.5)

    @property
    def p95(self) -> float:
        return self.quantile(0.95)

    @property
    def p99(self) -> float:
        return self.quantile(0.99)

    def summary(self) -> Dict[str, float]:
        """Plain-data summary (empty sketches report zeros)."""
        if self.count == 0:
            return {"n": 0, "mean": 0.0, "min": 0.0, "max": 0.0,
                    **{self._tag(q): 0.0 for q in self.quantiles}}
        out = {
            "n": self.count,
            "mean": self.mean,
            "min": self.minimum,
            "max": self.maximum,
        }
        for q in self.quantiles:
            out[self._tag(q)] = self.quantile(q)
        return out

    @staticmethod
    def _tag(q: float) -> str:
        text = f"{q * 100.0:g}".replace(".", "_")
        return f"p{text}"

    def __repr__(self) -> str:
        mode = "exact" if self.exact or self.count == 0 else "p2"
        return f"<LatencySketch n={self.count} {mode}>"
